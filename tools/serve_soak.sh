#!/bin/sh
# Serve-lane crash soak (docs/SERVE.md): SIGKILL the daemon at random
# points mid-campaign, restart it over the same spool, and require that
# every resumed job still produces a report byte-identical to one-shot
# `cadapt sweep --no-timing` on the same manifest. This is the serve
# analogue of tools/chaos_sweep.sh — no cleanup handler runs on
# SIGKILL, so recovery leans entirely on the durable checkpoint layer.
#
# Wired as the ctest case `cli_serve_soak` (label `serve`).
#
# usage:
#   tools/serve_soak.sh <path-to-cadapt> [workdir] [kills]
set -eu

cli=${1:?usage: serve_soak.sh <path-to-cadapt> [workdir] [kills]}
workdir=${2:-serve_soak_work}
kills=${3:-6}

rm -rf "$workdir"
mkdir -p "$workdir"
cd "$workdir"

daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -KILL "$daemon_pid" 2> /dev/null || true
}
trap cleanup EXIT INT TERM

cat > a.manifest << 'EOF'
name = soak_a
algos = 4:2:1
profiles = shuffled
k = 1..8
trials = 600
seed = 21
EOF
# NOTE: 8:2:1 cells blow up steeply with k (k=7 is ~17s, k=8 ~2min of
# CPU for 600 trials); keep k <= 6 so a single resumed cell never
# outlives the drain window.
cat > b.manifest << 'EOF'
name = soak_b
algos = 8:2:1
profiles = shuffled
k = 1..6
trials = 600
seed = 22
EOF
cat > c.manifest << 'EOF'
name = soak_c
algos = 4:2:1 8:2:1
profiles = shuffled
k = 1..6
trials = 400
seed = 23
EOF

# References: the bytes every resumed job must reproduce.
for m in a b c; do
  "$cli" sweep "$m.manifest" --no-timing --out "ref_$m.json" > /dev/null
done

start_daemon() {
  rm -f serve.sock
  "$cli" serve --spool spool --socket serve.sock --no-timing --jobs 2 \
    >> daemon.log 2>&1 &
  daemon_pid=$!
  tries=0
  while [ ! -S serve.sock ]; do
    tries=$((tries + 1))
    [ "$tries" -gt 100 ] && { echo "daemon never listened" >&2; exit 1; }
    kill -0 "$daemon_pid" 2> /dev/null || {
      echo "daemon died on start: $(cat daemon.log)" >&2; exit 1; }
    sleep 0.1
  done
}

start_daemon

# Three tenants, submitted once; the daemon owns them across restarts.
"$cli" submit a.manifest --socket serve.sock --client alice --weight 2 \
  > /dev/null
"$cli" submit b.manifest --socket serve.sock --client bob > /dev/null
"$cli" submit c.manifest --socket serve.sock --client carol > /dev/null

all_done() {
  out=$("$cli" status --socket serve.sock 2> /dev/null) || return 1
  [ "$(printf '%s\n' "$out" | grep -c '"state":"done"')" -eq 3 ]
}

seed=${SOAK_SEED:-$$}
i=0
while [ "$i" -lt "$kills" ]; do
  i=$((i + 1))
  # Deterministic-ish pseudo-random dwell in [0.05s, 0.50s].
  seed=$(((seed * 1103515245 + 12345) % 2147483648))
  dwell=$((seed % 10))
  sleep "0.$(printf '%02d' $((5 + dwell * 5)))"
  if all_done; then
    echo "soak: all jobs finished before kill #$i; stopping early"
    break
  fi
  kill -KILL "$daemon_pid"
  wait "$daemon_pid" 2> /dev/null || true
  daemon_pid=""
  echo "soak: SIGKILL #$i delivered mid-campaign"
  start_daemon
done

# Let the final incarnation drain everything. The window is sized for
# sanitizer builds (~15-20x slower cells), not the release tree.
tries=0
until all_done; do
  tries=$((tries + 1))
  [ "$tries" -gt 2400 ] && { echo "jobs never drained" >&2; exit 1; }
  kill -0 "$daemon_pid" 2> /dev/null || {
    echo "daemon died draining: $(cat daemon.log)" >&2; exit 1; }
  sleep 0.1
done

# The headline invariant: every report, assembled across an arbitrary
# number of crash/restart cycles, is byte-identical to its reference.
"$cli" results --socket serve.sock --job job-1 --out got_a.json \
  2> /dev/null
"$cli" results --socket serve.sock --job job-2 --out got_b.json \
  2> /dev/null
"$cli" results --socket serve.sock --job job-3 --out got_c.json \
  2> /dev/null
cmp ref_a.json got_a.json
cmp ref_b.json got_b.json
cmp ref_c.json got_c.json

# One more restart over the finished spool: terminal jobs must come
# back as history, with the same bytes served from disk.
kill "$daemon_pid"
wait "$daemon_pid" || { echo "daemon exited non-zero" >&2; exit 1; }
daemon_pid=""
start_daemon
"$cli" results --socket serve.sock --job job-2 --out again_b.json \
  2> /dev/null
cmp ref_b.json again_b.json
kill "$daemon_pid"
wait "$daemon_pid" || { echo "daemon exited non-zero" >&2; exit 1; }
daemon_pid=""

echo "soak: $i kill(s), every report byte-identical after resume"
