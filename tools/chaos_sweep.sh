#!/bin/sh
# Chaos harness (docs/ROBUSTNESS.md, "Durability & crash safety"): prove
# the crash-kill bit-identity guarantee by actually killing the process.
#
# For N = 1, 2, 3, ... the sweep runs with `--crash-after N`, which arms
# robust::CrashPoint to persist a TORN PREFIX of the Nth durable write
# (checkpoint header, per-cell commit, or the report's atomic temp file)
# and raise SIGKILL — a faithful power cut, no unwinding, no flushes.
# After every kill, `--resume` from the wounded checkpoint must complete
# and produce a report byte-identical to the uninterrupted reference.
# Once N passes the campaign's total durable-write count the run
# completes cleanly; that run must ALSO match the reference, and the
# sweep stops — every crash point was covered, none skipped.
#
# Wired as the ctest case `cli_chaos_sweep` (label `chaos`, bounded
# TIMEOUT); run it under the address and thread sanitizer presets too —
# torn-tail recovery bugs love to hide on the unwind-free kill path.
#
# usage:
#   tools/chaos_sweep.sh <path-to-cadapt> [workdir]
set -eu

cli=${1:?usage: chaos_sweep.sh <path-to-cadapt> [workdir]}
workdir=${2:-chaos_work}

repo_root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
manifest="$repo_root/bench/manifests/chaos_gate.manifest"

mkdir -p "$workdir"
cd "$workdir"

# The uninterrupted reference (--no-timing: the byte-identity contract).
"$cli" sweep "$manifest" --no-timing --out chaos_ref.json > /dev/null

max=16  # > total durable writes of the manifest; the loop exits early
n=1
while [ "$n" -le "$max" ]; do
  rm -f chaos.ckpt chaos_out.json
  status=0
  # --jobs 1 keeps the Nth-write placement deterministic run to run.
  "$cli" sweep "$manifest" --no-timing --jobs 1 \
    --checkpoint chaos.ckpt --crash-after "$n" \
    --out chaos_out.json > /dev/null 2>&1 || status=$?

  if [ "$status" -eq 0 ]; then
    # N exceeded the campaign's durable writes: a clean completion, and
    # the coverage stop condition — every earlier N really crashed.
    cmp chaos_ref.json chaos_out.json
    echo "chaos sweep: $((n - 1)) crash points survived;" \
         "clean completion at $n"
    exit 0
  fi
  if [ "$status" -lt 128 ]; then
    echo "crash point $n: expected SIGKILL (status >= 128) or clean" \
         "completion, got exit $status" >&2
    exit 1
  fi

  # Killed mid-write. Resume from the (possibly torn) checkpoint; the
  # finished report must match the reference byte for byte.
  "$cli" sweep "$manifest" --no-timing --checkpoint chaos.ckpt --resume \
    --out chaos_out.json > /dev/null
  if ! cmp chaos_ref.json chaos_out.json; then
    echo "crash point $n: resumed report differs from the reference" >&2
    exit 1
  fi
  n=$((n + 1))
done

echo "chaos sweep: no clean completion within $max crash points —" \
     "is --crash-after arming more writes than expected?" >&2
exit 1
