#!/bin/sh
# Regenerate (default) or verify (--check) the committed sweep
# artifacts at the repo root (docs/SWEEPS.md):
#
#   BENCH_sweep.json             <- bench/manifests/e2_log_gap.manifest
#   BENCH_parallel_baseline.json <- bench/manifests/parallel_gate.manifest
#
# Reports are bit-identical across jobs/shards/resume — and, for the
# parallel gate, across worker counts (docs/PARALLEL.md) — so the ONLY
# line allowed to differ between a fresh run and a committed file is
# the sweep_env provenance record (git hash, compiler, flags). --check
# re-runs each manifest and diffs everything except that line; any
# other drift means the committed artifact is stale relative to the
# engine and the test fails. Wired as the ctest -L sweep case
# `cli_sweep_regen_check`.
#
# usage:
#   tools/regen_bench_sweep.sh <path-to-cadapt> [--check]
set -eu

cli=${1:?usage: regen_bench_sweep.sh <path-to-cadapt> [--check]}
mode=${2:-update}

repo_root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)

tmp=$(mktemp)
trap 'rm -f "$tmp" "$tmp.new" "$tmp.old"' EXIT INT TERM

check_one() {
  manifest=$1
  committed=$2
  # --no-timing zeroes wall_ms/wall_ns — the byte-identity contract.
  "$cli" sweep "$manifest" --no-timing --out "$tmp" > /dev/null
  if [ "$mode" = "--check" ]; then
    grep -v '"type":"sweep_env"' "$tmp" > "$tmp.new"
    grep -v '"type":"sweep_env"' "$committed" > "$tmp.old"
    if ! cmp -s "$tmp.old" "$tmp.new"; then
      echo "$(basename "$committed") is stale — refresh it with:" >&2
      echo "  tools/regen_bench_sweep.sh $cli" >&2
      diff "$tmp.old" "$tmp.new" >&2 || true
      exit 1
    fi
    echo "$(basename "$committed") matches a fresh run (sweep_env excluded)"
  else
    cp "$tmp" "$committed"
    echo "wrote $committed"
  fi
}

check_one "$repo_root/bench/manifests/e2_log_gap.manifest" \
          "$repo_root/BENCH_sweep.json"
check_one "$repo_root/bench/manifests/parallel_gate.manifest" \
          "$repo_root/BENCH_parallel_baseline.json"
