// cadapt — command-line driver for the cache-adaptive analysis toolkit.
//
// Usage: cadapt <command> [flags]
//
//   gap         adaptivity ratio of (a,b,c) on its worst-case profile M_{a,b}
//   shuffle     ... on the i.i.d. reshuffle of M_{a,b} (Theorem 1)
//   iid         ... on i.i.d. boxes from a chosen distribution
//   perturb     ... on size-perturbed M_{a,b} (X ~ U[0,t])
//   shift       ... on cyclic-shifted M_{a,b}
//   order       ... on order-perturbed M_{a,b} (--matched for the witness)
//   analytic    Lemma 3 stopping-time table for a distribution
//   render      ASCII-render M_{a,b}(n) (Figure 1)
//   multiplies  §3: executions completed on one pass of M_{a,b}(n)
//   trace       instrumented run: JSONL event stream + summary tables
//   mc          robust Monte-Carlo campaign: containment, retries, fault
//               injection, budgets, checkpoint/resume (docs/ROBUSTNESS.md)
//   help        this text
//
// Exit codes (docs/ROBUSTNESS.md): 0 success, 2 usage error, 3 input
// error (unreadable/malformed file), 4 internal check failure, 1 other.
//
// Common flags: --a --b --c --kmin --kmax --trials --seed
//               --semantics optimistic|budgeted --unit-progress --csv
// Distribution flags (iid/analytic): --dist geometric|uniform-powers|
//   bimodal|point|uniform-range, --kdist, --small, --big, --pbig,
//   --size, --lo, --hi
#include <algorithm>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "campaign/cell_runner.hpp"
#include "campaign/gate.hpp"
#include "campaign/manifest.hpp"
#include "campaign/provenance.hpp"
#include "campaign/report.hpp"
#include "campaign/sweep.hpp"
#include "report/binary_io.hpp"
#include "report/cell_store.hpp"
#include "paging/policy.hpp"
#include "core/cadapt.hpp"
#include "core/report.hpp"
#include "obs/event.hpp"
#include "obs/recorder.hpp"
#include "obs/sink.hpp"
#include "profile/profile_io.hpp"
#include "robust/backoff.hpp"
#include "robust/cancel.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "robust/io.hpp"
#include "sched/worksteal.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "util/args.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace cadapt;

int usage() {
  std::cout <<
      R"(cadapt - cache-adaptive analysis toolkit (SPAA 2020 reproduction)

commands:
  gap         ratio of (a,b,c) on its worst-case profile M_{a,b}
  shuffle     ratio on the i.i.d. reshuffle of M_{a,b} (Theorem 1)
  iid         ratio on i.i.d. boxes from --dist
  perturb     ratio on size-perturbed M_{a,b} (X ~ U[0,--t])
  shift       ratio on cyclic-shifted M_{a,b}
  order       ratio on order-perturbed M_{a,b} (--matched = witness algo)
  analytic    exact Lemma 3 stopping-time table for --dist
  render      ASCII-render M_{a,b}(--n) (Figure 1)
  multiplies  count executions completed on one pass of M_{a,b}(n)
  replay      run (a,b,c) on a saved profile: --file F [--cycle] [--n N]
  save-worst  write M_{a,b}(--n) to --file F (one box per line)
  trace       instrumented run emitting a JSONL event trace plus summary
              tables (docs/OBSERVABILITY.md). Flags: --n N,
              --profile worst|iid (default worst; iid takes the --dist
              flags), --trials T (T >= 2 adds a Monte-Carlo stage with
              per-trial events), --no-timing (deterministic trace),
              --runs (aggregated run/bulk events instead of per-box —
              enables the bulk fast path, docs/PERF.md),
              --out F (JSONL to F; without it JSONL goes to stdout and
              the summary to stderr). With --sort NAME (see mc) the run
              is one real program on a cache-adaptive machine and the
              summary is the per-size-class paging table
              (docs/OBSERVABILITY.md)
  mc          robust Monte-Carlo campaign over --dist
              (docs/ROBUSTNESS.md). Flags: --n N, --trials T, --seed S,
              --retries R (extra reseeded attempts per failing trial),
              --retry-backoff-ms B (seeded exponential backoff between
              attempts; attempt 0 never sleeps), --fault site=rate,...
              --fault-seed S (sites: trial_body box_draw sink_write
              paging_step io_write io_short_write io_enospc io_fsync —
              the io_* sites hit the durable checkpoint/report writers),
              --deadline-ms D (cooperative mid-trial cancellation via a
              watchdog; must be >= 1),
              --box-budget B (explicit truncation, never a biased mean),
              --checkpoint F [--resume] [--checkpoint-every K],
              --errors-shown E (default 5), --per-box (force the
              per-box reference driver; bit-identical, for debugging).
              With --sort NAME (adaptive|funnel|merge2|mm:N|fw:N) the
              campaign runs a real program on a cache-adaptive machine:
              --sort-profile TOKEN (const:S|uniform:LO:HI|
              sawtooth:PEAK:CYCLES|mworst:A:B:N:SCALE, default const:64),
              --keys K --block B, --capture-trace (record the block-run
              trace once, replay per trial — docs/PERF.md),
              --per-access (per-word reference dispatch; bit-identical),
              --policy P (lru|clock|arc|car|assoc:W replacement policy,
              default lru — docs/PAGING.md),
              --tiers T2CAP:HIT:MISS[:NUM:DEN] (two-tier machine: tier-2
              capacity + asymmetric costs, optional tier-1 share). Both
              also apply to trace --sort. --workers N runs the trials on
              an N-thread pool (docs/PARALLEL.md) — summaries are
              identical to the sequential run
  parallel    seeded work-stealing parallel engine (docs/PARALLEL.md):
              cadapt parallel [--workers P] [--k K] [--carve
              static|lru|flush [--flush-period F]] [--epoch E] [--seed S]
              — deterministic P-worker execution with per-worker stats;
              --scale 1,2,4,8 [--json [--out F]] emits the
              BENCH_parallel.json scaling artifact — run
              'cadapt help parallel' for the model and flags
  sweep       declarative campaign from a manifest file (docs/SWEEPS.md):
              cadapt sweep <manifest> [--jobs J] [--workers W] [--out F]
              [--shards S --shard-index I] [--checkpoint F [--resume]]
              [--baseline report] [--no-timing] ... — run
              'cadapt help sweep' for the full flag list
  report      columnar report engine (docs/REPORT.md):
              cadapt report export|import|info|merge|bench ... —
              convert between the binary columnar container and the
              JSONL report (byte-identical export), inspect artifacts,
              merge shards columnar-natively, and benchmark the two
              encodings — run 'cadapt help report' for subcommands
  serve       long-lived multi-tenant campaign daemon (docs/SERVE.md):
              cadapt serve --spool DIR --socket PATH [--jobs J]
              [--slots N] [--stream-buffer L] [--no-timing] [--trace F]
              — run 'cadapt help serve' for the protocol and flags
  submit      submit a manifest to a running daemon:
              cadapt submit <manifest> --socket PATH [--client NAME]
              [--weight W] [--deadline-ms D] [--box-budget B]
              [--fault SPEC [--fault-seed S]] [--retries R]
  status      list daemon jobs: cadapt status --socket PATH [--job ID]
  cancel      cancel a daemon job: cadapt cancel --socket PATH --job ID
  results     stream a job's cells and fetch its report:
              cadapt results --socket PATH --job ID [--out F]
              [--progress]
  version     build provenance (version, git hash, compiler, flags);
              --json emits one machine-readable line (the daemon's
              hello payload)
  help [cmd]  this text, or detailed help for one command

exit codes:
  0 success   2 usage error   3 input error (bad/unreadable file)
  4 internal check failure    1 other

common flags:
  --a N --b N --c X         algorithm shape (default 8 4 1.0)
  --kmin K --kmax K         sweep n = b^kmin .. b^kmax (default 2..6)
  --trials T --seed S       Monte-Carlo controls (default 32, 42)
  --semantics optimistic|budgeted
  --unit-progress           operation-based progress (use for a <= b)
  --csv                     also emit CSV blocks
distribution flags (iid/analytic):
  --dist geometric|uniform-powers|bimodal|point|uniform-range
  --kdist K                 power range 0..K (geometric/uniform-powers)
  --small S --big B --pbig P    (bimodal)
  --size S                  (point)
  --lo L --hi H             (uniform-range)
)";
  return 0;
}

model::RegularParams params_from(const util::ArgParser& args) {
  model::RegularParams p;
  p.a = args.get_u64("a", 8);
  p.b = args.get_u64("b", 4);
  p.c = args.get_double("c", 1.0);
  p.validate();
  return p;
}

engine::BoxSemantics semantics_from(const util::ArgParser& args) {
  const std::string sem = args.get_string("semantics", "optimistic");
  if (sem == "budgeted") return engine::BoxSemantics::kBudgeted;
  if (sem == "optimistic") return engine::BoxSemantics::kOptimistic;
  throw util::UsageError("--semantics must be optimistic or budgeted");
}

// --deadline-ms in nanoseconds. Zero is rejected at parse time: it would
// cancel the campaign before the first trial, which is never what the
// caller meant (negatives already fail get_u64's unsigned parse).
std::uint64_t deadline_ns_from(const util::ArgParser& args) {
  if (!args.has("deadline-ms")) return 0;
  const std::uint64_t ms = args.get_u64("deadline-ms", 0);
  if (ms == 0) {
    throw util::UsageError(
        "--deadline-ms must be a positive integer (a zero deadline would "
        "cancel the campaign before the first trial)");
  }
  return ms * 1'000'000ull;
}

// --workers: intra-cell / trial parallelism (docs/PARALLEL.md). Zero is
// rejected at parse time like --deadline-ms: "no workers" is never what
// the caller meant ("unset" is spelled by omitting the flag). Returns 0
// when absent so sweep can distinguish "honor the manifest" from an
// explicit override.
std::uint64_t workers_from(const util::ArgParser& args) {
  if (!args.has("workers")) return 0;
  const std::uint64_t workers = args.get_u64("workers", 0);
  if (workers == 0) {
    throw util::UsageError(
        "--workers must be a positive integer (1 = the sequential engine; "
        "omit the flag to honor the manifest)");
  }
  return workers;
}

// --flush-period for the kPeriodicFlush carve policy (cadapt parallel).
// Unlike --deadline-ms, ZERO IS VALID and documented: it means "equal to
// the epoch" — one slice crash per --epoch boxes — the parallel analog
// of sched::SimOptions::flush_period, whose 0 means "equal to
// total_cache_blocks" (src/sched/shared_cache.hpp). Garbage and
// negatives are rejected at parse with the field named in the error
// (ArgParser::get_u64 throws UsageError -> exit 2).
std::uint64_t flush_period_from(const util::ArgParser& args) {
  return args.get_u64("flush-period", 0);
}

// --retry-backoff-ms: seeded exponential backoff between retry attempts
// (docs/ROBUSTNESS.md). Attempt 0 never sleeps, so the flag is free for
// campaigns that never fail.
robust::BackoffPolicy backoff_from(const util::ArgParser& args,
                                   std::uint64_t seed) {
  robust::BackoffPolicy policy;
  policy.base_ns = args.get_u64("retry-backoff-ms", 0) * 1'000'000ull;
  policy.seed = seed;
  return policy;
}

// "YES (deadline)" / "YES (budget)" / "YES (external)" — campaigns
// truncated by the box budget keep printing "(budget)", which existing
// scripts grep for.
std::string truncated_text(bool truncated, robust::CancelReason reason) {
  if (!truncated) return "no";
  if (reason == robust::CancelReason::kNone) {
    reason = robust::CancelReason::kBudget;
  }
  return std::string("YES (") + robust::cancel_reason_name(reason) + ")";
}

core::SweepOptions sweep_from(const util::ArgParser& args) {
  core::SweepOptions opts;
  opts.kmin = static_cast<unsigned>(args.get_u64("kmin", 2));
  opts.kmax = static_cast<unsigned>(args.get_u64("kmax", 6));
  opts.trials = args.get_u64("trials", 32);
  opts.seed = args.get_u64("seed", 42);
  opts.unit_progress = args.has("unit-progress");
  opts.semantics = semantics_from(args);
  return opts;
}

std::unique_ptr<profile::BoxDistribution> dist_from(
    const util::ArgParser& args, const model::RegularParams& p) {
  const std::string kind = args.get_string("dist", "geometric");
  const unsigned kdist = static_cast<unsigned>(
      args.get_u64("kdist", args.get_u64("kmax", 6)));
  if (kind == "geometric") {
    return std::make_unique<profile::GeometricPowers>(
        p.b, static_cast<double>(p.a), 0, kdist);
  }
  if (kind == "uniform-powers") {
    return std::make_unique<profile::UniformPowers>(p.b, 0, kdist);
  }
  if (kind == "bimodal") {
    return std::make_unique<profile::Bimodal>(args.get_u64("small", 4),
                                              args.get_u64("big", 4096),
                                              args.get_double("pbig", 0.02));
  }
  if (kind == "point") {
    return std::make_unique<profile::PointMass>(args.get_u64("size", 64));
  }
  if (kind == "uniform-range") {
    return std::make_unique<profile::UniformRange>(args.get_u64("lo", 1),
                                                   args.get_u64("hi", 256));
  }
  throw util::UsageError("unknown --dist '" + kind + "'");
}

// Shared --sort flag parsing for the program modes of `mc` and `trace`:
// builds the synthetic cell (program + box profile + seed) and the run
// options the campaign layer's program runner consumes. Flag values are
// usage errors, not input errors — the token grammar is re-thrown as
// UsageError.
struct ProgramArgs {
  campaign::Cell cell;
  campaign::CellRunOptions options;
};

ProgramArgs program_args_from(const util::ArgParser& args) {
  ProgramArgs pa;
  pa.cell.sort = args.get_string("sort", "");
  const std::string profile_token =
      args.get_string("sort-profile", "const:64");
  const std::string policy_token = args.get_string("policy", "");
  const std::string tiers_token = args.get_string("tiers", "");
  try {
    campaign::validate_program_token(pa.cell.sort, 0);
    pa.cell.profile = campaign::parse_sort_profile_token(profile_token);
    // Canonicalize the policy token so labels and checkpoint
    // fingerprints are spelling-independent; "" keeps the historical
    // plain-LRU machine (docs/PAGING.md).
    if (!policy_token.empty()) {
      pa.cell.policy = paging::parse_policy_token(policy_token).token();
    }
    if (!tiers_token.empty()) {
      pa.options.tiers = campaign::parse_tiers_token(tiers_token);
    }
  } catch (const util::ParseError& e) {
    throw util::UsageError(e.what());
  }
  pa.cell.seed = args.get_u64("seed", 42);
  pa.options.keys = args.get_u64("keys", 16384);
  pa.options.block = args.get_u64("block", 8);
  if (pa.options.keys < 2) throw util::UsageError("--keys must be >= 2");
  if (pa.options.block == 0) throw util::UsageError("--block must be >= 1");
  pa.options.per_access = args.has("per-access");
  pa.options.capture_trace = args.has("capture-trace");
  pa.options.timing = !args.has("no-timing");
  return pa;
}

// `trace --sort`: one instrumented program run with a PagingRecorder
// attached — per-size-class hit/miss/eviction tables instead of the
// ratio-workload event stream.
int run_trace_sort(const util::ArgParser& args) {
  const ProgramArgs pa = program_args_from(args);
  obs::PagingRecorder recorder;
  const engine::RunResult r = campaign::run_program_traced(
      pa.cell, pa.options, pa.cell.seed, recorder);
  std::cout << pa.cell.sort << " on " << pa.cell.profile.token
            << " boxes, keys = " << pa.options.keys << ", block = "
            << pa.options.block << ", seed = " << pa.cell.seed;
  if (!pa.cell.policy.empty()) std::cout << ", policy = " << pa.cell.policy;
  if (pa.options.tiers.set) {
    std::cout << ", tiers = " << pa.options.tiers.token();
  }
  std::cout << ":\n"
            << "  verified: " << (r.completed ? "yes" : "NO")
            << "  boxes: " << r.boxes << "  I/Os: "
            << util::format_double(r.ratio, 0) << "  I/Os per unit: "
            << util::format_double(r.unit_ratio, 3) << "\n";
  core::print_paging_summary(std::cout, recorder);
  return 0;
}

// `mc --sort`: robust Monte-Carlo over a real program (sort or matrix
// kernel) on a cache-adaptive machine — same containment/budget/
// checkpoint machinery as the ratio campaigns, with the paging fast path
// live (docs/PERF.md). --capture-trace records the program's block-run
// trace once and replays it per trial.
int run_mc_sort(const util::ArgParser& args) {
  const ProgramArgs pa = program_args_from(args);
  engine::McOptions opts;
  opts.trials = args.get_u64("trials", 64);
  opts.seed = pa.cell.seed;
  opts.max_attempts =
      static_cast<std::uint32_t>(args.get_u64("retries", 0)) + 1;
  opts.budget.deadline_ns = deadline_ns_from(args);
  opts.budget.max_total_boxes = args.get_u64("box-budget", 0);
  opts.backoff = backoff_from(args, opts.seed);
  opts.checkpoint_path = args.get_string("checkpoint", "");
  opts.checkpoint_every = args.get_u64("checkpoint-every", 256);
  opts.resume = args.has("resume");
  if (opts.resume && opts.checkpoint_path.empty()) {
    throw util::UsageError("--resume requires --checkpoint");
  }

  robust::FaultPlan plan;
  const std::string fault_spec = args.get_string("fault", "");
  if (!fault_spec.empty()) {
    plan = robust::FaultPlan::parse_spec(
        fault_spec, args.get_u64("fault-seed", opts.seed ^ 0xFA17ull));
    opts.faults = &plan;
  }
  std::optional<robust::FaultyIo> faulty_io;
  if (opts.faults != nullptr && robust::FaultyIo::plan_arms_io(plan)) {
    faulty_io.emplace(robust::system_io(), &plan);
    opts.io = &*faulty_io;
  }

  // Cooperative cancellation: the process-wide token fires on the first
  // SIGINT/SIGTERM (the second signal falls back to the default kill),
  // and a --deadline-ms watchdog shares it. Created BEFORE the runner
  // below — make_program_runner captures the options (and so the token
  // pointer) by value. Box budgets stay boundary-checked: their
  // truncation point must be deterministic.
  robust::install_signal_cancel();
  robust::CancelToken& cancel_token = robust::process_cancel_token();
  std::optional<robust::Watchdog> watchdog;
  if (opts.budget.deadline_ns != 0) {
    watchdog.emplace(cancel_token, opts.budget.deadline_ns);
  }
  opts.cancel = &cancel_token;

  // Checkpoint fingerprint: everything that shapes a trial's result.
  // --per-access is absent by design — it is bit-identical by contract,
  // so resuming across it must be allowed (that IS the contract test);
  // --capture-trace changes input seeding, so it is in.
  std::ostringstream cfg;
  cfg << "sort=" << pa.cell.sort << " profile=" << pa.cell.profile.token
      << " keys=" << pa.options.keys << " block=" << pa.options.block
      << " retries=" << (opts.max_attempts - 1) << " fault=" << plan.spec()
      << " fault_seed=" << (opts.faults != nullptr ? plan.seed() : 0);
  if (pa.options.capture_trace) cfg << " replay=1";
  // Only-when-set, like replay=1: historical checkpoints keep resuming.
  if (!pa.cell.policy.empty()) cfg << " policy=" << pa.cell.policy;
  if (pa.options.tiers.set) cfg << " tiers=" << pa.options.tiers.token();
  if (opts.backoff.enabled()) {
    cfg << " backoff_ms=" << (opts.backoff.base_ns / 1'000'000ull);
  }
  opts.config = cfg.str();

  // --workers N: run the trials on a private N-thread pool (the program
  // runner is thread-safe by contract). Results are keyed by trial
  // index, so the summary is identical to the sequential run.
  std::optional<util::ThreadPool> pool;
  if (args.has("workers")) {
    pool.emplace(static_cast<std::size_t>(workers_from(args)));
    opts.pool = &*pool;
  }

  campaign::CellRunOptions cell_options = pa.options;
  cell_options.faults = opts.faults;
  cell_options.cancel = opts.cancel;
  // Box-granular polling only when a deadline needs mid-cell latency; a
  // token armed merely for Ctrl-C keeps the fast paths live
  // (CellRunOptions::cancel_per_box).
  cell_options.cancel_per_box = opts.budget.deadline_ns != 0;
  const engine::McSummary s = engine::run_monte_carlo_robust(
      opts, campaign::make_program_runner(pa.cell, cell_options));

  std::cout << pa.cell.sort << " Monte-Carlo campaign, "
            << pa.cell.profile.token << " boxes, keys = " << pa.options.keys
            << ", block = " << pa.options.block;
  if (!pa.cell.policy.empty()) std::cout << ", policy = " << pa.cell.policy;
  if (pa.options.tiers.set) {
    std::cout << ", tiers = " << pa.options.tiers.token();
  }
  std::cout << (pa.options.capture_trace ? ", trace replay" : "") << ":\n"
            << "  trials: " << s.trials_run << " of " << s.trials_requested
            << " (verified " << s.ratio.count() << ", incomplete "
            << s.incomplete << ", failed " << s.failed << ")\n"
            << "  truncated: " << truncated_text(s.truncated, s.truncate_reason)
            << "\n";
  if (s.ratio.count() > 0) {
    std::cout << "  mean I/Os: " << util::format_double(s.ratio.mean(), 2)
              << " +- " << util::format_double(s.ratio.ci95(), 2)
              << "  mean I/Os per unit: "
              << util::format_double(s.unit_ratio.mean(), 4)
              << "  mean boxes: " << util::format_double(s.boxes.mean(), 2)
              << "\n";
  }
  const std::uint64_t shown =
      std::min<std::uint64_t>(s.errors.size(), args.get_u64("errors-shown", 5));
  for (std::uint64_t i = 0; i < shown; ++i) {
    const robust::TrialError& e = s.errors[i];
    std::cout << "  error: trial " << e.trial << " seed " << e.seed
              << " attempts " << e.attempts << " ["
              << robust::error_category_name(e.category) << "] " << e.what
              << "\n";
  }
  if (s.errors.size() > shown) {
    std::cout << "  ... " << (s.errors.size() - shown) << " more errors\n";
  }
  return 0;
}

// `trace`: run the engine with the observability layer attached, emit the
// JSONL event stream, then *re-parse every emitted line* and check the
// conservation invariant (Σ progress + Σ scan == problem units) against
// the run's own aggregates. The trace a user diffs is thereby known to be
// well-formed and complete — tests/CMakeLists.txt smoke-tests the final
// "all lines parse; conservation OK" line.
int run_trace(const util::ArgParser& args, const model::RegularParams& p) {
  if (args.has("sort")) return run_trace_sort(args);
  const std::uint64_t n = args.get_u64(
      "n", util::ipow(p.b, static_cast<unsigned>(args.get_u64("kmax", 6))));
  if (!util::is_power_of(n, p.b)) {
    throw util::UsageError("--n must be a power of b; n=" + std::to_string(n));
  }
  const std::uint64_t trials = args.get_u64("trials", 1);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::string out_path = args.get_string("out", "");
  const std::string profile_kind = args.get_string("profile", "worst");
  const engine::BoxSemantics semantics = semantics_from(args);
  const std::string sem = args.get_string("semantics", "optimistic");
  const auto dist = dist_from(args, p);

  obs::MemorySink sink;

  // Stage 1: one fully instrumented execution (per-box events).
  std::unique_ptr<profile::BoxSource> source;
  if (profile_kind == "worst") {
    // Cycle M_{a,b}(n) so the run completes for every parameter set.
    source = std::make_unique<profile::CyclingSource>([&p, n] {
      return std::make_unique<profile::WorstCaseSource>(p.a, p.b, n);
    });
  } else if (profile_kind == "iid") {
    source = std::make_unique<profile::DistributionSource>(*dist,
                                                           util::Rng(seed));
  } else {
    throw util::UsageError("--profile must be worst or iid");
  }
  // --runs swaps per-box events for aggregated run/bulk events, which
  // also re-enables the engine's bulk fast path (docs/PERF.md); the
  // conservation sums below hold either way.
  const bool runs_mode = args.has("runs");
  obs::ExecRecorder exec_rec(&sink, runs_mode ? obs::BoxGranularity::kRuns
                                              : obs::BoxGranularity::kBoxes);
  const engine::RunResult r =
      engine::run_regular(p, n, *source, engine::ScanPlacement::kEnd,
                          /*max_boxes=*/UINT64_C(1) << 40,
                          /*adversary_seed=*/0, semantics, &exec_rec);

  // Stage 2 (--trials >= 2): Monte-Carlo over --dist with per-trial events.
  obs::McRecorder mc_rec(&sink, /*record_timing=*/!args.has("no-timing"));
  const bool ran_mc = trials >= 2;
  engine::McSummary mc;
  if (ran_mc) {
    engine::McOptions opts;
    opts.trials = trials;
    opts.seed = seed;
    opts.semantics = semantics;
    opts.recorder = &mc_rec;
    mc = engine::run_monte_carlo_iid(p, n, *dist, opts);
  }

  // Serialize, then validate what was serialized: every line must re-parse
  // to the event it came from, and the per-box stream must sum to the
  // run's aggregates.
  std::vector<std::string> lines;
  lines.reserve(sink.events().size());
  std::uint64_t box_events = 0, trial_events = 0;
  std::uint64_t sum_progress = 0, sum_scan = 0;
  for (const auto& event : sink.events()) {
    lines.push_back(obs::to_jsonl(event));
    obs::Event back;
    std::string error;
    if (!obs::parse_jsonl(lines.back(), &back, &error))
      throw util::CheckError("trace line failed to parse: " + error);
    if (!(back == event))
      throw util::CheckError("trace line did not round-trip: " + lines.back());
    if (event.type == "box") {
      ++box_events;
      sum_progress += event.u64_or("progress", 0);
      sum_scan += event.u64_or("scan", 0);
    } else if (event.type == "runs") {
      box_events += event.u64_or("count", 0);
      sum_progress += event.u64_or("progress", 0);
      sum_scan += event.u64_or("scan", 0);
    } else if (event.type == "bulk") {
      box_events += event.u64_or("boxes", 0);
      sum_progress += event.u64_or("progress", 0);
      sum_scan += event.u64_or("scan", 0);
    } else if (event.type == "trial") {
      ++trial_events;
    }
  }
  CADAPT_CHECK_MSG(box_events == r.boxes && box_events == exec_rec.boxes(),
                   "box events " << box_events << " != boxes " << r.boxes);
  CADAPT_CHECK_MSG(sum_progress == r.leaves &&
                       sum_progress == exec_rec.total_progress(),
                   "progress sum " << sum_progress << " != leaves "
                                   << r.leaves);
  CADAPT_CHECK_MSG(sum_scan == exec_rec.total_scan_advance(),
                   "scan sum " << sum_scan << " != aggregate "
                               << exec_rec.total_scan_advance());
  const std::uint64_t units = model::problem_units(p, n);
  CADAPT_CHECK_MSG(!r.completed || sum_progress + sum_scan == units,
                   "conservation: progress " << sum_progress << " + scan "
                                             << sum_scan << " != units "
                                             << units);
  CADAPT_CHECK_MSG(trial_events == (ran_mc ? trials : 0),
                   "trial events " << trial_events << " != trials");

  // Route the streams: JSONL to --out (summary to stdout), or JSONL to
  // stdout (summary to stderr) so `cadapt trace | jq` stays clean.
  std::ostream* summary_os = &std::cout;
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    if (!file) throw util::IoError("cannot open --out " + out_path);
    for (const auto& line : lines) file << line << '\n';
  } else {
    for (const auto& line : lines) std::cout << line << '\n';
    summary_os = &std::cerr;
  }

  *summary_os << p.name() << " on " << profile_kind << " profile, n = " << n
              << ", " << sem << " semantics:\n"
              << "  completed: " << (r.completed ? "yes" : "NO")
              << "  boxes: " << r.boxes
              << "  ratio: " << util::format_double(r.ratio, 3) << "\n";
  core::print_trace_summary(*summary_os, exec_rec);
  if (ran_mc) {
    *summary_os << "\nMonte-Carlo stage (" << trials << " trials, "
                << dist->name() << "):\n";
    core::print_trial_summary(*summary_os, mc_rec);
    *summary_os << "mean ratio: " << util::format_double(mc.ratio.mean(), 3)
                << "  incomplete: " << mc.incomplete << "\n";
  }
  *summary_os << lines.size()
              << " events; all lines parse; conservation OK\n";
  return 0;
}

// `mc`: a robust Monte-Carlo campaign (docs/ROBUSTNESS.md) — contained
// per-trial failures, bounded retry-with-reseed, deterministic fault
// injection, explicit budget truncation, and checkpoint/resume. The
// summary never hides a degradation: failed/truncated are always printed.
int run_mc(const util::ArgParser& args, const model::RegularParams& p) {
  if (args.has("sort")) return run_mc_sort(args);
  if (args.has("capture-trace")) {
    throw util::UsageError("--capture-trace requires --sort");
  }
  if (args.has("per-access")) {
    throw util::UsageError("--per-access requires --sort");
  }
  const std::uint64_t n = args.get_u64(
      "n", util::ipow(p.b, static_cast<unsigned>(args.get_u64("kmax", 6))));
  if (!util::is_power_of(n, p.b)) {
    throw util::UsageError("--n must be a power of b; n=" + std::to_string(n));
  }
  engine::McOptions opts;
  opts.trials = args.get_u64("trials", 64);
  opts.seed = args.get_u64("seed", 42);
  opts.semantics = semantics_from(args);
  opts.per_box = args.has("per-box");
  opts.max_attempts =
      static_cast<std::uint32_t>(args.get_u64("retries", 0)) + 1;
  opts.budget.deadline_ns = deadline_ns_from(args);
  opts.budget.max_total_boxes = args.get_u64("box-budget", 0);
  opts.backoff = backoff_from(args, opts.seed);
  opts.checkpoint_path = args.get_string("checkpoint", "");
  opts.checkpoint_every = args.get_u64("checkpoint-every", 256);
  opts.resume = args.has("resume");
  if (opts.resume && opts.checkpoint_path.empty()) {
    throw util::UsageError("--resume requires --checkpoint");
  }

  robust::FaultPlan plan;
  const std::string fault_spec = args.get_string("fault", "");
  if (!fault_spec.empty()) {
    plan = robust::FaultPlan::parse_spec(
        fault_spec, args.get_u64("fault-seed", opts.seed ^ 0xFA17ull));
    opts.faults = &plan;
  }
  std::optional<robust::FaultyIo> faulty_io;
  if (opts.faults != nullptr && robust::FaultyIo::plan_arms_io(plan)) {
    faulty_io.emplace(robust::system_io(), &plan);
    opts.io = &*faulty_io;
  }

  // The process-wide SIGINT/SIGTERM token, shared with a --deadline-ms
  // watchdog when one is armed. Created BEFORE run_monte_carlo_iid
  // builds its runner from opts (the runner captures the token pointer
  // by value). Box budgets stay boundary-checked — no watchdog for them
  // (see run_mc_sort).
  robust::install_signal_cancel();
  robust::CancelToken& cancel_token = robust::process_cancel_token();
  std::optional<robust::Watchdog> watchdog;
  if (opts.budget.deadline_ns != 0) {
    watchdog.emplace(cancel_token, opts.budget.deadline_ns);
  }
  opts.cancel = &cancel_token;

  const auto dist = dist_from(args, p);
  // Campaign fingerprint for the checkpoint header: everything that
  // shapes a trial besides (trials, seed). A resume with different
  // parameters must be refused, not silently blended.
  std::ostringstream cfg;
  cfg << p.name() << " n=" << n << " dist=" << dist->name()
      << " sem=" << args.get_string("semantics", "optimistic")
      << " retries=" << (opts.max_attempts - 1) << " fault=" << plan.spec()
      << " fault_seed=" << (opts.faults != nullptr ? plan.seed() : 0);
  // Only-when-set: historical checkpoints keep resuming. (Backoff never
  // changes a trial's RESULT, but it changes the persisted backoff_ns
  // schedule, so blending schedules across resumes is refused.)
  if (opts.backoff.enabled()) {
    cfg << " backoff_ms=" << (opts.backoff.base_ns / 1'000'000ull);
  }
  opts.config = cfg.str();

  // --workers N: a private N-thread pool for the trials; summaries are
  // deterministic across pool sizes (trial-index-keyed aggregation).
  std::optional<util::ThreadPool> pool;
  if (args.has("workers")) {
    pool.emplace(static_cast<std::size_t>(workers_from(args)));
    opts.pool = &*pool;
  }

  const engine::McSummary s = engine::run_monte_carlo_iid(p, n, *dist, opts);

  std::cout << p.name() << " Monte-Carlo campaign, n = " << n << ", "
            << dist->name() << ":\n"
            << "  trials: " << s.trials_run << " of " << s.trials_requested
            << " (completed " << s.ratio.count() << ", incomplete "
            << s.incomplete << ", failed " << s.failed << ")\n";
  if (s.incomplete > 0) {
    // Say WHY trials were cut off: the box cap is a tunable, an exhausted
    // source is a workload property.
    std::cout << "  incomplete breakdown: " << s.capped << " hit the box cap, "
              << (s.incomplete - s.capped) << " exhausted the source\n";
  }
  std::cout << "  truncated: "
            << truncated_text(s.truncated, s.truncate_reason) << "\n";
  if (s.ratio.count() > 0) {
    std::cout << "  mean ratio: " << util::format_double(s.ratio.mean(), 4)
              << " +- " << util::format_double(s.ratio.ci95(), 4)
              << "  mean boxes: " << util::format_double(s.boxes.mean(), 2)
              << "\n";
  }
  const std::uint64_t shown =
      std::min<std::uint64_t>(s.errors.size(), args.get_u64("errors-shown", 5));
  for (std::uint64_t i = 0; i < shown; ++i) {
    const robust::TrialError& e = s.errors[i];
    std::cout << "  error: trial " << e.trial << " seed " << e.seed
              << " attempts " << e.attempts << " ["
              << robust::error_category_name(e.category) << "] " << e.what
              << "\n";
  }
  if (s.errors.size() > shown) {
    std::cout << "  ... " << (s.errors.size() - shown) << " more errors\n";
  }
  return 0;
}

// Detailed per-command help for `cadapt help <command>`. Falls back to
// the top-level usage text for commands without a dedicated page.
int help_for(const std::string& cmd) {
  if (cmd == "sweep") {
    std::cout <<
        R"(cadapt sweep - run a declarative experiment campaign (docs/SWEEPS.md)

usage:
  cadapt sweep <manifest> [flags]        run (a shard of) the campaign
  cadapt sweep --merge <report>... [flags]   merge shard reports

The manifest (key=value lines; see bench/manifests/ and docs/SWEEPS.md)
expands into a deterministic cell grid: algorithm x profile x size, each
cell running --trials seeded Monte-Carlo trials. Sort-workload manifests
may add a replacement-policy axis (policies = lru clock arc car assoc:W)
and a two-tier machine (tiers = T2CAP:HIT:MISS[:NUM:DEN]) — both enter
the fingerprint only when present (docs/PAGING.md). The report written to
--out is a pure function of the manifest — bit-identical across --jobs
values, shard splits, and kill + --resume (pass --no-timing to zero the
wall clocks too).

execution flags:
  --jobs J              worker threads (default: hardware concurrency)
  --workers W           intra-cell trial parallelism for sort cells
                        (docs/PARALLEL.md): overrides the manifest's
                        `workers` key; the report bytes never depend on
                        it (trials land at their index). W >= 1
  --out F               report path (default BENCH_sweep.json)
  --format jsonl|binary report encoding (default jsonl; binary is the
                        columnar container of docs/REPORT.md —
                        `cadapt report export` recovers the exact JSONL
                        bytes). --merge and --baseline accept either
                        encoding, sniffed per file; an all-binary merge
                        stays columnar end to end
  --shards S --shard-index I   run only cells with index % S == I;
                        merge the shard reports with --merge afterwards
  --checkpoint F        record finished cells; a killed sweep resumes
                        with --resume, losing at most the cells in flight
  --resume              continue from --checkpoint (header must match)
  --no-timing           zero wall_ms/wall_ns for bit-identical artifacts
  --per-box             force the per-box reference driver in every trial;
                        the default bulk path writes a byte-identical
                        report (docs/PERF.md), so this is for differential
                        testing and debugging
  --per-access          force per-word paging dispatch in sort-workload
                        trials (disable the hot-block fast path); also
                        byte-identical by contract (docs/PERF.md)
  --capture-trace       sort workloads: set the manifest's trace_replay
                        from the command line — record each cell's
                        block-run trace once, replay it per trial
                        (changes the config_hash; docs/PERF.md)
  --trace F             JSONL telemetry (completion order) to F

robustness flags (docs/ROBUSTNESS.md):
  --retries R           extra reseeded attempts per failing trial
  --retry-backoff-ms B  seeded exponential backoff between attempts
                        (deterministic jitter; attempt 0 never sleeps)
  --fault site=rate,... --fault-seed S    deterministic fault injection;
                        the io_* sites (io_write io_short_write io_enospc
                        io_fsync) hit the durable checkpoint and report
                        writers — a failed commit exits 3 and leaves the
                        previous artifact intact
  --deadline-ms D       wall-clock deadline (>= 1): a watchdog cancels
                        stuck cells MID-cell, the report says
                        TRUNCATED (deadline)
  --box-budget B        total-box budget, checked at cell boundaries:
                        skip remaining cells, TRUNCATED (budget) — never
                        a silent bias

Checkpoints and reports are durably committed (write + fsync + atomic
rename for reports): a kill -9 mid-run loses at most the cells in
flight, and --resume reproduces the uninterrupted report byte-for-byte
(tools/chaos_sweep.sh drills exactly this).

baseline gating:
  --baseline F          compare against a stored report of the SAME
                        campaign; exit 4 if any cell regressed
                        (bootstrap CIs disjoint AND mean up > --gate-rel)
  --gate-rel X          relative slowdown floor (default 0.05)
  --gate-inject X       multiply current samples by X first — a seeded
                        rehearsal proving the gate can fail
)";
    return 0;
  }
  if (cmd == "parallel") {
    std::cout <<
        R"(cadapt parallel - seeded work-stealing parallel engine (docs/PARALLEL.md)

usage:
  cadapt parallel [flags]                one deterministic P-worker run
  cadapt parallel --scale 1,2,4,8 [--json [--out F]]   scaling artifact

The recursion tree of an (a,b,c)-regular execution is pre-split into
subtree + scan tasks on per-worker Chase-Lev deques; each global machine
box is carved into per-worker cache slices by an E15 allocation policy,
and every worker feeds its emergent profile through the inner-square
decomposition into its own local engine. Steals resolve serially at
epoch barriers with victims drawn from hash(seed, worker, steal_index),
so the whole result — steal counts included — is a pure function of the
flags: same seed + same P = bit-identical output, and --workers 1 is
byte-identical to the sequential engine.

engine flags:
  --a N --b N --c X     algorithm shape (default 8 4 1.0)
  --k K                 problem size n = b^K (default 6)
  --workers P           simulated workers (default 4; P >= 1)
  --carve static|lru|flush   how each global box is carved into slices
                        (the E15 shared-cache allocation policies;
                        default static = equal shares)
  --flush-period F      carve = flush only: slices crash to 1 block
                        every F global boxes. 0 (the default) means
                        "equal to the epoch" — one crash per --epoch
                        boxes — mirroring the shared-cache simulator,
                        where flush_period = 0 means "equal to
                        total_cache_blocks"
  --epoch E             boxes between steal barriers (default 64, >= 1)
  --split-depth D       pre-split depth (default 0 = auto: a^D >= 4P)
  --seed S              steal-schedule + box-stream seed (default 42)
  --box-lo L --box-hi H i.i.d. uniform global box sizes (default 4..64)
  --boxes B             global box cap
  --placement end|interleaved|adversary   scan placement
  --semantics optimistic|budgeted

--scale mode adds one real adaptive-sort cell (trace replay cannot
cover it — the access stream depends on the live box profile) run
through the concurrent trial pool at every P:
  --scale LIST          worker counts, e.g. 1,2,4,8
  --sort NAME           program (default adaptive)
  --sort-profile TOKEN  box profile (default uniform:4:64)
  --keys K --block B --trials T   cell shape (default 4096, 8, 8)
  --no-timing           zero the wall-clock fields (deterministic bytes)
  --json [--out F]      emit JSONL (parallel_env + one parallel_scale
                        line per P) to stdout or F

Reported per P: sim_speedup = rounds_1/rounds_P (a round — one global
machine box — is the model's unit of time), steals vs the
Cole-Ramachandran-style bound P * (split_depth + k), the capacity
overhead extra_miss_ratio = (P * rounds_P - rounds_1)/rounds_1, and the
cell's wall-clock speedup with the machine's core count for provenance.
)";
    return 0;
  }
  if (cmd == "report") {
    std::cout <<
        R"(cadapt report - columnar report engine (docs/REPORT.md)

usage:
  cadapt report export <report> [--out F]     binary -> JSONL (exact bytes)
  cadapt report import <report> [--out F]     JSONL -> binary (default
                                              <report>.bin)
  cadapt report info <report>                 header, dictionary, and
                                              section summary
  cadapt report merge <report>... [--out F] [--format jsonl|binary]
                                              columnar-native shard merge
                                              (default BENCH_sweep.bin)
  cadapt report bench [--cells N] [--trials T] [--seed S] [--dir D]
                      [--out F] [--gate F] [--keep]
                                              columnar-vs-JSONL benchmark

The binary container (magic CADAPTCR) stores the campaign as
struct-of-arrays columns: fixed-width numeric columns per cell field,
interned dictionaries for the four string axes, and one contiguous
samples arena — with a CRC-32-checked section table committed by the
same atomic-rename protocol as every other artifact. Loading it is a
few large reads instead of millions of per-line parses.

The JSONL report stays the interchange format: `export` renders the
EXACT bytes `cadapt sweep` writes for the same campaign (same event
encoders), so cmp-based bit-identity gates hold across a binary round
trip. Every subcommand accepts either encoding, sniffed by magic.

bench: synthesizes a seeded ~N-cell campaign, runs write/load/merge
through both encodings (columnar first — peak RSS is a process
high-water mark), prints throughput (cells/s), bytes/cell and peak RSS,
and emits JSONL (report_bench / report_bench_path / report_bench_summary)
to --out. --gate F reads a report_bench_gate line
({"type":"report_bench_gate","merge_load_speedup_min":...,
"rss_ratio_min":...}) and exits 4 when a ratio falls below its floor
(tools/regen_bench_report.sh drives this; scratch shards go to --dir).
)";
    return 0;
  }
  if (cmd == "version") {
    std::cout << "cadapt version - print the provenance baked into this "
                 "binary\n\nThe same fields are embedded verbatim in every "
                 "sweep report's sweep_env line,\nso a report always "
                 "answers \"which build measured this?\".\n\n--json emits "
                 "the fields as one JSONL line plus the serve protocol\n"
                 "and report versions — the exact payload a running "
                 "daemon answers `hello`\nwith, so scripts version-gate "
                 "offline and on-line identically.\n";
    return 0;
  }
  if (cmd == "serve" || cmd == "submit" || cmd == "status" ||
      cmd == "cancel" || cmd == "results") {
    std::cout << R"(cadapt serve - long-lived multi-tenant campaign daemon

  cadapt serve --spool DIR --socket PATH [flags]

The daemon accepts sweep manifests over a Unix-domain socket, schedules
their cells across one shared thread pool with weighted round-robin
fair-share across clients, and streams results back incrementally
(docs/SERVE.md). Every accepted job is durably spooled; a SIGKILL'd
daemon restarted on the same --spool resumes every unfinished job from
its cell-granular checkpoint, and the final report is byte-identical to
one-shot `cadapt sweep` on the same manifest (run both with
--no-timing to zero wall clocks).

serve flags:
  --spool DIR           durable job state (required; created if missing)
  --socket PATH         Unix-domain socket to listen on (required)
  --jobs J              worker threads (default: hardware concurrency)
  --slots N             max in-flight cells (default: pool size)
  --stream-buffer L     per-job result buffer before backpressure
                        pauses that job's dispatch (default 64 lines)
  --no-timing           zero wall clocks (byte-identity artifacts)
  --trace F             JSONL telemetry: job_accepted / cell_scheduled /
                        job_done in decision order

client subcommands (all take --socket PATH):
  submit <manifest>     [--client NAME] [--weight W] [--deadline-ms D]
                        [--box-budget B] [--fault SPEC [--fault-seed S]]
                        [--retries R] — prints the job_accepted line
  status [--job ID]     one job_status line per job
  cancel --job ID       cooperative cancel; a truncated report is still
                        written once in-flight cells unwind
  results --job ID      stream sweep_cell lines ([--progress] prints
                        them to stderr), then write the report bytes to
                        stdout or --out F — cmp-identical to the
                        daemon's durable artifact

Exit codes mirror the error lines the daemon answers with: 2 usage,
3 input (unknown job, malformed manifest), 4 internal.
)";
    return 0;
  }
  return usage();
}

// ---- parallel (docs/PARALLEL.md) ------------------------------------

sched::Policy carve_from(const util::ArgParser& args) {
  const std::string carve = args.get_string("carve", "static");
  if (carve == "static") return sched::Policy::kStaticEqual;
  if (carve == "lru") return sched::Policy::kGlobalLru;
  if (carve == "flush") return sched::Policy::kPeriodicFlush;
  throw util::UsageError("--carve must be static, lru, or flush");
}

engine::ScanPlacement placement_from(const util::ArgParser& args) {
  const std::string placement = args.get_string("placement", "end");
  if (placement == "end") return engine::ScanPlacement::kEnd;
  if (placement == "interleaved") return engine::ScanPlacement::kInterleaved;
  if (placement == "adversary") {
    return engine::ScanPlacement::kAdversaryMatched;
  }
  throw util::UsageError(
      "--placement must be end, interleaved, or adversary");
}

std::vector<std::uint64_t> scale_from(const util::ArgParser& args) {
  std::vector<std::uint64_t> out;
  const std::string spec = args.get_string("scale", "");
  if (spec.empty()) return out;
  std::istringstream is(spec);
  std::string token;
  while (std::getline(is, token, ',')) {
    std::uint64_t workers = 0;
    const auto [ptr, ec] = std::from_chars(
        token.data(), token.data() + token.size(), workers);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        workers == 0) {
      throw util::UsageError(
          "--scale expects a comma-separated list of positive worker "
          "counts, got '" + token + "'");
    }
    out.push_back(workers);
  }
  return out;
}

// `parallel`: drive the seeded work-stealing engine (docs/PARALLEL.md).
// Without --scale: one deterministic P-worker execution with per-worker
// stats and the conservation check. With --scale "1,2,4,8": the
// BENCH_parallel.json artifact — per-P simulated speedup (rounds_1 /
// rounds_P; round = one global machine box, the model's unit of time),
// measured steals against the Cole–Ramachandran-style O(P * depth)
// bound, the capacity overhead standing in for CR's extra-miss term,
// and the wall clock of a real adaptive-sort cell (the program trace
// replay cannot cover) run through the concurrent trial pool.
int run_parallel_cmd(const util::ArgParser& args) {
  const model::RegularParams p = params_from(args);
  const unsigned k = static_cast<unsigned>(args.get_u64("k", 6));
  const std::uint64_t n = util::ipow(p.b, k);

  sched::ParallelOptions popt;
  popt.workers = args.has("workers") ? workers_from(args) : 4;
  popt.seed = args.get_u64("seed", 42);
  popt.carve = carve_from(args);
  popt.flush_period = flush_period_from(args);
  popt.epoch_rounds = args.get_u64("epoch", 64);
  if (popt.epoch_rounds == 0) throw util::UsageError("--epoch must be >= 1");
  popt.split_depth = args.get_u64("split-depth", 0);
  popt.max_boxes = args.get_u64("boxes", UINT64_C(1) << 40);
  popt.placement = placement_from(args);
  popt.semantics = semantics_from(args);
  popt.adversary_seed = args.get_u64("adversary-seed", 0);

  // The box stream: i.i.d. uniform sizes, re-seeded identically for
  // every worker count so each P sees the same global stream.
  const std::uint64_t box_lo = args.get_u64("box-lo", 4);
  const std::uint64_t box_hi = args.get_u64("box-hi", 64);
  if (box_lo == 0 || box_hi < box_lo) {
    throw util::UsageError("--box-lo/--box-hi must satisfy 1 <= lo <= hi");
  }
  const profile::UniformRange dist(box_lo, box_hi);
  const auto fresh_source = [&dist, &popt] {
    return profile::DistributionSource(dist,
                                       util::Rng(popt.seed ^ 0xB0c5ull));
  };

  const std::vector<std::uint64_t> scale = scale_from(args);
  if (scale.empty()) {
    auto source = fresh_source();
    const sched::ParallelResult r =
        sched::parallel_run_to_completion(p, n, source, popt);
    std::cout << p.name() << ", n = " << n << ", P = " << popt.workers
              << ", carve = " << args.get_string("carve", "static")
              << ", seed = " << popt.seed << ":\n"
              << "  completed: " << (r.merged.completed ? "yes" : "NO")
              << "  rounds: " << r.rounds << "  epochs: " << r.epochs
              << "  split depth: " << r.split_depth << "  tasks: "
              << r.tasks_spawned << "\n"
              << "  steals: " << r.steals << " (failed " << r.failed_steals
              << ", splits " << r.splits << ")\n"
              << "  ratio: " << util::format_double(r.merged.ratio, 3)
              << "  unit ratio: "
              << util::format_double(r.merged.unit_ratio, 3) << "\n";
    util::Table table({"worker", "boxes", "idle", "progress", "scan",
                       "tasks", "steals", "blocks"});
    for (std::size_t w = 0; w < r.workers.size(); ++w) {
      const sched::WorkerStats& s = r.workers[w];
      table.row()
          .cell(std::uint64_t{w})
          .cell(s.boxes)
          .cell(s.idle_boxes)
          .cell(s.progress)
          .cell(s.scan_advance)
          .cell(s.tasks_run)
          .cell(s.steals)
          .cell(s.slice_blocks);
    }
    table.print(std::cout);
    const std::uint64_t units = model::problem_units(p, n);
    std::cout << "conservation: " << r.units_done() << " of " << units
              << " units"
              << (r.merged.completed && r.units_done() == units ? " OK"
                                                                : "")
              << "\n";
    return 0;
  }

  // --scale mode: the BENCH_parallel.json artifact.
  const bool timing = !args.has("no-timing");
  campaign::Cell cell;
  cell.sort = args.get_string("sort", "adaptive");
  const std::string cell_profile =
      args.get_string("sort-profile", "uniform:4:64");
  try {
    campaign::validate_program_token(cell.sort, 0);
    cell.profile = campaign::parse_sort_profile_token(cell_profile);
  } catch (const util::ParseError& e) {
    throw util::UsageError(e.what());
  }
  cell.seed = popt.seed;
  cell.trials = args.get_u64("trials", 8);
  campaign::CellRunOptions cell_options;
  cell_options.keys = args.get_u64("keys", 4096);
  cell_options.block = args.get_u64("block", 8);
  cell_options.timing = timing;

  const auto cell_wall_ns = [&cell, &cell_options,
                             timing](std::uint64_t workers) -> std::uint64_t {
    cell_options.workers = workers;
    if (!timing) {
      (void)campaign::run_cell(cell, cell_options);
      return 0;
    }
    const auto start = std::chrono::steady_clock::now();
    (void)campaign::run_cell(cell, cell_options);
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  // Baseline: the sequential engine and the sequential cell loop.
  sched::ParallelOptions base = popt;
  base.workers = 1;
  auto base_source = fresh_source();
  const sched::ParallelResult baseline =
      sched::parallel_run_to_completion(p, n, base_source, base);
  const std::uint64_t base_wall = cell_wall_ns(1);

  std::vector<obs::Event> lines;
  {
    obs::Event env("parallel_env");
    env.u64("version", 1)
        .str("algo", p.name())
        .u64("n", n)
        .u64("k", k)
        .str("carve", args.get_string("carve", "static"))
        .u64("epoch", popt.epoch_rounds)
        .u64("seed", popt.seed)
        .u64("box_lo", box_lo)
        .u64("box_hi", box_hi)
        .str("cell_sort", cell.sort)
        .str("cell_profile", cell_profile)
        .u64("cell_keys", cell_options.keys)
        .u64("cell_trials", cell.trials)
        .u64("cores", std::thread::hardware_concurrency());
    lines.push_back(env);
  }

  util::Table table({"P", "rounds", "sim speedup", "steals", "vs bound",
                     "extra-miss", "cell wall ms", "wall speedup"});
  for (const std::uint64_t workers : scale) {
    sched::ParallelOptions o = popt;
    o.workers = workers;
    auto source = fresh_source();
    const sched::ParallelResult r =
        sched::parallel_run_to_completion(p, n, source, o);
    CADAPT_CHECK_MSG(r.merged.completed,
                     "parallel run did not complete at P = " << workers
                                                             << " — raise "
                                                                "--boxes");
    const double sim_speedup = static_cast<double>(baseline.rounds) /
                               static_cast<double>(r.rounds);
    // CR-style extra-miss term: the capacity overhead of running on P
    // slices — worker-rounds consumed beyond the sequential count,
    // relative to it (docs/PARALLEL.md). Can be negative: the inner-
    // square decomposition sometimes packs slices better than one big
    // box.
    const double extra_miss =
        (static_cast<double>(workers) * static_cast<double>(r.rounds) -
         static_cast<double>(baseline.rounds)) /
        static_cast<double>(baseline.rounds);
    // Steal bound: O(P * depth) with depth = split depth + tree height.
    const std::uint64_t steal_bound = workers * (r.split_depth + k);
    const double vs_bound =
        steal_bound == 0 ? 0.0
                         : static_cast<double>(r.steals) /
                               static_cast<double>(steal_bound);
    const std::uint64_t wall = cell_wall_ns(workers);
    const double wall_speedup =
        (timing && wall != 0)
            ? static_cast<double>(base_wall) / static_cast<double>(wall)
            : 0.0;

    obs::Event ev("parallel_scale");
    ev.u64("workers", workers)
        .u64("rounds", r.rounds)
        .u64("epochs", r.epochs)
        .u64("steals", r.steals)
        .u64("failed_steals", r.failed_steals)
        .u64("splits", r.splits)
        .u64("split_depth", r.split_depth)
        .u64("tasks", r.tasks_spawned)
        .f64("sim_speedup", sim_speedup)
        .f64("extra_miss_ratio", extra_miss)
        .u64("steal_bound", steal_bound)
        .f64("steals_vs_bound", vs_bound)
        .u64("cell_wall_ns", wall)
        .f64("cell_wall_speedup", wall_speedup);
    lines.push_back(ev);

    table.row()
        .cell(workers)
        .cell(r.rounds)
        .cell(sim_speedup, 2)
        .cell(r.steals)
        .cell(vs_bound, 3)
        .cell(extra_miss, 3)
        .cell(static_cast<double>(wall) / 1e6, 1)
        .cell(wall_speedup, 2);
  }

  std::cout << p.name() << ", n = " << n << ", scale "
            << args.get_string("scale", "") << " (cell: " << cell.sort
            << " on " << cell_profile << ", " << cell_options.keys
            << " keys x " << cell.trials << " trials):\n";
  table.print(std::cout);

  if (args.has("json") || args.has("out")) {
    const std::string out_path = args.get_string("out", "");
    if (out_path.empty()) {
      for (const obs::Event& ev : lines) {
        std::cout << obs::to_jsonl(ev) << "\n";
      }
    } else {
      std::ofstream os(out_path);
      if (!os) throw util::IoError("cannot open --out " + out_path);
      for (const obs::Event& ev : lines) os << obs::to_jsonl(ev) << "\n";
      std::cout << "bench written to " << out_path << "\n";
    }
  }
  return 0;
}

// ---- report encodings (docs/REPORT.md) -----------------------------

enum class ReportFormat { kJsonl, kBinary };

ReportFormat report_format_from(const util::ArgParser& args) {
  const std::string format = args.get_string("format", "jsonl");
  if (format == "jsonl") return ReportFormat::kJsonl;
  if (format == "binary") return ReportFormat::kBinary;
  throw util::UsageError("--format must be jsonl or binary");
}

/// Load either encoding as a row report (binary sniffed by magic).
campaign::Report load_report_any(const std::string& path) {
  if (report::is_binary_report_file(path)) {
    return report::load_store_file(path).to_report();
  }
  return campaign::load_report_file(path);
}

/// Load either encoding as a columnar store.
report::CellStore load_store_any(const std::string& path) {
  if (report::is_binary_report_file(path)) {
    return report::load_store_file(path);
  }
  return report::CellStore::from_report(campaign::load_report_file(path));
}

int run_sweep_cmd(const util::ArgParser& args) {
  const std::vector<std::string>& pos = args.positionals();
  const std::string out_path = args.get_string("out", "BENCH_sweep.json");
  const ReportFormat format = report_format_from(args);

  // Shared by checkpoint writes and the final report commit, so a fault
  // plan arming the io_* sites exercises both (docs/ROBUSTNESS.md).
  // Function scope, not branch scope: the FaultyIo borrows the plan and
  // both must outlive the report commit at the bottom.
  robust::FaultPlan fault_plan;
  std::optional<robust::FaultyIo> faulty_io;
  robust::IoBackend* io = &robust::system_io();

  campaign::Report report;
  // Set on the all-binary merge path: cells stay columnar end to end
  // (load, merge, write) and a row Report is only materialized if the
  // baseline gate needs one.
  std::optional<report::CellStore> store;
  if (args.has("merge")) {
    // ArgParser pairs "--merge x.json" as flag + value, so the first
    // report path may arrive as the flag's value rather than a positional.
    std::vector<std::string> inputs;
    const std::string merge_value = args.get_string("merge", "");
    if (!merge_value.empty()) inputs.push_back(merge_value);
    inputs.insert(inputs.end(), pos.begin() + 1, pos.end());
    if (inputs.empty()) {
      throw util::UsageError("sweep --merge requires shard report paths");
    }
    const bool all_binary =
        std::all_of(inputs.begin(), inputs.end(),
                    [](const std::string& path) {
                      return report::is_binary_report_file(path);
                    });
    if (all_binary) {
      std::vector<report::CellStore> parts;
      parts.reserve(inputs.size());
      for (const std::string& path : inputs) {
        parts.push_back(report::load_store_file(path));
      }
      const std::size_t part_count = parts.size();
      store = report::CellStore::merge(std::move(parts));
      std::cout << "merged " << part_count << " shard reports ("
                << store->cell_count() << " cells)\n";
    } else {
      std::vector<campaign::Report> parts;
      parts.reserve(inputs.size());
      for (const std::string& path : inputs) {
        parts.push_back(load_report_any(path));
      }
      const std::size_t part_count = parts.size();
      report = campaign::merge_reports(std::move(parts));
      std::cout << "merged " << part_count << " shard reports ("
                << report.cells.size() << " cells)\n";
    }
  } else {
    if (pos.size() != 2) {
      throw util::UsageError(
          "sweep requires exactly one manifest path (or --merge)");
    }
    campaign::Manifest manifest = campaign::parse_manifest_file(pos[1]);
    // --capture-trace turns on the manifest's trace_replay from the
    // command line; it enters the fingerprint (" replay=1"), so the
    // report's config_hash changes — replay campaigns are a different
    // campaign (inputs are fixed per cell), never a silent substitute.
    if (args.has("capture-trace")) {
      if (manifest.workload != campaign::Workload::kSort) {
        throw util::UsageError("--capture-trace requires a sort-workload "
                               "manifest");
      }
      manifest.trace_replay = true;
    }
    const campaign::Plan plan = campaign::expand_plan(manifest);

    campaign::SweepOptions opts;
    opts.jobs = args.get_u64("jobs", 0);
    opts.workers = workers_from(args);
    opts.shards = args.get_u64("shards", 1);
    opts.shard_index = args.get_u64("shard-index", 0);
    opts.timing = !args.has("no-timing");
    opts.per_box = args.has("per-box");
    opts.per_access = args.has("per-access");
    opts.max_attempts =
        static_cast<std::uint32_t>(args.get_u64("retries", 0)) + 1;
    opts.budget.deadline_ns = deadline_ns_from(args);
    opts.budget.max_total_boxes = args.get_u64("box-budget", 0);
    opts.backoff = backoff_from(args, manifest.seed);
    opts.checkpoint_path = args.get_string("checkpoint", "");
    opts.resume = args.has("resume");
    if (opts.resume && opts.checkpoint_path.empty()) {
      throw util::UsageError("--resume requires --checkpoint");
    }

    // First SIGINT/SIGTERM cancels cooperatively: in-flight cells are
    // discarded, committed checkpoint cells survive, and a --resume
    // re-run completes bit-identically to an uninterrupted one. An
    // external token suppresses run_sweep's internal deadline watchdog,
    // so the CLI owns one on the same token when --deadline-ms is set;
    // the box-granular poll hook is armed only then (the hook forces
    // the generic replay path — SweepOptions::cancel_per_box).
    robust::install_signal_cancel();
    std::optional<robust::Watchdog> watchdog;
    if (opts.budget.deadline_ns != 0) {
      watchdog.emplace(robust::process_cancel_token(),
                       opts.budget.deadline_ns);
    }
    opts.cancel = &robust::process_cancel_token();
    opts.cancel_per_box = opts.budget.deadline_ns != 0;

    const std::string fault_spec = args.get_string("fault", "");
    if (!fault_spec.empty()) {
      fault_plan = robust::FaultPlan::parse_spec(
          fault_spec, args.get_u64("fault-seed", manifest.seed ^ 0xFA17ull));
      opts.faults = &fault_plan;
    }
    if (opts.faults != nullptr &&
        robust::FaultyIo::plan_arms_io(fault_plan)) {
      faulty_io.emplace(robust::system_io(), &fault_plan);
      io = &*faulty_io;
      opts.io = io;
    }

    std::ofstream trace_file;
    obs::JsonlSink trace_sink(trace_file);
    const std::string trace_path = args.get_string("trace", "");
    if (!trace_path.empty()) {
      trace_file.open(trace_path);
      if (!trace_file) {
        throw util::IoError("cannot open --trace " + trace_path);
      }
      opts.trace = &trace_sink;
    }

    report = campaign::run_sweep(plan, opts);
    std::cout << "sweep '" << report.name << "' (config "
              << report.config_hash << "): ran "
              << report.cells.size() << " of " << report.cells_total
              << " cells";
    if (opts.shards > 1) {
      std::cout << " (shard " << opts.shard_index << "/" << opts.shards
                << ")";
    }
    if (report.truncated) {
      robust::CancelReason reason = report.truncate_reason;
      if (reason == robust::CancelReason::kNone) {
        reason = robust::CancelReason::kBudget;
      }
      std::cout << ", TRUNCATED (" << robust::cancel_reason_name(reason)
                << ")";
    }
    std::cout << "\n";
  }

  std::uint64_t completed = 0, incomplete = 0, capped = 0, failed = 0;
  if (store.has_value()) {
    for (std::size_t row = 0; row < store->cell_count(); ++row) {
      completed += store->completed[row];
      incomplete += store->incomplete[row];
      capped += store->capped[row];
      failed += store->failed[row];
    }
  } else {
    for (const campaign::CellResult& cell : report.cells) {
      completed += cell.completed;
      incomplete += cell.incomplete;
      capped += cell.capped;
      failed += cell.failed;
    }
  }
  std::cout << "  trials: " << completed << " completed, " << incomplete
            << " incomplete, " << failed << " failed\n";
  if (incomplete > 0) {
    std::cout << "  incomplete breakdown: " << capped << " hit the box cap, "
              << (incomplete - capped) << " exhausted the source\n";
  }
  const bool have_fits =
      store.has_value() ? !store->fits.empty() : !report.fits.empty();
  if (have_fits) {
    util::Table table({"algo", "profile", "exponent", "expected", "r^2"});
    if (store.has_value()) {
      for (const report::FitRow& fit : store->fits) {
        table.row()
            .cell(store->algo_dict.token(fit.algo_id))
            .cell(store->profile_dict.token(fit.profile_id))
            .cell(fit.exponent, 3)
            .cell(fit.expected, 3)
            .cell(fit.r2, 4);
      }
    } else {
      for (const campaign::FitResult& fit : report.fits) {
        table.row()
            .cell(fit.algo)
            .cell(fit.profile)
            .cell(fit.exponent, 3)
            .cell(fit.expected, 3)
            .cell(fit.r2, 4);
      }
    }
    std::cout << "power-law fits (mean ~ scale * n^exponent):\n";
    table.print(std::cout);
  }
  if (format == ReportFormat::kBinary) {
    if (store.has_value()) {
      report::save_store_file(out_path, *store, *io);
    } else {
      report::save_store_file(out_path,
                              report::CellStore::from_report(report), *io);
    }
  } else if (store.has_value()) {
    store->export_report_file(out_path, *io);
  } else {
    campaign::write_report_file(out_path, report, *io);
  }
  std::cout << "report written to " << out_path << "\n";

  const std::string baseline_path = args.get_string("baseline", "");
  if (!baseline_path.empty()) {
    const campaign::Report baseline = load_report_any(baseline_path);
    if (store.has_value()) report = store->to_report();
    campaign::GateOptions gate_opts;
    gate_opts.rel_threshold = args.get_double("gate-rel", 0.05);
    gate_opts.inject_factor = args.get_double("gate-inject", 1.0);
    const campaign::GateResult verdict =
        campaign::gate_against_baseline(baseline, report, gate_opts);
    campaign::print_gate(std::cout, verdict, gate_opts);
    if (!verdict.passed()) return 4;
  }
  return 0;
}

// ---- report family (docs/REPORT.md) --------------------------------

/// High-water RSS of this process, in bytes (ru_maxrss is KiB on Linux).
/// Monotonic over the process lifetime, so phase peaks must be sampled
/// in the order the phases run (columnar first in the bench below).
std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

int run_report_export_cmd(const util::ArgParser& args) {
  const std::vector<std::string>& pos = args.positionals();
  if (pos.size() != 3) {
    throw util::UsageError("report export requires exactly one report path");
  }
  const report::CellStore store = load_store_any(pos[2]);
  const std::string out_path = args.get_string("out", "-");
  if (out_path == "-") {
    store.export_report_stream(std::cout);
  } else {
    store.export_report_file(out_path);
    std::cout << "exported " << store.cell_count() << " cells to "
              << out_path << "\n";
  }
  return 0;
}

int run_report_import_cmd(const util::ArgParser& args) {
  const std::vector<std::string>& pos = args.positionals();
  if (pos.size() != 3) {
    throw util::UsageError("report import requires exactly one report path");
  }
  const report::CellStore store = load_store_any(pos[2]);
  const std::string out_path = args.get_string("out", pos[2] + ".bin");
  report::save_store_file(out_path, store);
  std::cout << "imported " << store.cell_count() << " cells ("
            << store.samples.size() << " samples) to " << out_path << "\n";
  return 0;
}

int run_report_info_cmd(const util::ArgParser& args) {
  const std::vector<std::string>& pos = args.positionals();
  if (pos.size() != 3) {
    throw util::UsageError("report info requires exactly one report path");
  }
  const std::string& path = pos[2];
  const bool binary = report::is_binary_report_file(path);
  const report::CellStore store = load_store_any(path);
  std::cout << "format:      " << (binary ? "binary" : "jsonl") << " ("
            << std::filesystem::file_size(path) << " bytes)\n"
            << "campaign:    '" << store.name << "' (config "
            << store.config_hash << ", report version " << store.version
            << ")\n"
            << "cells:       " << store.cell_count() << " of "
            << store.cells_total;
  if (store.shards > 1) {
    std::cout << " (shard " << store.shard_index << "/" << store.shards
              << ")";
  }
  if (store.truncated) {
    std::cout << ", TRUNCATED ("
              << robust::cancel_reason_name(store.truncate_reason) << ")";
  }
  std::cout << "\n"
            << "samples:     " << store.samples.size() << "\n"
            << "dicts:       " << store.algo_dict.size() << " algo, "
            << store.profile_dict.size() << " profile, "
            << store.sort_dict.size() << " sort, "
            << store.policy_dict.size() << " policy\n"
            << "fits:        " << store.fits.size() << "\n"
            << "wall_ms:     " << store.wall_ms << "\n"
            << "env:         " << campaign::provenance_text(store.env)
            << "\n";
  return 0;
}

int run_report_merge_cmd(const util::ArgParser& args) {
  const std::vector<std::string>& pos = args.positionals();
  if (pos.size() < 3) {
    throw util::UsageError("report merge requires shard report paths");
  }
  std::vector<report::CellStore> parts;
  parts.reserve(pos.size() - 2);
  for (std::size_t i = 2; i < pos.size(); ++i) {
    parts.push_back(load_store_any(pos[i]));
  }
  const std::size_t part_count = parts.size();
  const report::CellStore merged = report::CellStore::merge(std::move(parts));
  const std::string out_path = args.get_string("out", "BENCH_sweep.bin");
  // Unlike sweep, the columnar family defaults to its native container.
  const std::string fmt = args.get_string("format", "binary");
  if (fmt == "jsonl") {
    merged.export_report_file(out_path);
  } else if (fmt == "binary") {
    report::save_store_file(out_path, merged);
  } else {
    throw util::UsageError("--format must be jsonl or binary");
  }
  std::cout << "merged " << part_count << " shard reports ("
            << merged.cell_count() << " cells) to " << out_path << "\n";
  return 0;
}

// ---- report bench (BENCH_report.json) ------------------------------

/// Deterministic synthetic cell for the report bench: a pure function of
/// (seed, index, trials). Ratio cells only (algo set, sort empty) so the
/// merge recomputes power-law fits, exercising the full pipeline. The
/// mean follows ~n^0.585 so the fits converge on something paper-shaped.
void synth_bench_cell(std::uint64_t seed, std::uint64_t index,
                      std::uint64_t trials, campaign::CellResult& cell) {
  static constexpr const char* kAlgos[] = {"8:4:1", "7:4:1", "4:2:1"};
  static constexpr const char* kProfiles[] = {"worst", "shuffled",
                                              "iid:geometric:6"};
  std::uint64_t h = util::hash_combine(seed, index);
  cell.index = index;
  cell.algo = kAlgos[h % 3];
  cell.profile = kProfiles[(h >> 8) % 3];
  cell.sort.clear();
  cell.policy.clear();
  cell.k = static_cast<unsigned>(4 + index % 10);
  cell.n = std::uint64_t{1} << cell.k;
  cell.trials = trials;
  // Some cells lose a trial to the box cap / source exhaustion / a
  // contained failure, but at least one trial always completes (a fit
  // series rejects empty cells).
  cell.incomplete = (trials > 1 && (h >> 16) % 8 == 0) ? 1 : 0;
  cell.capped = (cell.incomplete != 0 && ((h >> 24) & 1) != 0) ? 1 : 0;
  cell.failed =
      (trials > cell.incomplete + 1 && (h >> 32) % 16 == 0) ? 1 : 0;
  cell.completed = trials - cell.incomplete - cell.failed;
  const double base = std::pow(static_cast<double>(cell.n), 0.585);
  cell.samples.clear();
  double sum = 0;
  std::uint64_t state = h;
  for (std::uint64_t t = 0; t < cell.completed; ++t) {
    const double u = static_cast<double>(util::splitmix64(state) >> 11) *
                     0x1.0p-53;
    const double sample = base * (0.95 + 0.1 * u);
    cell.samples.push_back(sample);
    sum += sample;
  }
  cell.mean = sum / static_cast<double>(cell.completed);
  cell.ci_lo = cell.mean * 0.98;
  cell.ci_hi = cell.mean * 1.02;
  std::vector<double> sorted = cell.samples;
  std::sort(sorted.begin(), sorted.end());
  const auto quantile = [&sorted](double q) {
    const std::size_t at = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[at];
  };
  cell.q50 = quantile(0.50);
  cell.q90 = quantile(0.90);
  cell.q95 = quantile(0.95);
  cell.boxes_mean = static_cast<double>(cell.n) * 1.5;
  cell.wall_ns = 0;
}

/// Fill the bench campaign's header fields on any report-shaped object
/// (CellStore and Report share the field names).
template <typename R>
void fill_bench_header(R& r, std::uint64_t seed, std::uint64_t cells,
                       std::uint64_t shard) {
  r.name = "report_bench";
  r.config_hash = seed;
  r.cells_total = cells;
  r.shards = 2;
  r.shard_index = shard;
  r.env = campaign::build_provenance();
}

struct BenchPath {
  double write_s = 0;
  double load_s = 0;
  double merge_s = 0;
  std::uint64_t bytes = 0;
  std::uint64_t peak_rss = 0;
};

int run_report_bench_cmd(const util::ArgParser& args) {
  const std::uint64_t cells = args.get_u64("cells", 1'000'000);
  const std::uint64_t trials = args.get_u64("trials", 4);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::string dir = args.get_string("dir", ".");
  if (cells < 2 || trials < 1) {
    throw util::UsageError("report bench requires --cells >= 2, --trials "
                           ">= 1");
  }
  using clock = std::chrono::steady_clock;
  const auto secs = [](clock::time_point from) {
    return std::chrono::duration<double>(clock::now() - from).count();
  };
  const std::string bin_paths[2] = {dir + "/report_bench_shard0.bin",
                                    dir + "/report_bench_shard1.bin"};
  const std::string json_paths[2] = {dir + "/report_bench_shard0.json",
                                     dir + "/report_bench_shard1.json"};

  // Phase order matters: ru_maxrss is a process-lifetime high-water
  // mark, so the light (columnar) pipeline runs first — its sampled
  // peak is its own, and the JSONL phase's larger working set then
  // raises the mark to the JSONL peak.
  BenchPath columnar;
  std::uint64_t merged_cells = 0;
  {
    campaign::CellResult scratch;
    auto t = clock::now();
    for (std::uint64_t shard = 0; shard < 2; ++shard) {
      report::ColumnarWriter writer;
      fill_bench_header(writer.store(), seed, cells, shard);
      writer.reserve(cells / 2 + 1, (cells / 2 + 1) * trials);
      for (std::uint64_t i = shard; i < cells; i += 2) {
        synth_bench_cell(seed, i, trials, scratch);
        writer.append(scratch);
      }
      report::save_store_file(bin_paths[shard], writer.store());
    }
    columnar.write_s = secs(t);
    t = clock::now();
    std::vector<report::CellStore> parts;
    parts.push_back(report::load_store_file(bin_paths[0]));
    parts.push_back(report::load_store_file(bin_paths[1]));
    columnar.load_s = secs(t);
    t = clock::now();
    const report::CellStore merged =
        report::CellStore::merge(std::move(parts));
    columnar.merge_s = secs(t);
    merged_cells = merged.cell_count();
    columnar.bytes = std::filesystem::file_size(bin_paths[0]) +
                     std::filesystem::file_size(bin_paths[1]);
    columnar.peak_rss = peak_rss_bytes();
  }
  if (merged_cells != cells) {
    throw util::CheckError("report bench: columnar merge produced " +
                           std::to_string(merged_cells) + " cells, want " +
                           std::to_string(cells));
  }

  BenchPath jsonl;
  {
    auto t = clock::now();
    for (std::uint64_t shard = 0; shard < 2; ++shard) {
      campaign::Report shard_report;
      fill_bench_header(shard_report, seed, cells, shard);
      shard_report.cells.reserve(cells / 2 + 1);
      for (std::uint64_t i = shard; i < cells; i += 2) {
        campaign::CellResult cell;
        synth_bench_cell(seed, i, trials, cell);
        shard_report.cells.push_back(std::move(cell));
      }
      campaign::write_report_file(json_paths[shard], shard_report);
    }
    jsonl.write_s = secs(t);
    t = clock::now();
    std::vector<campaign::Report> parts;
    parts.push_back(campaign::load_report_file(json_paths[0]));
    parts.push_back(campaign::load_report_file(json_paths[1]));
    jsonl.load_s = secs(t);
    t = clock::now();
    const campaign::Report merged =
        campaign::merge_reports(std::move(parts));
    jsonl.merge_s = secs(t);
    if (merged.cells.size() != cells) {
      throw util::CheckError("report bench: jsonl merge produced " +
                             std::to_string(merged.cells.size()) +
                             " cells, want " + std::to_string(cells));
    }
    jsonl.bytes = std::filesystem::file_size(json_paths[0]) +
                  std::filesystem::file_size(json_paths[1]);
    jsonl.peak_rss = peak_rss_bytes();
  }
  if (!args.has("keep")) {
    for (const auto& path : {bin_paths[0], bin_paths[1], json_paths[0],
                             json_paths[1]}) {
      std::remove(path.c_str());
    }
  }

  const double n = static_cast<double>(cells);
  const double merge_load_speedup = (jsonl.load_s + jsonl.merge_s) /
                                    (columnar.load_s + columnar.merge_s);
  const double rss_ratio = static_cast<double>(jsonl.peak_rss) /
                           static_cast<double>(columnar.peak_rss);

  util::Table table({"path", "write Mc/s", "load Mc/s", "merge Mc/s",
                     "bytes/cell", "peak RSS MiB"});
  const auto emit_row = [&](const char* name, const BenchPath& p) {
    table.row()
        .cell(name)
        .cell(n / p.write_s / 1e6, 2)
        .cell(n / p.load_s / 1e6, 2)
        .cell(n / p.merge_s / 1e6, 2)
        .cell(static_cast<double>(p.bytes) / n, 1)
        .cell(static_cast<double>(p.peak_rss) / (1024.0 * 1024.0), 1);
  };
  emit_row("columnar", columnar);
  emit_row("jsonl", jsonl);
  std::cout << "report bench: " << cells << " cells, " << trials
            << " trials/cell, seed " << seed << "\n";
  table.print(std::cout);
  std::cout << "merge+load speedup: " << merge_load_speedup
            << "x, peak-RSS ratio: " << rss_ratio << "x\n";

  const auto path_event = [&](const char* name, const BenchPath& p) {
    obs::Event e{"report_bench_path"};
    e.str("path", name)
        .f64("write_s", p.write_s)
        .f64("load_s", p.load_s)
        .f64("merge_s", p.merge_s)
        .f64("write_cells_per_s", n / p.write_s)
        .f64("load_cells_per_s", n / p.load_s)
        .f64("merge_cells_per_s", n / p.merge_s)
        .u64("bytes", p.bytes)
        .u64("peak_rss_bytes", p.peak_rss);
    return e;
  };
  obs::Event head{"report_bench"};
  head.u64("version", 1)
      .u64("cells", cells)
      .u64("trials", trials)
      .u64("seed", seed)
      .u64("shards", 2);
  obs::Event summary{"report_bench_summary"};
  summary.f64("merge_load_speedup", merge_load_speedup)
      .f64("rss_ratio", rss_ratio)
      .f64("bytes_ratio", static_cast<double>(jsonl.bytes) /
                              static_cast<double>(columnar.bytes));
  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    std::string content = obs::to_jsonl(head) + "\n" +
                          obs::to_jsonl(path_event("columnar", columnar)) +
                          "\n" + obs::to_jsonl(path_event("jsonl", jsonl)) +
                          "\n" + obs::to_jsonl(summary) + "\n";
    robust::atomic_write_file(out_path, content);
    std::cout << "bench report written to " << out_path << "\n";
  }

  const std::string gate_path = args.get_string("gate", "");
  if (!gate_path.empty()) {
    std::ifstream is(gate_path);
    if (!is) throw util::IoError("cannot open report bench gate: " +
                                 gate_path);
    const std::vector<robust::JsonlLine> lines =
        robust::load_jsonl_tolerant(is, "report bench gate");
    const obs::Event* gate = nullptr;
    for (const robust::JsonlLine& line : lines) {
      if (line.event.type == "report_bench_gate") gate = &line.event;
    }
    if (gate == nullptr) {
      throw util::ParseError("report bench gate: no report_bench_gate "
                             "line in " + gate_path);
    }
    const double speedup_min = gate->f64_or("merge_load_speedup_min", 0);
    const double rss_min = gate->f64_or("rss_ratio_min", 0);
    const bool speedup_ok = merge_load_speedup >= speedup_min;
    const bool rss_ok = rss_ratio >= rss_min;
    std::cout << "gate: merge+load " << merge_load_speedup << "x vs min "
              << speedup_min << " [" << (speedup_ok ? "ok" : "FAIL")
              << "], RSS " << rss_ratio << "x vs min " << rss_min << " ["
              << (rss_ok ? "ok" : "FAIL") << "]\n";
    if (!speedup_ok || !rss_ok) return 4;
  }
  return 0;
}

int run_report_cmd(const util::ArgParser& args) {
  const std::vector<std::string>& pos = args.positionals();
  if (pos.size() < 2) {
    throw util::UsageError(
        "report requires a subcommand: export|import|info|merge|bench");
  }
  const std::string& sub = pos[1];
  if (sub == "export") return run_report_export_cmd(args);
  if (sub == "import") return run_report_import_cmd(args);
  if (sub == "info") return run_report_info_cmd(args);
  if (sub == "merge") return run_report_merge_cmd(args);
  if (sub == "bench") return run_report_bench_cmd(args);
  throw util::UsageError("unknown report subcommand '" + sub + "'");
}

// ---- serve family (docs/SERVE.md) ----------------------------------

std::string require_socket(const util::ArgParser& args) {
  const std::string socket = args.get_string("socket", "");
  if (socket.empty()) {
    throw util::UsageError("this command requires --socket PATH");
  }
  return socket;
}

std::string require_job(const util::ArgParser& args) {
  const std::string job = args.get_string("job", "");
  if (job.empty()) throw util::UsageError("this command requires --job ID");
  return job;
}

/// Print a daemon error line and map its code to the CLI exit code.
int daemon_error(const obs::Event& response) {
  std::cerr << "daemon error: " << response.str_or("message", "?") << "\n";
  const std::uint64_t code = response.u64_or("code", 1);
  return code != 0 ? static_cast<int>(code) : 1;
}

int run_serve_cmd(const util::ArgParser& args) {
  serve::DaemonOptions opts;
  opts.socket_path = require_socket(args);
  opts.core.spool_dir = args.get_string("spool", "");
  if (opts.core.spool_dir.empty()) {
    throw util::UsageError("serve requires --spool DIR");
  }
  opts.core.jobs = args.get_u64("jobs", 0);
  opts.core.slots = args.get_u64("slots", 0);
  opts.core.stream_buffer = args.get_u64("stream-buffer", 64);
  opts.core.timing = !args.has("no-timing");

  std::ofstream trace_file;
  obs::JsonlSink trace_sink(trace_file);
  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) throw util::IoError("cannot open --trace " + trace_path);
    opts.core.trace = &trace_sink;
  }

  // First SIGINT/SIGTERM drains gracefully: dispatch stops, in-flight
  // cells unwind through the cooperative cancel path, checkpoints keep
  // every committed cell, and the next daemon on this spool resumes.
  robust::install_signal_cancel();
  std::cout << "cadapt serve: spool " << opts.core.spool_dir << ", socket "
            << opts.socket_path << "\n"
            << std::flush;
  return serve::run_daemon(opts);
}

int run_submit_cmd(const util::ArgParser& args) {
  const std::vector<std::string>& pos = args.positionals();
  if (pos.size() != 2) {
    throw util::UsageError("submit requires exactly one manifest path");
  }
  std::ifstream is(pos[1], std::ios::binary);
  if (!is) throw util::IoError("cannot open manifest '" + pos[1] + "'");
  std::ostringstream manifest;
  manifest << is.rdbuf();

  serve::SubmitRequest request;
  request.manifest_text = manifest.str();
  request.client = args.get_string("client", "anon");
  request.weight = args.get_u64("weight", 1);
  request.deadline_ms = args.get_u64("deadline-ms", 0);
  request.box_budget = args.get_u64("box-budget", 0);
  request.fault_spec = args.get_string("fault", "");
  request.fault_seed = args.get_u64("fault-seed", 0);
  request.retries = static_cast<std::uint32_t>(args.get_u64("retries", 0));

  const obs::Event response =
      serve::roundtrip(require_socket(args), serve::submit_event(request));
  if (response.type == "error") return daemon_error(response);
  std::cout << obs::to_jsonl(response) << "\n";
  return 0;
}

int run_status_cmd(const util::ArgParser& args) {
  const std::string socket = require_socket(args);
  obs::Event request("status");
  const std::string job = args.get_string("job", "");
  if (!job.empty()) {
    request.str("job", job);
    const obs::Event response = serve::roundtrip(socket, request);
    if (response.type == "error") return daemon_error(response);
    std::cout << obs::to_jsonl(response) << "\n";
    return 0;
  }
  for (const obs::Event& line : serve::roundtrip_all(socket, request)) {
    if (line.type == "end") continue;
    if (line.type == "error") return daemon_error(line);
    std::cout << obs::to_jsonl(line) << "\n";
  }
  return 0;
}

int run_cancel_cmd(const util::ArgParser& args) {
  obs::Event request("cancel");
  request.str("job", require_job(args));
  const obs::Event response = serve::roundtrip(require_socket(args), request);
  if (response.type == "error") return daemon_error(response);
  std::cout << obs::to_jsonl(response) << "\n";
  return 0;
}

int run_results_cmd(const util::ArgParser& args) {
  const std::string out_path = args.get_string("out", "");
  std::function<void(const std::string&)> on_progress;
  if (args.has("progress")) {
    on_progress = [](const std::string& line) { std::cerr << line << "\n"; };
  }
  const serve::ResultsEnd end = serve::stream_results(
      require_socket(args), require_job(args), on_progress);
  if (end.done.type == "error") return daemon_error(end.done);
  // The job_done status goes to stderr so stdout carries ONLY the report
  // bytes — `cadapt results --job J > r.json` is cmp-identical to the
  // daemon's durable artifact (and so to one-shot `cadapt sweep`).
  std::cerr << obs::to_jsonl(end.done) << "\n";
  if (end.done.str_or("state", "") == "failed") return 4;
  if (out_path.empty()) {
    std::cout << end.report_bytes;
  } else {
    std::ofstream os(out_path, std::ios::binary);
    if (!os || !(os << end.report_bytes) || !os.flush()) {
      throw util::IoError("cannot write --out " + out_path);
    }
    std::cerr << "report written to " << out_path << "\n";
  }
  return 0;
}

void report(const util::ArgParser& args, const model::RegularParams& p,
            const core::Series& series) {
  core::ReportOptions ropts;
  ropts.log_base = p.b;
  ropts.csv = args.has("csv");
  core::print_series(std::cout, series, ropts);
}

int run(const util::ArgParser& args) {
  if (args.positionals().empty()) return usage();
  const std::string cmd = args.positionals().front();
  // Hidden chaos-harness flag (tools/chaos_sweep.sh, not in help): raise
  // SIGKILL at the Nth durable write, after persisting only half of it —
  // the crash-kill bit-identity drill. Queried unconditionally so the
  // unknown-flag warning never fires for it.
  const std::uint64_t crash_after = args.get_u64("crash-after", 0);
  if (crash_after != 0) robust::CrashPoint::instance().arm(crash_after);
  if (cmd == "help") {
    return args.positionals().size() > 1 ? help_for(args.positionals()[1])
                                         : usage();
  }
  if (cmd == "version") {
    if (args.has("json")) {
      // The same line the daemon answers `hello` with (type aside) —
      // scripts can version-gate offline and on-line identically.
      std::cout << obs::to_jsonl(serve::version_event()) << "\n";
      return 0;
    }
    std::cout << campaign::provenance_text();
    return 0;
  }
  if (cmd == "parallel") return run_parallel_cmd(args);
  if (cmd == "sweep") return run_sweep_cmd(args);
  if (cmd == "report") return run_report_cmd(args);
  if (cmd == "serve") return run_serve_cmd(args);
  if (cmd == "submit") return run_submit_cmd(args);
  if (cmd == "status") return run_status_cmd(args);
  if (cmd == "cancel") return run_cancel_cmd(args);
  if (cmd == "results") return run_results_cmd(args);

  const model::RegularParams p = params_from(args);

  if (cmd == "gap") {
    report(args, p, core::worst_case_gap_curve(p, sweep_from(args)));
  } else if (cmd == "shuffle") {
    report(args, p, core::shuffled_worst_case_curve(p, sweep_from(args)));
  } else if (cmd == "iid") {
    const auto dist = dist_from(args, p);
    report(args, p, core::iid_curve(p, *dist, sweep_from(args)));
  } else if (cmd == "perturb") {
    const double t = args.get_double("t", 2.0);
    report(args, p,
           core::size_perturb_curve(p, profile::uniform_real_perturb(t),
                                    sweep_from(args)));
  } else if (cmd == "shift") {
    report(args, p, core::cyclic_shift_curve(p, sweep_from(args)));
  } else if (cmd == "order") {
    report(args, p,
           core::order_perturb_curve(p, sweep_from(args), args.has("matched")));
  } else if (cmd == "analytic") {
    const auto dist = dist_from(args, p);
    engine::AnalyticSolver solver(p, *dist);
    const std::uint64_t n_max =
        util::ipow(p.b, static_cast<unsigned>(args.get_u64("kmax", 6)));
    util::Table table({"n", "f(n)", "f'(n)", "p", "K(n)", "m_n", "ratio"});
    for (const auto& lvl : solver.solve(n_max)) {
      table.row()
          .cell(lvl.n)
          .cell(lvl.f, 3)
          .cell(lvl.f_prime, 3)
          .cell(lvl.p, 4)
          .cell(lvl.scan_boxes, 3)
          .cell(lvl.m_n, 2)
          .cell(lvl.ratio, 3);
    }
    std::cout << "Lemma 3 recurrence, " << p.name() << ", Σ = "
              << dist->name() << "\n";
    table.print(std::cout);
  } else if (cmd == "replay") {
    // Run (a,b,c) on a saved profile (one box size per line).
    const std::string path = args.get_string("file", "");
    if (path.empty()) throw util::UsageError("replay requires --file");
    const auto boxes = profile::load_profile_file(path);
    const std::uint64_t n =
        args.get_u64("n", util::ipow(p.b, static_cast<unsigned>(
                                              args.get_u64("kmax", 6))));
    profile::VectorSource source(boxes, args.has("cycle"));
    const engine::RunResult r = engine::run_regular(p, n, source);
    std::cout << p.name() << " on " << path << " (" << boxes.size()
              << " boxes), n = " << n << ":\n"
              << "  completed: " << (r.completed ? "yes" : "NO (exhausted)")
              << "\n  boxes used: " << r.boxes
              << "\n  adaptivity ratio: " << util::format_double(r.ratio, 3)
              << "\n  unit ratio: " << util::format_double(r.unit_ratio, 3)
              << "\n";
  } else if (cmd == "save-worst") {
    // Write M_{a,b}(n) to a file for external tools.
    const std::string path = args.get_string("file", "");
    if (path.empty()) throw util::UsageError("save-worst requires --file");
    const std::uint64_t n = args.get_u64("n", 256);
    profile::WorstCaseSource source(p.a, p.b, n);
    const auto boxes = profile::materialize(source);
    std::ostringstream comment;
    comment << "M_{" << p.a << "," << p.b << "}(" << n << ")";
    profile::save_profile_file(path, boxes, comment.str());
    std::cout << "wrote " << boxes.size() << " boxes to " << path << "\n";
  } else if (cmd == "render") {
    const std::uint64_t n = args.get_u64("n", 256);
    std::cout << profile::describe_worst_case(p.a, p.b, n) << "\n";
    profile::WorstCaseSource source(p.a, p.b, n);
    const auto boxes = profile::materialize(source);
    std::cout << profile::render_profile_ascii(
        boxes, args.get_u64("width", 100), args.get_u64("height", 14),
        !args.has("linear"));
  } else if (cmd == "trace") {
    const int rc = run_trace(args, p);
    if (rc != 0) return rc;
  } else if (cmd == "mc") {
    const int rc = run_mc(args, p);
    if (rc != 0) return rc;
  } else if (cmd == "multiplies") {
    util::Table table({"n", "completed executions", "log_b n + 1"});
    for (unsigned k = static_cast<unsigned>(args.get_u64("kmin", 3));
         k <= args.get_u64("kmax", 7); ++k) {
      const std::uint64_t n = util::ipow(p.b, k);
      profile::WorstCaseSource source(p.a, p.b, n);
      table.row()
          .cell(n)
          .cell(core::count_completions(p, n, source))
          .cell(std::uint64_t{k + 1});
    }
    std::cout << p.name() << " on one pass of M_{" << p.a << "," << p.b
              << "}(n):\n";
    table.print(std::cout);
  } else {
    throw util::UsageError("unknown command '" + cmd + "'");
  }

  for (const auto& flag : args.unknown_flags())
    std::cerr << "warning: unused flag --" << flag << "\n";
  return 0;
}

}  // namespace

// Exit-code discipline (docs/ROBUSTNESS.md): scripts driving long
// campaigns must be able to tell "you called me wrong" (2) from "your
// input file is bad" (3) from "the library's own invariants broke" (4)
// without parsing stderr. Catch order matters — ParseError, IoError and
// UsageError all derive from CheckError.
int main(int argc, char** argv) {
  try {
    return run(util::ArgParser(argc, argv));
  } catch (const cadapt::util::UsageError& e) {
    std::cerr << "usage error: " << e.what() << "\n"
              << "run 'cadapt help' for usage\n";
    return 2;
  } catch (const cadapt::util::ParseError& e) {
    std::cerr << "input error: " << e.what() << "\n";
    return 3;
  } catch (const cadapt::util::IoError& e) {
    std::cerr << "input error: " << e.what() << "\n";
    return 3;
  } catch (const cadapt::util::CheckError& e) {
    std::cerr << "internal check failed: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
