// cadapt — command-line driver for the cache-adaptive analysis toolkit.
//
// Usage: cadapt <command> [flags]
//
//   gap         adaptivity ratio of (a,b,c) on its worst-case profile M_{a,b}
//   shuffle     ... on the i.i.d. reshuffle of M_{a,b} (Theorem 1)
//   iid         ... on i.i.d. boxes from a chosen distribution
//   perturb     ... on size-perturbed M_{a,b} (X ~ U[0,t])
//   shift       ... on cyclic-shifted M_{a,b}
//   order       ... on order-perturbed M_{a,b} (--matched for the witness)
//   analytic    Lemma 3 stopping-time table for a distribution
//   render      ASCII-render M_{a,b}(n) (Figure 1)
//   multiplies  §3: executions completed on one pass of M_{a,b}(n)
//   help        this text
//
// Common flags: --a --b --c --kmin --kmax --trials --seed
//               --semantics optimistic|budgeted --unit-progress --csv
// Distribution flags (iid/analytic): --dist geometric|uniform-powers|
//   bimodal|point|uniform-range, --kdist, --small, --big, --pbig,
//   --size, --lo, --hi
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/cadapt.hpp"
#include "core/report.hpp"
#include "profile/profile_io.hpp"
#include "util/args.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace cadapt;

int usage() {
  std::cout <<
      R"(cadapt - cache-adaptive analysis toolkit (SPAA 2020 reproduction)

commands:
  gap         ratio of (a,b,c) on its worst-case profile M_{a,b}
  shuffle     ratio on the i.i.d. reshuffle of M_{a,b} (Theorem 1)
  iid         ratio on i.i.d. boxes from --dist
  perturb     ratio on size-perturbed M_{a,b} (X ~ U[0,--t])
  shift       ratio on cyclic-shifted M_{a,b}
  order       ratio on order-perturbed M_{a,b} (--matched = witness algo)
  analytic    exact Lemma 3 stopping-time table for --dist
  render      ASCII-render M_{a,b}(--n) (Figure 1)
  multiplies  count executions completed on one pass of M_{a,b}(n)
  replay      run (a,b,c) on a saved profile: --file F [--cycle] [--n N]
  save-worst  write M_{a,b}(--n) to --file F (one box per line)

common flags:
  --a N --b N --c X         algorithm shape (default 8 4 1.0)
  --kmin K --kmax K         sweep n = b^kmin .. b^kmax (default 2..6)
  --trials T --seed S       Monte-Carlo controls (default 32, 42)
  --semantics optimistic|budgeted
  --unit-progress           operation-based progress (use for a <= b)
  --csv                     also emit CSV blocks
distribution flags (iid/analytic):
  --dist geometric|uniform-powers|bimodal|point|uniform-range
  --kdist K                 power range 0..K (geometric/uniform-powers)
  --small S --big B --pbig P    (bimodal)
  --size S                  (point)
  --lo L --hi H             (uniform-range)
)";
  return 0;
}

model::RegularParams params_from(const util::ArgParser& args) {
  model::RegularParams p;
  p.a = args.get_u64("a", 8);
  p.b = args.get_u64("b", 4);
  p.c = args.get_double("c", 1.0);
  p.validate();
  return p;
}

core::SweepOptions sweep_from(const util::ArgParser& args) {
  core::SweepOptions opts;
  opts.kmin = static_cast<unsigned>(args.get_u64("kmin", 2));
  opts.kmax = static_cast<unsigned>(args.get_u64("kmax", 6));
  opts.trials = args.get_u64("trials", 32);
  opts.seed = args.get_u64("seed", 42);
  opts.unit_progress = args.has("unit-progress");
  const std::string sem = args.get_string("semantics", "optimistic");
  if (sem == "budgeted") {
    opts.semantics = engine::BoxSemantics::kBudgeted;
  } else if (sem != "optimistic") {
    throw util::CheckError("--semantics must be optimistic or budgeted");
  }
  return opts;
}

std::unique_ptr<profile::BoxDistribution> dist_from(
    const util::ArgParser& args, const model::RegularParams& p) {
  const std::string kind = args.get_string("dist", "geometric");
  const unsigned kdist = static_cast<unsigned>(
      args.get_u64("kdist", args.get_u64("kmax", 6)));
  if (kind == "geometric") {
    return std::make_unique<profile::GeometricPowers>(
        p.b, static_cast<double>(p.a), 0, kdist);
  }
  if (kind == "uniform-powers") {
    return std::make_unique<profile::UniformPowers>(p.b, 0, kdist);
  }
  if (kind == "bimodal") {
    return std::make_unique<profile::Bimodal>(args.get_u64("small", 4),
                                              args.get_u64("big", 4096),
                                              args.get_double("pbig", 0.02));
  }
  if (kind == "point") {
    return std::make_unique<profile::PointMass>(args.get_u64("size", 64));
  }
  if (kind == "uniform-range") {
    return std::make_unique<profile::UniformRange>(args.get_u64("lo", 1),
                                                   args.get_u64("hi", 256));
  }
  throw util::CheckError("unknown --dist '" + kind + "'");
}

void report(const util::ArgParser& args, const model::RegularParams& p,
            const core::Series& series) {
  core::ReportOptions ropts;
  ropts.log_base = p.b;
  ropts.csv = args.has("csv");
  core::print_series(std::cout, series, ropts);
}

int run(const util::ArgParser& args) {
  if (args.positionals().empty()) return usage();
  const std::string cmd = args.positionals().front();
  if (cmd == "help") return usage();

  const model::RegularParams p = params_from(args);

  if (cmd == "gap") {
    report(args, p, core::worst_case_gap_curve(p, sweep_from(args)));
  } else if (cmd == "shuffle") {
    report(args, p, core::shuffled_worst_case_curve(p, sweep_from(args)));
  } else if (cmd == "iid") {
    const auto dist = dist_from(args, p);
    report(args, p, core::iid_curve(p, *dist, sweep_from(args)));
  } else if (cmd == "perturb") {
    const double t = args.get_double("t", 2.0);
    report(args, p,
           core::size_perturb_curve(p, profile::uniform_real_perturb(t),
                                    sweep_from(args)));
  } else if (cmd == "shift") {
    report(args, p, core::cyclic_shift_curve(p, sweep_from(args)));
  } else if (cmd == "order") {
    report(args, p,
           core::order_perturb_curve(p, sweep_from(args), args.has("matched")));
  } else if (cmd == "analytic") {
    const auto dist = dist_from(args, p);
    engine::AnalyticSolver solver(p, *dist);
    const std::uint64_t n_max =
        util::ipow(p.b, static_cast<unsigned>(args.get_u64("kmax", 6)));
    util::Table table({"n", "f(n)", "f'(n)", "p", "K(n)", "m_n", "ratio"});
    for (const auto& lvl : solver.solve(n_max)) {
      table.row()
          .cell(lvl.n)
          .cell(lvl.f, 3)
          .cell(lvl.f_prime, 3)
          .cell(lvl.p, 4)
          .cell(lvl.scan_boxes, 3)
          .cell(lvl.m_n, 2)
          .cell(lvl.ratio, 3);
    }
    std::cout << "Lemma 3 recurrence, " << p.name() << ", Σ = "
              << dist->name() << "\n";
    table.print(std::cout);
  } else if (cmd == "replay") {
    // Run (a,b,c) on a saved profile (one box size per line).
    const std::string path = args.get_string("file", "");
    if (path.empty()) throw util::CheckError("replay requires --file");
    const auto boxes = profile::load_profile_file(path);
    const std::uint64_t n =
        args.get_u64("n", util::ipow(p.b, static_cast<unsigned>(
                                              args.get_u64("kmax", 6))));
    profile::VectorSource source(boxes, args.has("cycle"));
    const engine::RunResult r = engine::run_regular(p, n, source);
    std::cout << p.name() << " on " << path << " (" << boxes.size()
              << " boxes), n = " << n << ":\n"
              << "  completed: " << (r.completed ? "yes" : "NO (exhausted)")
              << "\n  boxes used: " << r.boxes
              << "\n  adaptivity ratio: " << util::format_double(r.ratio, 3)
              << "\n  unit ratio: " << util::format_double(r.unit_ratio, 3)
              << "\n";
  } else if (cmd == "save-worst") {
    // Write M_{a,b}(n) to a file for external tools.
    const std::string path = args.get_string("file", "");
    if (path.empty()) throw util::CheckError("save-worst requires --file");
    const std::uint64_t n = args.get_u64("n", 256);
    profile::WorstCaseSource source(p.a, p.b, n);
    const auto boxes = profile::materialize(source);
    std::ostringstream comment;
    comment << "M_{" << p.a << "," << p.b << "}(" << n << ")";
    profile::save_profile_file(path, boxes, comment.str());
    std::cout << "wrote " << boxes.size() << " boxes to " << path << "\n";
  } else if (cmd == "render") {
    const std::uint64_t n = args.get_u64("n", 256);
    std::cout << profile::describe_worst_case(p.a, p.b, n) << "\n";
    profile::WorstCaseSource source(p.a, p.b, n);
    const auto boxes = profile::materialize(source);
    std::cout << profile::render_profile_ascii(
        boxes, args.get_u64("width", 100), args.get_u64("height", 14),
        !args.has("linear"));
  } else if (cmd == "multiplies") {
    util::Table table({"n", "completed executions", "log_b n + 1"});
    for (unsigned k = static_cast<unsigned>(args.get_u64("kmin", 3));
         k <= args.get_u64("kmax", 7); ++k) {
      const std::uint64_t n = util::ipow(p.b, k);
      profile::WorstCaseSource source(p.a, p.b, n);
      table.row()
          .cell(n)
          .cell(core::count_completions(p, n, source))
          .cell(std::uint64_t{k + 1});
    }
    std::cout << p.name() << " on one pass of M_{" << p.a << "," << p.b
              << "}(n):\n";
    table.print(std::cout);
  } else {
    std::cerr << "unknown command '" << cmd << "'\n";
    usage();
    return 2;
  }

  for (const auto& flag : args.unknown_flags())
    std::cerr << "warning: unused flag --" << flag << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::ArgParser(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
