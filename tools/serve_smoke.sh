#!/bin/sh
# Serve-lane end-to-end drill (docs/SERVE.md): a real daemon, three
# concurrent tenants, and the headline invariant checked with cmp — a
# job's report, fetched over the socket, is byte-identical to one-shot
# `cadapt sweep --no-timing` on the same manifest. Also exercises the
# cancel path (truncated report, exit codes) and status/hello.
#
# Wired as the ctest case `cli_serve_smoke` (label `serve`); run it
# under the address and thread sanitizer presets too.
#
# usage:
#   tools/serve_smoke.sh <path-to-cadapt> [workdir]
set -eu

cli=${1:?usage: serve_smoke.sh <path-to-cadapt> [workdir]}
workdir=${2:-serve_smoke_work}

rm -rf "$workdir"
mkdir -p "$workdir"
cd "$workdir"

daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2> /dev/null || true
}
trap cleanup EXIT INT TERM

cat > a.manifest << 'EOF'
name = smoke_a
algos = 4:2:1
profiles = shuffled
k = 1..6
trials = 8
seed = 5
EOF
cat > b.manifest << 'EOF'
name = smoke_b
algos = 8:2:1
profiles = shuffled
k = 1..5
trials = 6
seed = 7
EOF
cat > c.manifest << 'EOF'
name = smoke_c
algos = 4:2:1 8:2:1
profiles = shuffled
k = 1..4
trials = 4
seed = 9
EOF

# One-shot references first (the daemon must reproduce these bytes).
for m in a b c; do
  "$cli" sweep "$m.manifest" --no-timing --out "ref_$m.json" > /dev/null
done

"$cli" serve --spool spool --socket serve.sock --no-timing \
  > daemon.log 2>&1 &
daemon_pid=$!

# Wait for the socket (the daemon resumes its spool before listening).
tries=0
while [ ! -S serve.sock ]; do
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && { echo "daemon never listened" >&2; exit 1; }
  kill -0 "$daemon_pid" 2> /dev/null || {
    echo "daemon died: $(cat daemon.log)" >&2; exit 1; }
  sleep 0.1
done

# Three tenants with distinct weights, submitted concurrently.
"$cli" submit a.manifest --socket serve.sock --client alice --weight 2 \
  | grep -q '"job":"job-1"'
"$cli" submit b.manifest --socket serve.sock --client bob \
  | grep -q '"job":"job-2"'
"$cli" submit c.manifest --socket serve.sock --client carol \
  | grep -q '"job":"job-3"'

# Stream every report; each must be byte-identical to its reference —
# the shared pool and tenant interleaving must not leak into artifacts.
"$cli" results --socket serve.sock --job job-1 --out got_a.json \
  2> /dev/null
"$cli" results --socket serve.sock --job job-2 --out got_b.json \
  2> /dev/null
"$cli" results --socket serve.sock --job job-3 --out got_c.json \
  2> /dev/null
cmp ref_a.json got_a.json
cmp ref_b.json got_b.json
cmp ref_c.json got_c.json

# results to stdout carries ONLY the report bytes (status goes to
# stderr) — shell-pipeline byte identity.
"$cli" results --socket serve.sock --job job-1 2> /dev/null > pipe_a.json
cmp ref_a.json pipe_a.json

# status: every job done, one line each.
"$cli" status --socket serve.sock > status.txt
[ "$(grep -c '"state":"done"' status.txt)" -eq 3 ]

# cancel on a heavy job: accepted, then a truncated report still lands.
cat > slow.manifest << 'EOF'
name = smoke_slow
algos = 4:2:1
profiles = shuffled
k = 1..12
trials = 20000
seed = 11
EOF
"$cli" submit slow.manifest --socket serve.sock --client dave \
  | grep -q job-4
"$cli" cancel --socket serve.sock --job job-4 | grep -q '"type":"ok"'
"$cli" results --socket serve.sock --job job-4 --out got_slow.json \
  2> /dev/null
grep -q '"truncated":true' got_slow.json
grep -q '"truncate_reason":"external"' got_slow.json

# Error taxonomy over the wire: unknown job = input error (exit 3);
# cancelling a finished job is also 3.
status=0; "$cli" status --socket serve.sock --job job-99 || status=$?
[ "$status" -eq 3 ]
status=0; "$cli" cancel --socket serve.sock --job job-4 || status=$?
[ "$status" -eq 3 ]
# A malformed manifest is rejected with exit 3 and creates NO job.
printf 'name = bad\nalgoz = 4:2:1\n' > bad.manifest
status=0
"$cli" submit bad.manifest --socket serve.sock 2> /dev/null || status=$?
[ "$status" -eq 3 ]
"$cli" status --socket serve.sock > status2.txt
if grep -q job-5 status2.txt; then
  echo "rejected manifest still created a job" >&2
  exit 1
fi

# Graceful shutdown: SIGTERM drains and exits 0.
kill "$daemon_pid"
wait "$daemon_pid" || { echo "daemon exited non-zero" >&2; exit 1; }
daemon_pid=""

echo "serve smoke: 3 tenants byte-identical, cancel + errors OK"
