#!/bin/sh
# Regenerate the committed BENCH_parallel.json headline artifact
# (docs/PARALLEL.md): `cadapt parallel --scale 1,2,4,8` — the symbolic
# engine at n = 4^8 plus the k = 12 adaptive-sort cell (4096 = 2^12
# keys, the cell trace replay cannot cover) — one parallel_env line
# (including the host's core count) plus one parallel_scale line per
# worker count with the deterministic simulated speedup, measured
# steals vs the Cole–Ramachandran-style bound, the extra-miss ratio,
# and the wall-clock cell numbers.
#
# Unlike the sweep artifacts this file is NOT byte-stable across hosts
# (wall fields and `cores` are honest measurements), so there is no
# --check mode; the deterministic fields (rounds, steals, sim_speedup,
# extra_miss_ratio) are what reviews compare. The acceptance bar is
# sim_speedup >= 2.5 at workers = 8.
#
# usage:
#   tools/regen_bench_parallel.sh <path-to-cadapt>
set -eu

cli=${1:?usage: regen_bench_parallel.sh <path-to-cadapt>}

repo_root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
committed="$repo_root/BENCH_parallel.json"

"$cli" parallel --k 8 --scale 1,2,4,8 --sort adaptive \
  --sort-profile uniform:4:64 --keys 4096 --block 8 --trials 8 \
  --seed 42 --json --out "$committed"
echo "wrote $committed"
