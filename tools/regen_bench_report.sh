#!/bin/sh
# Regenerate (default) or verify (--check) the committed report-engine
# bench artifact at the repo root (docs/REPORT.md):
#
#   BENCH_report.json <- cadapt report bench --cells 10000000 --trials 4
#
# BENCH_report_baseline.json holds the gate floors and is
# hand-maintained, two lines:
#
#   {"type":"report_bench_gate_full", ...}  floors for the committed
#                                           10^7-cell headline run
#   {"type":"report_bench_gate", ...}       floors for the small live
#                                           bench below (the CLI's
#                                           --gate reads this line)
#
# Unlike the sweep artifacts, bench output carries wall-clock timings,
# so it is NOT byte-stable and --check cannot diff bytes. Instead it
#   1. asserts the committed BENCH_report.json summary still clears the
#      full-run floors (a pure file check — catches a stale or
#      regressed committed artifact), and
#   2. runs a small live bench (~2e5 cells, seconds not minutes) gated
#      against the small floors — catches a real perf regression in
#      the columnar engine without the 10^7-cell wall clock.
# Step 2 is the ctest -L perf case `cli_report_bench_gate`.
#
# usage:
#   tools/regen_bench_report.sh <path-to-cadapt> [--check]
set -eu

cli=${1:?usage: regen_bench_report.sh <path-to-cadapt> [--check]}
mode=${2:-update}

repo_root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
committed="$repo_root/BENCH_report.json"
baseline="$repo_root/BENCH_report_baseline.json"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT INT TERM

field() { # field <file> <json-key> -> value (last occurrence)
  sed -n 's/.*"'"$2"'":\([0-9.eE+-]*\).*/\1/p' "$1" | tail -n 1
}

# The committed summary must clear the full-run floors.
check_committed() {
  speedup=$(field "$committed" merge_load_speedup)
  rss=$(field "$committed" rss_ratio)
  full=$(grep '"type":"report_bench_gate_full"' "$baseline")
  speedup_min=$(printf '%s\n' "$full" |
    sed -n 's/.*"merge_load_speedup_min":\([0-9.eE+-]*\).*/\1/p')
  rss_min=$(printf '%s\n' "$full" |
    sed -n 's/.*"rss_ratio_min":\([0-9.eE+-]*\).*/\1/p')
  awk -v s="$speedup" -v sm="$speedup_min" -v r="$rss" -v rm="$rss_min" \
    'BEGIN { exit !(s >= sm && r >= rm) }' || {
    echo "BENCH_report.json summary (speedup ${speedup}x, RSS ${rss}x)" \
         "is below the gate floors (${speedup_min}x, ${rss_min}x) —" \
         "refresh it with: tools/regen_bench_report.sh $cli" >&2
    exit 1
  }
  echo "BENCH_report.json clears the full-run floors" \
       "(${speedup}x >= ${speedup_min}x, ${rss}x >= ${rss_min}x)"
}

if [ "$mode" = "--check" ]; then
  check_committed
  # Small live bench against the small floors (the CLI's --gate reads
  # the baseline's `report_bench_gate` line; exit 4 on a miss).
  "$cli" report bench --cells "${CADAPT_BENCH_CELLS:-200000}" --trials 4 \
    --dir "$scratch" --out "$scratch/report_bench.json" --gate "$baseline"
else
  # The headline run: ~10 min on one core, ~19 GB peak RSS (the JSONL
  # side's row store is the thing being measured).
  "$cli" report bench --cells 10000000 --trials 4 \
    --dir "$scratch" --out "$committed"
  echo "wrote $committed"
  check_committed
fi
