#!/bin/sh
# Binary <-> JSONL differential (docs/REPORT.md): for EVERY manifest in
# bench/manifests/, the columnar container must be a lossless encoding —
# `cadapt report export` of a binary run recovers the EXACT bytes the
# plain JSONL sweep writes. Three legs per manifest:
#
#   1. jobs differential:  --jobs 4 --format binary, exported, vs the
#      --jobs 1 JSONL reference
#   2. shard differential: two binary shards, merged columnar by
#      `cadapt report merge`, exported, vs the same reference
#   3. import round trip:  the JSONL reference imported to binary and
#      exported again must be cmp-identical
#
# plus one kill + resume leg on the chaos manifest: a sweep SIGKILLed
# mid-write (--crash-after), resumed with --format binary, must export
# the reference bytes too (the full crash-point matrix lives in
# tools/chaos_sweep.sh; this pins the binary writer onto that path).
#
# Wired as the ctest -L sweep case `cli_report_equiv` over the fast
# manifests; run with no manifest arguments for the full differential
# (every manifest — minutes of wall clock on the heavier grids).
#
# usage:
#   tools/report_equiv.sh <path-to-cadapt> [workdir] [manifest-name...]
set -eu

cli=${1:?usage: report_equiv.sh <path-to-cadapt> [workdir] [manifest...]}
workdir=${2:-report_equiv_work}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

repo_root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)

if [ $# -ge 1 ]; then
  manifests=""
  for name in "$@"; do
    manifests="$manifests $repo_root/bench/manifests/$name.manifest"
  done
else
  manifests=$(ls "$repo_root"/bench/manifests/*.manifest)
fi

mkdir -p "$workdir"
cd "$workdir"

for manifest in $manifests; do
  name=$(basename "$manifest" .manifest)
  rm -f ref.json run.bin run.json s0.bin s1.bin merged.bin merged.json \
        imported.bin imported.json

  # The uninterrupted JSONL reference (--no-timing: byte-identity
  # contract; --jobs 1 so the reference is the simplest possible path).
  "$cli" sweep "$manifest" --no-timing --jobs 1 --out ref.json > /dev/null

  # Leg 1: parallel binary run -> export.
  "$cli" sweep "$manifest" --no-timing --jobs 4 --format binary \
    --out run.bin > /dev/null
  "$cli" report export run.bin --out run.json
  cmp ref.json run.json || {
    echo "$name: binary --jobs 4 export differs from JSONL reference" >&2
    exit 1
  }

  # Leg 2: binary shards -> columnar merge -> export.
  "$cli" sweep "$manifest" --no-timing --shards 2 --shard-index 0 \
    --format binary --out s0.bin > /dev/null
  "$cli" sweep "$manifest" --no-timing --shards 2 --shard-index 1 \
    --format binary --out s1.bin > /dev/null
  "$cli" report merge s0.bin s1.bin --out merged.bin > /dev/null
  "$cli" report export merged.bin --out merged.json
  cmp ref.json merged.json || {
    echo "$name: columnar shard merge export differs from reference" >&2
    exit 1
  }

  # Leg 3: JSONL -> binary -> JSONL round trip.
  "$cli" report import ref.json --out imported.bin > /dev/null
  "$cli" report export imported.bin --out imported.json
  cmp ref.json imported.json || {
    echo "$name: import/export round trip differs from reference" >&2
    exit 1
  }

  echo "$name: binary export, shard merge, round trip all byte-identical"
done

# Kill + resume leg: crash the 3rd durable write, resume into the
# binary encoding, export, compare. (--jobs 1 keeps the crash placement
# deterministic, as in chaos_sweep.sh.)
manifest="$repo_root/bench/manifests/chaos_gate.manifest"
rm -f ref.json crash.ckpt crash.bin crash.json
"$cli" sweep "$manifest" --no-timing --jobs 1 --out ref.json > /dev/null
status=0
"$cli" sweep "$manifest" --no-timing --jobs 1 --checkpoint crash.ckpt \
  --crash-after 3 --out crash.bin > /dev/null 2>&1 || status=$?
if [ "$status" -lt 128 ]; then
  echo "kill+resume: expected SIGKILL (status >= 128), got $status" >&2
  exit 1
fi
"$cli" sweep "$manifest" --no-timing --checkpoint crash.ckpt --resume \
  --format binary --out crash.bin > /dev/null
"$cli" report export crash.bin --out crash.json
cmp ref.json crash.json || {
  echo "kill+resume: resumed binary export differs from reference" >&2
  exit 1
}
echo "chaos_gate: kill + resume into binary exports the reference bytes"
