// Smoothing tour: the paper's four perturbations side by side.
//
// Starting from the adversarial profile M_{8,4}(n), apply:
//   1. full i.i.d. reshuffle of box sizes  -> adaptive  (Theorem 1)
//   2. per-box random size perturbation    -> still worst-case
//   3. random cyclic start-time shift      -> still worst-case
//   4. box-order perturbation              -> worst-case for the matched
//                                             algorithm (w.p. 1)
//
// Prints one ratio-vs-n table per smoothing plus the fitted slope against
// log_b n (slope 1 = the full gap, slope 0 = adaptive).
#include <iostream>

#include "core/cadapt.hpp"
#include "util/table.hpp"

int main() {
  using namespace cadapt;
  const model::RegularParams mm_scan{8, 4, 1.0};

  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 6;
  opts.trials = 24;

  auto show = [&](const core::Series& series) {
    std::cout << "\n" << series.name << "\n";
    util::Table table({"n", "ratio", "ci95"});
    for (const auto& p : series.points)
      table.row().cell(p.n).cell(p.ratio_mean, 3).cell(p.ratio_ci95, 3);
    table.print(std::cout);
    std::cout << "slope vs log_4 n: "
              << util::format_double(core::slope_vs_log_n(series, 4), 3)
              << "\n";
  };

  std::cout << "Baseline: the unsmoothed adversary (slope 1).\n";
  {
    core::SweepOptions det = opts;
    det.trials = 1;
    show(core::worst_case_gap_curve(mm_scan, det));
  }

  std::cout << "\n[1] Full i.i.d. reshuffle — Theorem 1 (positive).\n";
  show(core::shuffled_worst_case_curve(mm_scan, opts));

  std::cout << "\n[2] Per-box size perturbation, X ~ U{1..4} (negative).\n";
  show(core::size_perturb_curve(mm_scan, profile::uniform_int_perturb(4),
                                opts));

  std::cout << "\n[3] Random cyclic start-time shift (negative).\n";
  show(core::cyclic_shift_curve(mm_scan, opts));

  std::cout << "\n[4] Box-order perturbation, matched algorithm, budgeted "
               "semantics (negative, w.p. 1).\n";
  {
    core::SweepOptions budgeted = opts;
    budgeted.semantics = engine::BoxSemantics::kBudgeted;
    show(core::order_perturb_curve(mm_scan, budgeted, /*matched=*/true));
  }

  std::cout << "\nOnly the full i.i.d. reshuffle closes the gap — exactly "
               "the paper's message.\n";
  return 0;
}
