// Triangle counting on an adaptive cache — a downstream application.
//
// The paper motivates its matrix-multiplication kernels by the algorithms
// built on them (triangle counting, APSP, ...). This example counts the
// triangles of a random graph as trace(A³)/6, computing A² with the
// cache-oblivious MM-Scan through the cache-adaptive machine, and
// verifies the count against a brute-force enumeration.
#include <cstdint>
#include <iostream>
#include <memory>

#include "algos/mm.hpp"
#include "core/cadapt.hpp"

namespace {

using namespace cadapt;

constexpr std::size_t kVertices = 64;
constexpr std::uint64_t kBlock = 8;

/// Random undirected simple graph as a 0/1 adjacency matrix.
std::vector<double> random_graph(double density, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> adj(kVertices * kVertices, 0.0);
  for (std::size_t i = 0; i < kVertices; ++i)
    for (std::size_t j = i + 1; j < kVertices; ++j)
      if (rng.uniform01() < density) {
        adj[i * kVertices + j] = 1.0;
        adj[j * kVertices + i] = 1.0;
      }
  return adj;
}

std::uint64_t brute_force_triangles(const std::vector<double>& adj) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < kVertices; ++i)
    for (std::size_t j = i + 1; j < kVertices; ++j) {
      if (adj[i * kVertices + j] == 0.0) continue;
      for (std::size_t k = j + 1; k < kVertices; ++k)
        if (adj[i * kVertices + k] != 0.0 && adj[j * kVertices + k] != 0.0)
          ++count;
    }
  return count;
}

}  // namespace

int main() {
  const auto adj = random_graph(0.15, 2024);
  const std::uint64_t expected = brute_force_triangles(adj);

  // A fluctuating cache: i.i.d. boxes between 8 and 256 blocks.
  profile::UniformRange dist(8, 256);
  auto source =
      std::make_unique<profile::DistributionSource>(dist, util::Rng(5));
  paging::CaMachine machine(std::move(source), kBlock, /*record_boxes=*/true);
  paging::AddressSpace space(kBlock);

  algos::SimMatrix<double> a(machine, space, kVertices, kVertices);
  algos::SimMatrix<double> a2(machine, space, kVertices, kVertices);
  for (std::size_t i = 0; i < kVertices; ++i)
    for (std::size_t j = 0; j < kVertices; ++j)
      a.raw(i, j) = adj[i * kVertices + j];

  // A² via MM-Scan (the (8,4,1)-regular kernel the paper dissects)...
  algos::MmScratch scratch(machine, space);
  algos::mm_scan(algos::MatView<double>(a2), algos::MatView<double>(a),
                 algos::MatView<double>(a), scratch, 4);

  // ...then trace(A² · A) with a streaming dot product per vertex.
  double trace = 0.0;
  for (std::size_t i = 0; i < kVertices; ++i)
    for (std::size_t k = 0; k < kVertices; ++k)
      trace += a2.get(i, k) * a.get(k, i);
  const auto triangles = static_cast<std::uint64_t>(trace / 6.0 + 0.5);

  std::cout << "graph: " << kVertices << " vertices, density 0.15\n"
            << "triangles via trace(A^3)/6 on the CA machine: " << triangles
            << "\n"
            << "triangles via brute force:                    " << expected
            << "  -> " << (triangles == expected ? "MATCH" : "MISMATCH")
            << "\n\n"
            << "machine: " << machine.accesses() << " accesses, "
            << machine.misses() << " I/Os across " << machine.boxes_started()
            << " boxes (cache fluctuated between 8 and 256 blocks)\n";
  return triangles == expected ? 0 : 1;
}
