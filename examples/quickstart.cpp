// Quickstart: the 60-second tour of the cadapt library.
//
// 1. Describe an (a,b,c)-regular algorithm (MM-Scan is (8,4,1)).
// 2. Run it symbolically on the adversarial profile M_{8,4}(n): the
//    adaptivity ratio grows like log n (Theorem 2's gap).
// 3. Re-run it on an i.i.d. reshuffle of the same boxes: the ratio is
//    O(1) (Theorem 1, the paper's main result).
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <iostream>

#include "core/cadapt.hpp"

int main() {
  using namespace cadapt;

  // MM-Scan: divide-and-conquer matrix multiply with a trailing merge
  // scan. T(N) = 8 T(N/4) + Θ(N/B)  =>  (8,4,1)-regular.
  const model::RegularParams mm_scan{8, 4, 1.0};
  const std::uint64_t n = 4096;  // problem size in blocks (a power of b)

  std::cout << "Algorithm: " << mm_scan.name()
            << "  (in the worst-case gap regime: " << std::boolalpha
            << mm_scan.in_gap_regime() << ")\n";
  std::cout << "Problem size: " << n << " blocks => "
            << mm_scan.leaves(n) << " base cases\n\n";

  // --- The adversarial profile (Figure 1) ---
  {
    profile::WorstCaseSource adversary(mm_scan.a, mm_scan.b, n);
    const engine::RunResult r = engine::run_regular(mm_scan, n, adversary);
    std::cout << "On the adversarial profile M_{8,4}(" << n << "):\n"
              << "  boxes used:       " << r.boxes << "\n"
              << "  adaptivity ratio: " << r.ratio
              << "   <- Θ(log_b n): the paper's logarithmic gap\n\n";
  }

  // --- The same boxes, i.i.d. reshuffled (Theorem 1) ---
  {
    // The box census of M_{a,b}(n) is geometric over powers of b.
    profile::GeometricPowers census(mm_scan.b, static_cast<double>(mm_scan.a),
                                    0, util::ilog(n, mm_scan.b));
    engine::McOptions opts;
    opts.trials = 64;
    const engine::McSummary s =
        engine::run_monte_carlo_iid(mm_scan, n, census, opts);
    std::cout << "On i.i.d. boxes from the same census (64 trials):\n"
              << "  E[boxes]:         " << s.boxes.mean() << "\n"
              << "  adaptivity ratio: " << s.ratio.mean() << " +/- "
              << s.ratio.ci95()
              << "   <- O(1): cache-adaptive in expectation\n\n";

    // Cross-check the simulation against the exact Lemma 3 recurrence.
    engine::AnalyticSolver solver(mm_scan, census);
    std::cout << "Lemma 3 analytic E[boxes]: " << solver.solve(n).back().f
              << "\n";
  }
  return 0;
}
