// Shared-cache demo: where memory profiles come from.
//
// Two real algorithms — a cache-oblivious matrix multiply and a streaming
// scan — share one cache under global LRU. The demo prints each
// process's emergent memory profile (its slice of the cache over time),
// its square-profile decomposition, and the verdict of the cadapt engine
// on whether a gap-regime algorithm would suffer under such a profile.
#include <algorithm>
#include <iostream>

#include "algos/mm.hpp"
#include "core/cadapt.hpp"
#include "util/table.hpp"

namespace {

using namespace cadapt;

std::vector<paging::BlockId> record_mm(std::size_t n) {
  paging::TraceRecorder rec(8);
  paging::AddressSpace space(8);
  algos::SimMatrix<double> a(rec, space, n, n), b(rec, space, n, n),
      c(rec, space, n, n);
  util::Rng rng(4);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a.raw(i, j) = static_cast<double>(rng.below(8));
      b.raw(i, j) = static_cast<double>(rng.below(8));
    }
  algos::MmScratch scratch(rec, space);
  algos::mm_scan(algos::MatView<double>(c), algos::MatView<double>(a),
                 algos::MatView<double>(b), scratch, 4);
  return rec.block_trace();
}

std::vector<paging::BlockId> streaming_scan(std::uint64_t blocks,
                                            std::size_t passes) {
  std::vector<paging::BlockId> t;
  for (std::size_t p = 0; p < passes; ++p)
    for (paging::BlockId b = 0; b < blocks; ++b) t.push_back(b);
  return t;
}

}  // namespace

int main() {
  sched::SimOptions opts;
  opts.total_cache_blocks = 48;
  opts.policy = sched::Policy::kGlobalLru;

  const sched::SimResult sim = sched::simulate_shared_cache(
      {{"mm_scan 32x32", record_mm(32)},
       {"streaming scan", streaming_scan(512, 6)}},
      opts);

  for (const auto& proc : sim.per_process) {
    std::cout << "=== " << proc.name << " ===\n";
    std::cout << "accesses " << proc.accesses << ", misses " << proc.misses
              << ", finished at global I/O " << proc.completion_time << "\n\n";

    std::cout << "Emergent memory profile (resident blocks over its I/Os):\n";
    const auto boxes = profile::inner_square_profile(proc.occupancy_profile);
    std::cout << profile::render_profile_ascii(boxes, 100, 10, false) << "\n";

    profile::Empirical census(boxes);
    engine::AnalyticSolver solver({8, 4, 1.0}, census);
    const auto levels = solver.solve(util::ipow(4, 9));
    const double r5 = levels[5].ratio;   // n = 4^5
    const double r9 = levels[9].ratio;   // n = 4^9
    std::cout << "If an (8,4,1)-regular algorithm saw boxes drawn from this "
                 "profile, its\nexpected adaptivity ratio would be "
              << util::format_double(r5, 2) << " at n = 4^5 and "
              << util::format_double(r9, 2)
              << " at n = 4^9\n(the adversarial profile reaches 6.00 and "
                 "10.00 there: growth, not a constant).\n\n";
  }

  std::cout << "The matrix multiply holds a working-set-sized slice; the "
               "streaming scan\nchurns the rest. Neither produces anything "
               "like the adversarial profile —\nthe fluctuations real "
               "workloads cause are the benign kind.\n";
  return 0;
}
