// Profile gallery: square profiles as first-class objects.
//
//  * Renders the recursive worst-case profile (the paper's Figure 1).
//  * Shows the inner square-profile approximation of arbitrary memory
//    profiles — the reduction that lets all of cache-adaptive analysis
//    work with boxes (Definition 1).
//  * Demonstrates the smoothing transforms on a small profile you can
//    eyeball.
#include <iostream>

#include "core/cadapt.hpp"

int main() {
  using namespace cadapt;

  std::cout << "=== Figure 1: the adversarial profile M_{8,4}(256) ===\n\n";
  {
    profile::WorstCaseSource source(8, 4, 256);
    const auto boxes = profile::materialize(source);
    std::cout << profile::render_profile_ascii(boxes, 110, 12, true) << "\n";
  }

  std::cout << "=== Square approximation of a sawtooth memory profile ===\n\n";
  {
    // A cache that ramps up and crashes (the winner-take-all + periodic
    // flush pattern from the paper's introduction).
    std::vector<std::uint64_t> m;
    for (int cycle = 0; cycle < 4; ++cycle)
      for (std::uint64_t t = 1; t <= 24; ++t) m.push_back(t);
    const auto boxes = profile::inner_square_profile(m);
    std::cout << "raw profile: 4 cycles of a ramp 1..24 (" << m.size()
              << " time steps)\n";
    std::cout << "inner square decomposition:";
    for (const auto b : boxes) std::cout << " " << b;
    std::cout << "\n\n"
              << profile::render_profile_ascii(boxes, 96, 10, false) << "\n";
  }

  std::cout << "=== Smoothing transforms on M_{2,2}(8) ===\n\n";
  {
    auto factory = [] { return std::make_unique<profile::WorstCaseSource>(2, 2, 8); };
    auto show = [](const char* name, std::vector<profile::BoxSize> boxes) {
      std::cout << name << ":";
      for (const auto b : boxes) std::cout << " " << b;
      std::cout << "\n";
    };

    auto original = factory();
    show("original           ", profile::materialize(*original));

    profile::CyclicShiftSource shifted(factory, 5);
    show("cyclic shift by 5  ", profile::materialize(shifted));

    profile::SizePerturbSource perturbed(factory(),
                                         profile::uniform_int_perturb(3),
                                         util::Rng(7));
    show("sizes x U{1..3}    ", profile::materialize(perturbed));

    profile::OrderPerturbedWorstCaseSource reordered(2, 2, 8, 7);
    show("order-perturbed    ", profile::materialize(reordered));

    auto shuffled = [&] {
      auto src = factory();
      auto boxes = profile::materialize(*src);
      util::Rng rng(3);
      profile::shuffle_boxes(boxes, rng);
      return boxes;
    }();
    show("uniformly shuffled ", shuffled);
  }
  return 0;
}
