// Real matrices under a fluctuating cache.
//
// Multiplies two 64x64 matrices three ways — MM-Scan, MM-Inplace and the
// naive triple loop — through the cache-adaptive paging machine
// (LRU paging, square-profile cache sizes, cleared at box boundaries),
// verifies all three against a reference product, and reports the I/O
// traffic each incurred on (a) the MM-Scan adversarial profile and (b) a
// benign random profile.
#include <cmath>
#include <iostream>
#include <memory>

#include "algos/mm.hpp"
#include "core/cadapt.hpp"
#include "util/table.hpp"

namespace {

using namespace cadapt;

constexpr std::size_t kN = 64;
constexpr std::uint64_t kBlock = 8;

std::vector<double> random_matrix(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> m(kN * kN);
  for (auto& v : m) v = static_cast<double>(rng.below(10)) - 5.0;
  return m;
}

std::unique_ptr<profile::BoxSource> make_profile(bool adversarial) {
  if (adversarial) {
    return std::make_unique<profile::CyclingSource>([] {
      return std::make_unique<profile::WorstCaseSource>(8, 4, 256, 2);
    });
  }
  // Benign: i.i.d. boxes, uniform over a wide range of cache sizes.
  static profile::UniformRange dist(8, 512);
  return std::make_unique<profile::DistributionSource>(dist, util::Rng(99));
}

struct Outcome {
  std::uint64_t ios;
  std::uint64_t boxes;
  bool correct;
};

template <typename Fn>
Outcome run(bool adversarial, Fn&& fn) {
  paging::CaMachine machine(make_profile(adversarial), kBlock);
  paging::AddressSpace space(kBlock);
  algos::SimMatrix<double> a(machine, space, kN, kN), b(machine, space, kN, kN),
      c(machine, space, kN, kN);
  const auto av = random_matrix(1), bv = random_matrix(2);
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t j = 0; j < kN; ++j) {
      a.raw(i, j) = av[i * kN + j];
      b.raw(i, j) = bv[i * kN + j];
    }
  algos::MmScratch scratch(machine, space);
  fn(a, b, c, scratch);

  const auto expected = algos::mm_reference(av, bv, kN);
  bool correct = true;
  for (std::size_t i = 0; i < kN * kN; ++i)
    if (std::abs(c.raw(i / kN, i % kN) - expected[i]) > 1e-9) correct = false;
  return {machine.misses(), machine.boxes_started(), correct};
}

}  // namespace

int main() {
  std::cout << "64x64 double matrices, B = " << kBlock
            << " words/block, cache size driven by a square profile.\n";

  for (const bool adversarial : {true, false}) {
    std::cout << "\nProfile: "
              << (adversarial ? "adversarial M_{8,4} (cycled, scaled x2)"
                              : "benign i.i.d. U[8,512]")
              << "\n";
    util::Table table({"algorithm", "I/Os", "boxes", "correct"});

    const Outcome scan = run(adversarial, [](auto& a, auto& b, auto& c,
                                             auto& scratch) {
      algos::mm_scan(algos::MatView<double>(c), algos::MatView<double>(a),
                     algos::MatView<double>(b), scratch, 4);
    });
    table.row().cell(std::string("MM-Scan")).cell(scan.ios).cell(scan.boxes)
        .cell(std::string(scan.correct ? "yes" : "NO"));

    const Outcome inplace = run(adversarial, [](auto& a, auto& b, auto& c,
                                                auto&) {
      algos::mm_inplace(algos::MatView<double>(c), algos::MatView<double>(a),
                        algos::MatView<double>(b), 4);
    });
    table.row().cell(std::string("MM-Inplace")).cell(inplace.ios)
        .cell(inplace.boxes)
        .cell(std::string(inplace.correct ? "yes" : "NO"));

    const Outcome naive = run(adversarial, [](auto& a, auto& b, auto& c,
                                              auto&) {
      algos::mm_naive(algos::MatView<double>(c), algos::MatView<double>(a),
                      algos::MatView<double>(b));
    });
    table.row().cell(std::string("naive loop")).cell(naive.ios)
        .cell(naive.boxes)
        .cell(std::string(naive.correct ? "yes" : "NO"));

    table.print(std::cout);
  }

  std::cout << "\nAll three compute the same (verified) product; they "
               "differ only in how\ngracefully their memory traffic adapts "
               "to the fluctuating cache.\n";
  return 0;
}
