// E17 — beyond the paper: exhaustive adversary search.
//
// The paper exhibits M_{a,b}(n) (potential n^{log_b a}(log_b n + 1)) and
// proves an O(log n) upper bound, leaving a constant-factor slack. This
// bench computes the EXACT worst case over all square profiles (at small
// n) by dynamic programming over execution positions, under the sound
// budgeted box semantics:
//
//  * c = 1, a > b: the optimum grows with log n and stays within ~2.2x of
//    the paper's construction — the construction is essentially optimal.
//  * c = 0: the optimum over all profiles converges to a constant —
//    Theorem 2's adaptivity claim verified against every profile, not
//    just the constructed one.
//  * The §4 optimistic semantics over-counts the adversary (boxes just
//    below a power of b are charged potential they cannot convert) —
//    quantified in the last table.
#include <iostream>

#include "bench_common.hpp"
#include "engine/adversary.hpp"
#include "profile/box_source.hpp"
#include "util/math.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E17 (beyond the paper: exhaustive adversary search)",
      "Exact worst case over ALL square profiles vs the paper's "
      "construction.");

  std::cout << "\n--- (8,4,1): the gap regime (budgeted semantics) ---\n";
  {
    util::Table table({"n", "DP optimum", "construction", "opt/constr",
                       "optimal ratio", "log_4 n + 1"});
    for (unsigned k = 1; k <= 4; ++k) {
      const std::uint64_t n = util::ipow(4, k);
      const auto r = engine::solve_adversary({8, 4, 1.0}, n);
      table.row()
          .cell(n)
          .cell(r.optimal_potential, 1)
          .cell(r.construction_potential, 1)
          .cell(r.optimal_potential / r.construction_potential, 3)
          .cell(r.optimal_ratio, 3)
          .cell(std::uint64_t{k + 1});
    }
    table.print(std::cout);
  }

  std::cout << "\n--- (8,4,0): MM-Inplace's shape (worst case over all "
               "profiles is O(1)) ---\n";
  {
    util::Table table({"n", "optimal ratio"});
    for (unsigned k = 1; k <= 4; ++k) {
      const std::uint64_t n = util::ipow(4, k);
      const auto r = engine::solve_adversary({8, 4, 0.0}, n);
      table.row().cell(n).cell(r.optimal_ratio, 3);
    }
    table.print(std::cout);
  }

  std::cout << "\n--- (2,2,1): the a = b shape (gap too) ---\n";
  {
    util::Table table({"n", "optimal ratio", "log_2 n + 1"});
    for (unsigned k = 2; k <= 7; ++k) {
      const std::uint64_t n = util::ipow(2, k);
      const auto r = engine::solve_adversary({2, 2, 1.0}, n);
      table.row().cell(n).cell(r.optimal_ratio, 3).cell(std::uint64_t{k + 1});
    }
    table.print(std::cout);
  }

  std::cout << "\n--- model artifact: optimistic vs budgeted adversary, "
               "(8,4,1) ---\n";
  {
    util::Table table({"n", "budgeted optimum", "optimistic optimum",
                       "inflation"});
    for (unsigned k = 1; k <= 3; ++k) {
      const std::uint64_t n = util::ipow(4, k);
      const auto budgeted = engine::solve_adversary({8, 4, 1.0}, n);
      const auto optimistic = engine::solve_adversary(
          {8, 4, 1.0}, n, engine::ScanPlacement::kEnd,
          engine::BoxSemantics::kOptimistic);
      table.row()
          .cell(n)
          .cell(budgeted.optimal_potential, 1)
          .cell(optimistic.optimal_potential, 1)
          .cell(optimistic.optimal_potential / budgeted.optimal_potential, 3);
    }
    table.print(std::cout);
  }

  // Show one optimal adversarial profile prefix: not the clean recursive
  // construction, but the same character (small boxes through leaves, a
  // near-problem-sized box at each scan).
  {
    const auto r = engine::solve_adversary({8, 4, 1.0}, 16);
    std::cout << "\nwitness profile for (8,4,1), n = 16 ("
              << r.witness.size() << " boxes):";
    for (const auto b : r.witness) std::cout << " " << b;
    std::cout << "\n";
  }
  return 0;
}
