// Micro-benchmarks (google-benchmark) for the simulator's hot paths:
// box consumption in the symbolic engine, lazy worst-case profile
// generation, LRU paging, and the analytic solver. These guard the
// simulator's throughput — the experiment benches sweep tens of millions
// of boxes.
#include <benchmark/benchmark.h>

#include "algos/funnelsort.hpp"
#include "algos/sim_data.hpp"
#include "campaign/cell_runner.hpp"
#include "campaign/manifest.hpp"
#include "engine/analytic.hpp"
#include "engine/exec.hpp"
#include "engine/montecarlo.hpp"
#include "obs/recorder.hpp"
#include "obs/sink.hpp"
#include "paging/address_space.hpp"
#include "paging/ca_machine.hpp"
#include "paging/lru_cache.hpp"
#include "paging/reference_lru.hpp"
#include "profile/box_source.hpp"
#include "profile/distributions.hpp"
#include "profile/worst_case.hpp"
#include "sched/deque.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace {

using namespace cadapt;

void BM_EngineUnitBoxes(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    while (!exec.done()) exec.consume_box(1);
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineUnitBoxes)->Arg(3)->Arg(5)->Arg(6);

// The same loop with the observability layer attached, aggregates only.
// Compare against BM_EngineUnitBoxes: the gap is the full cost of the
// instrumentation, and BM_EngineUnitBoxes itself (recorder pointer null)
// must stay within noise of the pre-observability baseline — the
// "disabled path costs one predictable branch" claim.
void BM_EngineUnitBoxesRecorded(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    obs::ExecRecorder recorder;  // aggregates only, no event stream
    exec.set_recorder(&recorder);
    while (!exec.done()) exec.consume_box(1);
    boxes += exec.boxes_consumed();
    benchmark::DoNotOptimize(recorder.total_progress());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineUnitBoxesRecorded)->Arg(3)->Arg(5)->Arg(6);

// Full event stream into a NullSink: the cost ceiling of per-box tracing
// (event construction dominates; a JsonlSink adds only serialization).
void BM_EngineUnitBoxesTraced(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    obs::NullSink sink;
    obs::ExecRecorder recorder(&sink);
    exec.set_recorder(&recorder);
    while (!exec.done()) exec.consume_box(1);
    boxes += exec.boxes_consumed();
    benchmark::DoNotOptimize(sink.events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineUnitBoxesTraced)->Arg(3)->Arg(5);

void BM_EngineWorstCaseProfile(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    while (!exec.done()) exec.consume_box(*source.next());
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineWorstCaseProfile)->Arg(4)->Arg(6)->Arg(7);

// The run-length bulk path (docs/PERF.md): the same worst-case replay as
// BM_EngineWorstCaseProfile, driven through run_to_completion's bulk
// driver (next_run + consume_run + closed-form block replay) instead of
// the per-box loop. Items processed counts boxes RETIRED, not calls, so
// items/sec is directly comparable against BM_EngineWorstCaseProfile —
// that before/after pair is what BENCH_engine_rle.json commits. The k=12
// arg covers the regime the per-box loop cannot reach at all (~7.9e10
// boxes per iteration).
void BM_EngineRunBoxes(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    engine::run_to_completion(exec, source);
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineRunBoxes)->Arg(4)->Arg(6)->Arg(7)->Arg(10)->Arg(12);

// The bulk driver forced down the per-box fallback (RunOptions.per_box):
// the "before" side of the pair at the old toy scales. Any gap between
// this and BM_EngineWorstCaseProfile is dispatch overhead only.
void BM_EngineRunBoxesPerBox(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    engine::RunOptions options;
    options.per_box = true;
    engine::run_to_completion(exec, source, options);
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineRunBoxesPerBox)->Arg(4)->Arg(6)->Arg(7);

// Bulk path with a kRuns recorder attached: the aggregated-observation
// overhead (one RunObservation per run/replay instead of one per box).
void BM_EngineRunBoxesRecorded(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    obs::ExecRecorder recorder(nullptr, obs::BoxGranularity::kRuns);
    engine::RunOptions options;
    options.recorder = &recorder;
    engine::run_to_completion(exec, source, options);
    boxes += exec.boxes_consumed();
    benchmark::DoNotOptimize(recorder.total_progress());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineRunBoxesRecorded)->Arg(6)->Arg(10);

void BM_WorstCaseGeneration(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    profile::WorstCaseSource source(8, 4, n);
    while (auto box = source.next()) benchmark::DoNotOptimize(*box);
    boxes += profile::worst_case_box_count(8, 4, n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_WorstCaseGeneration)->Arg(5)->Arg(7);

void BM_IidSampling(benchmark::State& state) {
  profile::GeometricPowers dist(4, 8.0, 0, 8);
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(dist.sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IidSampling);

void BM_LruAccess(benchmark::State& state) {
  paging::LruCache cache(static_cast<std::uint64_t>(state.range(0)));
  util::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(rng.below(1 << 12)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruAccess)->Arg(64)->Arg(1024);

// ---- Paging fast path (docs/PERF.md, "Paging fast path") ----
// Before/after pairs for the three layers of the fast path; one run of
// this family is committed as BENCH_paging.json. The "before" side is
// the reference kept for the differential suite (ReferenceLruCache /
// set_per_access), proven bit-identical by tests/test_paging_fast.cpp.

// Data-structure layer: flat intrusive LRU (BM_LruAccess above) vs the
// old std::list + unordered_map implementation on the same block stream.
void BM_LruCacheReference(benchmark::State& state) {
  paging::ReferenceLruCache cache(static_cast<std::uint64_t>(state.range(0)));
  util::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(rng.below(1 << 12)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheReference)->Arg(64)->Arg(1024);

constexpr std::uint64_t kScanWords = 1 << 16;
constexpr std::uint64_t kScanBlock = 8;

std::unique_ptr<profile::BoxSource> make_const_boxes() {
  return std::make_unique<profile::CyclingSource>([] {
    return std::make_unique<profile::VectorSource>(
        std::vector<profile::BoxSize>(64, 64));
  });
}

paging::CaMachine make_scan_machine() {
  return paging::CaMachine(make_const_boxes(), kScanBlock,
                           /*record_boxes=*/false);
}

// Dispatch layer: a sequential word scan (the dominant pattern in the
// instrumented algorithms) through the pre-fast-path stack (per-word
// virtual dispatch into the list+map LRU — the "before" of the >= 10x
// per-access claim), the per-access path on the flat LRU, the default
// hot-block shortcut, and the access_run bulk interface.
void BM_PagingAccessReferenceStack(benchmark::State& state) {
  paging::ReferenceCaMachine machine(make_const_boxes(), kScanBlock);
  for (auto _ : state) {
    for (std::uint64_t w = 0; w < kScanWords; ++w) machine.access(w);
  }
  benchmark::DoNotOptimize(machine.misses());
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(kScanWords));
}
BENCHMARK(BM_PagingAccessReferenceStack);

void BM_PagingAccessPerWord(benchmark::State& state) {
  auto machine = make_scan_machine();
  machine.set_per_access(true);
  for (auto _ : state) {
    for (std::uint64_t w = 0; w < kScanWords; ++w) machine.access(w);
  }
  benchmark::DoNotOptimize(machine.misses());
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(kScanWords));
}
BENCHMARK(BM_PagingAccessPerWord);

void BM_PagingAccessFast(benchmark::State& state) {
  auto machine = make_scan_machine();
  for (auto _ : state) {
    for (std::uint64_t w = 0; w < kScanWords; ++w) machine.access(w);
  }
  benchmark::DoNotOptimize(machine.misses());
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(kScanWords));
}
BENCHMARK(BM_PagingAccessFast);

void BM_PagingAccessRun(benchmark::State& state) {
  auto machine = make_scan_machine();
  for (auto _ : state) {
    for (std::uint64_t w = 0; w < kScanWords; w += kScanBlock) {
      machine.access_run(w, kScanBlock);
    }
  }
  benchmark::DoNotOptimize(machine.misses());
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(kScanWords));
}
BENCHMARK(BM_PagingAccessRun);

// Replay layer: the same scan consumed from a recorded trace by
// CaMachine::replay_trace — one previous-occurrence compare per run, no
// hash probe, no LRU update. This is what every post-capture trial of a
// `--capture-trace` Monte-Carlo cell executes.
void BM_PagingReplayWalk(benchmark::State& state) {
  paging::BlockRunRecorder recorder(kScanBlock);
  for (std::uint64_t w = 0; w < kScanWords; w += kScanBlock) {
    recorder.access_run(w, kScanBlock);
  }
  const paging::BlockRunTrace trace = recorder.take();
  std::uint64_t misses = 0;
  for (auto _ : state) {
    auto machine = make_scan_machine();
    machine.replay_trace(trace);
    misses += machine.misses();
  }
  benchmark::DoNotOptimize(misses);
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(kScanWords));
}
BENCHMARK(BM_PagingReplayWalk);

// End-to-end layer: one real-algorithm Monte-Carlo cell — funnelsort on
// 65536 keys under i.i.d. uniform boxes, 32 trials (the E16 scale in
// bench/manifests). The "before" runs each trial on the pre-fast-path
// reference stack (same trial seeding and input generation as the cell
// runner); "direct" and "replay" go through the campaign cell runner,
// i.e. the exact code path of `cadapt mc --sort funnel
// [--capture-trace]`. Replay pays one capture run per cell, so its
// advantage grows with the trial count (campaign default is 64).
constexpr std::uint64_t kCellKeys = 65536;
constexpr std::uint64_t kCellTrials = 32;

void BM_McCellFunnelReferenceStack(benchmark::State& state) {
  std::uint64_t misses = 0;
  for (auto _ : state) {
    for (std::uint64_t t = 0; t < kCellTrials; ++t) {
      const std::uint64_t trial_seed = engine::derive_trial_seed(42, t, 0);
      auto dist = std::make_shared<profile::UniformRange>(4, 128);
      util::Rng profile_rng(util::hash_combine(trial_seed, 0x50f17eull));
      paging::ReferenceCaMachine machine(
          std::make_unique<profile::CyclingSource>(
              [dist, profile_rng]() mutable {
                return std::make_unique<profile::DistributionSource>(
                    *dist, profile_rng.split());
              }),
          kScanBlock);
      paging::AddressSpace space(kScanBlock);
      algos::SimVector<std::int64_t> data(
          machine, space, static_cast<std::size_t>(kCellKeys));
      util::Rng rng(trial_seed);
      for (std::size_t i = 0; i < kCellKeys; ++i) {
        data.raw(i) = static_cast<std::int64_t>(rng.below(1u << 24));
      }
      algos::funnelsort(machine, space, data);
      misses += machine.misses();
    }
  }
  benchmark::DoNotOptimize(misses);
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(kCellTrials));
}
BENCHMARK(BM_McCellFunnelReferenceStack);

void run_mc_cell(benchmark::State& state, bool capture_trace) {
  campaign::Cell cell;
  cell.sort = "funnel";
  cell.profile = campaign::parse_sort_profile_token("uniform:4:128");
  cell.seed = 42;
  campaign::CellRunOptions options;
  options.keys = kCellKeys;
  options.block = kScanBlock;
  options.timing = false;
  options.capture_trace = capture_trace;
  engine::McOptions trial_options;
  trial_options.seed = cell.seed;
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    const auto runner = campaign::make_program_runner(cell, options);
    for (std::uint64_t t = 0; t < kCellTrials; ++t) {
      boxes += engine::run_single_trial(trial_options, runner, t,
                                        /*timing=*/false)
                   .boxes;
    }
  }
  benchmark::DoNotOptimize(boxes);
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(kCellTrials));
}

void BM_McCellFunnelDirect(benchmark::State& state) {
  run_mc_cell(state, /*capture_trace=*/false);
}
BENCHMARK(BM_McCellFunnelDirect);

void BM_McCellFunnelReplay(benchmark::State& state) {
  run_mc_cell(state, /*capture_trace=*/true);
}
BENCHMARK(BM_McCellFunnelReplay);

// The work-stealing deque's serial hot path (docs/PARALLEL.md): the
// owner's push/pop pair, and push/steal — the two single-element
// round-trips every scheduling decision is built from. Contention costs
// are the tsan-lane stress test's concern; this guards the per-op floor
// the parallel engine pays even when no thief ever shows up.
void BM_StealDeque(benchmark::State& state) {
  const bool steal_side = state.range(0) != 0;
  sched::StealDeque<std::uint64_t> dq(1024);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 512; ++i) dq.push(i);
    for (std::uint64_t i = 0; i < 512; ++i) {
      sum += steal_side ? *dq.steal() : *dq.pop();
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_StealDeque)->Arg(0)->Arg(1);

// An adaptive-sort cell — the workload trace replay cannot cover —
// through campaign::run_cell at workers = 1 (the sequential loop) vs 4
// (the concurrent trial pool). Items = trials, so items/sec across the
// two args is the cell-level speedup BENCH_parallel.json reports as
// cell_wall_speedup. Records land at their trial index either way; the
// identity tests hold the two byte-equal.
void BM_ParallelCell(benchmark::State& state) {
  campaign::Cell cell;
  cell.sort = "adaptive";
  cell.profile = campaign::parse_sort_profile_token("uniform:4:64");
  cell.seed = 42;
  cell.trials = 8;
  campaign::CellRunOptions options;
  options.keys = 4096;
  options.block = kScanBlock;
  options.timing = false;
  options.workers = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    for (const robust::TrialRecord& record :
         campaign::run_cell(cell, options)) {
      boxes += record.boxes;
    }
  }
  benchmark::DoNotOptimize(boxes);
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(cell.trials));
}
BENCHMARK(BM_ParallelCell)->Arg(1)->Arg(4);

void BM_AnalyticSolve(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  profile::GeometricPowers dist(4, 8.0, 0, k);
  engine::AnalyticSolver solver({8, 4, 1.0}, dist);
  for (auto _ : state)
    benchmark::DoNotOptimize(solver.solve(util::ipow(4, k)).back().f);
}
BENCHMARK(BM_AnalyticSolve)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
