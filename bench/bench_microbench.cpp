// Micro-benchmarks (google-benchmark) for the simulator's hot paths:
// box consumption in the symbolic engine, lazy worst-case profile
// generation, LRU paging, and the analytic solver. These guard the
// simulator's throughput — the experiment benches sweep tens of millions
// of boxes.
#include <benchmark/benchmark.h>

#include "engine/analytic.hpp"
#include "engine/exec.hpp"
#include "obs/recorder.hpp"
#include "obs/sink.hpp"
#include "paging/lru_cache.hpp"
#include "profile/distributions.hpp"
#include "profile/worst_case.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace {

using namespace cadapt;

void BM_EngineUnitBoxes(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    while (!exec.done()) exec.consume_box(1);
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineUnitBoxes)->Arg(3)->Arg(5)->Arg(6);

// The same loop with the observability layer attached, aggregates only.
// Compare against BM_EngineUnitBoxes: the gap is the full cost of the
// instrumentation, and BM_EngineUnitBoxes itself (recorder pointer null)
// must stay within noise of the pre-observability baseline — the
// "disabled path costs one predictable branch" claim.
void BM_EngineUnitBoxesRecorded(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    obs::ExecRecorder recorder;  // aggregates only, no event stream
    exec.set_recorder(&recorder);
    while (!exec.done()) exec.consume_box(1);
    boxes += exec.boxes_consumed();
    benchmark::DoNotOptimize(recorder.total_progress());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineUnitBoxesRecorded)->Arg(3)->Arg(5)->Arg(6);

// Full event stream into a NullSink: the cost ceiling of per-box tracing
// (event construction dominates; a JsonlSink adds only serialization).
void BM_EngineUnitBoxesTraced(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    obs::NullSink sink;
    obs::ExecRecorder recorder(&sink);
    exec.set_recorder(&recorder);
    while (!exec.done()) exec.consume_box(1);
    boxes += exec.boxes_consumed();
    benchmark::DoNotOptimize(sink.events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineUnitBoxesTraced)->Arg(3)->Arg(5);

void BM_EngineWorstCaseProfile(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    while (!exec.done()) exec.consume_box(*source.next());
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineWorstCaseProfile)->Arg(4)->Arg(6)->Arg(7);

// The run-length bulk path (docs/PERF.md): the same worst-case replay as
// BM_EngineWorstCaseProfile, driven through run_to_completion's bulk
// driver (next_run + consume_run + closed-form block replay) instead of
// the per-box loop. Items processed counts boxes RETIRED, not calls, so
// items/sec is directly comparable against BM_EngineWorstCaseProfile —
// that before/after pair is what BENCH_engine_rle.json commits. The k=12
// arg covers the regime the per-box loop cannot reach at all (~7.9e10
// boxes per iteration).
void BM_EngineRunBoxes(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    engine::run_to_completion(exec, source);
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineRunBoxes)->Arg(4)->Arg(6)->Arg(7)->Arg(10)->Arg(12);

// The bulk driver forced down the per-box fallback (RunOptions.per_box):
// the "before" side of the pair at the old toy scales. Any gap between
// this and BM_EngineWorstCaseProfile is dispatch overhead only.
void BM_EngineRunBoxesPerBox(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    engine::RunOptions options;
    options.per_box = true;
    engine::run_to_completion(exec, source, options);
    boxes += exec.boxes_consumed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineRunBoxesPerBox)->Arg(4)->Arg(6)->Arg(7);

// Bulk path with a kRuns recorder attached: the aggregated-observation
// overhead (one RunObservation per run/replay instead of one per box).
void BM_EngineRunBoxesRecorded(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    engine::RegularExecution exec({8, 4, 1.0}, n);
    profile::WorstCaseSource source(8, 4, n);
    obs::ExecRecorder recorder(nullptr, obs::BoxGranularity::kRuns);
    engine::RunOptions options;
    options.recorder = &recorder;
    engine::run_to_completion(exec, source, options);
    boxes += exec.boxes_consumed();
    benchmark::DoNotOptimize(recorder.total_progress());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_EngineRunBoxesRecorded)->Arg(6)->Arg(10);

void BM_WorstCaseGeneration(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const std::uint64_t n = util::ipow(4, k);
  std::uint64_t boxes = 0;
  for (auto _ : state) {
    profile::WorstCaseSource source(8, 4, n);
    while (auto box = source.next()) benchmark::DoNotOptimize(*box);
    boxes += profile::worst_case_box_count(8, 4, n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(boxes));
}
BENCHMARK(BM_WorstCaseGeneration)->Arg(5)->Arg(7);

void BM_IidSampling(benchmark::State& state) {
  profile::GeometricPowers dist(4, 8.0, 0, 8);
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(dist.sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IidSampling);

void BM_LruAccess(benchmark::State& state) {
  paging::LruCache cache(static_cast<std::uint64_t>(state.range(0)));
  util::Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(rng.below(1 << 12)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruAccess)->Arg(64)->Arg(1024);

void BM_AnalyticSolve(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  profile::GeometricPowers dist(4, 8.0, 0, k);
  engine::AnalyticSolver solver({8, 4, 1.0}, dist);
  for (auto _ : state)
    benchmark::DoNotOptimize(solver.solve(util::ipow(4, k)).back().f);
}
BENCHMARK(BM_AnalyticSolve)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
