// E2 — Theorem 2's logarithmic gap.
//
// Runs (a,b,1)-regular algorithms on their own adversarial profiles
// M_{a,b}(n): the adaptivity ratio grows as log_b n + 1 exactly (slope 1
// against log_b n). The in-place (c = 0) variant on the same profile, and
// an a < b algorithm, stay O(1) — the other branches of Theorem 2.
#include "bench_common.hpp"
#include "profile/worst_case.hpp"

namespace {

// §3's head-to-head: on ONE pass of M_{8,4}(n), MM-Scan completes exactly
// one multiply while the scan-free MM-Inplace completes Θ(log n) of them.
void multiplies_per_profile() {
  using namespace cadapt;
  std::cout << "\n--- §3: multiplies completed on one pass of M_{8,4}(n) ---\n";
  util::Table table({"n", "MM-Scan (8,4,1)", "MM-Inplace (8,4,0)",
                     "log_4 n + 1"});
  for (unsigned k = 3; k <= 8; ++k) {
    const std::uint64_t n = util::ipow(4, k);
    profile::WorstCaseSource scan_profile(8, 4, n);
    profile::WorstCaseSource inplace_profile(8, 4, n);
    const std::uint64_t scan_runs =
        core::count_completions({8, 4, 1.0}, n, scan_profile);
    const std::uint64_t inplace_runs =
        core::count_completions({8, 4, 0.0}, n, inplace_profile);
    table.row().cell(n).cell(scan_runs).cell(inplace_runs).cell(
        std::uint64_t{k + 1});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace cadapt;
  bench::print_header(
      "E2 (Theorem 2)",
      "(a,b,1)-regular with a > b is Θ(log_b n) from optimal on its "
      "worst-case profile;\nc = 0 (MM-Inplace) and a < b variants are "
      "cache-adaptive even there.");

  core::SweepOptions opts;
  opts.kmin = 1;
  opts.kmax = 8;
  opts.trials = 1;

  // The gap regime: a > b, c = 1.
  bench::print_series(core::worst_case_gap_curve({8, 4, 1.0}, opts), 4);
  bench::print_series(core::worst_case_gap_curve({7, 4, 1.0}, opts), 4);
  {
    core::SweepOptions o2 = opts;
    o2.kmax = 12;  // b = 2 needs more levels for the same n
    bench::print_series(core::worst_case_gap_curve({4, 2, 1.0}, o2), 2);
  }

  // Same adversarial profile, but the budgeted (conservative) semantics:
  // identical gap, confirming the construction does not depend on the
  // optimistic box model.
  {
    core::SweepOptions o2 = opts;
    o2.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::worst_case_gap_curve({8, 4, 1.0}, o2);
    s.name += " [budgeted semantics]";
    bench::print_series(s, 4);
  }

  // Escapes: MM-Inplace (8,4,0) on MM-Scan's profile M_{8,4}.
  bench::print_series(core::worst_case_gap_curve({8, 4, 0.0}, opts, 8, 4), 4);
  // a < b with c = 1: linear-time, trivially adaptive (Theorem 2). Here
  // the base-case progress function under-counts the (scan-dominated)
  // work, so the operation-based progress of footnote 4 is used.
  {
    core::SweepOptions o2 = opts;
    o2.unit_progress = true;
    core::Series s = core::worst_case_gap_curve({2, 4, 1.0}, o2, 2, 4);
    s.name += " [operation-based progress]";
    bench::print_series(s, 4);
  }

  multiplies_per_profile();
  return 0;
}
