// E16 — beyond the paper: explicit adaptivity (Barve–Vitter style) vs
// cache-obliviousness under a fluctuating cache.
//
// The paper's premise (§1, §5): explicitly adaptive algorithms are
// complicated and fragile, and cache-obliviousness gets adaptivity "for
// free" except for the (smoothable) log gap. This bench puts the two
// approaches head to head on real data: the explicitly adaptive
// multi-way merge sort (queries the current box size) against the
// cache-oblivious two-way merge sort, over a spectrum of profiles driven
// through the boxed CA machine.
#include <iostream>
#include <memory>

#include "algos/adaptive_sort.hpp"
#include "algos/funnelsort.hpp"
#include "algos/sort.hpp"
#include "bench_common.hpp"
#include "paging/ca_machine.hpp"
#include "profile/distributions.hpp"
#include "profile/generators.hpp"
#include "profile/square_approx.hpp"
#include "profile/worst_case.hpp"
#include "util/random.hpp"

namespace {

using namespace cadapt;

constexpr std::uint64_t kBlock = 8;
constexpr std::size_t kKeys = 16384;

std::vector<std::int64_t> random_values(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int64_t> v(kKeys);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.below(1u << 24));
  return v;
}

struct Outcome {
  std::uint64_t ios;
  std::uint64_t boxes;
  bool sorted;
};

template <typename SortFn>
Outcome run_sort(profile::SourceFactory profile_factory, SortFn&& sort_fn) {
  paging::CaMachine machine(
      std::make_unique<profile::CyclingSource>(std::move(profile_factory)),
      kBlock, /*record_boxes=*/false);
  paging::AddressSpace space(kBlock);
  algos::SimVector<std::int64_t> data(machine, space, kKeys);
  const auto values = random_values(101);
  for (std::size_t i = 0; i < kKeys; ++i) data.raw(i) = values[i];

  sort_fn(machine, space, data);

  bool sorted = true;
  for (std::size_t i = 1; i < kKeys; ++i)
    if (data.raw(i - 1) > data.raw(i)) sorted = false;
  return {machine.misses(), machine.boxes_started(), sorted};
}

void compare_on(const std::string& name, profile::SourceFactory factory) {
  util::Table table({"algorithm", "I/Os", "boxes", "sorted"});
  const Outcome adaptive = run_sort(factory, [](paging::CaMachine& machine,
                                                paging::AddressSpace& space,
                                                auto& data) {
    algos::adaptive_merge_sort(machine, space, data, [&machine] {
      return machine.current_box_size();
    });
  });
  const Outcome funnel =
      run_sort(factory, [](paging::CaMachine& machine,
                           paging::AddressSpace& space, auto& data) {
        algos::funnelsort(machine, space, data);
      });
  const Outcome oblivious =
      run_sort(factory, [](paging::CaMachine& machine,
                           paging::AddressSpace& space, auto& data) {
        algos::merge_sort(machine, space, data);
      });
  table.row()
      .cell(std::string("adaptive k-way (explicit)"))
      .cell(adaptive.ios)
      .cell(adaptive.boxes)
      .cell(std::string(adaptive.sorted ? "yes" : "NO"));
  table.row()
      .cell(std::string("funnelsort (oblivious, optimal)"))
      .cell(funnel.ios)
      .cell(funnel.boxes)
      .cell(std::string(funnel.sorted ? "yes" : "NO"));
  table.row()
      .cell(std::string("cache-oblivious 2-way"))
      .cell(oblivious.ios)
      .cell(oblivious.boxes)
      .cell(std::string(oblivious.sorted ? "yes" : "NO"));
  std::cout << "\n--- profile: " << name << " ---\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace cadapt;
  bench::print_header(
      "E16 (beyond the paper: explicit adaptivity vs obliviousness)",
      "Barve-Vitter-style adaptive k-way merge sort vs cache-oblivious "
      "2-way merge sort,\nreal keys, boxed CA machine, " +
          std::to_string(kKeys) + " keys.");

  compare_on("constant boxes of 64", [] {
    return std::make_unique<profile::VectorSource>(
        std::vector<profile::BoxSize>(64, 64));
  });

  compare_on("i.i.d. uniform boxes [4, 128]", [] {
    static profile::UniformRange dist(4, 128);
    return std::make_unique<profile::DistributionSource>(dist, util::Rng(7));
  });

  compare_on("sawtooth (ramp-and-crash) boxes", [] {
    const auto m = profile::sawtooth_profile(128, 8);
    return std::make_unique<profile::VectorSource>(
        profile::inner_square_profile(m));
  });

  compare_on("adversarial M_{2,2}(512), scaled x2", [] {
    return std::make_unique<profile::WorstCaseSource>(2, 2, 512, 2);
  });

  compare_on("tiny boxes (size 2: hints are nearly useless)", [] {
    return std::make_unique<profile::VectorSource>(
        std::vector<profile::BoxSize>(64, 2));
  });

  std::cout << "\nReading the numbers: the explicit k-way sort realizes the "
               "optimal\nΘ((n/B) log_{M/B}(n/B)) bound with lean constants. "
               "Cache-OBLIVIOUS funnelsort\nhas the same asymptotic bound "
               "without ever querying the cache size — the\npaper's thesis "
               "— and beats the 2-way sort on every profile, though its\n"
               "buffer plumbing costs a constant factor against the "
               "explicit sort at this n.\nThe 2-way merge sort pays "
               "footnote 3's Θ(log(M/B)) factor: it is the a = b\ncase, "
               "where no algorithm is optimally cache-adaptive. All three "
               "sort correctly\nunder every profile; only the explicit one "
               "needed the hint plumbing the paper's\nintroduction warns "
               "about.\n";
  return 0;
}
