// E12 — extension (Lincoln et al. [40], related work): scan placement as
// a defence.
//
// Scan-hiding rewrites an (a,b,1)-regular algorithm so its scans are
// spread through the recursion. We measure the lightweight variant the
// engine supports — splitting each problem's scan into a chunks, one per
// recursive call — against the trailing-scan adversary M_{a,b}(n), and
// against i.i.d. profiles.
//
// Finding (documented in EXPERIMENTS.md): interleaving alone does NOT
// defeat the aligned adversary — the execution re-synchronizes with the
// profile (the same resynchronization phenomenon behind the paper's
// negative results), which is why full scan-hiding needs the more complex
// transformation of [40]. Under i.i.d. smoothing both placements are
// equally adaptive — Theorem 1 does not care where the scans are.
#include "bench_common.hpp"
#include "profile/distributions.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E12 (extension: scan placement)",
      "Interleaved scan chunks vs the trailing-scan adversary.");

  const model::RegularParams params{8, 4, 1.0};
  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 7;
  opts.trials = 1;

  bench::print_series(core::worst_case_gap_curve(params, opts), 4);
  bench::print_series(core::scan_hiding_curve(params, opts), 4);
  {
    core::SweepOptions o2 = opts;
    o2.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::scan_hiding_curve(params, o2);
    s.name += " [budgeted semantics]";
    bench::print_series(s, 4);
  }

  // Under i.i.d. profiles the placement is irrelevant (Theorem 1).
  core::SweepOptions mc = opts;
  mc.trials = 32;
  bench::print_series(core::shuffled_worst_case_curve(params, mc), 4);
  {
    core::SweepOptions o2 = mc;
    o2.placement = engine::ScanPlacement::kInterleaved;
    core::Series s = core::shuffled_worst_case_curve(params, o2);
    s.name += " (interleaved scans)";
    bench::print_series(s, 4);
  }
  return 0;
}
