// E7 — negative result: box-order perturbations do not destroy the
// worst case.
//
// The recursive construction places each node's big box after a uniformly
// random recursive instance instead of the last. The paper: the resulting
// profile is worst-case *with probability one* — witnessed by the
// (a,b,1)-regular algorithm whose scan placement mirrors the perturbation
// (scans may legally go before/between/after recursive calls,
// Definition 2). Under the budgeted (disjoint-scan) semantics the matched
// run consumes the profile exactly: ratio = log_b n + 1 deterministically.
//
// The contrast rows show the canonical trailing-scan algorithm under the
// optimistic §4 semantics, which escapes the perturbed profile — the
// profile is worst-case for *some* algorithm of the class, not for all.
#include "bench_common.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E7 (negative: box-order perturbation)",
      "Order-perturbed M_{8,4}(n): worst-case w.p. 1 for the matched "
      "algorithm.");

  const model::RegularParams params{8, 4, 1.0};
  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 7;
  opts.trials = 24;

  {
    core::SweepOptions budgeted = opts;
    budgeted.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::order_perturb_curve(params, budgeted, true);
    s.name += " [budgeted semantics]";
    bench::print_series(s, 4);
  }
  {
    core::Series s = core::order_perturb_curve(params, opts, true);
    s.name += " [optimistic semantics]";
    bench::print_series(s, 4);
  }
  {
    core::Series s = core::order_perturb_curve(params, opts, false);
    s.name += " [optimistic semantics]";
    bench::print_series(s, 4);
  }
  {
    core::SweepOptions budgeted = opts;
    budgeted.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::order_perturb_curve(params, budgeted, false);
    s.name += " [budgeted semantics]";
    bench::print_series(s, 4);
  }
  return 0;
}
