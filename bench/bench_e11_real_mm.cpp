// E11 — Section 3 made concrete: real instrumented MM-Scan vs MM-Inplace
// (and the naive loop) executed through the cache-adaptive paging machine.
//
// The symbolic engine (E2/E3) uses the paper's simplified semantics; this
// bench is the ground truth: actual matrices, actual LRU paging, a real
// square profile driving the cache size. We report I/Os, boxes used, and
// the potential consumed, on (i) the MM-Scan adversarial profile and
// (ii) its random reshuffle — the who-wins shape of Theorem 2 vs
// Theorem 1.
#include <iostream>
#include <memory>

#include "algos/fw.hpp"
#include "algos/lcs.hpp"
#include "algos/mm.hpp"
#include "bench_common.hpp"
#include "model/potential.hpp"
#include "paging/ca_machine.hpp"
#include "profile/distributions.hpp"
#include "profile/worst_case.hpp"
#include "util/random.hpp"

namespace {

using namespace cadapt;

constexpr std::uint64_t kBlock = 8;

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> m(n * n);
  for (auto& v : m) v = static_cast<double>(rng.below(8)) - 4.0;
  return m;
}

/// Profile factory: the MM-Scan adversarial profile, scaled so box sizes
/// are meaningful against the matrices' working set (in blocks).
profile::SourceFactory worst_factory(std::uint64_t n_profile,
                                     std::uint64_t scale) {
  return [n_profile, scale] {
    return std::make_unique<profile::WorstCaseSource>(8, 4, n_profile, scale);
  };
}

struct RealRun {
  std::uint64_t ios = 0;
  std::uint64_t boxes = 0;
  double potential = 0;
  bool correct = false;
};

template <typename Fn>
RealRun run_mm(std::size_t n, std::unique_ptr<profile::BoxSource> profile_src,
               Fn&& fn) {
  paging::CaMachine machine(std::move(profile_src), kBlock);
  paging::AddressSpace space(kBlock);
  algos::SimMatrix<double> a(machine, space, n, n), b(machine, space, n, n),
      c(machine, space, n, n);
  const auto av = random_matrix(n, 1), bv = random_matrix(n, 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a.raw(i, j) = av[i * n + j];
      b.raw(i, j) = bv[i * n + j];
    }
  algos::MmScratch scratch(machine, space);
  fn(machine, space, a, b, c, scratch);

  RealRun result;
  result.ios = machine.misses();
  result.boxes = machine.boxes_started();
  const model::RegularParams params{8, 4, 1.0};
  // Working set in blocks bounds the min(n, ·) cap of Inequality 2.
  const std::uint64_t ws = machine.misses();  // loose cap: total I/Os
  for (const auto s : machine.box_log())
    result.potential += model::bounded_rho(params, ws, s);
  const auto expected = algos::mm_reference(av, bv, n);
  result.correct = true;
  for (std::size_t i = 0; i < n && result.correct; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (std::abs(c.raw(i, j) - expected[i * n + j]) > 1e-9) {
        result.correct = false;
        break;
      }
  return result;
}

void report(const std::string& profile_name, std::size_t n,
            std::uint64_t n_profile, std::uint64_t scale, bool shuffled) {
  std::cout << "\n--- " << n << "x" << n << " matrices, profile: "
            << profile_name << " ---\n";
  util::Table table({"algorithm", "I/Os", "boxes", "correct"});

  auto make_profile = [&]() -> std::unique_ptr<profile::BoxSource> {
    if (!shuffled) {
      return std::make_unique<profile::CyclingSource>(
          worst_factory(n_profile, scale));
    }
    // i.i.d. resample from the same box census (Theorem 1's smoothing).
    auto dist = std::make_shared<profile::GeometricPowers>(
        8, 4.0, 0, util::ilog(n_profile, 4));
    // GeometricPowers over powers of 4 with weight... build from census
    // via Empirical for exactness instead:
    profile::WorstCaseSource src(8, 4, n_profile, scale);
    auto boxes = profile::materialize(src);
    auto emp = std::make_shared<profile::Empirical>(boxes);
    struct Holder final : profile::BoxSource {
      std::shared_ptr<profile::Empirical> dist;
      profile::DistributionSource inner;
      Holder(std::shared_ptr<profile::Empirical> d, util::Rng rng)
          : dist(std::move(d)), inner(*dist, rng) {}
      std::optional<profile::BoxSize> next() override { return inner.next(); }
    };
    return std::make_unique<Holder>(emp, util::Rng(12345));
  };

  const auto scan = run_mm(n, make_profile(),
                           [](auto&, auto&, auto& a, auto& b, auto& c,
                              auto& scratch) {
                             algos::mm_scan(algos::MatView<double>(c),
                                            algos::MatView<double>(a),
                                            algos::MatView<double>(b), scratch,
                                            4);
                           });
  table.row()
      .cell(std::string("MM-Scan (8,4,1)"))
      .cell(scan.ios)
      .cell(scan.boxes)
      .cell(std::string(scan.correct ? "yes" : "NO"));

  const auto inplace = run_mm(n, make_profile(),
                              [](auto&, auto&, auto& a, auto& b, auto& c,
                                 auto&) {
                                algos::mm_inplace(algos::MatView<double>(c),
                                                  algos::MatView<double>(a),
                                                  algos::MatView<double>(b), 4);
                              });
  table.row()
      .cell(std::string("MM-Inplace (8,4,0)"))
      .cell(inplace.ios)
      .cell(inplace.boxes)
      .cell(std::string(inplace.correct ? "yes" : "NO"));

  const auto strassen_run = run_mm(n, make_profile(),
                                   [](auto&, auto&, auto& a, auto& b, auto& c,
                                      auto& scratch) {
                                     algos::strassen(algos::MatView<double>(c),
                                                     algos::MatView<double>(a),
                                                     algos::MatView<double>(b),
                                                     scratch, 4);
                                   });
  table.row()
      .cell(std::string("Strassen (7,4,1)"))
      .cell(strassen_run.ios)
      .cell(strassen_run.boxes)
      .cell(std::string(strassen_run.correct ? "yes" : "NO"));

  const auto naive = run_mm(n, make_profile(),
                            [](auto&, auto&, auto& a, auto& b, auto& c,
                               auto&) {
                              algos::mm_naive(algos::MatView<double>(c),
                                              algos::MatView<double>(a),
                                              algos::MatView<double>(b));
                            });
  table.row()
      .cell(std::string("naive loop"))
      .cell(naive.ios)
      .cell(naive.boxes)
      .cell(std::string(naive.correct ? "yes" : "NO"));

  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace cadapt;
  bench::print_header(
      "E11 (Section 3, concrete)",
      "Real instrumented algorithms on the cache-adaptive paging machine.");

  for (const std::size_t n : {32ull, 64ull}) {
    // Profile box sizes up to ~the matrices' block footprint.
    const std::uint64_t n_profile = 256;
    const std::uint64_t scale = n == 32 ? 1 : 2;
    report("M_{8,4} (adversarial, cycled)", n, n_profile, scale, false);
    report("i.i.d. reshuffle of the same boxes", n, n_profile, scale, true);
  }

  std::cout << "\nMM-Inplace's I/Os are essentially profile-independent; "
               "MM-Scan pays on the\nadversarial profile and recovers most "
               "of the difference on the reshuffle —\nthe concrete shape of "
               "Theorems 2 and 1.\n";
  return 0;
}
