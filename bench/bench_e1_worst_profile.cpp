// E1 — Figure 1: the recursive worst-case profile for MM-Scan.
//
// Regenerates the paper's only figure: the adversarial square profile
// M_{8,4}(n), its recursive construction, its box census, and its total
// potential n^{3/2} (log_4 n + 1).
#include <iostream>

#include "bench_common.hpp"
#include "profile/box_source.hpp"
#include "profile/render.hpp"
#include "profile/worst_case.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E1 (Figure 1)",
      "Bad profile for MM-Scan: M_{8,4}(n) = 8 x M_{8,4}(n/4) ++ [box n]");

  for (const profile::BoxSize n : {64ull, 1024ull}) {
    std::cout << "\n" << profile::describe_worst_case(8, 4, n) << "\n";
    profile::WorstCaseSource source(8, 4, n);
    const auto boxes = profile::materialize(source);
    std::cout << profile::render_profile_ascii(boxes, 110, 14, true);
  }

  std::cout << "\nThe profile gives MM-Scan maximal memory exactly when it "
               "is doing scans\n(and cannot use it) and minimal memory when "
               "it is inside subproblems\n(and could). Every box makes its "
               "minimum possible progress.\n";
  return 0;
}
