// E18 — beyond the paper: the conclusion's other open question, "Could
// randomized algorithms also overcome worst-case profiles?"
//
// Here the PROFILE is the fixed adversarial M_{a,b}(n); the randomness is
// in the ALGORITHM: each node places its scan after a uniformly random
// child (a legal (a,b,1)-regular algorithm by Definition 2, realized as
// ScanPlacement::kAdversaryMatched with a per-trial random seed that the
// profile knows nothing about). Deterministic interleaved placement is
// shown as a non-random contrast.
//
// Measured answer: under the budgeted semantics, algorithm-side scan
// randomization recovers a large part of the gap on the trailing-scan
// adversary — evidence that the open question may have a positive answer
// for this restricted randomization — while under the optimistic
// semantics the resynchronization phenomenon claws it back.
#include "bench_common.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E18 (beyond the paper: randomized algorithms vs fixed adversary)",
      "The profile is the deterministic M_{8,4}(n); the algorithm "
      "randomizes its scan\nplacement per node. Does algorithm-side "
      "randomness break the synchronization?");

  const model::RegularParams params{8, 4, 1.0};
  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 7;
  opts.trials = 32;

  // Baseline: the deterministic algorithm on its adversary (slope 1).
  {
    core::SweepOptions det = opts;
    det.trials = 1;
    det.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::worst_case_gap_curve(params, det);
    s.name += " [deterministic, budgeted]";
    bench::print_series(s, 4);
  }

  // Randomized scan placement, both semantics.
  {
    core::SweepOptions o = opts;
    o.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::randomized_scan_curve(params, o);
    s.name += " [budgeted]";
    bench::print_series(s, 4);
  }
  {
    core::Series s = core::randomized_scan_curve(params, opts);
    s.name += " [optimistic]";
    bench::print_series(s, 4);
  }

  // Non-random contrast: deterministic interleaving (E12's transform).
  {
    core::SweepOptions o = opts;
    o.trials = 1;
    o.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::scan_hiding_curve(params, o);
    s.name += " [budgeted]";
    bench::print_series(s, 4);
  }
  return 0;
}
