// E3 — Theorem 1 (the main result): i.i.d. box sizes make (a,b,1)-regular
// algorithms cache-adaptive in expectation, for *any* distribution Σ.
//
// The headline instance draws boxes i.i.d. from the box census of the
// adversarial profile M_{a,b}(n) itself — the "random reshuffle" of the
// worst case. Several other distributions are swept for good measure; in
// every case the ratio stays O(1) (slope ~ 0) where the unshuffled
// adversary had slope 1.
#include "bench_common.hpp"
#include "profile/distributions.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E3 (Theorem 1, main result)",
      "i.i.d. boxes from any distribution Σ => cache-adaptive in "
      "expectation.\nContrast with E2's slope-1 worst case.");

  const model::RegularParams mm_scan{8, 4, 1.0};
  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 7;
  opts.trials = 48;

  bench::print_series(core::shuffled_worst_case_curve(mm_scan, opts), 4);

  profile::UniformPowers uniform(4, 0, 6);
  bench::print_series(core::iid_curve(mm_scan, uniform, opts), 4);

  profile::Bimodal bimodal(4, 4096, 0.02);
  bench::print_series(core::iid_curve(mm_scan, bimodal, opts), 4);

  profile::PointMass point(64);
  bench::print_series(core::iid_curve(mm_scan, point, opts), 4);

  profile::UniformRange range(1, 500);
  bench::print_series(core::iid_curve(mm_scan, range, opts), 4);

  // Strassen's parameters (7,4,1) — the paper's conclusion notes all known
  // sub-cubic matrix multiplications become adaptive in expectation.
  const model::RegularParams strassen{7, 4, 1.0};
  bench::print_series(core::shuffled_worst_case_curve(strassen, opts), 4);

  // Robustness to the conservative box semantics.
  {
    core::SweepOptions o2 = opts;
    o2.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::shuffled_worst_case_curve(mm_scan, o2);
    s.name += " [budgeted semantics]";
    bench::print_series(s, 4);
  }
  return 0;
}
