// E9 — Theorem 2, c < 1 branch: when the scans are sub-linear,
// (a,b,c)-regular algorithms are cache-adaptive even in the worst case.
//
// Model note. The paper's §4 simplified box semantics is calibrated for
// c = 1 ("each scan in each problem of size s consists of exactly s
// memory accesses"): a box that lands in a scan is assumed to expire with
// the problem containing it. For c < 1 that artificially truncates boxes
// whose size vastly exceeds the remaining scan, which manufactures a
// spurious gap. The budgeted semantics lets a box spend its remaining
// capacity past the scan, which is what the real machine does; under it
// the adversarial construction loses its teeth: the c = 1 contrast keeps
// the full gap (slope 1, ratio = log_b n + 1) while c = 1/2 collapses
// toward a constant (ratio < 5 where c = 1 reaches 11+). On i.i.d.
// profiles c < 1 is comfortably adaptive under either semantics
// (Theorem 1 a fortiori).
#include "bench_common.hpp"
#include "profile/distributions.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E9 (Theorem 2, c < 1)",
      "Sub-linear scans: adaptive even on adversarial profiles "
      "(budgeted semantics;\nsee the header comment for why the "
      "c = 1-calibrated optimistic shortcut\nmis-measures this case).");

  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 10;
  opts.trials = 1;
  opts.semantics = engine::BoxSemantics::kBudgeted;

  // c = 1/2 algorithms on the worst-case profile built for their (a,b).
  {
    core::Series s = core::worst_case_gap_curve({4, 2, 0.5}, opts);
    s.name += " [budgeted]";
    bench::print_series(s, 2);
  }
  {
    core::Series s = core::worst_case_gap_curve({3, 2, 0.5}, opts);
    s.name += " [budgeted]";
    bench::print_series(s, 2);
  }
  // Contrast: same (a,b) with c = 1 on the same profile — the gap stays.
  {
    core::Series s = core::worst_case_gap_curve({4, 2, 1.0}, opts);
    s.name += " [budgeted]";
    bench::print_series(s, 2);
  }
  // The optimistic-semantics artifact, shown for transparency: c = 1/2
  // appears gapped only because boxes are truncated at scan ends.
  {
    core::SweepOptions o2 = opts;
    o2.semantics = engine::BoxSemantics::kOptimistic;
    core::Series s = core::worst_case_gap_curve({4, 2, 0.5}, o2);
    s.name += " [optimistic: c=1-calibrated shortcut, over-counts]";
    bench::print_series(s, 2);
  }

  // And on i.i.d. profiles (Theorem 1 applies a fortiori).
  core::SweepOptions mc = opts;
  mc.trials = 32;
  profile::UniformPowers dist(2, 0, 8);
  {
    core::Series s = core::iid_curve({4, 2, 0.5}, dist, mc);
    s.name += " [budgeted]";
    bench::print_series(s, 2);
  }
  return 0;
}
