// E6 — negative result: start-time perturbations do not close the gap.
//
// The profile M_{a,b}(n) is cyclically shifted by a uniformly random box
// offset (equivalently, the algorithm starts at a random time in the
// cyclic profile). The paper: with constant probability the run still
// traverses a suffix holding a constant fraction of the worst-case
// potential, so the expected ratio keeps growing with log n.
#include "bench_common.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E6 (negative: start-time perturbation)",
      "Random cyclic shift of M_{8,4}(n): worst-case in expectation.");

  const model::RegularParams params{8, 4, 1.0};
  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 7;
  opts.trials = 32;

  // Reference points: unshifted adversary (slope 1) and full reshuffle
  // (slope ~ 0).
  {
    core::SweepOptions det = opts;
    det.trials = 1;
    bench::print_series(core::worst_case_gap_curve(params, det), 4);
  }
  bench::print_series(core::cyclic_shift_curve(params, opts), 4);
  {
    core::SweepOptions o2 = opts;
    o2.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::cyclic_shift_curve(params, o2);
    s.name += " [budgeted semantics]";
    bench::print_series(s, 4);
  }
  bench::print_series(core::shuffled_worst_case_curve(params, opts), 4);
  return 0;
}
