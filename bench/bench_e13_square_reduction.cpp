// E13 — validating the square-profile reduction (Definition 1 / §2).
//
// All of cache-adaptive analysis works with square profiles because any
// memory profile m(t) can be approximated by its inner square
// decomposition up to constant-factor resource augmentation. This bench
// checks the reduction concretely: real instrumented algorithms run on
// (a) the raw "fluid" machine driven by m(t) directly (cache resized per
// I/O, no clearing) and (b) the boxed CaMachine driven by the inner
// square profile of the same m(t) (cache cleared per box). The I/O counts
// should agree within a constant factor across profile shapes.
#include <iostream>
#include <memory>

#include "algos/mm.hpp"
#include "algos/sort.hpp"
#include "bench_common.hpp"
#include "paging/ca_machine.hpp"
#include "paging/fluid.hpp"
#include "profile/box_source.hpp"
#include "profile/generators.hpp"
#include "profile/square_approx.hpp"
#include "util/random.hpp"

namespace {

using namespace cadapt;

constexpr std::uint64_t kBlock = 8;

struct Pair {
  std::uint64_t fluid_ios;
  std::uint64_t boxed_ios;
};

template <typename Fn>
Pair compare(const std::vector<std::uint64_t>& m, Fn&& algorithm) {
  Pair result{};
  {
    paging::FluidCaMachine machine(m, kBlock);
    paging::AddressSpace space(kBlock);
    algorithm(machine, space);
    result.fluid_ios = machine.misses();
  }
  {
    auto boxes = profile::inner_square_profile(m);
    auto source = std::make_unique<profile::CyclingSource>(
        [boxes] { return std::make_unique<profile::VectorSource>(boxes); });
    paging::CaMachine machine(std::move(source), kBlock,
                              /*record_boxes=*/false);
    paging::AddressSpace space(kBlock);
    algorithm(machine, space);
    result.boxed_ios = machine.misses();
  }
  return result;
}

void run_workloads(const std::string& profile_name,
                   const std::vector<std::uint64_t>& m) {
  std::cout << "\n--- m(t): " << profile_name << " (" << m.size()
            << " steps) ---\n";
  util::Table table({"workload", "fluid I/Os", "boxed I/Os", "boxed/fluid"});

  auto report = [&](const std::string& name, const Pair& p) {
    table.row()
        .cell(name)
        .cell(p.fluid_ios)
        .cell(p.boxed_ios)
        .cell(static_cast<double>(p.boxed_ios) /
                  static_cast<double>(p.fluid_ios),
              3);
  };

  report("MM-Scan 48x48",
         compare(m, [](paging::Machine& machine, paging::AddressSpace& space) {
           const std::size_t n = 48;
           algos::SimMatrix<double> a(machine, space, n, n),
               b(machine, space, n, n), c(machine, space, n, n);
           util::Rng rng(5);
           for (std::size_t i = 0; i < n; ++i)
             for (std::size_t j = 0; j < n; ++j) {
               a.raw(i, j) = static_cast<double>(rng.below(8));
               b.raw(i, j) = static_cast<double>(rng.below(8));
             }
           algos::MmScratch scratch(machine, space);
           algos::mm_scan(algos::MatView<double>(c), algos::MatView<double>(a),
                          algos::MatView<double>(b), scratch, 4);
         }));

  report("MM-Inplace 48x48",
         compare(m, [](paging::Machine& machine, paging::AddressSpace& space) {
           const std::size_t n = 48;
           algos::SimMatrix<double> a(machine, space, n, n),
               b(machine, space, n, n), c(machine, space, n, n);
           util::Rng rng(6);
           for (std::size_t i = 0; i < n; ++i)
             for (std::size_t j = 0; j < n; ++j) {
               a.raw(i, j) = static_cast<double>(rng.below(8));
               b.raw(i, j) = static_cast<double>(rng.below(8));
             }
           algos::mm_inplace(algos::MatView<double>(c),
                             algos::MatView<double>(a),
                             algos::MatView<double>(b), 4);
         }));

  report("merge sort 16384",
         compare(m, [](paging::Machine& machine, paging::AddressSpace& space) {
           algos::SimVector<std::int64_t> data(machine, space, 16384);
           util::Rng rng(7);
           for (std::size_t i = 0; i < data.size(); ++i)
             data.raw(i) = static_cast<std::int64_t>(rng.below(1u << 20));
           algos::merge_sort(machine, space, data);
         }));

  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace cadapt;
  bench::print_header(
      "E13 (square-profile reduction, §2)",
      "Raw m(t) machine vs its inner square decomposition: I/O counts "
      "agree\nwithin small constant factors, as the reduction promises.");

  run_workloads("sawtooth ramp 1..96, 6 cycles",
                profile::sawtooth_profile(96, 6));
  {
    profile::RandomWalkOptions walk;
    walk.start = 64;
    walk.length = 4096;
    run_workloads("random walk around 64",
                  profile::random_walk_profile(walk, 21));
  }
  run_workloads("constant 32", profile::constant_profile(32, 2048));
  run_workloads("phased 64/8 blocks",
                profile::phased_profile(64, 256, 8, 256, 4096));
  {
    profile::MultiprogramOptions mp;
    mp.total_cache = 96;
    mp.length = 4096;
    run_workloads("queueing multiprogram shares of 96",
                  profile::multiprogram_profile(mp, 17));
  }
  return 0;
}
