// E14 — beyond the paper: the a = b case (left open in the paper, "we
// leave the case of a = b for future work").
//
// Merge sort is (2,2,1)-regular. Footnote 3: for a = b, c = 1 no
// algorithm can be *optimally* cache-adaptive (such algorithms are
// already Θ(log(M/B)) from DAM-optimal), but one can still ask how far
// from its own potential it runs. We measure, under the operation-based
// progress function (the right one for a = b, where U(n) = Θ(n log n)):
//
//   * on the adversarial profile M_{2,2}(n)   -> does a gap appear?
//   * on the i.i.d. reshuffle of that profile -> does smoothing help?
//
// The printed slopes are empirical evidence for the open question.
#include <iostream>

#include "algos/sort.hpp"
#include "bench_common.hpp"
#include "paging/ca_machine.hpp"
#include "profile/distributions.hpp"
#include "profile/transforms.hpp"
#include "profile/worst_case.hpp"
#include "util/random.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E14 (beyond the paper: a = b)",
      "Merge sort (2,2,1) under adversarial vs reshuffled profiles,\n"
      "operation-based progress (U(n) = Θ(n log n)). The a = b case is "
      "the paper's\nexplicit future work; these are empirical data points "
      "for it.");

  const model::RegularParams merge_sort_params{2, 2, 1.0};
  core::SweepOptions opts;
  opts.kmin = 4;
  opts.kmax = 14;
  opts.trials = 1;
  opts.unit_progress = true;

  {
    core::Series s = core::worst_case_gap_curve(merge_sort_params, opts);
    s.name += " [operation-based progress]";
    bench::print_series(s, 2);
  }
  {
    core::SweepOptions mc = opts;
    mc.trials = 32;
    core::Series s = core::shuffled_worst_case_curve(merge_sort_params, mc);
    s.name += " [operation-based progress]";
    bench::print_series(s, 2);
  }

  // A concrete instrumented merge sort on the cache-adaptive machine:
  // adversarial vs reshuffled boxes, same multiset.
  std::cout << "\n--- real merge sort (n = 8192 keys) on the CA paging "
               "machine ---\n";
  util::Table table({"profile", "I/Os", "boxes"});
  for (const bool shuffled : {false, true}) {
    auto factory = [shuffled]() -> std::unique_ptr<profile::BoxSource> {
      if (!shuffled) {
        return std::make_unique<profile::WorstCaseSource>(2, 2, 1024, 4);
      }
      profile::WorstCaseSource src(2, 2, 1024, 4);
      auto boxes = profile::materialize(src);
      util::Rng rng(31);
      profile::shuffle_boxes(boxes, rng);
      return std::make_unique<profile::VectorSource>(std::move(boxes));
    };
    paging::CaMachine machine(
        std::make_unique<profile::CyclingSource>(factory), 8,
        /*record_boxes=*/false);
    paging::AddressSpace space(8);
    algos::SimVector<std::int64_t> data(machine, space, 8192);
    util::Rng rng(17);
    for (std::size_t i = 0; i < data.size(); ++i)
      data.raw(i) = static_cast<std::int64_t>(rng.below(1u << 20));
    algos::merge_sort(machine, space, data);
    table.row()
        .cell(std::string(shuffled ? "uniformly shuffled M_{2,2}(1024) x4"
                                   : "adversarial M_{2,2}(1024) x4"))
        .cell(machine.misses())
        .cell(machine.boxes_started());
  }
  table.print(std::cout);
  return 0;
}
