// E4 — Lemma 3: the stopping-time recurrence.
//
// Evaluates the exact Lemma 3 recurrence for f(n) (expected boxes to
// complete a problem of size n) and compares it against Monte-Carlo
// simulation of the actual execution. Also reports the per-level
// quantities the proof manipulates: f'(n), the early-completion
// probability p, the scan renewal cost K(n), m_n, the
// adaptivity-in-expectation ratio f(n)·m_n / n^{log_b a} (Equation 3) and
// the Equation 8 correction product Π f/f'.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "engine/analytic.hpp"
#include "engine/montecarlo.hpp"
#include "profile/distributions.hpp"
#include "util/math.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E4 (Lemma 3)",
      "Exact stopping-time recurrence vs Monte-Carlo simulation.");

  const model::RegularParams params{8, 4, 1.0};
  const unsigned kmax = 6;
  const std::uint64_t n_max = util::ipow(4, kmax);

  std::vector<std::unique_ptr<profile::BoxDistribution>> dists;
  dists.push_back(std::make_unique<profile::GeometricPowers>(4, 8.0, 0, kmax));
  dists.push_back(std::make_unique<profile::UniformPowers>(4, 0, 4));
  dists.push_back(std::make_unique<profile::Bimodal>(2, 1024, 0.03));
  dists.push_back(std::make_unique<profile::UniformRange>(1, 64));

  for (const auto& dist : dists) {
    std::cout << "\n--- Σ = " << dist->name() << " ---\n";
    engine::AnalyticSolver solver(params, *dist);
    const auto levels = solver.solve(n_max);

    util::Table table({"n", "f(n) analytic", "f(n) MC", "rel.err", "f'(n)",
                       "p", "K(n)", "m_n", "ratio (Eq.3)"});
    double correction_product = 1.0;
    for (const auto& lvl : levels) {
      engine::McOptions mc;
      mc.trials = 3000;
      mc.seed = 4242 + lvl.n;
      const engine::McSummary sim =
          run_monte_carlo_iid(params, lvl.n, *dist, mc);
      const double mc_f = sim.boxes.mean();
      const double rel =
          lvl.f > 0 ? std::abs(mc_f - lvl.f) / lvl.f : 0.0;
      table.row()
          .cell(lvl.n)
          .cell(lvl.f, 3)
          .cell(mc_f, 3)
          .cell(rel, 4)
          .cell(lvl.f_prime, 3)
          .cell(lvl.p, 4)
          .cell(lvl.scan_boxes, 3)
          .cell(lvl.m_n, 2)
          .cell(lvl.ratio, 3);
      correction_product *= lvl.correction;
    }
    table.print(std::cout);
    std::cout << "Equation 8 correction product Π f/f' = "
              << util::format_double(correction_product, 4)
              << "   (paper: O(1))\n";
  }
  return 0;
}
