// E15 — beyond the paper: which memory-fluctuation patterns actually
// occur? (The paper's concluding open question.)
//
// Pipeline: record real algorithm traces (MM-Scan, Floyd–Warshall, merge
// sort) -> co-schedule them on a shared cache under three allocation
// policies -> extract each process's *emergent memory profile* (resident
// blocks over time) -> reduce it to a square profile -> feed its box
// census, as an i.i.d. distribution, to the symbolic engine and the
// Lemma 3 analytic solver.
//
// The question: are emergent profiles adversarial (Theorem 2-shaped,
// ratio growing with n) or benign (Theorem 1-shaped, ratio O(1))?
#include <iostream>
#include <memory>

#include "algos/fw.hpp"
#include "algos/mm.hpp"
#include "algos/sort.hpp"
#include "bench_common.hpp"
#include "engine/analytic.hpp"
#include "paging/trace.hpp"
#include "profile/distributions.hpp"
#include "profile/square_approx.hpp"
#include "sched/shared_cache.hpp"
#include "util/random.hpp"

namespace {

using namespace cadapt;

std::vector<paging::BlockId> record_mm_scan(std::size_t n) {
  paging::TraceRecorder rec(8);
  paging::AddressSpace space(8);
  algos::SimMatrix<double> a(rec, space, n, n), b(rec, space, n, n),
      c(rec, space, n, n);
  util::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a.raw(i, j) = static_cast<double>(rng.below(8));
      b.raw(i, j) = static_cast<double>(rng.below(8));
    }
  algos::MmScratch scratch(rec, space);
  algos::mm_scan(algos::MatView<double>(c), algos::MatView<double>(a),
                 algos::MatView<double>(b), scratch, 4);
  return rec.block_trace();
}

std::vector<paging::BlockId> record_fw(std::size_t n) {
  paging::TraceRecorder rec(8);
  paging::AddressSpace space(8);
  algos::SimMatrix<double> d(rec, space, n, n);
  util::Rng rng(2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      d.raw(i, j) = i == j ? 0.0
                           : (rng.bernoulli(0.4)
                                  ? static_cast<double>(1 + rng.below(16))
                                  : algos::kInf);
  algos::fw_recursive(algos::MatView<double>(d), 4);
  return rec.block_trace();
}

std::vector<paging::BlockId> record_merge_sort(std::size_t n) {
  paging::TraceRecorder rec(8);
  paging::AddressSpace space(8);
  algos::SimVector<std::int64_t> data(rec, space, n);
  util::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i)
    data.raw(i) = static_cast<std::int64_t>(rng.below(1u << 20));
  algos::merge_sort(rec, space, data);
  return rec.block_trace();
}

const char* policy_name(sched::Policy p) {
  switch (p) {
    case sched::Policy::kStaticEqual: return "static equal partition";
    case sched::Policy::kGlobalLru: return "global LRU (emergent)";
    case sched::Policy::kPeriodicFlush: return "global LRU + periodic flush";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace cadapt;
  bench::print_header(
      "E15 (beyond the paper: emergent profiles from multiprogramming)",
      "Co-scheduled real algorithms -> per-process memory profiles ->\n"
      "square boxes -> are they Theorem-1-benign or Theorem-2-adversarial?");

  const std::vector<sched::Process> workload = {
      {"mm_scan 32x32", record_mm_scan(32)},
      {"floyd-warshall 32", record_fw(32)},
      {"merge sort 8192", record_merge_sort(8192)},
  };

  const model::RegularParams probe{8, 4, 1.0};  // the gap-regime probe
  const std::uint64_t probe_n = 4096;

  for (const sched::Policy policy :
       {sched::Policy::kStaticEqual, sched::Policy::kGlobalLru,
        sched::Policy::kPeriodicFlush}) {
    sched::SimOptions opts;
    opts.total_cache_blocks = 96;
    opts.policy = policy;
    opts.flush_period = 256;
    const sched::SimResult sim = sched::simulate_shared_cache(workload, opts);

    std::cout << "\n--- policy: " << policy_name(policy) << " ---\n";
    util::Table table({"process", "accesses", "misses", "finish@", "boxes",
                       "max box", "probe ratio", "analytic ratio"});
    for (const auto& proc : sim.per_process) {
      // Emergent profile -> inner square profile -> box census.
      const auto boxes = profile::inner_square_profile(proc.occupancy_profile);
      profile::BoxSize max_box = 0;
      for (const auto b : boxes) max_box = std::max(max_box, b);
      profile::Empirical census(boxes);

      // Monte-Carlo probe: (8,4,1) on i.i.d. boxes from the census.
      engine::McOptions mc;
      mc.trials = 24;
      mc.seed = 99;
      const engine::McSummary probe_result =
          engine::run_monte_carlo_iid(probe, probe_n, census, mc);

      // Analytic check via Lemma 3.
      engine::AnalyticSolver solver(probe, census);
      const double analytic_ratio = solver.solve(probe_n).back().ratio;

      table.row()
          .cell(proc.name)
          .cell(proc.accesses)
          .cell(proc.misses)
          .cell(proc.completion_time)
          .cell(static_cast<std::uint64_t>(boxes.size()))
          .cell(max_box)
          .cell(probe_result.ratio.mean(), 3)
          .cell(analytic_ratio, 3);
    }
    table.print(std::cout);
  }

  std::cout << "\nReading the numbers: the static-partition rows are the "
               "constant-cache baseline\n(everything a fixed small cache "
               "costs, no fluctuation at all). The fluctuating\nglobal-LRU "
               "and periodic-flush profiles land at comparable or *lower* "
               "ratios,\nfar from the adversarial log_4 " << probe_n
            << " + 1 = 7 — multiprogramming produces\nTheorem-1-benign "
               "fluctuations, supporting the paper's closing thesis.\n";
  return 0;
}
