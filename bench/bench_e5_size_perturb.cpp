// E5 — negative result: box-size perturbations do not close the gap.
//
// Each box of M_{a,b}(n) is multiplied by an i.i.d. factor X from a
// distribution P over [0,t] with E[X] = Θ(t). Despite heavy per-box noise
// the ratio keeps growing with log n — the profile remains worst-case in
// expectation. Contrast with E3 where full i.i.d. resampling flattens it.
#include "bench_common.hpp"
#include "profile/transforms.hpp"

int main() {
  using namespace cadapt;
  bench::print_header(
      "E5 (negative: box-size perturbation)",
      "M_{8,4}(n) with every box size multiplied by i.i.d. X ~ P([0,t]).\n"
      "The gap persists (slope stays bounded away from 0).");

  const model::RegularParams params{8, 4, 1.0};
  core::SweepOptions opts;
  opts.kmin = 2;
  opts.kmax = 7;
  opts.trials = 32;

  // The paper's perturbation shape: X drawn from a distribution over
  // [0, t] with E[X] = Θ(t) — note that shrinking boxes is allowed (the
  // proof in fact relies on perturbations only ever shrinking the scaled
  // profile T · M_{a,b}).
  for (const double t : {2.0, 4.0, 8.0}) {
    core::Series s = core::size_perturb_curve(
        params, profile::uniform_real_perturb(t), opts);
    s.name += " [X ~ U[0," + std::to_string(static_cast<int>(t)) + "]]";
    bench::print_series(s, 4);
  }
  {
    // Pure scaling T · M_{a,b} (the paper's intermediate object).
    core::Series s =
        core::size_perturb_curve(params, profile::point_perturb(4.0), opts);
    s.name += " [X = 4 exactly]";
    bench::print_series(s, 4);
  }
  {
    core::SweepOptions o2 = opts;
    o2.semantics = engine::BoxSemantics::kBudgeted;
    core::Series s = core::size_perturb_curve(
        params, profile::uniform_real_perturb(4.0), o2);
    s.name += " [X ~ U[0,4], budgeted semantics]";
    bench::print_series(s, 4);
  }
  // Growth-only integer variants (NOT the paper's shape — X >= 1 cannot
  // shrink a box). Shown for contrast: alignment resonances make some of
  // these escape partially under the optimistic semantics.
  for (const std::uint64_t t : {2ull, 4ull}) {
    core::Series s =
        core::size_perturb_curve(params, profile::uniform_int_perturb(t), opts);
    s.name += " [growth-only X ~ U{1.." + std::to_string(t) + "}]";
    bench::print_series(s, 4);
  }
  return 0;
}
