// E8 — Lemma 1: the potential of a box is rho(s) = Θ(s^{log_b a}).
//
// Measures the maximum progress (base cases) a single box of size s makes
// over many placements in an execution, and compares with s^{log_b a}.
#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "util/math.hpp"

int main() {
  using namespace cadapt;
  bench::print_header("E8 (Lemma 1)",
                      "Measured max progress of a box of size s vs "
                      "s^{log_b a}.");

  struct Case {
    model::RegularParams params;
    unsigned kmax;
  };
  for (const Case c : {Case{{8, 4, 1.0}, 5}, Case{{4, 2, 1.0}, 8},
                       Case{{3, 2, 1.0}, 8}}) {
    const std::uint64_t n = util::ipow(c.params.b, c.kmax);
    std::cout << "\n--- " << c.params.name() << ", problem size n = " << n
              << " ---\n";
    util::Table table(
        {"box s", "rho(s)=s^{log_b a}", "measured max progress", "measured/rho"});
    for (std::uint64_t s = 1; s <= n; s *= c.params.b) {
      const std::uint64_t measured =
          core::measure_box_potential(c.params, n, s, 400, 97);
      const double rho = util::pow_log_ratio(s, c.params.a, c.params.b);
      table.row()
          .cell(s)
          .cell(rho, 1)
          .cell(measured)
          .cell(static_cast<double>(measured) / rho, 3);
    }
    table.print(std::cout);
  }
  std::cout << "\nmeasured/rho is Θ(1) across three orders of magnitude — "
               "Lemma 1's bound is tight.\n";
  return 0;
}
