// Shared output helpers for the experiment benches. Each bench binary
// regenerates one experiment from DESIGN.md §4 and prints the series that
// EXPERIMENTS.md records.
//
// Set the environment variable CADAPT_CSV=1 to additionally emit every
// series as a CSV block (for plotting pipelines).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

namespace cadapt::bench {

inline bool csv_requested() {
  const char* env = std::getenv("CADAPT_CSV");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "==============================================================\n"
            << id << "\n" << claim << "\n"
            << "==============================================================\n";
}

/// Print a ratio series as a table plus its fitted slope against log_b n.
inline void print_series(const core::Series& series, std::uint64_t b) {
  core::ReportOptions options;
  options.log_base = b;
  options.csv = csv_requested();
  core::print_series(std::cout, series, options);
}

}  // namespace cadapt::bench
