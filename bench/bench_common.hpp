// Shared output helpers for the experiment benches. Each bench binary
// regenerates one experiment from DESIGN.md §4 and prints the series that
// EXPERIMENTS.md records.
//
// Set the environment variable CADAPT_CSV=1 to additionally emit every
// series as a CSV block (for plotting pipelines), and CADAPT_TRACE=path
// to append every printed series as JSONL events ("point" per row plus a
// "series" summary; see docs/OBSERVABILITY.md) to that file.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "util/table.hpp"

namespace cadapt::bench {

inline bool csv_requested() {
  const char* env = std::getenv("CADAPT_CSV");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Path from CADAPT_TRACE, or empty when tracing is off.
inline std::string trace_path() {
  const char* env = std::getenv("CADAPT_TRACE");
  return env != nullptr ? std::string(env) : std::string();
}

/// Append the series to the CADAPT_TRACE file as JSONL, if requested.
/// Append mode lets one pipeline run several bench binaries into a single
/// trace file.
inline void maybe_trace_series(const core::Series& series, std::uint64_t b) {
  const std::string path = trace_path();
  if (path.empty()) return;
  std::ofstream file(path, std::ios::app);
  if (!file) {
    std::cerr << "warning: cannot open CADAPT_TRACE file " << path << "\n";
    return;
  }
  obs::JsonlSink sink(file);
  for (const auto& p : series.points) {
    obs::Event event("point");
    event.str("series", series.name)
        .u64("n", p.n)
        .f64("ratio_mean", p.ratio_mean)
        .f64("ratio_ci95", p.ratio_ci95)
        .f64("ratio_p95", p.ratio_p95)
        .f64("boxes_mean", p.boxes_mean)
        .u64("trials", p.trials)
        .u64("incomplete", p.incomplete);
    sink.write(event);
  }
  obs::Event summary("series");
  summary.str("name", series.name)
      .u64("points", series.points.size())
      .u64("log_base", b);
  if (series.points.size() >= 2)
    summary.f64("slope", core::slope_vs_log_n(series, b));
  sink.write(summary);
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "==============================================================\n"
            << id << "\n" << claim << "\n"
            << "==============================================================\n";
}

/// Print a ratio series as a table plus its fitted slope against log_b n,
/// and mirror it to the CADAPT_TRACE JSONL file when that is set.
inline void print_series(const core::Series& series, std::uint64_t b) {
  core::ReportOptions options;
  options.log_base = b;
  options.csv = csv_requested();
  core::print_series(std::cout, series, options);
  maybe_trace_series(series, b);
}

}  // namespace cadapt::bench
