// E10 — Lemma 2 (No-Catch-up): delaying an algorithm's start can never
// make it finish earlier.
//
// Empirical validation at scale: pairs of executions, one strictly ahead,
// receive identical random box suffixes; the delayed copy must never
// overtake. Also quantifies the *cost* of a delay: extra boxes needed to
// finish after a warm-up handicap.
#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "engine/exec.hpp"
#include "util/math.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

int main() {
  using namespace cadapt;
  bench::print_header("E10 (Lemma 2, No-Catch-up)",
                      "A delayed start never finishes earlier.");

  util::Table table({"(a,b,c)", "n", "trials", "violations"});
  for (const model::RegularParams params :
       {model::RegularParams{8, 4, 1.0}, {4, 2, 1.0}, {7, 4, 1.0},
        {3, 2, 0.5}, {8, 4, 0.0}}) {
    const std::uint64_t n = util::ipow(params.b, params.b == 2 ? 7 : 5);
    const std::uint64_t violations =
        core::no_catchup_violations(params, n, 5000, 1234);
    table.row().cell(params.name()).cell(n).cell(std::uint64_t{5000}).cell(
        violations);
  }
  table.print(std::cout);

  // Cost of delay: how many extra boxes does a handicap of d unit boxes
  // cost on a random profile?
  std::cout << "\n--- cost of a d-unit-box handicap, (8,4,1), n = 256, "
               "uniform random boxes in [1, 256] ---\n";
  util::Table cost({"handicap d", "E[extra boxes]", "max extra"});
  for (const std::uint64_t d : {1ull, 4ull, 16ull, 64ull}) {
    util::RunningStat extra;
    for (std::uint64_t trial = 0; trial < 400; ++trial) {
      util::Rng rng(trial * 77 + d);
      engine::RegularExecution base({8, 4, 1.0}, 256);
      engine::RegularExecution delayed({8, 4, 1.0}, 256);
      for (std::uint64_t i = 0; i < d && !delayed.done(); ++i)
        delayed.consume_box(1);  // handicap: d boxes wasted on single units
      std::uint64_t base_boxes = 0, delayed_boxes = d;
      while (!base.done() || !delayed.done()) {
        const std::uint64_t s = 1 + rng.below(256);
        if (!base.done()) {
          base.consume_box(s);
          ++base_boxes;
        }
        if (!delayed.done()) {
          delayed.consume_box(s);
          ++delayed_boxes;
        }
      }
      extra.add(static_cast<double>(delayed_boxes) -
                static_cast<double>(base_boxes));
    }
    cost.row().cell(d).cell(extra.mean(), 2).cell(extra.max(), 0);
  }
  cost.print(std::cout);
  std::cout << "\nExtra cost is bounded by the handicap itself (and never "
               "negative) — the quantitative face of Lemma 2.\n";
  return 0;
}
