file(REMOVE_RECURSE
  "CMakeFiles/shared_cache_demo.dir/shared_cache_demo.cpp.o"
  "CMakeFiles/shared_cache_demo.dir/shared_cache_demo.cpp.o.d"
  "shared_cache_demo"
  "shared_cache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_cache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
