# Empty dependencies file for shared_cache_demo.
# This may be replaced when dependencies are built.
