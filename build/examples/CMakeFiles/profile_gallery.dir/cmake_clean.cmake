file(REMOVE_RECURSE
  "CMakeFiles/profile_gallery.dir/profile_gallery.cpp.o"
  "CMakeFiles/profile_gallery.dir/profile_gallery.cpp.o.d"
  "profile_gallery"
  "profile_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
