# Empty dependencies file for profile_gallery.
# This may be replaced when dependencies are built.
