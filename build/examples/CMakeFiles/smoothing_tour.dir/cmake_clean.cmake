file(REMOVE_RECURSE
  "CMakeFiles/smoothing_tour.dir/smoothing_tour.cpp.o"
  "CMakeFiles/smoothing_tour.dir/smoothing_tour.cpp.o.d"
  "smoothing_tour"
  "smoothing_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
