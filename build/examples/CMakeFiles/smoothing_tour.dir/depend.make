# Empty dependencies file for smoothing_tour.
# This may be replaced when dependencies are built.
