file(REMOVE_RECURSE
  "CMakeFiles/matmul_adaptive_cache.dir/matmul_adaptive_cache.cpp.o"
  "CMakeFiles/matmul_adaptive_cache.dir/matmul_adaptive_cache.cpp.o.d"
  "matmul_adaptive_cache"
  "matmul_adaptive_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_adaptive_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
