# Empty dependencies file for matmul_adaptive_cache.
# This may be replaced when dependencies are built.
