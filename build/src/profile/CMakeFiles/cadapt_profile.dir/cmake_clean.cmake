file(REMOVE_RECURSE
  "CMakeFiles/cadapt_profile.dir/box_source.cpp.o"
  "CMakeFiles/cadapt_profile.dir/box_source.cpp.o.d"
  "CMakeFiles/cadapt_profile.dir/distributions.cpp.o"
  "CMakeFiles/cadapt_profile.dir/distributions.cpp.o.d"
  "CMakeFiles/cadapt_profile.dir/generators.cpp.o"
  "CMakeFiles/cadapt_profile.dir/generators.cpp.o.d"
  "CMakeFiles/cadapt_profile.dir/profile_io.cpp.o"
  "CMakeFiles/cadapt_profile.dir/profile_io.cpp.o.d"
  "CMakeFiles/cadapt_profile.dir/render.cpp.o"
  "CMakeFiles/cadapt_profile.dir/render.cpp.o.d"
  "CMakeFiles/cadapt_profile.dir/square_approx.cpp.o"
  "CMakeFiles/cadapt_profile.dir/square_approx.cpp.o.d"
  "CMakeFiles/cadapt_profile.dir/transforms.cpp.o"
  "CMakeFiles/cadapt_profile.dir/transforms.cpp.o.d"
  "CMakeFiles/cadapt_profile.dir/worst_case.cpp.o"
  "CMakeFiles/cadapt_profile.dir/worst_case.cpp.o.d"
  "libcadapt_profile.a"
  "libcadapt_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
