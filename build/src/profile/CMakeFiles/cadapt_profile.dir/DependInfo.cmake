
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/box_source.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/box_source.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/box_source.cpp.o.d"
  "/root/repo/src/profile/distributions.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/distributions.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/distributions.cpp.o.d"
  "/root/repo/src/profile/generators.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/generators.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/generators.cpp.o.d"
  "/root/repo/src/profile/profile_io.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/profile_io.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/profile_io.cpp.o.d"
  "/root/repo/src/profile/render.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/render.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/render.cpp.o.d"
  "/root/repo/src/profile/square_approx.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/square_approx.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/square_approx.cpp.o.d"
  "/root/repo/src/profile/transforms.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/transforms.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/transforms.cpp.o.d"
  "/root/repo/src/profile/worst_case.cpp" "src/profile/CMakeFiles/cadapt_profile.dir/worst_case.cpp.o" "gcc" "src/profile/CMakeFiles/cadapt_profile.dir/worst_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
