file(REMOVE_RECURSE
  "libcadapt_profile.a"
)
