# Empty dependencies file for cadapt_profile.
# This may be replaced when dependencies are built.
