# Empty dependencies file for cadapt_sched.
# This may be replaced when dependencies are built.
