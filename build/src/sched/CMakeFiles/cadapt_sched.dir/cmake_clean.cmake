file(REMOVE_RECURSE
  "CMakeFiles/cadapt_sched.dir/shared_cache.cpp.o"
  "CMakeFiles/cadapt_sched.dir/shared_cache.cpp.o.d"
  "libcadapt_sched.a"
  "libcadapt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
