file(REMOVE_RECURSE
  "libcadapt_sched.a"
)
