file(REMOVE_RECURSE
  "CMakeFiles/cadapt_core.dir/experiments.cpp.o"
  "CMakeFiles/cadapt_core.dir/experiments.cpp.o.d"
  "CMakeFiles/cadapt_core.dir/report.cpp.o"
  "CMakeFiles/cadapt_core.dir/report.cpp.o.d"
  "libcadapt_core.a"
  "libcadapt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
