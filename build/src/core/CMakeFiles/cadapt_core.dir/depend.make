# Empty dependencies file for cadapt_core.
# This may be replaced when dependencies are built.
