file(REMOVE_RECURSE
  "libcadapt_core.a"
)
