file(REMOVE_RECURSE
  "libcadapt_paging.a"
)
