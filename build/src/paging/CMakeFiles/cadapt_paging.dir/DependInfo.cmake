
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paging/ca_machine.cpp" "src/paging/CMakeFiles/cadapt_paging.dir/ca_machine.cpp.o" "gcc" "src/paging/CMakeFiles/cadapt_paging.dir/ca_machine.cpp.o.d"
  "/root/repo/src/paging/dam.cpp" "src/paging/CMakeFiles/cadapt_paging.dir/dam.cpp.o" "gcc" "src/paging/CMakeFiles/cadapt_paging.dir/dam.cpp.o.d"
  "/root/repo/src/paging/fluid.cpp" "src/paging/CMakeFiles/cadapt_paging.dir/fluid.cpp.o" "gcc" "src/paging/CMakeFiles/cadapt_paging.dir/fluid.cpp.o.d"
  "/root/repo/src/paging/lru_cache.cpp" "src/paging/CMakeFiles/cadapt_paging.dir/lru_cache.cpp.o" "gcc" "src/paging/CMakeFiles/cadapt_paging.dir/lru_cache.cpp.o.d"
  "/root/repo/src/paging/trace.cpp" "src/paging/CMakeFiles/cadapt_paging.dir/trace.cpp.o" "gcc" "src/paging/CMakeFiles/cadapt_paging.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cadapt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cadapt_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/cadapt_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
