# Empty dependencies file for cadapt_paging.
# This may be replaced when dependencies are built.
