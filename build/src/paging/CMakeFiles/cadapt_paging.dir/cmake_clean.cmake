file(REMOVE_RECURSE
  "CMakeFiles/cadapt_paging.dir/ca_machine.cpp.o"
  "CMakeFiles/cadapt_paging.dir/ca_machine.cpp.o.d"
  "CMakeFiles/cadapt_paging.dir/dam.cpp.o"
  "CMakeFiles/cadapt_paging.dir/dam.cpp.o.d"
  "CMakeFiles/cadapt_paging.dir/fluid.cpp.o"
  "CMakeFiles/cadapt_paging.dir/fluid.cpp.o.d"
  "CMakeFiles/cadapt_paging.dir/lru_cache.cpp.o"
  "CMakeFiles/cadapt_paging.dir/lru_cache.cpp.o.d"
  "CMakeFiles/cadapt_paging.dir/trace.cpp.o"
  "CMakeFiles/cadapt_paging.dir/trace.cpp.o.d"
  "libcadapt_paging.a"
  "libcadapt_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
