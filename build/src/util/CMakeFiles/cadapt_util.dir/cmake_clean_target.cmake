file(REMOVE_RECURSE
  "libcadapt_util.a"
)
