file(REMOVE_RECURSE
  "CMakeFiles/cadapt_util.dir/args.cpp.o"
  "CMakeFiles/cadapt_util.dir/args.cpp.o.d"
  "CMakeFiles/cadapt_util.dir/math.cpp.o"
  "CMakeFiles/cadapt_util.dir/math.cpp.o.d"
  "CMakeFiles/cadapt_util.dir/random.cpp.o"
  "CMakeFiles/cadapt_util.dir/random.cpp.o.d"
  "CMakeFiles/cadapt_util.dir/stats.cpp.o"
  "CMakeFiles/cadapt_util.dir/stats.cpp.o.d"
  "CMakeFiles/cadapt_util.dir/table.cpp.o"
  "CMakeFiles/cadapt_util.dir/table.cpp.o.d"
  "CMakeFiles/cadapt_util.dir/thread_pool.cpp.o"
  "CMakeFiles/cadapt_util.dir/thread_pool.cpp.o.d"
  "libcadapt_util.a"
  "libcadapt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
