# Empty dependencies file for cadapt_util.
# This may be replaced when dependencies are built.
