file(REMOVE_RECURSE
  "CMakeFiles/cadapt_engine.dir/adversary.cpp.o"
  "CMakeFiles/cadapt_engine.dir/adversary.cpp.o.d"
  "CMakeFiles/cadapt_engine.dir/analytic.cpp.o"
  "CMakeFiles/cadapt_engine.dir/analytic.cpp.o.d"
  "CMakeFiles/cadapt_engine.dir/exec.cpp.o"
  "CMakeFiles/cadapt_engine.dir/exec.cpp.o.d"
  "CMakeFiles/cadapt_engine.dir/montecarlo.cpp.o"
  "CMakeFiles/cadapt_engine.dir/montecarlo.cpp.o.d"
  "CMakeFiles/cadapt_engine.dir/reference.cpp.o"
  "CMakeFiles/cadapt_engine.dir/reference.cpp.o.d"
  "libcadapt_engine.a"
  "libcadapt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
