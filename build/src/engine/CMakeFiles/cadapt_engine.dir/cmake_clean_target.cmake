file(REMOVE_RECURSE
  "libcadapt_engine.a"
)
