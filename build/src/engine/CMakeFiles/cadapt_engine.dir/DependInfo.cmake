
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/adversary.cpp" "src/engine/CMakeFiles/cadapt_engine.dir/adversary.cpp.o" "gcc" "src/engine/CMakeFiles/cadapt_engine.dir/adversary.cpp.o.d"
  "/root/repo/src/engine/analytic.cpp" "src/engine/CMakeFiles/cadapt_engine.dir/analytic.cpp.o" "gcc" "src/engine/CMakeFiles/cadapt_engine.dir/analytic.cpp.o.d"
  "/root/repo/src/engine/exec.cpp" "src/engine/CMakeFiles/cadapt_engine.dir/exec.cpp.o" "gcc" "src/engine/CMakeFiles/cadapt_engine.dir/exec.cpp.o.d"
  "/root/repo/src/engine/montecarlo.cpp" "src/engine/CMakeFiles/cadapt_engine.dir/montecarlo.cpp.o" "gcc" "src/engine/CMakeFiles/cadapt_engine.dir/montecarlo.cpp.o.d"
  "/root/repo/src/engine/reference.cpp" "src/engine/CMakeFiles/cadapt_engine.dir/reference.cpp.o" "gcc" "src/engine/CMakeFiles/cadapt_engine.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cadapt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cadapt_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/cadapt_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
