# Empty dependencies file for cadapt_engine.
# This may be replaced when dependencies are built.
