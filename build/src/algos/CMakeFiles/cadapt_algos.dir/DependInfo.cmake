
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/adaptive_sort.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/adaptive_sort.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/adaptive_sort.cpp.o.d"
  "/root/repo/src/algos/edit_distance.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/edit_distance.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/edit_distance.cpp.o.d"
  "/root/repo/src/algos/funnelsort.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/funnelsort.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/funnelsort.cpp.o.d"
  "/root/repo/src/algos/fw.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/fw.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/fw.cpp.o.d"
  "/root/repo/src/algos/gep_lu.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/gep_lu.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/gep_lu.cpp.o.d"
  "/root/repo/src/algos/lcs.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/lcs.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/lcs.cpp.o.d"
  "/root/repo/src/algos/mm.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/mm.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/mm.cpp.o.d"
  "/root/repo/src/algos/sort.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/sort.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/sort.cpp.o.d"
  "/root/repo/src/algos/stencil.cpp" "src/algos/CMakeFiles/cadapt_algos.dir/stencil.cpp.o" "gcc" "src/algos/CMakeFiles/cadapt_algos.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cadapt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/cadapt_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cadapt_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/cadapt_profile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
