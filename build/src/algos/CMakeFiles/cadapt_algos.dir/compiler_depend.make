# Empty compiler generated dependencies file for cadapt_algos.
# This may be replaced when dependencies are built.
