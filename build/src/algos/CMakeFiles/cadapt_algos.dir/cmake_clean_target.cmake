file(REMOVE_RECURSE
  "libcadapt_algos.a"
)
