file(REMOVE_RECURSE
  "CMakeFiles/cadapt_algos.dir/adaptive_sort.cpp.o"
  "CMakeFiles/cadapt_algos.dir/adaptive_sort.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/edit_distance.cpp.o"
  "CMakeFiles/cadapt_algos.dir/edit_distance.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/funnelsort.cpp.o"
  "CMakeFiles/cadapt_algos.dir/funnelsort.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/fw.cpp.o"
  "CMakeFiles/cadapt_algos.dir/fw.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/gep_lu.cpp.o"
  "CMakeFiles/cadapt_algos.dir/gep_lu.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/lcs.cpp.o"
  "CMakeFiles/cadapt_algos.dir/lcs.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/mm.cpp.o"
  "CMakeFiles/cadapt_algos.dir/mm.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/sort.cpp.o"
  "CMakeFiles/cadapt_algos.dir/sort.cpp.o.d"
  "CMakeFiles/cadapt_algos.dir/stencil.cpp.o"
  "CMakeFiles/cadapt_algos.dir/stencil.cpp.o.d"
  "libcadapt_algos.a"
  "libcadapt_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
