file(REMOVE_RECURSE
  "CMakeFiles/cadapt_obs.dir/counters.cpp.o"
  "CMakeFiles/cadapt_obs.dir/counters.cpp.o.d"
  "CMakeFiles/cadapt_obs.dir/event.cpp.o"
  "CMakeFiles/cadapt_obs.dir/event.cpp.o.d"
  "CMakeFiles/cadapt_obs.dir/recorder.cpp.o"
  "CMakeFiles/cadapt_obs.dir/recorder.cpp.o.d"
  "CMakeFiles/cadapt_obs.dir/sink.cpp.o"
  "CMakeFiles/cadapt_obs.dir/sink.cpp.o.d"
  "CMakeFiles/cadapt_obs.dir/span.cpp.o"
  "CMakeFiles/cadapt_obs.dir/span.cpp.o.d"
  "libcadapt_obs.a"
  "libcadapt_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
