# Empty dependencies file for cadapt_obs.
# This may be replaced when dependencies are built.
