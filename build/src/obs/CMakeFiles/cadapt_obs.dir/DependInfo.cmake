
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/counters.cpp" "src/obs/CMakeFiles/cadapt_obs.dir/counters.cpp.o" "gcc" "src/obs/CMakeFiles/cadapt_obs.dir/counters.cpp.o.d"
  "/root/repo/src/obs/event.cpp" "src/obs/CMakeFiles/cadapt_obs.dir/event.cpp.o" "gcc" "src/obs/CMakeFiles/cadapt_obs.dir/event.cpp.o.d"
  "/root/repo/src/obs/recorder.cpp" "src/obs/CMakeFiles/cadapt_obs.dir/recorder.cpp.o" "gcc" "src/obs/CMakeFiles/cadapt_obs.dir/recorder.cpp.o.d"
  "/root/repo/src/obs/sink.cpp" "src/obs/CMakeFiles/cadapt_obs.dir/sink.cpp.o" "gcc" "src/obs/CMakeFiles/cadapt_obs.dir/sink.cpp.o.d"
  "/root/repo/src/obs/span.cpp" "src/obs/CMakeFiles/cadapt_obs.dir/span.cpp.o" "gcc" "src/obs/CMakeFiles/cadapt_obs.dir/span.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
