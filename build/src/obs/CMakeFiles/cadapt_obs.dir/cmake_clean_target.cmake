file(REMOVE_RECURSE
  "libcadapt_obs.a"
)
