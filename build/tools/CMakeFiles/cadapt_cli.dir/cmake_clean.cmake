file(REMOVE_RECURSE
  "CMakeFiles/cadapt_cli.dir/cadapt_cli.cpp.o"
  "CMakeFiles/cadapt_cli.dir/cadapt_cli.cpp.o.d"
  "cadapt"
  "cadapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadapt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
