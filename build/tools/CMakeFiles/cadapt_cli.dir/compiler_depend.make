# Empty compiler generated dependencies file for cadapt_cli.
# This may be replaced when dependencies are built.
