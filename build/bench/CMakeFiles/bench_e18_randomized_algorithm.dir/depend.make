# Empty dependencies file for bench_e18_randomized_algorithm.
# This may be replaced when dependencies are built.
