file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_randomized_algorithm.dir/bench_e18_randomized_algorithm.cpp.o"
  "CMakeFiles/bench_e18_randomized_algorithm.dir/bench_e18_randomized_algorithm.cpp.o.d"
  "bench_e18_randomized_algorithm"
  "bench_e18_randomized_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_randomized_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
