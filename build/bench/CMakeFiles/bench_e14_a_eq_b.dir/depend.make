# Empty dependencies file for bench_e14_a_eq_b.
# This may be replaced when dependencies are built.
