file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_a_eq_b.dir/bench_e14_a_eq_b.cpp.o"
  "CMakeFiles/bench_e14_a_eq_b.dir/bench_e14_a_eq_b.cpp.o.d"
  "bench_e14_a_eq_b"
  "bench_e14_a_eq_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_a_eq_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
