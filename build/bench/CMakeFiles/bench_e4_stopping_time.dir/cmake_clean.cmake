file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_stopping_time.dir/bench_e4_stopping_time.cpp.o"
  "CMakeFiles/bench_e4_stopping_time.dir/bench_e4_stopping_time.cpp.o.d"
  "bench_e4_stopping_time"
  "bench_e4_stopping_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_stopping_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
