# Empty dependencies file for bench_e4_stopping_time.
# This may be replaced when dependencies are built.
