file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_no_catchup.dir/bench_e10_no_catchup.cpp.o"
  "CMakeFiles/bench_e10_no_catchup.dir/bench_e10_no_catchup.cpp.o.d"
  "bench_e10_no_catchup"
  "bench_e10_no_catchup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_no_catchup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
