# Empty dependencies file for bench_e10_no_catchup.
# This may be replaced when dependencies are built.
