file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_adversary_search.dir/bench_e17_adversary_search.cpp.o"
  "CMakeFiles/bench_e17_adversary_search.dir/bench_e17_adversary_search.cpp.o.d"
  "bench_e17_adversary_search"
  "bench_e17_adversary_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_adversary_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
