# Empty compiler generated dependencies file for bench_e7_order_perturb.
# This may be replaced when dependencies are built.
