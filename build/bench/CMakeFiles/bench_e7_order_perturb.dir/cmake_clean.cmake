file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_order_perturb.dir/bench_e7_order_perturb.cpp.o"
  "CMakeFiles/bench_e7_order_perturb.dir/bench_e7_order_perturb.cpp.o.d"
  "bench_e7_order_perturb"
  "bench_e7_order_perturb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_order_perturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
