# Empty compiler generated dependencies file for bench_e12_scan_hiding.
# This may be replaced when dependencies are built.
