file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_size_perturb.dir/bench_e5_size_perturb.cpp.o"
  "CMakeFiles/bench_e5_size_perturb.dir/bench_e5_size_perturb.cpp.o.d"
  "bench_e5_size_perturb"
  "bench_e5_size_perturb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_size_perturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
