# Empty compiler generated dependencies file for bench_e9_c_lt_1.
# This may be replaced when dependencies are built.
