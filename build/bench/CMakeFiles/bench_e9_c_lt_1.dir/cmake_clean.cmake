file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_c_lt_1.dir/bench_e9_c_lt_1.cpp.o"
  "CMakeFiles/bench_e9_c_lt_1.dir/bench_e9_c_lt_1.cpp.o.d"
  "bench_e9_c_lt_1"
  "bench_e9_c_lt_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_c_lt_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
