# Empty compiler generated dependencies file for bench_e3_shuffled.
# This may be replaced when dependencies are built.
