file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_shuffled.dir/bench_e3_shuffled.cpp.o"
  "CMakeFiles/bench_e3_shuffled.dir/bench_e3_shuffled.cpp.o.d"
  "bench_e3_shuffled"
  "bench_e3_shuffled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_shuffled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
