file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_multiprogram.dir/bench_e15_multiprogram.cpp.o"
  "CMakeFiles/bench_e15_multiprogram.dir/bench_e15_multiprogram.cpp.o.d"
  "bench_e15_multiprogram"
  "bench_e15_multiprogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_multiprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
