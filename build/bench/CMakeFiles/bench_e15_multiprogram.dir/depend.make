# Empty dependencies file for bench_e15_multiprogram.
# This may be replaced when dependencies are built.
