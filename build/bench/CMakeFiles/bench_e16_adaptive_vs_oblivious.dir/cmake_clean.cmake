file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_adaptive_vs_oblivious.dir/bench_e16_adaptive_vs_oblivious.cpp.o"
  "CMakeFiles/bench_e16_adaptive_vs_oblivious.dir/bench_e16_adaptive_vs_oblivious.cpp.o.d"
  "bench_e16_adaptive_vs_oblivious"
  "bench_e16_adaptive_vs_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_adaptive_vs_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
