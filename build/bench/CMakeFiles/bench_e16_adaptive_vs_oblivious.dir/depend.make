# Empty dependencies file for bench_e16_adaptive_vs_oblivious.
# This may be replaced when dependencies are built.
