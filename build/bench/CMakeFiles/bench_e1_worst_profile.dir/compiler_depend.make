# Empty compiler generated dependencies file for bench_e1_worst_profile.
# This may be replaced when dependencies are built.
