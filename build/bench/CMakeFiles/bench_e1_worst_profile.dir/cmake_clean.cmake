file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_worst_profile.dir/bench_e1_worst_profile.cpp.o"
  "CMakeFiles/bench_e1_worst_profile.dir/bench_e1_worst_profile.cpp.o.d"
  "bench_e1_worst_profile"
  "bench_e1_worst_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_worst_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
