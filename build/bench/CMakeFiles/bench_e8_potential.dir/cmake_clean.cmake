file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_potential.dir/bench_e8_potential.cpp.o"
  "CMakeFiles/bench_e8_potential.dir/bench_e8_potential.cpp.o.d"
  "bench_e8_potential"
  "bench_e8_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
