# Empty dependencies file for bench_e2_log_gap.
# This may be replaced when dependencies are built.
