
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_log_gap.cpp" "bench/CMakeFiles/bench_e2_log_gap.dir/bench_e2_log_gap.cpp.o" "gcc" "bench/CMakeFiles/bench_e2_log_gap.dir/bench_e2_log_gap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cadapt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/cadapt_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/cadapt_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cadapt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/cadapt_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/cadapt_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/cadapt_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
