file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_log_gap.dir/bench_e2_log_gap.cpp.o"
  "CMakeFiles/bench_e2_log_gap.dir/bench_e2_log_gap.cpp.o.d"
  "bench_e2_log_gap"
  "bench_e2_log_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_log_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
