file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_start_shift.dir/bench_e6_start_shift.cpp.o"
  "CMakeFiles/bench_e6_start_shift.dir/bench_e6_start_shift.cpp.o.d"
  "bench_e6_start_shift"
  "bench_e6_start_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_start_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
