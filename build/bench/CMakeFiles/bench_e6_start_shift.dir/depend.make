# Empty dependencies file for bench_e6_start_shift.
# This may be replaced when dependencies are built.
