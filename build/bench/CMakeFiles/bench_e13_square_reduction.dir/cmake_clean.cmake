file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_square_reduction.dir/bench_e13_square_reduction.cpp.o"
  "CMakeFiles/bench_e13_square_reduction.dir/bench_e13_square_reduction.cpp.o.d"
  "bench_e13_square_reduction"
  "bench_e13_square_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_square_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
