# Empty compiler generated dependencies file for bench_e13_square_reduction.
# This may be replaced when dependencies are built.
