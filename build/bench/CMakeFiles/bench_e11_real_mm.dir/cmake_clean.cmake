file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_real_mm.dir/bench_e11_real_mm.cpp.o"
  "CMakeFiles/bench_e11_real_mm.dir/bench_e11_real_mm.cpp.o.d"
  "bench_e11_real_mm"
  "bench_e11_real_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_real_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
