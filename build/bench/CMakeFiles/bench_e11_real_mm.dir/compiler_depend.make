# Empty compiler generated dependencies file for bench_e11_real_mm.
# This may be replaced when dependencies are built.
