file(REMOVE_RECURSE
  "CMakeFiles/test_engine_exec.dir/test_engine_exec.cpp.o"
  "CMakeFiles/test_engine_exec.dir/test_engine_exec.cpp.o.d"
  "test_engine_exec"
  "test_engine_exec.pdb"
  "test_engine_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
