file(REMOVE_RECURSE
  "CMakeFiles/test_engine_reference_diff.dir/test_engine_reference_diff.cpp.o"
  "CMakeFiles/test_engine_reference_diff.dir/test_engine_reference_diff.cpp.o.d"
  "test_engine_reference_diff"
  "test_engine_reference_diff.pdb"
  "test_engine_reference_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_reference_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
