# Empty compiler generated dependencies file for test_engine_reference_diff.
# This may be replaced when dependencies are built.
