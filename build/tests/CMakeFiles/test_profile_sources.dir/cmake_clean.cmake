file(REMOVE_RECURSE
  "CMakeFiles/test_profile_sources.dir/test_profile_sources.cpp.o"
  "CMakeFiles/test_profile_sources.dir/test_profile_sources.cpp.o.d"
  "test_profile_sources"
  "test_profile_sources.pdb"
  "test_profile_sources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
