file(REMOVE_RECURSE
  "CMakeFiles/test_paging_trace.dir/test_paging_trace.cpp.o"
  "CMakeFiles/test_paging_trace.dir/test_paging_trace.cpp.o.d"
  "test_paging_trace"
  "test_paging_trace.pdb"
  "test_paging_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paging_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
