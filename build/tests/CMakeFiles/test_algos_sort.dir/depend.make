# Empty dependencies file for test_algos_sort.
# This may be replaced when dependencies are built.
