file(REMOVE_RECURSE
  "CMakeFiles/test_algos_edit_lu.dir/test_algos_edit_lu.cpp.o"
  "CMakeFiles/test_algos_edit_lu.dir/test_algos_edit_lu.cpp.o.d"
  "test_algos_edit_lu"
  "test_algos_edit_lu.pdb"
  "test_algos_edit_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_edit_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
