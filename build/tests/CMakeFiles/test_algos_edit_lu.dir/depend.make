# Empty dependencies file for test_algos_edit_lu.
# This may be replaced when dependencies are built.
