file(REMOVE_RECURSE
  "CMakeFiles/test_profile_generators.dir/test_profile_generators.cpp.o"
  "CMakeFiles/test_profile_generators.dir/test_profile_generators.cpp.o.d"
  "test_profile_generators"
  "test_profile_generators.pdb"
  "test_profile_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
