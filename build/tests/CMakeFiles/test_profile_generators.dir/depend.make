# Empty dependencies file for test_profile_generators.
# This may be replaced when dependencies are built.
