# Empty dependencies file for test_algos_lcs.
# This may be replaced when dependencies are built.
