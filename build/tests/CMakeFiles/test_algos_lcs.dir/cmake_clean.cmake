file(REMOVE_RECURSE
  "CMakeFiles/test_algos_lcs.dir/test_algos_lcs.cpp.o"
  "CMakeFiles/test_algos_lcs.dir/test_algos_lcs.cpp.o.d"
  "test_algos_lcs"
  "test_algos_lcs.pdb"
  "test_algos_lcs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_lcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
