file(REMOVE_RECURSE
  "CMakeFiles/test_algos_stencil.dir/test_algos_stencil.cpp.o"
  "CMakeFiles/test_algos_stencil.dir/test_algos_stencil.cpp.o.d"
  "test_algos_stencil"
  "test_algos_stencil.pdb"
  "test_algos_stencil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
