# Empty dependencies file for test_algos_stencil.
# This may be replaced when dependencies are built.
