file(REMOVE_RECURSE
  "CMakeFiles/test_core_experiments.dir/test_core_experiments.cpp.o"
  "CMakeFiles/test_core_experiments.dir/test_core_experiments.cpp.o.d"
  "test_core_experiments"
  "test_core_experiments.pdb"
  "test_core_experiments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
