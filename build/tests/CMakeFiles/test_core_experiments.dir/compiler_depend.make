# Empty compiler generated dependencies file for test_core_experiments.
# This may be replaced when dependencies are built.
