file(REMOVE_RECURSE
  "CMakeFiles/test_profile_square_approx.dir/test_profile_square_approx.cpp.o"
  "CMakeFiles/test_profile_square_approx.dir/test_profile_square_approx.cpp.o.d"
  "test_profile_square_approx"
  "test_profile_square_approx.pdb"
  "test_profile_square_approx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_square_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
