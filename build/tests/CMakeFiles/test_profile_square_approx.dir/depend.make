# Empty dependencies file for test_profile_square_approx.
# This may be replaced when dependencies are built.
