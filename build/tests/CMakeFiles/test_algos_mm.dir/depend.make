# Empty dependencies file for test_algos_mm.
# This may be replaced when dependencies are built.
