file(REMOVE_RECURSE
  "CMakeFiles/test_algos_mm.dir/test_algos_mm.cpp.o"
  "CMakeFiles/test_algos_mm.dir/test_algos_mm.cpp.o.d"
  "test_algos_mm"
  "test_algos_mm.pdb"
  "test_algos_mm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
