file(REMOVE_RECURSE
  "CMakeFiles/test_engine_analytic.dir/test_engine_analytic.cpp.o"
  "CMakeFiles/test_engine_analytic.dir/test_engine_analytic.cpp.o.d"
  "test_engine_analytic"
  "test_engine_analytic.pdb"
  "test_engine_analytic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
