# Empty dependencies file for test_util_args.
# This may be replaced when dependencies are built.
