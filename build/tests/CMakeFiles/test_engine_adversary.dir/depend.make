# Empty dependencies file for test_engine_adversary.
# This may be replaced when dependencies are built.
