file(REMOVE_RECURSE
  "CMakeFiles/test_engine_adversary.dir/test_engine_adversary.cpp.o"
  "CMakeFiles/test_engine_adversary.dir/test_engine_adversary.cpp.o.d"
  "test_engine_adversary"
  "test_engine_adversary.pdb"
  "test_engine_adversary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
