file(REMOVE_RECURSE
  "CMakeFiles/test_engine_montecarlo.dir/test_engine_montecarlo.cpp.o"
  "CMakeFiles/test_engine_montecarlo.dir/test_engine_montecarlo.cpp.o.d"
  "test_engine_montecarlo"
  "test_engine_montecarlo.pdb"
  "test_engine_montecarlo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
