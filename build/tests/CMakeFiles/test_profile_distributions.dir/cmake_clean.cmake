file(REMOVE_RECURSE
  "CMakeFiles/test_profile_distributions.dir/test_profile_distributions.cpp.o"
  "CMakeFiles/test_profile_distributions.dir/test_profile_distributions.cpp.o.d"
  "test_profile_distributions"
  "test_profile_distributions.pdb"
  "test_profile_distributions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
