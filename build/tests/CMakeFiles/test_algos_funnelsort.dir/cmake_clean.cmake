file(REMOVE_RECURSE
  "CMakeFiles/test_algos_funnelsort.dir/test_algos_funnelsort.cpp.o"
  "CMakeFiles/test_algos_funnelsort.dir/test_algos_funnelsort.cpp.o.d"
  "test_algos_funnelsort"
  "test_algos_funnelsort.pdb"
  "test_algos_funnelsort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_funnelsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
