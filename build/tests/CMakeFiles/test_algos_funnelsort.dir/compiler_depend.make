# Empty compiler generated dependencies file for test_algos_funnelsort.
# This may be replaced when dependencies are built.
