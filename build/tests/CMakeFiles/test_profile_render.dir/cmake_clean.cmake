file(REMOVE_RECURSE
  "CMakeFiles/test_profile_render.dir/test_profile_render.cpp.o"
  "CMakeFiles/test_profile_render.dir/test_profile_render.cpp.o.d"
  "test_profile_render"
  "test_profile_render.pdb"
  "test_profile_render[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
