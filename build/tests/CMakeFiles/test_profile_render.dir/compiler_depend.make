# Empty compiler generated dependencies file for test_profile_render.
# This may be replaced when dependencies are built.
