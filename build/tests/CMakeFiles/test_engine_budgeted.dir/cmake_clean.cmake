file(REMOVE_RECURSE
  "CMakeFiles/test_engine_budgeted.dir/test_engine_budgeted.cpp.o"
  "CMakeFiles/test_engine_budgeted.dir/test_engine_budgeted.cpp.o.d"
  "test_engine_budgeted"
  "test_engine_budgeted.pdb"
  "test_engine_budgeted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_budgeted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
