file(REMOVE_RECURSE
  "CMakeFiles/test_algos_adaptive_sort.dir/test_algos_adaptive_sort.cpp.o"
  "CMakeFiles/test_algos_adaptive_sort.dir/test_algos_adaptive_sort.cpp.o.d"
  "test_algos_adaptive_sort"
  "test_algos_adaptive_sort.pdb"
  "test_algos_adaptive_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_adaptive_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
