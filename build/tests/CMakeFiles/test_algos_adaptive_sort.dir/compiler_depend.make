# Empty compiler generated dependencies file for test_algos_adaptive_sort.
# This may be replaced when dependencies are built.
