# Empty dependencies file for test_engine_determinism.
# This may be replaced when dependencies are built.
