file(REMOVE_RECURSE
  "CMakeFiles/test_engine_determinism.dir/test_engine_determinism.cpp.o"
  "CMakeFiles/test_engine_determinism.dir/test_engine_determinism.cpp.o.d"
  "test_engine_determinism"
  "test_engine_determinism.pdb"
  "test_engine_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
