file(REMOVE_RECURSE
  "CMakeFiles/test_algos_fw.dir/test_algos_fw.cpp.o"
  "CMakeFiles/test_algos_fw.dir/test_algos_fw.cpp.o.d"
  "test_algos_fw"
  "test_algos_fw.pdb"
  "test_algos_fw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
