# Empty compiler generated dependencies file for test_algos_fw.
# This may be replaced when dependencies are built.
