file(REMOVE_RECURSE
  "CMakeFiles/test_engine_conservation.dir/test_engine_conservation.cpp.o"
  "CMakeFiles/test_engine_conservation.dir/test_engine_conservation.cpp.o.d"
  "test_engine_conservation"
  "test_engine_conservation.pdb"
  "test_engine_conservation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
