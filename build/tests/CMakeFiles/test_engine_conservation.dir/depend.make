# Empty dependencies file for test_engine_conservation.
# This may be replaced when dependencies are built.
