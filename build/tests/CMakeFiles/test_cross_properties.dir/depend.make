# Empty dependencies file for test_cross_properties.
# This may be replaced when dependencies are built.
