file(REMOVE_RECURSE
  "CMakeFiles/test_cross_properties.dir/test_cross_properties.cpp.o"
  "CMakeFiles/test_cross_properties.dir/test_cross_properties.cpp.o.d"
  "test_cross_properties"
  "test_cross_properties.pdb"
  "test_cross_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
