file(REMOVE_RECURSE
  "CMakeFiles/test_model_units.dir/test_model_units.cpp.o"
  "CMakeFiles/test_model_units.dir/test_model_units.cpp.o.d"
  "test_model_units"
  "test_model_units.pdb"
  "test_model_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
