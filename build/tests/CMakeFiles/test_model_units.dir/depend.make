# Empty dependencies file for test_model_units.
# This may be replaced when dependencies are built.
