#include "serve/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace cadapt::serve {

void FairScheduler::add_job(const std::string& job, const std::string& client,
                            std::uint64_t weight,
                            std::vector<std::uint64_t> cells) {
  CADAPT_CHECK_MSG(find_job(job) == nullptr,
                   "serve scheduler: duplicate job id '" << job << "'");
  ClientQueue* queue = nullptr;
  for (ClientQueue& c : clients_) {
    if (c.id == client) {
      queue = &c;
      break;
    }
  }
  if (queue == nullptr) {
    clients_.push_back(ClientQueue{});
    queue = &clients_.back();
    queue->id = client;
  }
  queue->weight = std::max<std::uint64_t>(1, weight);
  JobQueue jq;
  jq.id = job;
  jq.cells.assign(cells.begin(), cells.end());
  queue->jobs.push_back(std::move(jq));
}

void FairScheduler::remove_job(const std::string& job) {
  for (ClientQueue& client : clients_) {
    for (auto it = client.jobs.begin(); it != client.jobs.end(); ++it) {
      if (it->id == job) {
        client.jobs.erase(it);
        return;
      }
    }
  }
}

void FairScheduler::pause_job(const std::string& job) {
  if (JobQueue* jq = find_job(job)) jq->paused = true;
}

void FairScheduler::resume_job(const std::string& job) {
  if (JobQueue* jq = find_job(job)) jq->paused = false;
}

bool FairScheduler::empty() const {
  for (const ClientQueue& client : clients_) {
    if (client.eligible()) return false;
  }
  return true;
}

std::uint64_t FairScheduler::pending() const {
  std::uint64_t total = 0;
  for (const ClientQueue& client : clients_) {
    for (const JobQueue& job : client.jobs) total += job.cells.size();
  }
  return total;
}

std::optional<SchedulerPick> FairScheduler::next() {
  // Smooth WRR step. Only ELIGIBLE clients accrue credit: a client that
  // is paused or drained does not bank entitlement while absent, so it
  // rejoins at its steady-state share instead of bursting — absence must
  // not perturb the other tenants' future order any more than it already
  // did by freeing slots.
  std::int64_t total_weight = 0;
  ClientQueue* winner = nullptr;
  for (ClientQueue& client : clients_) {
    if (!client.eligible()) continue;
    total_weight += static_cast<std::int64_t>(client.weight);
    client.credit += static_cast<std::int64_t>(client.weight);
    // Strict > keeps ties on the earliest-submitted client.
    if (winner == nullptr || client.credit > winner->credit) {
      winner = &client;
    }
  }
  if (winner == nullptr) return std::nullopt;
  winner->credit -= total_weight;
  for (JobQueue& job : winner->jobs) {
    if (job.paused || job.cells.empty()) continue;
    SchedulerPick pick{job.id, job.cells.front()};
    job.cells.pop_front();
    return pick;
  }
  CADAPT_CHECK_MSG(false, "serve scheduler: eligible client '"
                              << winner->id << "' had no dispatchable cell");
  return std::nullopt;
}

FairScheduler::JobQueue* FairScheduler::find_job(const std::string& job) {
  for (ClientQueue& client : clients_) {
    for (JobQueue& jq : client.jobs) {
      if (jq.id == job) return &jq;
    }
  }
  return nullptr;
}

}  // namespace cadapt::serve
