// The `cadapt serve` wire protocol (docs/SERVE.md): newline-delimited
// JSON over a local Unix-domain stream socket, reusing obs::Event as the
// envelope — the same flat encoding as traces, checkpoints, and reports,
// so one parser serves the whole system.
//
// One connection carries one request line followed by the response:
//
//   hello    -> one serve_hello line (build provenance + versions)
//   submit   -> one job_accepted line (or one error line)
//   status   -> one job_status line per job, then one end line
//   cancel   -> one ok line (or one error line)
//   results  -> sweep_cell progress lines in completion order (telemetry),
//               then one job_done line, then the job's full report bytes
//               until EOF — the deterministic artifact, byte-identical to
//               one-shot `cadapt sweep` on the same manifest
//
// error lines carry a `code` mirroring the CLI exit-code taxonomy
// (docs/ROBUSTNESS.md): 2 usage, 3 input, 4 internal.
#pragma once

#include <cstdint>
#include <string>

#include "obs/event.hpp"

namespace cadapt::serve {

/// Bumped when a request/response shape changes incompatibly. Clients
/// handshake via `hello` (or offline via `cadapt version --json`, which
/// prints the same fields) before speaking anything else.
inline constexpr std::uint64_t kProtocolVersion = 1;
/// The campaign::Report version the daemon streams (report.hpp).
inline constexpr std::uint64_t kReportVersion = 1;

/// Machine-readable build provenance plus the protocol/report versions —
/// the payload of both `cadapt version --json` (type "version") and the
/// daemon's hello response (type "serve_hello").
obs::Event version_event(const std::string& type_tag = "version");

/// A submitted job: the manifest text travels verbatim as a JSON string
/// (json_escape round-trips newlines), so the daemon parses the exact
/// bytes a one-shot `cadapt sweep` would read — a precondition of the
/// byte-identity contract. Everything else is per-job/per-client policy.
struct SubmitRequest {
  std::string manifest_text;
  std::string client = "anon";   ///< fair-share tenant identity
  std::uint64_t weight = 1;      ///< WRR weight of this client (>= 1)
  std::uint64_t deadline_ms = 0; ///< per-job wall deadline; 0 = none
  std::uint64_t box_budget = 0;  ///< per-CLIENT total-box cap; 0 = none
  std::string fault_spec;        ///< robust::FaultPlan spec; "" = none
  std::uint64_t fault_seed = 0;  ///< 0 = derive from the manifest seed
  std::uint32_t retries = 0;     ///< extra attempts per failing trial

  bool operator==(const SubmitRequest&) const = default;
};

/// Encode / decode a submit request. Optional fields are only-when-set,
/// like every other encoder in the repo, so minimal requests stay small
/// and stable. submit_from_event applies the struct's defaults.
obs::Event submit_event(const SubmitRequest& request);
SubmitRequest submit_from_event(const obs::Event& event);

/// One protocol error line; `code` mirrors the CLI exit codes.
obs::Event error_event(int code, const std::string& message);

/// Parse one request/response line. Throws util::ParseError on bytes
/// that are not a flat JSONL object.
obs::Event parse_line(const std::string& line);

}  // namespace cadapt::serve
