#include "serve/server.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/manifest.hpp"
#include "campaign/sweep.hpp"
#include "obs/span.hpp"
#include "robust/checkpoint.hpp"
#include "util/check.hpp"

namespace cadapt::serve {

namespace {

constexpr std::array<const char*, 5> kStateNames = {"queued", "running",
                                                    "done", "cancelled",
                                                    "failed"};

bool terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kCancelled ||
         state == JobState::kFailed;
}

}  // namespace

const char* job_state_name(JobState state) {
  const auto idx = static_cast<std::size_t>(state);
  CADAPT_CHECK(idx < kStateNames.size());
  return kStateNames[idx];
}

// One tenant job. Heap-allocated and never erased from jobs_ while the
// core lives, so worker threads may hold pointers into plan/options
// outside the mutex (both are immutable after init).
struct ServeCore::Job {
  JobFiles files;
  SubmitRequest request;
  campaign::Plan plan;                     // empty for restored-terminal jobs
  campaign::CellRunOptions cell_options;
  std::unique_ptr<robust::FaultPlan> faults;
  std::unique_ptr<robust::FaultyIo> faulty_io;
  robust::IoBackend* io = nullptr;         // faulty_io or the core's backend
  robust::CancelToken cancel;
  std::unique_ptr<robust::Watchdog> watchdog;
  std::unique_ptr<robust::DurableAppender> checkpoint;
  std::map<std::uint64_t, campaign::CellResult> results;

  JobState state = JobState::kQueued;
  bool truncated = false;
  robust::CancelReason reason = robust::CancelReason::kNone;
  bool client_cancelled = false;
  std::uint64_t config_hash = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t restored_cells_done = 0;  // terminal jobs after a restart
  std::uint64_t in_flight = 0;
  std::uint64_t started_ns = 0;
  std::string error;

  // Streaming (docs/SERVE.md, "Backpressure").
  bool subscriber = false;
  bool stream_paused = false;
  std::deque<std::string> stream;  // sweep_cell jsonl, completion order
};

ServeCore::ServeCore(const ServeOptions& options)
    : options_(options),
      io_(options.io != nullptr ? *options.io : robust::system_io()),
      spool_(options.spool_dir, io_),
      pool_(static_cast<std::size_t>(options.jobs)) {
  slots_ = options_.slots != 0 ? options_.slots
                               : static_cast<std::uint64_t>(pool_.size());
  started_ = options_.autostart;
  resume_spool();
}

ServeCore::~ServeCore() { shutdown(); }

void ServeCore::resume_spool() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const JobFiles& files : spool_.scan()) {
    const SubmitRequest request =
        submit_from_event(spool_.load_meta(files));
    if (files.has_report) {
      // Terminal history: status answers from the report header, nothing
      // re-enters the scheduler.
      const campaign::Report report =
          campaign::load_report_file(files.report_path);
      auto job = std::make_unique<Job>();
      job->files = files;
      job->request = request;
      job->config_hash = report.config_hash;
      job->cells_total = report.cells_total;
      job->restored_cells_done = report.cells.size();
      job->truncated = report.truncated;
      job->reason = report.truncate_reason;
      job->state = report.truncated && report.truncate_reason ==
                                           robust::CancelReason::kExternal
                       ? JobState::kCancelled
                       : JobState::kDone;
      jobs_.emplace(files.id, std::move(job));
      continue;
    }
    init_job(files, request, /*resuming=*/true);
  }
  pump();
}

JobStatus ServeCore::submit(const SubmitRequest& request) {
  // Parse OUTSIDE the job registry: a malformed manifest throws
  // util::ParseError here and no job id, spool entry, or queue slot ever
  // exists for it.
  std::istringstream is(request.manifest_text);
  (void)campaign::parse_manifest(is);

  const std::lock_guard<std::mutex> lock(mutex_);
  CADAPT_CHECK_MSG(!shutting_down_, "serve core is shutting down");
  const JobFiles files = spool_.files_for(spool_.allocate_id());
  obs::Event meta = submit_event(request);
  meta.type = "serve_job";
  meta.without("manifest").str("job", files.id);
  spool_.persist_job(files, request.manifest_text, meta);
  init_job(files, request, /*resuming=*/false);
  pump();
  cv_.notify_all();
  return status_of(*jobs_.at(files.id));
}

void ServeCore::init_job(const JobFiles& files, const SubmitRequest& request,
                         bool resuming) {
  campaign::Manifest manifest;
  {
    std::istringstream is(request.manifest_text.empty() && resuming
                              ? spool_.load_manifest_text(files)
                              : request.manifest_text);
    manifest = campaign::parse_manifest(is);
  }
  auto job = std::make_unique<Job>();
  job->files = files;
  job->request = request;
  job->plan = campaign::expand_plan(manifest);
  job->config_hash = job->plan.config_hash;
  job->cells_total = job->plan.cells.size();

  job->cell_options = campaign::cell_options_from(manifest);
  job->cell_options.timing = options_.timing;
  job->cell_options.max_attempts = request.retries + 1;
  job->cell_options.cancel = &job->cancel;
  // The box-granular poll hook is a deadline tool; without one, attempt
  // boundaries are enough for cancel and the fast paths stay live.
  job->cell_options.cancel_per_box = request.deadline_ms != 0;
  if (!request.fault_spec.empty()) {
    const std::uint64_t seed = request.fault_seed != 0
                                   ? request.fault_seed
                                   : manifest.seed ^ 0xFA17ull;
    job->faults = std::make_unique<robust::FaultPlan>(
        robust::FaultPlan::parse_spec(request.fault_spec, seed));
    job->cell_options.faults = job->faults.get();
  }
  job->io = &io_;
  if (job->faults != nullptr && robust::FaultyIo::plan_arms_io(*job->faults)) {
    job->faulty_io = std::make_unique<robust::FaultyIo>(io_,
                                                        job->faults.get());
    job->io = job->faulty_io.get();
  }

  // Per-client box budget: the tracker accrues across every job the
  // client submits; the first submit naming a budget creates it.
  ClientState& client = clients_[request.client];
  if (client.tracker == nullptr && request.box_budget != 0) {
    robust::Budget budget;
    budget.max_total_boxes = request.box_budget;
    client.tracker = std::make_unique<robust::BudgetTracker>(budget);
  }

  // The checkpoint is the sweep format at shards=1 — the SAME header,
  // loader, and cell lines as one-shot `cadapt sweep --checkpoint`.
  robust::truncate_torn_tail(files.checkpoint_path);
  job->checkpoint = std::make_unique<robust::DurableAppender>(
      files.checkpoint_path, /*truncate=*/!resuming, *job->io);
  if (resuming) {
    job->results = campaign::load_sweep_checkpoint(files.checkpoint_path,
                                                   job->plan, 1, 0);
  }
  if (job->checkpoint->initial_size() == 0) {
    obs::to_jsonl(campaign::sweep_checkpoint_header(job->plan, 1, 0),
                  line_buf_);
    job->checkpoint->write(line_buf_);
    job->checkpoint->write("\n");
    job->checkpoint->commit();
  }

  std::vector<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < job->cells_total; ++i) {
    if (job->results.find(i) == job->results.end()) pending.push_back(i);
  }
  scheduler_.add_job(files.id, request.client, request.weight,
                     std::move(pending));
  if (request.deadline_ms != 0) {
    // The deadline is wall clock from (re)admission — a restarted daemon
    // re-arms it in full, like any other watchdog.
    job->watchdog = std::make_unique<robust::Watchdog>(
        job->cancel, request.deadline_ms * 1'000'000ull);
  }
  if (options_.timing) job->started_ns = obs::steady_now_ns();
  if (options_.trace != nullptr) {
    obs::Event event("job_accepted");
    event.str("job", files.id)
        .str("client", request.client)
        .u64("config_hash", job->config_hash)
        .u64("cells", job->cells_total);
    options_.trace->write(event);
  }
  Job& ref = *job;
  jobs_.emplace(files.id, std::move(job));
  maybe_finalize(ref);  // a fully-checkpointed job finishes right here
}

void ServeCore::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  pump();
}

void ServeCore::pump() {
  if (!started_ || shutting_down_) return;
  while (in_flight_ < slots_) {
    // Pre-empt doomed picks: a cancelled job or an over-budget client
    // truncates HERE, at a dispatch boundary — a deterministic function
    // of the work actually dispatched, never of wall clocks.
    const std::optional<SchedulerPick> pick = scheduler_.next();
    if (!pick.has_value()) break;
    Job& job = *jobs_.at(pick->job);
    if (job.cancel.requested()) {
      truncate_job(job, job.cancel.reason());
      continue;
    }
    const ClientState& client = clients_[job.request.client];
    if (client.tracker != nullptr && client.tracker->exceeded()) {
      truncate_job(job, robust::CancelReason::kBudget);
      continue;
    }
    dispatch_log_.push_back(*pick);
    job.state = JobState::kRunning;
    ++job.in_flight;
    ++in_flight_;
    if (options_.trace != nullptr) {
      obs::Event event("cell_scheduled");
      event.str("job", pick->job).u64("cell", pick->cell);
      options_.trace->write(event);
    }
    pool_.submit([this, id = pick->job, cell = pick->cell] {
      run_one(id, cell);
    });
  }
}

void ServeCore::run_one(const std::string& id, std::uint64_t cell_index) {
  const campaign::Cell* cell = nullptr;
  campaign::CellRunOptions cell_options;
  std::uint64_t config_hash = 0;
  bool unit_progress = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      Job& job = *jobs_.at(id);
      --job.in_flight;
      --in_flight_;
      cv_.notify_all();
      return;
    }
    const Job& job = *jobs_.at(id);
    cell = &job.plan.cells[cell_index];
    cell_options = job.cell_options;
    config_hash = job.config_hash;
    unit_progress = job.plan.manifest.unit_progress;
    // A job asking for intra-cell workers (manifest `workers` key,
    // docs/PARALLEL.md) gets its fair share of the daemon's pool, not
    // the full count times every in-flight cell: clamp to pool size /
    // in-flight cells (>= 1). The clamp is timing-dependent — safe,
    // because workers never affects a cell's result bytes.
    const std::uint64_t share =
        static_cast<std::uint64_t>(pool_.size()) /
        std::max<std::uint64_t>(1, in_flight_);
    cell_options.workers =
        std::min(cell_options.workers, std::max<std::uint64_t>(1, share));
  }

  // The cell itself runs OUTSIDE the mutex — this is where the wall
  // time goes, and tenants must not serialize on each other here.
  std::vector<robust::TrialRecord> records;
  bool cancelled = false;
  robust::CancelReason cancel_reason = robust::CancelReason::kNone;
  std::string error;
  try {
    records = campaign::run_cell(*cell, cell_options);
  } catch (const robust::CancelledError& e) {
    cancelled = true;
    cancel_reason = e.reason();
  } catch (const std::exception& e) {
    error = e.what();
  }
  campaign::CellResult result;
  std::uint64_t boxes = 0;
  if (!cancelled && error.empty()) {
    for (const robust::TrialRecord& record : records) boxes += record.boxes;
    result = campaign::aggregate_cell(*cell, records, config_hash,
                                      unit_progress);
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  Job& job = *jobs_.at(id);
  --job.in_flight;
  --in_flight_;
  if (shutting_down_) {
    cv_.notify_all();
    return;
  }
  if (terminal(job.state)) {
    // A failed job's stragglers unwind without touching its artifacts.
    cv_.notify_all();
    return;
  }
  if (cancelled) {
    // The interrupted cell is discarded wholesale — a partially executed
    // cell must never reach the checkpoint or the report (same contract
    // as run_sweep). Committed cells survive for resume.
    truncate_job(job, cancel_reason);
  } else if (!error.empty()) {
    fail_job(job, error);
  } else {
    if (robust::BudgetTracker* tracker =
            clients_[job.request.client].tracker.get()) {
      tracker->add_boxes(boxes);
    }
    obs::to_jsonl(campaign::cell_event(result), line_buf_);
    try {
      job.checkpoint->write(line_buf_);
      job.checkpoint->write("\n");
      job.checkpoint->commit();
      job.results.emplace(cell_index, std::move(result));
      if (job.subscriber) {
        job.stream.push_back(line_buf_);
        if (!job.stream_paused &&
            job.stream.size() >= options_.stream_buffer) {
          // Backpressure: this subscriber stopped draining, so THIS job
          // stops dispatching. Nobody else's queue position moves.
          job.stream_paused = true;
          scheduler_.pause_job(id);
        }
      }
      if (options_.trace != nullptr) {
        options_.trace->write(campaign::cell_event(job.results[cell_index]));
      }
      maybe_finalize(job);
    } catch (const util::IoError& e) {
      fail_job(job, e.what());
    }
  }
  pump();
  cv_.notify_all();
}

void ServeCore::truncate_job(Job& job, robust::CancelReason reason) {
  if (terminal(job.state)) return;
  job.truncated = true;
  if (job.reason == robust::CancelReason::kNone) job.reason = reason;
  scheduler_.remove_job(job.files.id);
  maybe_finalize(job);
}

void ServeCore::maybe_finalize(Job& job) {
  if (terminal(job.state) || job.in_flight != 0) return;
  if (!job.truncated && job.results.size() != job.cells_total) return;
  std::vector<campaign::CellResult> cells;
  cells.reserve(job.results.size());
  for (const auto& [index, result] : job.results) cells.push_back(result);
  const std::uint64_t wall_ms =
      options_.timing && job.started_ns != 0
          ? (obs::steady_now_ns() - job.started_ns) / 1000000u
          : 0;
  const campaign::Report report = campaign::assemble_report(
      job.plan, std::move(cells), 1, 0, job.truncated,
      job.truncated ? job.reason : robust::CancelReason::kNone, wall_ms);
  try {
    campaign::write_report_file(job.files.report_path, report, *job.io);
  } catch (const util::IoError& e) {
    fail_job(job, e.what());
    return;
  }
  job.files.has_report = true;
  job.state = job.client_cancelled ? JobState::kCancelled : JobState::kDone;
  scheduler_.remove_job(job.files.id);
  if (options_.trace != nullptr) {
    obs::Event event("job_done");
    event.str("job", job.files.id)
        .str("state", job_state_name(job.state))
        .flag("truncated", job.truncated);
    if (job.truncated) {
      event.str("reason", robust::cancel_reason_name(job.reason));
    }
    options_.trace->write(event);
  }
}

void ServeCore::fail_job(Job& job, const std::string& what) {
  if (terminal(job.state)) return;
  job.state = JobState::kFailed;
  job.error = what;
  job.cancel.request(robust::CancelReason::kExternal);  // stop stragglers
  scheduler_.remove_job(job.files.id);
  if (options_.trace != nullptr) {
    obs::Event event("job_done");
    event.str("job", job.files.id)
        .str("state", job_state_name(job.state))
        .str("error", what);
    options_.trace->write(event);
  }
}

JobStatus ServeCore::status_of(const Job& job) const {
  JobStatus status;
  status.id = job.files.id;
  status.client = job.request.client;
  status.state = job.state;
  status.config_hash = job.config_hash;
  status.cells_total = job.cells_total;
  status.cells_done = job.restored_cells_done != 0
                          ? job.restored_cells_done
                          : job.results.size();
  status.truncated = job.truncated;
  status.reason = job.reason;
  status.error = job.error;
  return status;
}

std::vector<JobStatus> ServeCore::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(status_of(*job));
  // Numeric id order (the map is lexicographic: job-10 < job-2).
  std::sort(out.begin(), out.end(),
            [](const JobStatus& a, const JobStatus& b) {
              return a.id.size() != b.id.size() ? a.id.size() < b.id.size()
                                                : a.id < b.id;
            });
  return out;
}

std::optional<JobStatus> ServeCore::status(const std::string& job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return std::nullopt;
  return status_of(*it->second);
}

bool ServeCore::cancel(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || terminal(it->second->state)) return false;
  Job& job = *it->second;
  job.client_cancelled = true;
  job.cancel.request(robust::CancelReason::kExternal);
  truncate_job(job, robust::CancelReason::kExternal);
  cv_.notify_all();
  return true;
}

bool ServeCore::wait_job(const std::string& id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  cv_.wait(lock, [this, &job] {
    return shutting_down_ || terminal(job.state);
  });
  return true;
}

void ServeCore::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] {
    if (shutting_down_) return true;
    for (const auto& [id, job] : jobs_) {
      if (!terminal(job->state)) return false;
    }
    return true;
  });
}

bool ServeCore::attach(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.subscriber) return true;
  job.subscriber = true;
  // Backfill cells that finished (or were restored from the checkpoint)
  // before the subscriber arrived: a late `results` call still sees one
  // line per cell. job.results is keyed by cell index, so the backlog
  // comes out in plan order.
  job.stream.clear();
  for (const auto& [index, result] : job.results) {
    (void)index;
    job.stream.push_back(obs::to_jsonl(campaign::cell_event(result)));
  }
  if (!terminal(job.state) && !job.stream_paused &&
      job.stream.size() >= options_.stream_buffer) {
    job.stream_paused = true;
    scheduler_.pause_job(id);
  }
  cv_.notify_all();
  return true;
}

std::optional<std::string> ServeCore::next_stream_line(const std::string& id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  Job& job = *it->second;
  cv_.wait(lock, [this, &job] {
    return shutting_down_ || !job.stream.empty() || terminal(job.state);
  });
  if (job.stream.empty()) return std::nullopt;
  std::string line = std::move(job.stream.front());
  job.stream.pop_front();
  if (job.stream_paused && job.stream.size() <= options_.stream_buffer / 2) {
    job.stream_paused = false;
    scheduler_.resume_job(id);
    pump();
    cv_.notify_all();
  }
  return line;
}

void ServeCore::detach(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = *it->second;
  job.subscriber = false;
  job.stream.clear();
  if (job.stream_paused) {
    job.stream_paused = false;
    scheduler_.resume_job(id);
    pump();
    cv_.notify_all();
  }
}

std::string ServeCore::report_bytes(const std::string& id) const {
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      throw util::IoError("unknown job '" + id + "'");
    }
    if (!it->second->files.has_report) {
      throw util::IoError("job '" + id + "' has no report (state " +
                          job_state_name(it->second->state) + ")");
    }
    path = it->second->files.report_path;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) throw util::IoError("cannot open report '" + path + "'");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::vector<SchedulerPick> ServeCore::dispatch_log() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dispatch_log_;
}

void ServeCore::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
    // Wake every in-flight cell through the cooperative path; their
    // results are discarded (never checkpointed), so the next daemon
    // resumes them from the last committed cell — bit-identically.
    for (auto& [id, job] : jobs_) {
      if (!terminal(job->state)) {
        job->cancel.request(robust::CancelReason::kExternal);
      }
    }
    cv_.notify_all();
  }
  pool_.wait_idle();
}

}  // namespace cadapt::serve
