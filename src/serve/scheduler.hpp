// Deterministic fair-share scheduling across tenants (docs/SERVE.md,
// "Scheduling model").
//
// Smooth weighted round-robin over CLIENTS (the nginx variant): each
// pick credits every eligible client its weight, dispatches the client
// with the highest credit (ties broken by first-submission order), and
// debits the winner the total eligible weight. Within a client, jobs
// dispatch FIFO by submission; within a job, cells dispatch in cell-index
// order. The pick sequence is therefore a pure function of the
// add/pause/resume/remove call sequence — never of worker completion
// timing — which is what makes the daemon's dispatch order reproducible
// across pool sizes 1/2/8 (the serve determinism tests) and a resumed
// daemon's dispatch a replay of the original's.
//
// Not thread-safe: ServeCore calls it under its own mutex. No internal
// threads, no clocks — a pure data structure.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace cadapt::serve {

/// One dispatch decision: run `cell` (a plan cell index) of `job`.
struct SchedulerPick {
  std::string job;
  std::uint64_t cell = 0;

  bool operator==(const SchedulerPick&) const = default;
};

class FairScheduler {
 public:
  /// Register a job with its pending cells (already in dispatch order).
  /// The first job of a new client fixes the client's queue position;
  /// `weight` (>= 1, clamped) updates the client's WRR weight.
  void add_job(const std::string& job, const std::string& client,
               std::uint64_t weight, std::vector<std::uint64_t> cells);

  /// Drop a job's undispatched cells (client cancel, deadline, budget
  /// trip, failure). Unknown/already-drained jobs are a no-op.
  void remove_job(const std::string& job);

  /// Backpressure seam: a paused job is skipped by next() — its client
  /// simply stops being eligible through it — without perturbing any
  /// other job's dispatch order. Unknown jobs are a no-op.
  void pause_job(const std::string& job);
  void resume_job(const std::string& job);

  /// True when next() would return nullopt (no dispatchable cell).
  bool empty() const;
  /// Undispatched cells across all jobs, paused included.
  std::uint64_t pending() const;

  /// The next (job, cell) to dispatch, or nullopt when none is eligible.
  std::optional<SchedulerPick> next();

 private:
  struct JobQueue {
    std::string id;
    std::deque<std::uint64_t> cells;
    bool paused = false;
  };
  struct ClientQueue {
    std::string id;
    std::uint64_t weight = 1;
    std::int64_t credit = 0;
    std::vector<JobQueue> jobs;  // FIFO by submission

    bool eligible() const {
      for (const JobQueue& job : jobs) {
        if (!job.paused && !job.cells.empty()) return true;
      }
      return false;
    }
  };

  JobQueue* find_job(const std::string& job);

  std::vector<ClientQueue> clients_;  // first-submission order
};

}  // namespace cadapt::serve
