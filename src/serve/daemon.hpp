// The `cadapt serve` process: a ServeCore behind a Unix-domain socket.
// Thread-per-connection (connections are short: one request line, one
// response), accept loop polling robust::process_cancel_token() so
// SIGINT/SIGTERM drain gracefully — in-flight cells unwind through the
// cooperative cancel path, checkpoints keep every committed cell, and
// the next daemon resumes them (docs/SERVE.md).
#pragma once

#include <string>

#include "serve/server.hpp"

namespace cadapt::serve {

struct DaemonOptions {
  std::string socket_path;  ///< required
  ServeOptions core;
};

/// Run the daemon until the process cancel token fires (the CLI installs
/// the SIGINT/SIGTERM handler first). Returns the CLI exit code.
int run_daemon(const DaemonOptions& options);

/// Handle one accepted connection against `core` (exposed for tests:
/// the wire handlers without the accept loop). Closes `fd`.
void serve_connection(ServeCore& core, int fd);

}  // namespace cadapt::serve
