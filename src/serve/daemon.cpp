#include "serve/daemon.hpp"

#include <thread>
#include <utility>
#include <vector>

#include "robust/cancel.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/check.hpp"

namespace cadapt::serve {

namespace {

obs::Event status_line(const JobStatus& status) {
  obs::Event event("job_status");
  event.str("job", status.id)
      .str("client", status.client)
      .str("state", job_state_name(status.state))
      .u64("config_hash", status.config_hash)
      .u64("cells", status.cells_total)
      .u64("done", status.cells_done);
  if (status.truncated) {
    event.flag("truncated", true)
        .str("reason", robust::cancel_reason_name(status.reason));
  }
  if (!status.error.empty()) event.str("error", status.error);
  return event;
}

void send_line(int fd, const obs::Event& event) {
  write_all(fd, obs::to_jsonl(event) + "\n");
}

void handle_submit(ServeCore& core, int fd, const obs::Event& request) {
  const JobStatus status = core.submit(submit_from_event(request));
  obs::Event event("job_accepted");
  event.str("job", status.id)
      .str("client", status.client)
      .u64("config_hash", status.config_hash)
      .u64("cells", status.cells_total);
  send_line(fd, event);
}

void handle_status(ServeCore& core, int fd, const obs::Event& request) {
  const std::string job = request.str_or("job", "");
  if (!job.empty()) {
    const std::optional<JobStatus> status = core.status(job);
    if (!status.has_value()) {
      send_line(fd, error_event(3, "unknown job '" + job + "'"));
      return;
    }
    send_line(fd, status_line(*status));
    return;
  }
  for (const JobStatus& status : core.status()) {
    send_line(fd, status_line(status));
  }
  send_line(fd, obs::Event("end"));
}

void handle_cancel(ServeCore& core, int fd, const obs::Event& request) {
  const std::string job = request.str_or("job", "");
  if (!core.cancel(job)) {
    send_line(fd, error_event(3, "unknown or finished job '" + job + "'"));
    return;
  }
  obs::Event event("ok");
  event.str("job", job);
  send_line(fd, event);
}

void handle_results(ServeCore& core, int fd, const obs::Event& request) {
  const std::string job = request.str_or("job", "");
  if (!core.attach(job)) {
    send_line(fd, error_event(3, "unknown job '" + job + "'"));
    return;
  }
  try {
    // Progress lines stream as cells commit; nullopt means terminal and
    // drained (or daemon shutdown — the client sees job_done either way).
    while (const std::optional<std::string> line = core.next_stream_line(job)) {
      write_all(fd, *line + "\n");
    }
    const std::optional<JobStatus> status = core.status(job);
    CADAPT_CHECK(status.has_value());
    obs::Event done("job_done");
    done.str("job", job).str("state", job_state_name(status->state));
    if (status->truncated) {
      done.flag("truncated", true)
          .str("reason", robust::cancel_reason_name(status->reason));
    }
    if (!status->error.empty()) done.str("error", status->error);
    send_line(fd, done);
    // The artifact itself, verbatim to EOF — the bytes the client writes
    // with --out are exactly the durable report file's.
    if (status->state == JobState::kDone ||
        status->state == JobState::kCancelled) {
      write_all(fd, core.report_bytes(job));
    }
  } catch (...) {
    core.detach(job);
    throw;
  }
  core.detach(job);
}

void handle_connection(ServeCore& core, int fd) {
  LineReader reader(fd);
  const std::optional<std::string> line = reader.next();
  if (!line.has_value()) return;  // client connected and left
  const obs::Event request = parse_line(*line);
  if (request.type == "hello") {
    send_line(fd, version_event("serve_hello"));
  } else if (request.type == "submit") {
    handle_submit(core, fd, request);
  } else if (request.type == "status") {
    handle_status(core, fd, request);
  } else if (request.type == "cancel") {
    handle_cancel(core, fd, request);
  } else if (request.type == "results") {
    handle_results(core, fd, request);
  } else {
    send_line(fd, error_event(2, "unknown request '" + request.type + "'"));
  }
}

}  // namespace

void serve_connection(ServeCore& core, int fd) {
  try {
    handle_connection(core, fd);
  } catch (const util::ParseError& e) {
    try {
      send_line(fd, error_event(3, e.what()));
    } catch (...) {  // client already gone
    }
  } catch (const util::IoError&) {
    // Either the response could not be written (client gone — nothing
    // left to tell) or a spool write failed (the job never existed; the
    // client sees the closed connection).
  } catch (const util::CheckError& e) {
    try {
      send_line(fd, error_event(4, e.what()));
    } catch (...) {
    }
  } catch (const std::exception& e) {
    try {
      send_line(fd, error_event(1, e.what()));
    } catch (...) {
    }
  }
  close_fd(fd);
}

int run_daemon(const DaemonOptions& options) {
  ServeCore core(options.core);
  const int listen_fd = listen_unix(options.socket_path);
  std::vector<std::thread> connections;
  robust::CancelToken& stop = robust::process_cancel_token();
  while (!stop.requested()) {
    const std::optional<int> fd = accept_unix(listen_fd, /*timeout_ms=*/200);
    if (!fd.has_value()) continue;
    connections.emplace_back(
        [&core, fd = *fd] { serve_connection(core, fd); });
  }
  // Graceful drain: stop dispatching (in-flight cells unwind through the
  // cooperative cancel path), wake blocked results streams, then join.
  core.shutdown();
  close_fd(listen_fd);
  for (std::thread& t : connections) t.join();
  return 0;
}

}  // namespace cadapt::serve
