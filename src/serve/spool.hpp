// The daemon's durable state: one spool directory holding, per job,
//
//   <id>.manifest   the submitted manifest bytes, verbatim
//   <id>.job        a serve_job meta line (client, weight, budgets, ...)
//   <id>.ckpt       the cell-granular checkpoint (sweep format, shards=1)
//   <id>.json       the final report (atomic commit; exists = finished)
//
// manifest and meta are committed via robust::atomic_write_file BEFORE a
// submit is acknowledged, so every acknowledged job survives SIGKILL.
// A restarted daemon scans the spool: jobs with a report are terminal
// history; jobs without one re-enter the scheduler and resume from their
// checkpoint — the same loader one-shot `cadapt sweep --resume` uses
// (docs/SERVE.md, "Durability & restart").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "robust/io.hpp"

namespace cadapt::serve {

/// The on-disk locations of one job, plus what the last scan saw.
struct JobFiles {
  std::string id;
  std::string manifest_path;
  std::string meta_path;
  std::string checkpoint_path;
  std::string report_path;
  bool has_report = false;
};

class Spool {
 public:
  /// Creates `dir` if missing (one level). Throws util::IoError when the
  /// directory cannot be created or read.
  Spool(std::string dir, robust::IoBackend& io);

  const std::string& dir() const { return dir_; }

  JobFiles files_for(const std::string& id) const;

  /// Every job with a persisted meta file, ordered by numeric id suffix
  /// (= submission order, so a restarted daemon re-enqueues in the
  /// original order — dispatch determinism across restarts).
  std::vector<JobFiles> scan() const;

  /// Next unused job id ("job-N"); N starts past every id seen on disk.
  std::string allocate_id();

  /// Durably persist a new job: manifest bytes first, then the meta line
  /// (atomic commits both). Only after this returns is the job
  /// acknowledged to the client — a meta file on disk is the job's
  /// existence proof.
  void persist_job(const JobFiles& files, const std::string& manifest_text,
                   const obs::Event& meta);

  /// Load what persist_job wrote. Throws util::IoError / ParseError.
  std::string load_manifest_text(const JobFiles& files) const;
  obs::Event load_meta(const JobFiles& files) const;

 private:
  std::string dir_;
  robust::IoBackend& io_;
  std::uint64_t next_id_ = 1;
};

}  // namespace cadapt::serve
