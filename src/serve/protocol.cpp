#include "serve/protocol.hpp"

#include "campaign/provenance.hpp"
#include "util/check.hpp"

namespace cadapt::serve {

obs::Event version_event(const std::string& type_tag) {
  const campaign::Provenance& p = campaign::build_provenance();
  obs::Event event(type_tag);
  event.str("version", p.version)
      .str("git", p.git_hash)
      .str("build_type", p.build_type)
      .str("compiler", p.compiler)
      .str("cxx_flags", p.cxx_flags)
      .u64("protocol", kProtocolVersion)
      .u64("report", kReportVersion);
  return event;
}

obs::Event submit_event(const SubmitRequest& request) {
  obs::Event event("submit");
  event.str("manifest", request.manifest_text).str("client", request.client);
  if (request.weight != 1) event.u64("weight", request.weight);
  if (request.deadline_ms != 0) event.u64("deadline_ms", request.deadline_ms);
  if (request.box_budget != 0) event.u64("box_budget", request.box_budget);
  if (!request.fault_spec.empty()) {
    event.str("fault", request.fault_spec);
    event.u64("fault_seed", request.fault_seed);
  }
  if (request.retries != 0) event.u64("retries", request.retries);
  return event;
}

SubmitRequest submit_from_event(const obs::Event& event) {
  SubmitRequest request;
  request.manifest_text = event.str_or("manifest", "");
  request.client = event.str_or("client", "anon");
  request.weight = event.u64_or("weight", 1);
  if (request.weight == 0) request.weight = 1;
  request.deadline_ms = event.u64_or("deadline_ms", 0);
  request.box_budget = event.u64_or("box_budget", 0);
  request.fault_spec = event.str_or("fault", "");
  request.fault_seed = event.u64_or("fault_seed", 0);
  request.retries =
      static_cast<std::uint32_t>(event.u64_or("retries", 0));
  return request;
}

obs::Event error_event(int code, const std::string& message) {
  obs::Event event("error");
  event.u64("code", static_cast<std::uint64_t>(code)).str("message", message);
  return event;
}

obs::Event parse_line(const std::string& line) {
  obs::Event event;
  std::string error;
  if (!obs::parse_jsonl(line, &event, &error)) {
    throw util::ParseError("serve protocol: " + error);
  }
  return event;
}

}  // namespace cadapt::serve
