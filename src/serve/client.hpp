// Client side of the serve protocol: one connection per request
// (connect, send one line, read the response). Used by the `cadapt
// submit/status/cancel/results` subcommands and the serve tests.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "serve/protocol.hpp"

namespace cadapt::serve {

/// One request -> one response line. Throws util::IoError when the
/// daemon is unreachable or closes early, util::ParseError on a
/// malformed response.
obs::Event roundtrip(const std::string& socket_path,
                     const obs::Event& request);

/// One request -> every response line until EOF ("status" with no job).
std::vector<obs::Event> roundtrip_all(const std::string& socket_path,
                                      const obs::Event& request);

/// What `results` yields once the stream ends.
struct ResultsEnd {
  obs::Event done;          ///< the job_done (or error) line
  std::string report_bytes; ///< the report verbatim; empty when none
};

/// Stream a job's results: `on_progress` is called once per sweep_cell
/// line as it arrives (may be null), then the job_done line and the
/// report tail are returned. Blocks until the job is terminal.
ResultsEnd stream_results(
    const std::string& socket_path, const std::string& job,
    const std::function<void(const std::string&)>& on_progress);

}  // namespace cadapt::serve
