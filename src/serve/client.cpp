#include "serve/client.hpp"

#include "serve/socket.hpp"
#include "util/check.hpp"

namespace cadapt::serve {

namespace {

/// RAII connection with the request already sent.
class Request {
 public:
  Request(const std::string& socket_path, const obs::Event& request)
      : fd_(connect_unix(socket_path)), reader_(fd_) {
    try {
      write_all(fd_, obs::to_jsonl(request) + "\n");
    } catch (...) {
      close_fd(fd_);
      throw;
    }
  }
  ~Request() { close_fd(fd_); }

  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  std::optional<std::string> next_line() { return reader_.next(); }
  std::string remaining() { return reader_.remaining(); }

 private:
  int fd_;
  LineReader reader_;
};

}  // namespace

obs::Event roundtrip(const std::string& socket_path,
                     const obs::Event& request) {
  Request req(socket_path, request);
  const std::optional<std::string> line = req.next_line();
  if (!line.has_value()) {
    throw util::IoError("daemon closed the connection without a response");
  }
  return parse_line(*line);
}

std::vector<obs::Event> roundtrip_all(const std::string& socket_path,
                                      const obs::Event& request) {
  Request req(socket_path, request);
  std::vector<obs::Event> out;
  while (const std::optional<std::string> line = req.next_line()) {
    if (line->empty()) continue;
    out.push_back(parse_line(*line));
  }
  return out;
}

ResultsEnd stream_results(
    const std::string& socket_path, const std::string& job,
    const std::function<void(const std::string&)>& on_progress) {
  obs::Event request("results");
  request.str("job", job);
  Request req(socket_path, request);
  ResultsEnd end;
  for (;;) {
    const std::optional<std::string> line = req.next_line();
    if (!line.has_value()) {
      throw util::IoError("daemon closed the results stream early");
    }
    const obs::Event event = parse_line(*line);
    if (event.type == "job_done" || event.type == "error") {
      end.done = event;
      break;
    }
    if (on_progress) on_progress(*line);
  }
  if (end.done.type == "job_done") end.report_bytes = req.remaining();
  return end;
}

}  // namespace cadapt::serve
