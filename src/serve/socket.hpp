// Minimal AF_UNIX stream plumbing for the serve daemon and its clients.
// Deliberately tiny: blocking sockets, one request per connection, a
// poll()-based accept so the daemon's loop can notice the process
// cancel token between connections. Everything throws util::IoError
// with the socket path in the message.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cadapt::serve {

/// Bind + listen on a Unix-domain stream socket, replacing a stale file
/// at `path` (the daemon owns its socket path). Returns the listen fd.
int listen_unix(const std::string& path);

/// Wait up to `timeout_ms` for a connection. Returns the accepted fd, or
/// nullopt on timeout / EINTR (the caller re-checks its cancel token and
/// loops). Throws on real accept errors.
std::optional<int> accept_unix(int listen_fd, int timeout_ms);

/// Connect to the daemon's socket. Returns the connected fd.
int connect_unix(const std::string& path);

/// Write all of `data`, retrying short writes; MSG_NOSIGNAL so a client
/// that vanished mid-stream surfaces as IoError, not SIGPIPE.
void write_all(int fd, std::string_view data);

void close_fd(int fd);

/// Buffered newline-delimited reads from a socket fd (does not own it).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next line without its trailing '\n'; nullopt at EOF. A final
  /// unterminated chunk is returned as a line (torn-tail tolerant, like
  /// the JSONL loaders).
  std::optional<std::string> next();

  /// Everything left: buffered bytes plus the stream to EOF, verbatim.
  /// This is how a client receives the report tail byte-identically.
  std::string remaining();

 private:
  bool fill();  // one read(); false at EOF

  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace cadapt::serve
