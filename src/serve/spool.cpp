#include "serve/spool.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "serve/protocol.hpp"
#include "util/check.hpp"

namespace cadapt::serve {

namespace {

constexpr const char* kMetaSuffix = ".job";

/// "job-12.job" -> 12; nullopt for anything else.
std::optional<std::uint64_t> id_number(const std::string& filename) {
  const std::string prefix = "job-";
  if (filename.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string suffix = kMetaSuffix;
  if (filename.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), n);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return n;
}

}  // namespace

Spool::Spool(std::string dir, robust::IoBackend& io)
    : dir_(std::move(dir)), io_(io) {
  CADAPT_CHECK(!dir_.empty());
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw util::IoError("cannot create spool directory '" + dir_ +
                        "': " + std::strerror(errno));
  }
  // Start ids past everything on disk — a restart must never reuse an
  // id (the old job's artifacts would be silently blended with the new).
  for (const JobFiles& files : scan()) {
    if (const auto n = id_number(files.id + kMetaSuffix)) {
      next_id_ = std::max(next_id_, *n + 1);
    }
  }
}

JobFiles Spool::files_for(const std::string& id) const {
  JobFiles files;
  files.id = id;
  const std::string base = dir_ + "/" + id;
  files.manifest_path = base + ".manifest";
  files.meta_path = base + kMetaSuffix;
  files.checkpoint_path = base + ".ckpt";
  files.report_path = base + ".json";
  std::error_code ec;
  files.has_report = std::filesystem::exists(files.report_path, ec);
  return files;
}

std::vector<JobFiles> Spool::scan() const {
  std::vector<std::pair<std::uint64_t, std::string>> ids;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto n = id_number(name)) {
      ids.emplace_back(*n, name.substr(0, name.size() -
                                              std::strlen(kMetaSuffix)));
    }
  }
  if (ec) {
    throw util::IoError("cannot read spool directory '" + dir_ +
                        "': " + ec.message());
  }
  std::sort(ids.begin(), ids.end());
  std::vector<JobFiles> out;
  out.reserve(ids.size());
  for (const auto& [n, id] : ids) out.push_back(files_for(id));
  return out;
}

std::string Spool::allocate_id() {
  return "job-" + std::to_string(next_id_++);
}

void Spool::persist_job(const JobFiles& files,
                        const std::string& manifest_text,
                        const obs::Event& meta) {
  // Manifest before meta: the scan keys off meta files, so a crash
  // between the two leaves an invisible orphan, never a job whose
  // manifest is missing.
  robust::atomic_write_file(files.manifest_path, manifest_text, io_);
  robust::atomic_write_file(files.meta_path, obs::to_jsonl(meta) + "\n", io_);
}

std::string Spool::load_manifest_text(const JobFiles& files) const {
  std::ifstream is(files.manifest_path, std::ios::binary);
  if (!is) {
    throw util::IoError("cannot open job manifest '" + files.manifest_path +
                        "'");
  }
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

obs::Event Spool::load_meta(const JobFiles& files) const {
  std::ifstream is(files.meta_path);
  if (!is) {
    throw util::IoError("cannot open job meta '" + files.meta_path + "'");
  }
  std::string line;
  std::getline(is, line);
  return parse_line(line);
}

}  // namespace cadapt::serve
