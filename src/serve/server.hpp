// ServeCore: the daemon's multi-tenant job engine, socket-free so tests
// drive it in-process (docs/SERVE.md).
//
// One shared util::ThreadPool executes cells; a FairScheduler decides
// WHICH cell runs next (weighted round-robin across clients); per-job
// robust::CancelToken + Watchdog handle cancellation and deadlines;
// per-client robust::BudgetTracker caps total boxes. Every durable write
// goes through the PR 7 layer: cell results append to a per-job
// DurableAppender checkpoint (the sweep format at shards=1), final
// reports land via atomic_write_file. A SIGKILL'd daemon restarts from
// the Spool and resumes every unfinished job from its checkpoint.
//
// The invariant everything here serves: a job's final report is
// byte-identical to one-shot `cadapt sweep --no-timing` on the same
// manifest, regardless of tenant interleaving, restarts, or how slowly
// its subscriber drains — because cells are pure functions of the plan
// and the report is assembled by the same campaign::assemble_report.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/cell_runner.hpp"
#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "obs/sink.hpp"
#include "robust/budget.hpp"
#include "robust/cancel.hpp"
#include "robust/fault.hpp"
#include "robust/io.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/spool.hpp"
#include "util/thread_pool.hpp"

namespace cadapt::serve {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< report written (possibly truncated: deadline/budget)
  kCancelled = 3,  ///< client-cancelled; truncated report written
  kFailed = 4,     ///< internal error (message in JobStatus::error)
};
const char* job_state_name(JobState state);

struct JobStatus {
  std::string id;
  std::string client;
  JobState state = JobState::kQueued;
  std::uint64_t config_hash = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t cells_done = 0;
  bool truncated = false;
  robust::CancelReason reason = robust::CancelReason::kNone;
  std::string error;
};

struct ServeOptions {
  std::string spool_dir;          ///< required
  std::uint64_t jobs = 0;         ///< pool threads; 0 = hardware
  std::uint64_t slots = 0;        ///< max in-flight cells; 0 = pool size
  /// Stream buffer capacity (lines) per subscribed job; a full buffer
  /// pauses THAT job's dispatch until the subscriber drains below half.
  std::uint64_t stream_buffer = 64;
  bool timing = true;             ///< false = byte-identity artifacts
  /// false = jobs queue but nothing dispatches until start(); the
  /// determinism tests use this to fix the submission set first.
  bool autostart = true;
  robust::IoBackend* io = nullptr;  ///< null = system_io()
  /// Server-side telemetry: job_accepted / cell_scheduled / job_done
  /// events in decision order. Null = disabled.
  obs::TraceSink* trace = nullptr;
};

class ServeCore {
 public:
  /// Opens (creating) the spool and RESUMES every unfinished job found
  /// in it — the restart path is the constructor, not a special mode.
  explicit ServeCore(const ServeOptions& options);
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Accept a job: parse + expand the manifest, persist it durably,
  /// enqueue its cells. Throws util::ParseError on a malformed manifest
  /// (no job is created). Returns the accepted job's status.
  JobStatus submit(const SubmitRequest& request);

  /// Begin dispatching (no-op when autostart or already started).
  void start();

  std::vector<JobStatus> status() const;
  std::optional<JobStatus> status(const std::string& job) const;

  /// Client cancel: requests kExternal on the job's token, drops its
  /// undispatched cells, and finalizes a truncated report once in-flight
  /// cells unwind. False for unknown or already-terminal jobs.
  bool cancel(const std::string& job);

  /// Block until `job` reaches a terminal state. False if unknown.
  bool wait_job(const std::string& job);
  /// Block until no job is queued or running.
  void wait_idle();

  /// Streaming (one subscriber per job): attach() starts buffering the
  /// job's sweep_cell report lines in completion order; next_stream_line
  /// blocks for the next line, returning nullopt once the job is
  /// terminal and the buffer is drained (or the core shuts down);
  /// detach() drops the buffer and un-pauses. A subscriber that stops
  /// draining fills the bounded buffer and pauses ONLY its own job's
  /// dispatch (docs/SERVE.md, "Backpressure").
  bool attach(const std::string& job);
  std::optional<std::string> next_stream_line(const std::string& job);
  void detach(const std::string& job);

  /// The finished report's bytes (the durable file, verbatim). Throws
  /// util::IoError when the job has no report (not terminal / failed).
  std::string report_bytes(const std::string& job) const;

  /// Every dispatch decision in order — the determinism test surface.
  std::vector<SchedulerPick> dispatch_log() const;

  /// Graceful stop: discard in-flight cells (their checkpoints keep only
  /// committed results), leave every durable artifact for the next
  /// ServeCore to resume. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct ClientState {
    std::unique_ptr<robust::BudgetTracker> tracker;  // null = no budget
  };
  struct Job;

  void resume_spool();
  void init_job(const JobFiles& files, const SubmitRequest& request,
                bool resuming);
  void pump();  // dispatch while slots are free (mutex held)
  void run_one(const std::string& id, std::uint64_t cell_index);
  void truncate_job(Job& job, robust::CancelReason reason);  // mutex held
  void maybe_finalize(Job& job);                             // mutex held
  void fail_job(Job& job, const std::string& what);          // mutex held
  JobStatus status_of(const Job& job) const;                 // mutex held

  ServeOptions options_;
  robust::IoBackend& io_;
  Spool spool_;
  util::ThreadPool pool_;
  std::uint64_t slots_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  FairScheduler scheduler_;
  std::string line_buf_;  ///< JSONL encode buffer, reused under mutex_
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::map<std::string, ClientState> clients_;
  std::vector<SchedulerPick> dispatch_log_;
  std::uint64_t in_flight_ = 0;
  bool started_ = false;
  bool shutting_down_ = false;
};

}  // namespace cadapt::serve
