#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace cadapt::serve {

namespace {

sockaddr_un address_for(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw util::IoError("socket path too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw util::IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

int listen_unix(const std::string& path) {
  const sockaddr_un addr = address_for(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("cannot create socket", path);
  ::unlink(path.c_str());  // stale socket from a killed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    fail("cannot bind socket", path);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    fail("cannot listen on socket", path);
  }
  return fd;
}

std::optional<int> accept_unix(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return std::nullopt;
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw util::IoError(std::string("poll failed on listen socket: ") +
                        std::strerror(errno));
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw util::IoError(std::string("accept failed: ") +
                        std::strerror(errno));
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = address_for(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("cannot create socket", path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    fail("cannot connect to daemon at", path);
  }
  return fd;
}

void write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(std::string("socket write failed: ") +
                          std::strerror(errno));
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool LineReader::fill() {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(std::string("socket read failed: ") +
                          std::strerror(errno));
    }
    if (n == 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
}

std::optional<std::string> LineReader::next() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      return line;
    }
    // Compact consumed bytes before growing the buffer.
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    if (!fill()) {
      if (buffer_.empty()) return std::nullopt;
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
  }
}

std::string LineReader::remaining() {
  std::string out = buffer_.substr(pos_);
  buffer_.clear();
  pos_ = 0;
  while (fill()) {
    out += buffer_;
    buffer_.clear();
  }
  return out;
}

}  // namespace cadapt::serve
