// Parameters of an (a,b,c)-regular algorithm (Definition 2 of the paper).
//
// An (a,b,c)-regular algorithm on a problem of n blocks recurses into
// exactly a subproblems of size n/b until the base case n = 1 block, and
// performs a linear scan of size n^c blocks per non-base problem (we fix
// B = 1, the paper's §4 simplification, proved w.l.o.g. there).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::model {

struct RegularParams {
  std::uint64_t a = 8;  ///< subproblems per problem
  std::uint64_t b = 4;  ///< problem-size shrink factor (b > 1)
  double c = 1.0;       ///< scan exponent, in [0, 1]

  void validate() const {
    CADAPT_CHECK_MSG(a >= 1, "(a,b,c)-regular requires a >= 1");
    CADAPT_CHECK_MSG(b >= 2, "(a,b,c)-regular requires b > 1");
    CADAPT_CHECK_MSG(c >= 0.0 && c <= 1.0,
                     "(a,b,c)-regular requires c in [0,1]");
  }

  /// The potential exponent log_b a.
  double exponent() const { return util::log_ratio(a, b); }

  /// Scan size (blocks) of a non-base problem of size n blocks: ceil(n^c);
  /// c = 0 means no merge scan (in-place algorithms like MM-Inplace fold
  /// their O(1) extra work into the recursion itself).
  std::uint64_t scan_size(std::uint64_t n) const {
    if (c == 0.0) return 0;
    return util::ceil_pow_real(n, c);
  }

  /// Number of base-case leaves of a problem of size n = b^k: a^k.
  std::uint64_t leaves(std::uint64_t n) const {
    CADAPT_CHECK_MSG(util::is_power_of(n, b),
                     "problem size must be a power of b; n=" << n);
    return util::ipow(a, util::ilog(n, b));
  }

  /// Theorem 2 taxonomy: true iff the parameters are in the worst-case
  /// log-gap regime (a > b and c = 1).
  bool in_gap_regime() const { return a > b && c == 1.0; }

  /// Theorem 2 taxonomy: true iff worst-case cache-adaptivity is
  /// guaranteed (c < 1, or a < b).
  bool worst_case_adaptive() const { return c < 1.0 || a < b; }

  std::string name() const {
    std::ostringstream os;
    os << '(' << a << ',' << b << ',' << c << ")-regular";
    return os.str();
  }
};

/// Canonical parameter sets from the paper.
inline RegularParams mm_scan_params() { return {8, 4, 1.0}; }     // MM-Scan
inline RegularParams mm_inplace_params() { return {8, 4, 0.0}; }  // MM-Inplace
inline RegularParams strassen_params() { return {7, 4, 1.0}; }    // Strassen

/// Total unit accesses (base cases + scan blocks) of a problem of size n:
/// U(1) = 1, U(m) = a·U(m/b) + scan_size(m). For a > b this is
/// Θ(n^{log_b a}); for a < b, c = 1 it is Θ(n); for a = b, c = 1 it is
/// Θ(n log n).
inline std::uint64_t problem_units(const RegularParams& params,
                                   std::uint64_t n) {
  CADAPT_CHECK(util::is_power_of(n, params.b));
  std::uint64_t u = 1;
  for (std::uint64_t m = params.b; m <= n; m *= params.b) {
    u = params.a * u + params.scan_size(m);
    if (m > n / params.b) break;  // avoid overflow on m *= b
  }
  return u;
}

}  // namespace cadapt::model
