// Potential and progress accounting (Lemma 1 and Inequality 2).
//
// The potential of a box is rho(|□|) = Θ(|□|^{log_b a}) — the maximum
// progress (base cases) any box of that size could make anywhere in any
// execution. An execution on boxes (□_1..□_j) is *efficiently
// cache-adaptive* when Σ min(n,|□_i|)^{log_b a} <= O(n^{log_b a})
// (Inequality 2; using min(n,·) means the final box need not be rounded
// down). The *adaptivity ratio* below is that sum divided by
// n^{log_b a}: Θ(1) for adaptive executions, Θ(log_b n) on the
// worst-case profile.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "model/regular.hpp"
#include "profile/box.hpp"

namespace cadapt::model {

/// Largest double magnitude (2^53) below which every integer is exactly
/// representable — the domain on which bulk potential accumulation is
/// provably bit-identical to repeated per-box addition (docs/PERF.md).
inline constexpr double kExactIntegerLimit = 9007199254740992.0;

/// True iff `sum + count * x` is bit-identical to adding x to sum `count`
/// times: both are integers and every intermediate partial sum is an
/// exactly-representable integer (<= 2^53). Potentials are nonnegative,
/// so partial sums are monotone and bounded by the final value.
inline bool exactly_bulk_addable(double sum, double x, std::uint64_t count) {
  if (std::floor(sum) != sum || std::floor(x) != x || x < 0.0) return false;
  const long double fin = static_cast<long double>(sum) +
                          static_cast<long double>(count) *
                              static_cast<long double>(x);
  return fin <= static_cast<long double>(kExactIntegerLimit);
}

/// Add `count` copies of x to sum, bit-identically to a repeated-add
/// loop: the closed form is used when provably exact, otherwise the
/// literal loop runs (identical operation sequence either way).
inline double bulk_add(double sum, double x, std::uint64_t count) {
  if (exactly_bulk_addable(sum, x, count)) {
    return sum + static_cast<double>(count) * x;
  }
  for (std::uint64_t i = 0; i < count; ++i) sum += x;
  return sum;
}

/// True iff `current + m * (current - before)` is bit-identical to
/// re-adding the (nonnegative, integer-summing) box sequence that took
/// the sum from `before` to `current` m more times. Requires the caller
/// to know every individual addend in that window was integer-valued
/// (e.g. AdaptivityAccumulator::all_integer()); this checks the endpoint
/// integrality and the 2^53 exactness bound on the final value.
inline bool exactly_replayable(double before, double current,
                               std::uint64_t m) {
  if (std::floor(before) != before || std::floor(current) != current ||
      current < before) {
    return false;
  }
  const long double fin =
      static_cast<long double>(current) +
      static_cast<long double>(m) *
          (static_cast<long double>(current) - static_cast<long double>(before));
  return fin <= static_cast<long double>(kExactIntegerLimit);
}

/// The replayed sum: current + m * (current - before). Only exact (and
/// only used) when exactly_replayable() holds.
inline double replay_sum(double before, double current, std::uint64_t m) {
  return current + static_cast<double>(m) * (current - before);
}

/// rho(s) = s^{log_b a} (exact for s a power of b).
inline double rho(const RegularParams& params, profile::BoxSize s) {
  return util::pow_log_ratio(s, params.a, params.b);
}

/// min(n, s)^{log_b a} — the n-bounded potential of a box.
inline double bounded_rho(const RegularParams& params, std::uint64_t n,
                          profile::BoxSize s) {
  return rho(params, std::min<std::uint64_t>(n, s));
}

/// Operation-based potential (the paper's footnote 4 alternative): the
/// maximum number of unit accesses a box of size s can complete, measured
/// as the units of the largest aligned problem fitting in s blocks. For
/// a > b this is Θ(rho(s)); for a <= b (where base cases under-count the
/// work) it is the right progress measure — e.g. a < b, c = 1 algorithms
/// are linear-time and trivially adaptive under it.
inline double rho_units(const RegularParams& params, profile::BoxSize s) {
  CADAPT_CHECK(s >= 1);
  return static_cast<double>(
      problem_units(params, util::floor_pow(s, params.b)));
}

/// Units-based bounded potential: the cap is the whole problem's units.
inline double bounded_rho_units(const RegularParams& params, std::uint64_t n,
                                profile::BoxSize s) {
  return rho_units(params, std::min<std::uint64_t>(n, s));
}

/// Accumulates the left-hand side of Inequality 2 over the boxes an
/// execution consumes.
class AdaptivityAccumulator {
 public:
  AdaptivityAccumulator(const RegularParams& params, std::uint64_t n)
      : params_(params), n_(n) {
    params_.validate();
    CADAPT_CHECK(n >= 1);
  }

  void add_box(profile::BoxSize s) {
    const double x = bounded_rho(params_, n_, s);
    all_integer_ = all_integer_ && std::floor(x) == x;
    sum_bounded_potential_ += x;
    ++boxes_;
  }

  /// Bulk add of `count` equal boxes — bit-identical to `count` add_box
  /// calls (closed form when provably exact, literal loop otherwise).
  void add_boxes(profile::BoxSize s, std::uint64_t count) {
    const double x = bounded_rho(params_, n_, s);
    all_integer_ = all_integer_ && std::floor(x) == x;
    sum_bounded_potential_ = bulk_add(sum_bounded_potential_, x, count);
    boxes_ += count;
  }

  /// True while every potential added so far was integer-valued (always
  /// the case for power-of-b box sizes) — a precondition for
  /// exactly_replayable() on this accumulator's sum.
  bool all_integer() const { return all_integer_; }

  /// Commit m replayed copies of the window (before_sum -> current sum):
  /// the caller must have checked all_integer() && exactly_replayable().
  void apply_replay(double before_sum, std::uint64_t before_boxes,
                    std::uint64_t m) {
    sum_bounded_potential_ = replay_sum(before_sum, sum_bounded_potential_, m);
    boxes_ += m * (boxes_ - before_boxes);
  }

  std::uint64_t boxes() const { return boxes_; }
  double sum_bounded_potential() const { return sum_bounded_potential_; }

  /// Σ min(n,|□_i|)^{log_b a} / n^{log_b a}. An algorithm is efficiently
  /// cache-adaptive iff this stays O(1) over all profiles as n grows.
  double ratio() const { return sum_bounded_potential_ / rho(params_, n_); }

 private:
  RegularParams params_;
  std::uint64_t n_;
  double sum_bounded_potential_ = 0.0;
  std::uint64_t boxes_ = 0;
  bool all_integer_ = true;
};

}  // namespace cadapt::model
