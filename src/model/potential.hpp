// Potential and progress accounting (Lemma 1 and Inequality 2).
//
// The potential of a box is rho(|□|) = Θ(|□|^{log_b a}) — the maximum
// progress (base cases) any box of that size could make anywhere in any
// execution. An execution on boxes (□_1..□_j) is *efficiently
// cache-adaptive* when Σ min(n,|□_i|)^{log_b a} <= O(n^{log_b a})
// (Inequality 2; using min(n,·) means the final box need not be rounded
// down). The *adaptivity ratio* below is that sum divided by
// n^{log_b a}: Θ(1) for adaptive executions, Θ(log_b n) on the
// worst-case profile.
#pragma once

#include <algorithm>
#include <cstdint>

#include "model/regular.hpp"
#include "profile/box.hpp"

namespace cadapt::model {

/// rho(s) = s^{log_b a} (exact for s a power of b).
inline double rho(const RegularParams& params, profile::BoxSize s) {
  return util::pow_log_ratio(s, params.a, params.b);
}

/// min(n, s)^{log_b a} — the n-bounded potential of a box.
inline double bounded_rho(const RegularParams& params, std::uint64_t n,
                          profile::BoxSize s) {
  return rho(params, std::min<std::uint64_t>(n, s));
}

/// Operation-based potential (the paper's footnote 4 alternative): the
/// maximum number of unit accesses a box of size s can complete, measured
/// as the units of the largest aligned problem fitting in s blocks. For
/// a > b this is Θ(rho(s)); for a <= b (where base cases under-count the
/// work) it is the right progress measure — e.g. a < b, c = 1 algorithms
/// are linear-time and trivially adaptive under it.
inline double rho_units(const RegularParams& params, profile::BoxSize s) {
  CADAPT_CHECK(s >= 1);
  return static_cast<double>(
      problem_units(params, util::floor_pow(s, params.b)));
}

/// Units-based bounded potential: the cap is the whole problem's units.
inline double bounded_rho_units(const RegularParams& params, std::uint64_t n,
                                profile::BoxSize s) {
  return rho_units(params, std::min<std::uint64_t>(n, s));
}

/// Accumulates the left-hand side of Inequality 2 over the boxes an
/// execution consumes.
class AdaptivityAccumulator {
 public:
  AdaptivityAccumulator(const RegularParams& params, std::uint64_t n)
      : params_(params), n_(n) {
    params_.validate();
    CADAPT_CHECK(n >= 1);
  }

  void add_box(profile::BoxSize s) {
    sum_bounded_potential_ += bounded_rho(params_, n_, s);
    ++boxes_;
  }

  std::uint64_t boxes() const { return boxes_; }
  double sum_bounded_potential() const { return sum_bounded_potential_; }

  /// Σ min(n,|□_i|)^{log_b a} / n^{log_b a}. An algorithm is efficiently
  /// cache-adaptive iff this stays O(1) over all profiles as n grows.
  double ratio() const { return sum_bounded_potential_ / rho(params_, n_); }

 private:
  RegularParams params_;
  std::uint64_t n_;
  double sum_bounded_potential_ = 0.0;
  std::uint64_t boxes_ = 0;
};

}  // namespace cadapt::model
