// Seeded work-stealing parallel execution of the (a,b,c) recursion tree
// across P workers sharing one adaptive machine (docs/PARALLEL.md).
//
// Two entry points:
//
//   parallel_run_to_completion — the SYMBOLIC engine: the recursion tree
//   is pre-split into subtree + scan tasks on per-worker Chase–Lev
//   deques; each global machine box is carved into per-worker cache
//   slices by an E15 allocation policy (sched::Policy), and each worker
//   feeds its emergent constant-height profile segment through the
//   inner-square decomposition (profile::inner_square_profile restarted
//   at box boundaries — the closed form below, pinned to the literal
//   function by tests) into its local engine::RegularExecution. Steals
//   resolve SERIALLY at epoch barriers with victims drawn from
//   hash(seed, worker, steal_index), so the entire result — including
//   every steal count — is a pure function of (params, n, source,
//   options): same seed + same P ⇒ bit-identical ParallelResult, and
//   workers = 1 delegates verbatim to engine::run_to_completion.
//
//   parallel_trials — the CONCURRENT trial pool: real threads, the same
//   deques under genuine contention, seeded victim choice. Results must
//   be keyed by trial index on the caller's side (the campaign cell
//   runner writes records[trial]), which is what keeps reports
//   byte-identical across worker counts; steal counts here are
//   telemetry only and never enter gated artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "engine/exec.hpp"
#include "model/regular.hpp"
#include "profile/box_source.hpp"
#include "sched/shared_cache.hpp"

namespace cadapt::obs {
class SchedRecorder;
}  // namespace cadapt::obs

namespace cadapt::robust {
class CancelToken;
}  // namespace cadapt::robust

namespace cadapt::sched {

struct ParallelOptions {
  std::uint64_t workers = 1;  ///< P; 1 = the sequential engine, verbatim
  std::uint64_t seed = 0;     ///< steal-schedule seed (victim choice)
  /// How each global box is carved into per-worker cache slices — the
  /// same allocation policies the shared-cache simulator models.
  Policy carve = Policy::kStaticEqual;
  /// kPeriodicFlush only: every flush_period global boxes all slices
  /// crash to 1 block for that box. 0 means "equal to the epoch": one
  /// crash per epoch_rounds boxes (the parallel analog of SimOptions'
  /// "0 means equal to total_cache_blocks").
  std::uint64_t flush_period = 0;
  /// Boxes between steal barriers; steals only happen at barriers.
  std::uint64_t epoch_rounds = 64;
  /// Pre-split depth d: the tree is cut into a^d subtree tasks (plus the
  /// a^j scan tasks above them, j < d). 0 = auto: the smallest d with
  /// a^d >= 4 * workers, capped at log_b n.
  std::uint64_t split_depth = 0;
  std::uint64_t max_boxes = UINT64_C(1) << 40;  ///< global box cap
  engine::ScanPlacement placement = engine::ScanPlacement::kEnd;
  engine::BoxSemantics semantics = engine::BoxSemantics::kOptimistic;
  std::uint64_t adversary_seed = 0;  ///< for kAdversaryMatched subtrees
  obs::SchedRecorder* recorder = nullptr;    ///< null = disabled
  const robust::CancelToken* cancel = nullptr;  ///< polled once per box
};

struct WorkerStats {
  std::uint64_t boxes = 0;        ///< slice boxes consumed into tasks
  std::uint64_t idle_boxes = 0;   ///< slice boxes with no task to run
  std::uint64_t progress = 0;     ///< base cases completed
  std::uint64_t scan_advance = 0; ///< scan units completed
  std::uint64_t tasks_run = 0;    ///< tasks activated (incl. split children)
  std::uint64_t steals = 0;       ///< successful steals by this worker
  std::uint64_t failed_steals = 0;
  std::uint64_t slice_blocks = 0; ///< Σ slice sizes — this worker's share
};

struct ParallelResult {
  /// Merged outcome in the sequential engine's vocabulary: boxes = global
  /// machine boxes (rounds), leaves = Σ progress, potential sums taken
  /// over the global box stream — directly comparable to a sequential
  /// RunResult on the same source. For workers = 1 this IS the
  /// sequential result, field for field.
  engine::RunResult merged;
  std::vector<WorkerStats> workers;  ///< per-worker, index order
  std::uint64_t rounds = 0;     ///< global boxes drawn (== merged.boxes)
  std::uint64_t epochs = 0;     ///< steal barriers reached
  std::uint64_t steals = 0;     ///< Σ workers[i].steals
  std::uint64_t failed_steals = 0;
  std::uint64_t splits = 0;     ///< steals that split the stolen subtree
  std::uint64_t split_depth = 0;   ///< effective pre-split depth d
  std::uint64_t tasks_spawned = 0; ///< pre-split tasks + split children

  /// Σ progress + Σ scan_advance over workers — equals
  /// model::problem_units(params, n) exactly iff merged.completed (the
  /// conservation invariant the parallel tests assert).
  std::uint64_t units_done() const {
    std::uint64_t u = 0;
    for (const WorkerStats& w : workers) u += w.progress + w.scan_advance;
    return u;
  }
};

/// Run one (params, n) execution over `source` on options.workers
/// simulated workers. Deterministic: bit-identical across repeated calls
/// with equal inputs. workers = 1 delegates to engine::run_to_completion
/// (byte-identical merged result).
ParallelResult parallel_run_to_completion(const model::RegularParams& params,
                                          std::uint64_t n,
                                          profile::BoxSource& source,
                                          const ParallelOptions& options);

/// Carve one global box of `box` blocks into weights.size() slices under
/// `policy` (exposed for tests and the CLI). kStaticEqual: floor + the
/// remainder spread over the lowest indices. kGlobalLru / kPeriodicFlush:
/// proportional to weights by the deterministic largest-remainder method
/// (ties to the lower index). Every slice is clamped to >= 1 block, so
/// Σ slices may exceed `box` when box < workers — the minimum viable
/// allocation of the shared-cache simulator.
std::vector<std::uint64_t> carve_slices(Policy policy, std::uint64_t box,
                                        std::span<const std::uint64_t> weights);

/// The inner-square decomposition of one constant-height profile segment
/// (height `slice` for `length` steps), in closed form:
/// floor(length/slice) boxes of `slice` plus one box of length % slice.
/// Exactly profile::inner_square_profile(std::vector(length, slice)) —
/// pinned by tests — without materializing the segment.
struct SliceRun {
  std::uint64_t size = 0;       ///< full box size (== slice)
  std::uint64_t count = 0;      ///< full boxes
  std::uint64_t remainder = 0;  ///< final short box, 0 if none
};
SliceRun slice_run(std::uint64_t slice, std::uint64_t length);

/// Telemetry from parallel_trials — never part of gated reports (steal
/// interleaving under real threads is timing-dependent by nature).
struct StealStats {
  std::uint64_t steals = 0;
  std::uint64_t failed_steals = 0;
};

/// Run body(0..count-1), each exactly once, on `workers` real threads
/// with per-worker deques (trials pre-dealt round-robin) and seeded
/// victim selection. body must be thread-safe and write its result keyed
/// by the trial index. The first exception a body throws is rethrown
/// after all threads join (remaining undrawn trials are abandoned) —
/// robust::CancelledError propagates this way. workers <= 1 or
/// count <= 1 runs inline, in index order.
StealStats parallel_trials(std::uint64_t count, std::uint64_t workers,
                           std::uint64_t seed,
                           const std::function<void(std::uint64_t)>& body);

}  // namespace cadapt::sched
