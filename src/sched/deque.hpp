// Chase–Lev-style work-stealing deque (Chase & Lev, SPAA 2005; memory
// orderings after Lê et al., PPoPP 2013).
//
// One owner thread pushes and pops at the BOTTOM (LIFO — depth-first,
// cache-warm work); any number of thief threads steal from the TOP
// (FIFO — the oldest, typically largest task, the property the
// work-stealing bounds of Cole–Ramachandran and arXiv:2111.04994 are
// proved against). The element type must be trivially copyable: slots
// are std::atomic<T>, which is what keeps the top-slot race between a
// stealing CAS winner and a concurrent push benign under tsan.
//
// Capacity is fixed at construction (rounded up to a power of two) and
// push() CADAPT_CHECKs against overflow: every user in this repo knows
// its worst-case occupancy up front (pre-split task count per worker,
// trials per worker), so the grow-and-leak machinery of the general
// algorithm would be dead weight. size() is a racy snapshot — exact for
// the owner between its own operations, advisory for anyone else.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace cadapt::sched {

template <typename T>
class StealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "StealDeque slots are std::atomic<T>");

 public:
  explicit StealDeque(std::size_t capacity = 256)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(static_cast<std::int64_t>(slots_.size()) - 1) {}

  // Movable only before threads share it (the containers holding these
  // are sized up front); atomics make it otherwise pinned.
  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only. Fails a CADAPT_CHECK when the deque is full.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    CADAPT_CHECK_MSG(b - t <= mask_, "StealDeque capacity exceeded");
    slots_[static_cast<std::size_t>(b & mask_)].store(
        value, std::memory_order_relaxed);
    // The release fence orders the slot write before the bottom bump, so
    // a thief that observes the new bottom also observes the value.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: take the most recently pushed element.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = slots_[static_cast<std::size_t>(b & mask_)].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via the top CAS.
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // A thief won; the deque is empty.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Any thread: take the oldest element. nullopt when empty or when the
  /// CAS lost to a concurrent pop/steal (callers count either outcome as
  /// one failed steal attempt and retry elsewhere).
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    const T value = slots_[static_cast<std::size_t>(t & mask_)].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return value;
  }

  /// Racy snapshot (exact for the owner between its own operations).
  std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<std::atomic<T>> slots_;
  std::int64_t mask_;
  // Owner and thieves index an unbounded logical sequence; the ring mask
  // maps it into slots_. Separate cache lines keep owner pushes from
  // false-sharing with thief CAS traffic.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace cadapt::sched
