// Multiprogrammed shared-cache simulator.
//
// The paper's motivation — and its concluding open question ("which
// patterns of memory fluctuations occur in the real world?") — is that
// co-scheduled processes carve a shared cache into time-varying slices.
// This substrate simulates K processes (recorded block traces) sharing a
// cache of M blocks under several allocation policies, and exposes each
// process's *emergent memory profile*: its resident-block count after
// each of its I/Os. Feeding that profile back into the square-profile
// machinery (profile::inner_square_profile -> profile::Empirical ->
// engine) lets the library answer the open question empirically: do
// emergent profiles behave like the benign i.i.d. profiles of Theorem 1
// or like the adversarial constructions of Theorem 2?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "paging/lru_cache.hpp"

namespace cadapt::sched {

/// One co-scheduled process: a block-id trace (e.g. from
/// paging::TraceRecorder::block_trace()). Block ids are namespaced per
/// process internally, so traces from independent recorders can be mixed.
struct Process {
  std::string name;
  std::vector<paging::BlockId> blocks;
};

enum class Policy {
  /// Static partition: each process gets floor(M/K) blocks, LRU within.
  kStaticEqual,
  /// One global LRU over all processes: partition sizes emerge from the
  /// access interleaving (the winner-take-all dynamics of [25]).
  kGlobalLru,
  /// Global LRU plus a full flush every flush_period global misses (the
  /// periodic-flush countermeasure of [57]): every process's allocation
  /// repeatedly ramps up and crashes to zero.
  kPeriodicFlush,
};

struct SimOptions {
  std::uint64_t total_cache_blocks = 64;
  Policy policy = Policy::kGlobalLru;
  /// kPeriodicFlush only; 0 means "equal to total_cache_blocks".
  std::uint64_t flush_period = 0;
};

struct ProcessStats {
  std::string name;
  std::uint64_t misses = 0;
  std::uint64_t accesses = 0;
  /// Global I/O count when this process finished.
  std::uint64_t completion_time = 0;
  /// Emergent memory profile: this process's resident block count after
  /// each of its misses (>= 1 entries unless the trace was empty).
  std::vector<std::uint64_t> occupancy_profile;
};

struct SimResult {
  std::vector<ProcessStats> per_process;
  std::uint64_t total_ios = 0;
};

/// Run the traces to completion under the given policy. Scheduling is
/// round-robin at miss granularity: a process runs (hits are free) until
/// it faults once, then yields. Deterministic.
SimResult simulate_shared_cache(const std::vector<Process>& processes,
                                const SimOptions& options);

}  // namespace cadapt::sched
