#include "sched/worksteal.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "model/potential.hpp"
#include "obs/recorder.hpp"
#include "robust/cancel.hpp"
#include "sched/deque.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace cadapt::sched {

namespace {

/// Seeded victim choice: a pure function of (seed, worker, steal_index),
/// mapped over the P-1 other workers. This is the whole determinism
/// contract of the steal schedule (docs/PARALLEL.md).
std::uint64_t pick_victim(std::uint64_t seed, std::uint64_t worker,
                          std::uint64_t steal_index, std::uint64_t workers) {
  const std::uint64_t h = util::hash_combine(
      util::hash_combine(seed, worker), steal_index);
  std::uint64_t victim = h % (workers - 1);
  if (victim >= worker) ++victim;
  return victim;
}

/// A unit of recursion-tree work: a whole subtree (size > 0, a problem of
/// `size` blocks) or one node's scan (size == 0, `scan_units` accesses).
/// The pre-split and the split-on-steal rule both preserve
///   U(m) = a * U(m/b) + scan(m),
/// so Σ task units over all live tasks always equals the units the whole
/// problem still owes — the conservation invariant the tests assert.
struct Task {
  std::uint64_t size = 0;
  std::uint64_t scan_units = 0;
  std::uint64_t node_hash = 0;
};

class ParallelEngine {
 public:
  ParallelEngine(const model::RegularParams& params, std::uint64_t n,
                 profile::BoxSource& source, const ParallelOptions& options)
      : params_(params),
        n_(n),
        source_(source),
        opt_(options),
        p_(options.workers == 0 ? 1 : options.workers),
        acc_(params, n) {}

  ParallelResult run();

 private:
  struct Worker {
    std::unique_ptr<StealDeque<std::uint32_t>> deque;
    std::optional<engine::RegularExecution> exec;
    std::uint64_t scan_remaining = 0;
    /// Σ task_units over the tasks sitting in this worker's deque — the
    /// carve weight input, maintained exactly (pushes, pops, and steals
    /// all adjust it in the serial phases that perform them).
    std::uint64_t pending_deque_units = 0;
    std::uint64_t steal_index = 0;
    WorkerStats stats;
  };

  std::uint64_t task_units(const Task& t) const {
    return t.size == 0 ? t.scan_units : model::problem_units(params_, t.size);
  }

  bool has_current(const Worker& w) const {
    return w.exec.has_value() || w.scan_remaining > 0;
  }

  std::uint64_t current_remaining(const Worker& w) const {
    if (w.exec.has_value()) return w.exec->total_units() - w.exec->units_done();
    return w.scan_remaining;
  }

  void run_sequential();
  void build_tasks();
  void push_task(Worker& w, const Task& t);
  void activate(Worker& w, const Task& t);
  bool ensure_current(Worker& w);
  void consume_run_into(Worker& w, std::uint64_t s, std::uint64_t count);
  void steal_barrier();

  const model::RegularParams& params_;
  std::uint64_t n_;
  profile::BoxSource& source_;
  const ParallelOptions& opt_;
  std::uint64_t p_;
  model::AdaptivityAccumulator acc_;
  double unit_potential_ = 0;
  std::uint64_t total_units_ = 0;
  std::uint64_t remaining_units_ = 0;
  std::uint64_t split_depth_ = 0;
  std::vector<Task> tasks_;
  std::vector<Worker> workers_;
  ParallelResult result_;
};

/// workers = 1: the sequential engine, verbatim. The kRuns-granularity
/// recorder keeps the bulk path live (bit-identical RunResult by the
/// docs/PERF.md contract) while supplying the progress/scan split for
/// WorkerStats.
void ParallelEngine::run_sequential() {
  engine::RegularExecution exec(params_, n_, opt_.placement,
                                opt_.adversary_seed, opt_.semantics);
  obs::ExecRecorder recorder(nullptr, obs::BoxGranularity::kRuns);
  engine::RunOptions run_options;
  run_options.max_boxes = opt_.max_boxes;
  run_options.cancel = opt_.cancel;
  run_options.recorder = &recorder;
  result_.merged = engine::run_to_completion(exec, source_, run_options);
  result_.workers.resize(1);
  WorkerStats& stats = result_.workers[0];
  stats.boxes = result_.merged.boxes;
  stats.progress = recorder.total_progress();
  stats.scan_advance = recorder.total_scan_advance();
  stats.slice_blocks = recorder.sum_box_sizes();
  stats.tasks_run = 1;
  result_.rounds = result_.merged.boxes;
  result_.tasks_spawned = 1;
  if (opt_.recorder != nullptr) {
    opt_.recorder->finish(1, result_.rounds, 0, 0, result_.merged.completed);
  }
}

/// Cut the tree at depth d into a^d subtree tasks plus the a^j scan tasks
/// of the internal nodes above them (j < d), dealt round-robin. The task
/// list order is fixed (scans in level order, then subtrees), so the
/// initial deques — and everything downstream — are deterministic.
void ParallelEngine::build_tasks() {
  const std::uint64_t k = util::ilog(n_, params_.b);
  std::uint64_t want = opt_.split_depth == 0 ? k : opt_.split_depth;
  std::uint64_t depth = 0;
  std::uint64_t subtrees = 1;
  // Auto mode stops once a^d >= 4P (enough tasks that the tail of the
  // computation keeps every worker fed); either mode is capped at k and
  // at 2^16 subtree tasks.
  while (depth < std::min(want, k) &&
         subtrees <= (UINT64_C(1) << 16) / std::max<std::uint64_t>(
                                               params_.a, 2)) {
    if (opt_.split_depth == 0 && subtrees >= 4 * p_) break;
    subtrees *= params_.a;
    ++depth;
  }
  split_depth_ = depth;

  std::vector<std::uint64_t> hashes{util::hash_combine(0x7A5Cull, n_)};
  std::uint64_t size = n_;
  for (std::uint64_t level = 0; level < depth; ++level) {
    const std::uint64_t scan = params_.scan_size(size);
    if (scan > 0) {
      for (const std::uint64_t h : hashes) tasks_.push_back({0, scan, h});
    }
    std::vector<std::uint64_t> next;
    next.reserve(hashes.size() * params_.a);
    for (const std::uint64_t h : hashes) {
      for (std::uint64_t child = 0; child < params_.a; ++child) {
        next.push_back(util::hash_combine(h, child));
      }
    }
    hashes = std::move(next);
    size /= params_.b;
  }
  for (const std::uint64_t h : hashes) tasks_.push_back({size, 0, h});

  std::uint64_t sum = 0;
  for (const Task& t : tasks_) sum += task_units(t);
  CADAPT_CHECK_MSG(sum == total_units_,
                   "pre-split must conserve units: " << sum << " != "
                                                     << total_units_);

  const std::size_t capacity =
      tasks_.size() / p_ + 1 + static_cast<std::size_t>(params_.a) + 8;
  workers_.resize(p_);
  for (Worker& w : workers_) {
    w.deque = std::make_unique<StealDeque<std::uint32_t>>(capacity);
  }
  // Round-robin deal. Owners pop from the bottom, so each worker starts
  // on its LAST-dealt tasks — the subtrees; the level-order scans sit at
  // the top of the deques, where thieves take from.
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    Worker& w = workers_[i % p_];
    w.deque->push(static_cast<std::uint32_t>(i));
    w.pending_deque_units += task_units(tasks_[i]);
  }
}

void ParallelEngine::push_task(Worker& w, const Task& t) {
  CADAPT_CHECK(tasks_.size() < UINT32_MAX);
  const std::uint32_t index = static_cast<std::uint32_t>(tasks_.size());
  tasks_.push_back(t);
  w.deque->push(index);
  w.pending_deque_units += task_units(t);
}

void ParallelEngine::activate(Worker& w, const Task& t) {
  if (t.size == 0) {
    w.scan_remaining = t.scan_units;
  } else {
    w.exec.emplace(params_, t.size, opt_.placement,
                   util::hash_combine(opt_.adversary_seed, t.node_hash),
                   opt_.semantics);
  }
  ++w.stats.tasks_run;
}

bool ParallelEngine::ensure_current(Worker& w) {
  if (has_current(w)) return true;
  if (const auto index = w.deque->pop()) {
    const Task t = tasks_[*index];
    w.pending_deque_units -= task_units(t);
    activate(w, t);
    return true;
  }
  return false;
}

/// Consume `count` boxes of size s into the worker's work, task after
/// task. Scan tasks advance min(s, remaining) per box (the §4 scan rule);
/// subtree tasks go through the sequential engine's bulk consume_run.
void ParallelEngine::consume_run_into(Worker& w, std::uint64_t s,
                                      std::uint64_t count) {
  while (count > 0) {
    if (!ensure_current(w)) {
      w.stats.idle_boxes += count;
      return;
    }
    if (w.scan_remaining > 0) {
      const std::uint64_t full = w.scan_remaining / s;
      if (count <= full) {
        const std::uint64_t advance = count * s;
        w.stats.boxes += count;
        w.stats.scan_advance += advance;
        w.scan_remaining -= advance;
        remaining_units_ -= advance;
        return;
      }
      const std::uint64_t tail = w.scan_remaining - full * s;
      const std::uint64_t used = full + (tail > 0 ? 1 : 0);
      w.stats.boxes += used;
      w.stats.scan_advance += w.scan_remaining;
      remaining_units_ -= w.scan_remaining;
      w.scan_remaining = 0;
      count -= used;
    } else {
      engine::RegularExecution& exec = *w.exec;
      const std::uint64_t boxes_before = exec.boxes_consumed();
      const std::uint64_t leaves_before = exec.leaves_done();
      const std::uint64_t units_before = exec.units_done();
      exec.consume_run(s, count);
      const std::uint64_t used = exec.boxes_consumed() - boxes_before;
      const std::uint64_t leaves = exec.leaves_done() - leaves_before;
      const std::uint64_t units = exec.units_done() - units_before;
      w.stats.boxes += used;
      w.stats.progress += leaves;
      w.stats.scan_advance += units - leaves;
      remaining_units_ -= units;
      count -= used;
      if (exec.done()) {
        w.exec.reset();
      } else {
        return;  // the run is exhausted (used == count by construction)
      }
    }
  }
}

/// Epoch barrier: workers with nothing left (no current task, empty
/// deque) steal, resolved serially in worker-index order. A stolen
/// subtree of size >= b is split into its a children plus the node's
/// scan task — the thief keeps child 0 and queues the rest, preserving
/// U(m) = a*U(m/b) + scan(m).
void ParallelEngine::steal_barrier() {
  for (std::uint64_t w = 0; w < p_; ++w) {
    Worker& self = workers_[w];
    if (has_current(self) || self.deque->size() > 0) continue;
    const std::uint64_t max_attempts = 2 * p_;
    for (std::uint64_t attempt = 0; attempt < max_attempts; ++attempt) {
      const std::uint64_t victim =
          pick_victim(opt_.seed, w, self.steal_index++, p_);
      const auto index = workers_[victim].deque->steal();
      if (!index) {
        ++self.stats.failed_steals;
        if (opt_.recorder != nullptr) {
          opt_.recorder->on_failed_steal(result_.epochs, w, victim);
        }
        continue;
      }
      const Task t = tasks_[*index];
      workers_[victim].pending_deque_units -= task_units(t);
      ++self.stats.steals;
      const bool split = t.size >= params_.b;
      if (opt_.recorder != nullptr) {
        opt_.recorder->on_steal(result_.epochs, w, victim, task_units(t),
                                split);
      }
      if (split) {
        ++result_.splits;
        const std::uint64_t child_size = t.size / params_.b;
        const std::uint64_t scan = params_.scan_size(t.size);
        if (scan > 0) push_task(self, {0, scan, t.node_hash});
        for (std::uint64_t child = params_.a; child-- > 1;) {
          push_task(self,
                    {child_size, 0, util::hash_combine(t.node_hash, child)});
        }
        activate(self, {child_size, 0, util::hash_combine(t.node_hash, 0)});
      } else {
        activate(self, t);
      }
      break;
    }
  }
}

ParallelResult ParallelEngine::run() {
  CADAPT_CHECK(util::is_power_of(n_, params_.b));
  total_units_ = model::problem_units(params_, n_);
  if (p_ <= 1) {
    run_sequential();
    return std::move(result_);
  }
  remaining_units_ = total_units_;
  build_tasks();
  result_.split_depth = split_depth_;

  const std::uint64_t epoch_rounds =
      opt_.epoch_rounds == 0 ? 1 : opt_.epoch_rounds;
  std::uint64_t since_flush = 0;
  bool capped = false;
  std::vector<std::uint64_t> weights(p_);
  std::vector<std::uint64_t> slices;
  while (remaining_units_ > 0) {
    if (opt_.cancel != nullptr) opt_.cancel->poll();
    if (result_.rounds >= opt_.max_boxes) {
      capped = true;
      break;
    }
    const auto box = source_.next();
    if (!box) break;  // source exhausted
    const std::uint64_t m = *box;
    CADAPT_CHECK(m >= 1);
    ++result_.rounds;
    acc_.add_box(m);
    unit_potential_ += model::bounded_rho_units(params_, n_, m);

    bool flush = false;
    if (opt_.carve == Policy::kPeriodicFlush) {
      const std::uint64_t period =
          opt_.flush_period != 0 ? opt_.flush_period : epoch_rounds;
      if (++since_flush >= period) {
        since_flush = 0;
        flush = true;
      }
    }
    if (flush) {
      slices.assign(p_, 1);
    } else {
      for (std::uint64_t w = 0; w < p_; ++w) {
        weights[w] = 1 + workers_[w].pending_deque_units +
                     current_remaining(workers_[w]);
      }
      slices = carve_slices(opt_.carve, m, weights);
    }

    // One global box of m blocks lasts m steps (square boxes): a worker
    // holding s of them sees the inner-square run (s, m/s) + remainder.
    for (std::uint64_t w = 0; w < p_; ++w) {
      const std::uint64_t s = slices[w];
      workers_[w].stats.slice_blocks += s;
      const SliceRun run = slice_run(s, m);
      if (run.count > 0) consume_run_into(workers_[w], run.size, run.count);
      if (run.remainder > 0) consume_run_into(workers_[w], run.remainder, 1);
    }

    if (result_.rounds % epoch_rounds == 0 && remaining_units_ > 0) {
      ++result_.epochs;
      steal_barrier();
      if (opt_.recorder != nullptr) {
        std::uint64_t active = 0;
        std::uint64_t queued = 0;
        for (const Worker& w : workers_) {
          if (has_current(w) || w.deque->size() > 0) ++active;
          queued += w.deque->size();
        }
        opt_.recorder->on_epoch(result_.epochs, active, queued,
                                remaining_units_);
      }
    }
  }

  result_.workers.resize(p_);
  engine::RunResult& merged = result_.merged;
  for (std::uint64_t w = 0; w < p_; ++w) {
    result_.workers[w] = workers_[w].stats;
    result_.steals += workers_[w].stats.steals;
    result_.failed_steals += workers_[w].stats.failed_steals;
    merged.leaves += workers_[w].stats.progress;
  }
  merged.completed = remaining_units_ == 0;
  merged.stop = merged.completed ? engine::StopReason::kCompleted
                : capped         ? engine::StopReason::kBoxCapHit
                                 : engine::StopReason::kSourceExhausted;
  merged.boxes = result_.rounds;
  merged.sum_bounded_potential = acc_.sum_bounded_potential();
  merged.ratio = acc_.ratio();
  merged.unit_ratio =
      unit_potential_ / static_cast<double>(total_units_);
  result_.tasks_spawned = tasks_.size();
  if (opt_.recorder != nullptr) {
    opt_.recorder->finish(p_, result_.rounds, result_.epochs, result_.splits,
                          merged.completed);
  }
  return std::move(result_);
}

}  // namespace

ParallelResult parallel_run_to_completion(const model::RegularParams& params,
                                          std::uint64_t n,
                                          profile::BoxSource& source,
                                          const ParallelOptions& options) {
  params.validate();
  ParallelEngine engine(params, n, source, options);
  return engine.run();
}

std::vector<std::uint64_t> carve_slices(
    Policy policy, std::uint64_t box,
    std::span<const std::uint64_t> weights) {
  const std::size_t p = weights.size();
  CADAPT_CHECK(p >= 1);
  CADAPT_CHECK(box >= 1);
  std::vector<std::uint64_t> slices(p, 0);
  if (policy == Policy::kStaticEqual || p == 1) {
    const std::uint64_t quota = box / p;
    const std::uint64_t rest = box % p;
    for (std::size_t i = 0; i < p; ++i) {
      slices[i] = quota + (i < rest ? 1 : 0);
    }
  } else {
    // Proportional shares by the largest-remainder method — exact integer
    // arithmetic (128-bit products), remainder ties to the lower index,
    // so the carve is a pure function of (box, weights).
    unsigned __int128 total = 0;
    for (const std::uint64_t w : weights) {
      total += w < 1 ? 1 : w;
    }
    std::uint64_t assigned = 0;
    std::vector<std::pair<unsigned __int128, std::size_t>> remainders(p);
    for (std::size_t i = 0; i < p; ++i) {
      const std::uint64_t w = weights[i] < 1 ? 1 : weights[i];
      const unsigned __int128 product =
          static_cast<unsigned __int128>(box) * w;
      slices[i] = static_cast<std::uint64_t>(product / total);
      remainders[i] = {product % total, i};
      assigned += slices[i];
    }
    std::uint64_t leftover = box - assigned;
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& lhs, const auto& rhs) {
                if (lhs.first != rhs.first) return lhs.first > rhs.first;
                return lhs.second < rhs.second;
              });
    for (std::size_t j = 0; j < p && leftover > 0; ++j, --leftover) {
      ++slices[remainders[j].second];
    }
  }
  for (std::uint64_t& s : slices) {
    if (s == 0) s = 1;
  }
  return slices;
}

SliceRun slice_run(std::uint64_t slice, std::uint64_t length) {
  CADAPT_CHECK(slice >= 1);
  return {slice, length / slice, length % slice};
}

StealStats parallel_trials(std::uint64_t count, std::uint64_t workers,
                           std::uint64_t seed,
                           const std::function<void(std::uint64_t)>& body) {
  CADAPT_CHECK(body != nullptr);
  if (workers <= 1 || count <= 1) {
    for (std::uint64_t trial = 0; trial < count; ++trial) body(trial);
    return {};
  }
  const std::uint64_t p = std::min(workers, count);
  std::vector<std::unique_ptr<StealDeque<std::uint64_t>>> deques(p);
  for (std::uint64_t w = 0; w < p; ++w) {
    deques[w] = std::make_unique<StealDeque<std::uint64_t>>(
        static_cast<std::size_t>(count / p) + 2);
  }
  // Deal round-robin, highest trial first, so each owner's LIFO pop
  // drains its own share in increasing trial order.
  for (std::uint64_t trial = count; trial-- > 0;) {
    deques[trial % p]->push(trial);
  }

  std::atomic<std::uint64_t> unfinished{count};
  std::atomic<bool> stop{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  struct alignas(64) Local {
    std::uint64_t steals = 0;
    std::uint64_t failed = 0;
  };
  std::vector<Local> locals(p);

  const auto worker_fn = [&](std::uint64_t w) {
    std::uint64_t steal_index = 0;
    for (;;) {
      std::optional<std::uint64_t> trial = deques[w]->pop();
      while (!trial) {
        if (stop.load(std::memory_order_acquire) ||
            unfinished.load(std::memory_order_acquire) == 0) {
          return;
        }
        const std::uint64_t victim = pick_victim(seed, w, steal_index++, p);
        trial = deques[victim]->steal();
        if (trial) {
          ++locals[w].steals;
        } else {
          ++locals[w].failed;
          std::this_thread::yield();
        }
      }
      if (stop.load(std::memory_order_acquire)) return;
      try {
        body(*trial);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        stop.store(true, std::memory_order_release);
      }
      unfinished.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(p - 1);
  for (std::uint64_t w = 1; w < p; ++w) threads.emplace_back(worker_fn, w);
  worker_fn(0);
  for (std::thread& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);

  StealStats stats;
  for (const Local& local : locals) {
    stats.steals += local.steals;
    stats.failed_steals += local.failed;
  }
  return stats;
}

}  // namespace cadapt::sched
