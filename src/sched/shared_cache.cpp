#include "sched/shared_cache.hpp"

#include <memory>

#include "util/check.hpp"

namespace cadapt::sched {

namespace {

/// Tag a process-local block id with its owner so traces can share one
/// global cache without collisions.
paging::BlockId tag(std::size_t pid, paging::BlockId block) {
  CADAPT_CHECK_MSG(block < (UINT64_C(1) << 48), "block id too large to tag");
  return (static_cast<paging::BlockId>(pid) << 48) | block;
}

std::size_t owner_of(paging::BlockId tagged) {
  return static_cast<std::size_t>(tagged >> 48);
}

}  // namespace

SimResult simulate_shared_cache(const std::vector<Process>& processes,
                                const SimOptions& options) {
  CADAPT_CHECK(!processes.empty());
  CADAPT_CHECK(options.total_cache_blocks >= processes.size());

  const std::size_t k = processes.size();
  SimResult result;
  result.per_process.resize(k);

  std::vector<std::size_t> cursor(k, 0);
  std::vector<std::uint64_t> occupancy(k, 0);
  std::size_t unfinished = 0;
  for (std::size_t p = 0; p < k; ++p) {
    result.per_process[p].name = processes[p].name;
    if (!processes[p].blocks.empty()) ++unfinished;
    // Validated once up front (access_run ORs the pid tag in without
    // rechecking); the per-access tag() used to pay this every touch.
    for (const paging::BlockId block : processes[p].blocks) {
      CADAPT_CHECK_MSG(block < (UINT64_C(1) << 48),
                       "block id too large to tag");
    }
  }

  // Caches: one global (kGlobalLru / kPeriodicFlush) or one per process
  // (kStaticEqual).
  std::unique_ptr<paging::LruCache> global;
  std::vector<std::unique_ptr<paging::LruCache>> partitions;
  if (options.policy == Policy::kStaticEqual) {
    const std::uint64_t share = options.total_cache_blocks / k;
    CADAPT_CHECK(share >= 1);
    for (std::size_t p = 0; p < k; ++p)
      partitions.push_back(std::make_unique<paging::LruCache>(share));
  } else {
    global = std::make_unique<paging::LruCache>(options.total_cache_blocks);
  }
  const std::uint64_t flush_period =
      options.flush_period == 0 ? options.total_cache_blocks
                                : options.flush_period;
  std::uint64_t misses_since_flush = 0;

  // Round-robin at miss granularity.
  std::size_t turn = 0;
  while (unfinished > 0) {
    const std::size_t p = turn % k;
    ++turn;
    auto& proc = processes[p];
    auto& stats = result.per_process[p];
    if (cursor[p] >= proc.blocks.size()) continue;

    // Run until this process faults once; hits are free. One batched
    // until-first-miss walk replaces the old per-access loop: the cache
    // consumes leading hits internally (MRU repeats skip even the table
    // probe) and hands back only the terminal AccessResult.
    const std::uint64_t remaining = proc.blocks.size() - cursor[p];
    paging::LruCache::AccessResult last;
    std::uint64_t done;
    if (options.policy == Policy::kStaticEqual) {
      done = partitions[p]->access_run(proc.blocks.data() + cursor[p],
                                       remaining, /*tag_or=*/0, &last);
    } else {
      done = global->access_run(proc.blocks.data() + cursor[p], remaining,
                                tag(p, 0), &last);
    }
    cursor[p] += done;
    stats.accesses += done;

    if (!last.hit) {
      if (options.policy == Policy::kStaticEqual) {
        // Within a private partition the occupancy is just the cache
        // fill level.
        occupancy[p] = partitions[p]->size();
      } else {
        ++occupancy[p];
        if (last.evicted) {
          const std::size_t victim_owner = owner_of(last.victim);
          CADAPT_CHECK(occupancy[victim_owner] >= 1);
          --occupancy[victim_owner];
        }
      }
      ++result.total_ios;
      ++stats.misses;
      stats.occupancy_profile.push_back(occupancy[p] > 0 ? occupancy[p] : 1);
      if (options.policy == Policy::kPeriodicFlush) {
        ++misses_since_flush;
        if (misses_since_flush >= flush_period) {
          misses_since_flush = 0;
          global->clear();
          for (auto& occ : occupancy) occ = 0;
        }
      }
    }

    if (cursor[p] >= proc.blocks.size()) {
      stats.completion_time = result.total_ios;
      --unfinished;
    }
  }
  return result;
}

}  // namespace cadapt::sched
