// On-disk container for the columnar cell store (docs/REPORT.md):
//
//   magic "CADAPTCR" | u32 container version | u32 section count
//   section table: {u32 id, u32 crc32, u64 offset, u64 length} per section
//   section payloads, in table order
//
// Sections: HEADER (report metadata), ENV (provenance), DICTS (the four
// interning dictionaries), CELLS (row count + one contiguous array per
// column), SAMPLES (the shared samples arena), FITS. All integers are
// little-endian fixed width; doubles are raw IEEE-754 bytes, so a
// loaded store is bit-identical to the saved one (and its JSONL export
// byte-identical to the original report).
//
// Integrity: every section carries a CRC-32 (polynomial 0xEDB88320)
// checked on load; a mismatch or a file shorter than the table claims
// throws util::ParseError naming the damaged section — corruption is an
// input error, never a silent partial load. Commits go through
// robust::AtomicFileWriter, so the crash-safety contract of the JSONL
// report carries over verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "report/cell_store.hpp"
#include "robust/io.hpp"

namespace cadapt::report {

/// First bytes of every binary report (also the format sniff for CLI
/// paths that accept either encoding).
inline constexpr char kBinaryReportMagic[8] = {'C', 'A', 'D', 'A',
                                               'P', 'T', 'C', 'R'};
inline constexpr std::uint32_t kBinaryReportVersion = 1;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `data`, seeded by
/// `seed` so section CRCs can be accumulated over multiple spans.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Serialize `store` and commit it atomically to `path`. Streams the
/// sections through chunked durable writes (robust::AtomicFileWriter) —
/// peak memory is the store plus one chunk, not a second file-sized
/// buffer.
void save_store_file(const std::string& path, const CellStore& store,
                     robust::IoBackend& io = robust::system_io());

/// Parse a binary report from memory. Throws util::ParseError on bad
/// magic/version, truncation, CRC mismatch, or inconsistent columns
/// (the message names the offending section).
CellStore load_store(std::string_view bytes);

/// Read and parse `path`. Throws util::IoError if unreadable.
CellStore load_store_file(const std::string& path);

/// True when `path` starts with the binary report magic (false for
/// unreadable, short, or JSONL files — callers fall back to the JSONL
/// loader).
bool is_binary_report_file(const std::string& path);

}  // namespace cadapt::report
