// Columnar report engine (docs/REPORT.md): the struct-of-arrays twin of
// campaign::Report, built for 1e7–1e8-cell campaigns where the
// row-of-strings representation (one CellResult per cell, one
// obs::Event per line) turns report bookkeeping into allocator traffic.
//
// Layout: every numeric cell field lives in its own fixed-width column
// (std::vector), the four string axes (algo/profile/sort/policy) are
// interned into per-axis dictionaries so each cell carries a u32 id,
// and all per-trial samples share ONE contiguous arena with a per-cell
// offset column — loading a store is a handful of memcpy-bandwidth
// scans instead of millions of small-string allocations.
//
// The JSONL report stays the interchange format: export_report() renders
// the EXACT bytes campaign::write_report produces (it goes through the
// same cell_event/to_jsonl encoders), so every cmp-based bit-identity
// gate in the repo holds across a binary round trip. See binary_io.hpp
// for the on-disk container.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/report.hpp"

namespace cadapt::report {

/// Append-only interning dictionary for one string axis. Ids are dense
/// and assigned in first-appearance order, so a store built from a
/// report and the report rebuilt from the store agree byte-for-byte.
class StringDict {
 public:
  /// Id of `token`, interning it on first sight.
  std::uint32_t intern(std::string_view token);
  /// Id of `token` if already interned, npos otherwise.
  static constexpr std::uint32_t npos = 0xFFFFFFFFu;
  std::uint32_t find(std::string_view token) const;

  const std::string& token(std::uint32_t id) const { return tokens_.at(id); }
  std::size_t size() const { return tokens_.size(); }
  const std::vector<std::string>& tokens() const { return tokens_; }

 private:
  std::vector<std::string> tokens_;
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

/// One fit row in columnar form (algo/profile refer to the store's
/// dictionaries).
struct FitRow {
  std::uint32_t algo_id = 0;
  std::uint32_t profile_id = 0;
  double exponent = 0;
  double scale = 0;
  double r2 = 0;
  double expected = 0;
};

/// Struct-of-arrays cell store: report header + dictionaries + one
/// column per cell field + the shared samples arena. Cells are kept in
/// ascending index order (the Report contract); append() enforces the
/// samples-vs-completed invariant the JSONL parser enforces.
class CellStore {
 public:
  // ---- report-level metadata (mirrors campaign::Report) ----
  std::uint64_t version = 1;
  std::string name;
  std::uint64_t config_hash = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t shards = 1;
  std::uint64_t shard_index = 0;
  bool truncated = false;
  robust::CancelReason truncate_reason = robust::CancelReason::kNone;
  std::uint64_t wall_ms = 0;
  campaign::Provenance env;

  // ---- dictionaries ----
  StringDict algo_dict;
  StringDict profile_dict;
  StringDict sort_dict;
  StringDict policy_dict;

  // ---- cell columns (all size() == cell_count()) ----
  std::vector<std::uint64_t> index;
  std::vector<std::uint32_t> algo_id;
  std::vector<std::uint32_t> profile_id;
  std::vector<std::uint32_t> sort_id;
  std::vector<std::uint32_t> policy_id;
  std::vector<std::uint32_t> k;
  std::vector<std::uint64_t> n;
  std::vector<std::uint64_t> trials;
  std::vector<std::uint64_t> completed;
  std::vector<std::uint64_t> incomplete;
  std::vector<std::uint64_t> capped;
  std::vector<std::uint64_t> failed;
  std::vector<double> mean;
  std::vector<double> ci_lo;
  std::vector<double> ci_hi;
  std::vector<double> q50;
  std::vector<double> q90;
  std::vector<double> q95;
  std::vector<double> boxes_mean;
  std::vector<std::uint64_t> wall_ns;
  /// Start of each cell's samples in the arena; the cell's sample count
  /// is its `completed` column (the report invariant).
  std::vector<std::uint64_t> samples_offset;

  /// The shared samples arena, cells' runs concatenated in column order.
  std::vector<double> samples;

  std::vector<FitRow> fits;

  std::size_t cell_count() const { return index.size(); }

  /// Reserve column capacity for `cells` rows and `samples` doubles.
  void reserve(std::size_t cells, std::size_t sample_capacity);

  /// Append one finished cell: interns its tokens, pushes one value per
  /// column, appends its samples to the arena. Throws util::ParseError
  /// if samples.size() != completed (same invariant as the JSONL
  /// parser). Cells must arrive in ascending index order.
  void append(const campaign::CellResult& cell);

  /// Materialize row `row` as a CellResult, reusing `out`'s string and
  /// sample capacity (the export hot loop calls this once per cell).
  void cell(std::size_t row, campaign::CellResult& out) const;
  campaign::CellResult cell(std::size_t row) const;

  /// Report header fields as a cells/fits-free Report (the header and
  /// env lines of the export).
  campaign::Report header() const;

  // ---- conversions ----
  static CellStore from_report(const campaign::Report& report);
  campaign::Report to_report() const;

  /// Recompute fits over the columns — the columnar twin of
  /// campaign::compute_fits: ratio series grouped by (algo, profile) in
  /// first-appearance order, >= 2 distinct n, no empty cells. Produces
  /// bit-identical fit rows (same stats::fit_power_law inputs).
  void recompute_fits();

  /// Render the exact bytes campaign::write_report emits for the
  /// equivalent Report — one line per sink call, '\n' included. Goes
  /// through the same cell_event/to_jsonl encoders, so equivalence is
  /// by construction, not by parallel implementation.
  void export_report(const std::function<void(std::string_view)>& sink) const;

  /// export_report into a stream (used by `cadapt report export -`).
  void export_report_stream(std::ostream& os) const;

  /// export_report committed atomically to `path` — byte-identical to
  /// campaign::write_report_file of the equivalent Report, without ever
  /// materializing the row representation.
  void export_report_file(const std::string& path,
                          robust::IoBackend& io = robust::system_io()) const;

  /// Columnar shard merge — the twin of campaign::merge_reports, minus
  /// the per-cell CellResult materialization: validates campaign
  /// identity, remaps dictionary ids, orders cells by ascending index,
  /// rejects duplicate indexes and non-covering shard sets with the
  /// same util::ParseError messages, sums wall_ms, ORs truncation, and
  /// recomputes fits.
  static CellStore merge(std::vector<CellStore> parts);
};

/// Streaming writer: appends finished cells straight into columns —
/// no obs::Event, no JSONL line, no per-cell string churn beyond first
/// interning. Feed it cells as they finish, then take() the store
/// (setting header fields before or after appending).
class ColumnarWriter {
 public:
  ColumnarWriter() = default;
  explicit ColumnarWriter(CellStore initial) : store_(std::move(initial)) {}

  CellStore& store() { return store_; }
  const CellStore& store() const { return store_; }

  void reserve(std::size_t cells, std::size_t sample_capacity) {
    store_.reserve(cells, sample_capacity);
  }
  void append(const campaign::CellResult& cell) { store_.append(cell); }

  CellStore take() { return std::move(store_); }

 private:
  CellStore store_;
};

}  // namespace cadapt::report
