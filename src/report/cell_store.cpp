#include "report/cell_store.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <utility>

#include "campaign/provenance.hpp"
#include "obs/event.hpp"
#include "stats/fit.hpp"
#include "util/check.hpp"

namespace cadapt::report {

std::uint32_t StringDict::intern(std::string_view token) {
  const auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tokens_.size());
  CADAPT_CHECK_MSG(id != npos, "string dictionary overflow");
  tokens_.emplace_back(token);
  index_.emplace(tokens_.back(), id);
  return id;
}

std::uint32_t StringDict::find(std::string_view token) const {
  const auto it = index_.find(token);
  return it == index_.end() ? npos : it->second;
}

void CellStore::reserve(std::size_t cells, std::size_t sample_capacity) {
  index.reserve(cells);
  algo_id.reserve(cells);
  profile_id.reserve(cells);
  sort_id.reserve(cells);
  policy_id.reserve(cells);
  k.reserve(cells);
  n.reserve(cells);
  trials.reserve(cells);
  completed.reserve(cells);
  incomplete.reserve(cells);
  capped.reserve(cells);
  failed.reserve(cells);
  mean.reserve(cells);
  ci_lo.reserve(cells);
  ci_hi.reserve(cells);
  q50.reserve(cells);
  q90.reserve(cells);
  q95.reserve(cells);
  boxes_mean.reserve(cells);
  wall_ns.reserve(cells);
  samples_offset.reserve(cells);
  samples.reserve(sample_capacity);
}

void CellStore::append(const campaign::CellResult& cell) {
  if (cell.samples.size() != cell.completed) {
    throw util::ParseError(
        "columnar store: cell " + std::to_string(cell.index) + " carries " +
        std::to_string(cell.samples.size()) + " samples but claims " +
        std::to_string(cell.completed) + " completed trials");
  }
  index.push_back(cell.index);
  algo_id.push_back(algo_dict.intern(cell.algo));
  profile_id.push_back(profile_dict.intern(cell.profile));
  sort_id.push_back(sort_dict.intern(cell.sort));
  policy_id.push_back(policy_dict.intern(cell.policy));
  k.push_back(cell.k);
  n.push_back(cell.n);
  trials.push_back(cell.trials);
  completed.push_back(cell.completed);
  incomplete.push_back(cell.incomplete);
  capped.push_back(cell.capped);
  failed.push_back(cell.failed);
  mean.push_back(cell.mean);
  ci_lo.push_back(cell.ci_lo);
  ci_hi.push_back(cell.ci_hi);
  q50.push_back(cell.q50);
  q90.push_back(cell.q90);
  q95.push_back(cell.q95);
  boxes_mean.push_back(cell.boxes_mean);
  wall_ns.push_back(cell.wall_ns);
  samples_offset.push_back(samples.size());
  samples.insert(samples.end(), cell.samples.begin(), cell.samples.end());
}

void CellStore::cell(std::size_t row, campaign::CellResult& out) const {
  out.index = index[row];
  out.algo = algo_dict.token(algo_id[row]);
  out.profile = profile_dict.token(profile_id[row]);
  out.sort = sort_dict.token(sort_id[row]);
  out.policy = policy_dict.token(policy_id[row]);
  out.k = k[row];
  out.n = n[row];
  out.trials = trials[row];
  out.completed = completed[row];
  out.incomplete = incomplete[row];
  out.capped = capped[row];
  out.failed = failed[row];
  out.mean = mean[row];
  out.ci_lo = ci_lo[row];
  out.ci_hi = ci_hi[row];
  out.q50 = q50[row];
  out.q90 = q90[row];
  out.q95 = q95[row];
  out.boxes_mean = boxes_mean[row];
  out.wall_ns = wall_ns[row];
  const auto begin = samples.begin() +
                     static_cast<std::ptrdiff_t>(samples_offset[row]);
  out.samples.assign(begin, begin + static_cast<std::ptrdiff_t>(completed[row]));
}

campaign::CellResult CellStore::cell(std::size_t row) const {
  campaign::CellResult out;
  cell(row, out);
  return out;
}

campaign::Report CellStore::header() const {
  campaign::Report report;
  report.version = version;
  report.name = name;
  report.config_hash = config_hash;
  report.cells_total = cells_total;
  report.shards = shards;
  report.shard_index = shard_index;
  report.truncated = truncated;
  report.truncate_reason = truncate_reason;
  report.wall_ms = wall_ms;
  report.env = env;
  return report;
}

CellStore CellStore::from_report(const campaign::Report& report) {
  CellStore store;
  store.version = report.version;
  store.name = report.name;
  store.config_hash = report.config_hash;
  store.cells_total = report.cells_total;
  store.shards = report.shards;
  store.shard_index = report.shard_index;
  store.truncated = report.truncated;
  store.truncate_reason = report.truncate_reason;
  store.wall_ms = report.wall_ms;
  store.env = report.env;

  std::size_t sample_total = 0;
  for (const campaign::CellResult& cell : report.cells) {
    sample_total += cell.samples.size();
  }
  store.reserve(report.cells.size(), sample_total);
  for (const campaign::CellResult& cell : report.cells) store.append(cell);

  store.fits.reserve(report.fits.size());
  for (const campaign::FitResult& fit : report.fits) {
    FitRow row;
    row.algo_id = store.algo_dict.intern(fit.algo);
    row.profile_id = store.profile_dict.intern(fit.profile);
    row.exponent = fit.exponent;
    row.scale = fit.scale;
    row.r2 = fit.r2;
    row.expected = fit.expected;
    store.fits.push_back(row);
  }
  return store;
}

campaign::Report CellStore::to_report() const {
  campaign::Report report = header();
  report.cells.resize(cell_count());
  for (std::size_t row = 0; row < cell_count(); ++row) {
    cell(row, report.cells[row]);
  }
  report.fits.reserve(fits.size());
  for (const FitRow& row : fits) {
    campaign::FitResult fit;
    fit.algo = algo_dict.token(row.algo_id);
    fit.profile = profile_dict.token(row.profile_id);
    fit.exponent = row.exponent;
    fit.scale = row.scale;
    fit.r2 = row.r2;
    fit.expected = row.expected;
    report.fits.push_back(std::move(fit));
  }
  return report;
}

void CellStore::recompute_fits() {
  // The columnar twin of campaign::compute_fits: group ratio cells
  // (non-empty algo, empty sort) by (algo, profile) in first-appearance
  // order. Dictionary ids are bijective with tokens inside one store, so
  // grouping by id pair IS grouping by string pair.
  std::vector<char> algo_nonempty(algo_dict.size());
  for (std::size_t id = 0; id < algo_dict.size(); ++id) {
    algo_nonempty[id] =
        !algo_dict.token(static_cast<std::uint32_t>(id)).empty();
  }
  std::vector<char> sort_empty(sort_dict.size());
  for (std::size_t id = 0; id < sort_dict.size(); ++id) {
    sort_empty[id] =
        sort_dict.token(static_cast<std::uint32_t>(id)).empty();
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>>
      series;
  for (std::size_t row = 0; row < cell_count(); ++row) {
    if (algo_nonempty[algo_id[row]] == 0 || sort_empty[sort_id[row]] == 0) {
      continue;
    }
    const auto key = std::make_pair(algo_id[row], profile_id[row]);
    auto [it, inserted] = series.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(row);
  }

  fits.clear();
  for (const auto& key : order) {
    const std::vector<std::size_t>& rows = series.at(key);
    std::vector<std::uint64_t> ns;
    std::vector<double> means;
    bool usable = true;
    for (const std::size_t row : rows) {
      if (completed[row] == 0) {
        usable = false;
        break;
      }
      ns.push_back(n[row]);
      means.push_back(mean[row]);
    }
    std::vector<std::uint64_t> distinct = ns;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (!usable || distinct.size() < 2) continue;
    const stats::ExponentFit fit = stats::fit_power_law(ns, means);
    FitRow out;
    out.algo_id = key.first;
    out.profile_id = key.second;
    out.exponent = fit.exponent;
    out.scale = fit.scale;
    out.r2 = fit.r2;
    out.expected =
        campaign::algo_expected_exponent(algo_dict.token(key.first));
    fits.push_back(out);
  }
}

void CellStore::export_report(
    const std::function<void(std::string_view)>& sink) const {
  std::string buf;
  const auto emit = [&](const obs::Event& event) {
    obs::to_jsonl(event, buf);
    buf += '\n';
    sink(buf);
  };
  emit(campaign::report_header_event(header()));
  emit(campaign::provenance_event(env));
  campaign::CellResult scratch;
  for (std::size_t row = 0; row < cell_count(); ++row) {
    cell(row, scratch);
    emit(campaign::cell_event(scratch));
  }
  campaign::FitResult fit;
  for (const FitRow& row : fits) {
    fit.algo = algo_dict.token(row.algo_id);
    fit.profile = profile_dict.token(row.profile_id);
    fit.exponent = row.exponent;
    fit.scale = row.scale;
    fit.r2 = row.r2;
    fit.expected = row.expected;
    emit(campaign::report_fit_event(fit));
  }
}

void CellStore::export_report_stream(std::ostream& os) const {
  export_report([&os](std::string_view line) {
    os.write(line.data(), static_cast<std::streamsize>(line.size()));
  });
}

void CellStore::export_report_file(const std::string& path,
                                   robust::IoBackend& io) const {
  robust::AtomicFileWriter out(path, io);
  export_report([&out](std::string_view line) { out.write(line); });
  out.commit();
}

CellStore CellStore::merge(std::vector<CellStore> parts) {
  if (parts.empty()) {
    throw util::ParseError("sweep merge: no input reports");
  }
  CellStore merged;
  {
    const CellStore& first = parts.front();
    merged.version = first.version;
    merged.name = first.name;
    merged.config_hash = first.config_hash;
    merged.cells_total = first.cells_total;
    merged.env = first.env;
  }

  std::size_t row_total = 0;
  std::size_t sample_total = 0;
  for (const CellStore& part : parts) {
    if (part.name != merged.name || part.config_hash != merged.config_hash ||
        part.cells_total != merged.cells_total ||
        part.version != merged.version) {
      throw util::ParseError(
          "sweep merge: report '" + part.name +
          "' belongs to a different campaign (name/config_hash/"
          "cells_total mismatch)");
    }
    merged.truncated = merged.truncated || part.truncated;
    if (merged.truncate_reason == robust::CancelReason::kNone) {
      merged.truncate_reason = part.truncate_reason;
    }
    merged.wall_ms += part.wall_ms;
    row_total += part.cell_count();
    sample_total += part.samples.size();
  }

  // Global ascending-index order over all shard rows; shards interleave
  // (round-robin planning), so a sort — not a concatenation — restores
  // the Report contract.
  struct Ref {
    std::uint64_t cell_index;
    std::uint32_t part;
    std::uint32_t row;
  };
  const auto by_index = [](const Ref& a, const Ref& b) {
    return a.cell_index < b.cell_index;
  };
  bool parts_sorted = true;
  for (const CellStore& part : parts) {
    parts_sorted = parts_sorted &&
                   std::is_sorted(part.index.begin(), part.index.end());
  }
  std::vector<Ref> refs;
  refs.reserve(row_total);
  if (parts_sorted) {
    // Each shard is already in ascending index order (the store
    // contract), so a cascade of linear merges beats re-sorting the
    // whole row set.
    std::vector<Ref> incoming, merged_refs;
    merged_refs.reserve(row_total);
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
      incoming.clear();
      incoming.reserve(parts[p].cell_count());
      for (std::uint32_t r = 0; r < parts[p].cell_count(); ++r) {
        incoming.push_back({parts[p].index[r], p, r});
      }
      merged_refs.clear();
      std::merge(refs.begin(), refs.end(), incoming.begin(),
                 incoming.end(), std::back_inserter(merged_refs), by_index);
      refs.swap(merged_refs);
    }
  } else {
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
      for (std::uint32_t r = 0; r < parts[p].cell_count(); ++r) {
        refs.push_back({parts[p].index[r], p, r});
      }
    }
    std::sort(refs.begin(), refs.end(), by_index);
  }
  for (std::size_t i = 1; i < refs.size(); ++i) {
    if (refs[i].cell_index == refs[i - 1].cell_index) {
      throw util::ParseError("sweep merge: cell " +
                             std::to_string(refs[i].cell_index) +
                             " appears in more than one report");
    }
  }
  if (refs.size() != merged.cells_total) {
    throw util::ParseError(
        "sweep merge: " + std::to_string(refs.size()) + " cells of " +
        std::to_string(merged.cells_total) +
        " — the shard set does not cover the grid");
  }

  // Per-part dictionary remap tables: part-local id -> merged id.
  struct Remap {
    std::vector<std::uint32_t> algo, profile, sort, policy;
  };
  std::vector<Remap> remaps(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const CellStore& part = parts[p];
    Remap& remap = remaps[p];
    const auto build = [](const StringDict& from, StringDict& into,
                          std::vector<std::uint32_t>& table) {
      table.reserve(from.size());
      for (const std::string& token : from.tokens()) {
        table.push_back(into.intern(token));
      }
    };
    build(part.algo_dict, merged.algo_dict, remap.algo);
    build(part.profile_dict, merged.profile_dict, remap.profile);
    build(part.sort_dict, merged.sort_dict, remap.sort);
    build(part.policy_dict, merged.policy_dict, remap.policy);
  }

  // Column-at-a-time gather: one tight pass per column instead of 21
  // push_backs per row. Sorted refs walk each part's rows in ascending
  // order (round-robin sharding), so every pass streams its sources.
  const std::size_t rows = refs.size();
  const auto gather = [&](auto member) {
    auto& out = merged.*member;
    out.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      out[i] = (parts[refs[i].part].*member)[refs[i].row];
    }
  };
  const auto gather_remapped = [&](auto member, auto table) {
    auto& out = merged.*member;
    out.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      out[i] = (remaps[refs[i].part].*table)[(
          parts[refs[i].part].*member)[refs[i].row]];
    }
  };
  gather(&CellStore::index);
  gather_remapped(&CellStore::algo_id, &Remap::algo);
  gather_remapped(&CellStore::profile_id, &Remap::profile);
  gather_remapped(&CellStore::sort_id, &Remap::sort);
  gather_remapped(&CellStore::policy_id, &Remap::policy);
  gather(&CellStore::k);
  gather(&CellStore::n);
  gather(&CellStore::trials);
  gather(&CellStore::completed);
  gather(&CellStore::incomplete);
  gather(&CellStore::capped);
  gather(&CellStore::failed);
  gather(&CellStore::mean);
  gather(&CellStore::ci_lo);
  gather(&CellStore::ci_hi);
  gather(&CellStore::q50);
  gather(&CellStore::q90);
  gather(&CellStore::q95);
  gather(&CellStore::boxes_mean);
  gather(&CellStore::wall_ns);

  merged.samples_offset.resize(rows);
  merged.samples.resize(sample_total);
  std::size_t at = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const CellStore& part = parts[refs[i].part];
    const std::size_t r = refs[i].row;
    const std::uint64_t offset = part.samples_offset[r];
    const std::uint64_t count = part.completed[r];
    if (offset > part.samples.size() ||
        count > part.samples.size() - offset || count > sample_total - at) {
      throw util::ParseError(
          "sweep merge: cell " + std::to_string(refs[i].cell_index) +
          "'s samples run falls outside its shard's arena");
    }
    merged.samples_offset[i] = at;
    if (count != 0) {
      std::memcpy(merged.samples.data() + at, part.samples.data() + offset,
                  count * sizeof(double));
      at += count;
    }
  }
  merged.samples.resize(at);

  merged.recompute_fits();
  return merged;
}

}  // namespace cadapt::report
