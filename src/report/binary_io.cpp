#include "report/binary_io.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <iterator>

#include "robust/cancel.hpp"
#include "util/check.hpp"

namespace cadapt::report {

// Columns are committed as raw little-endian memory; the container is a
// storage format for one machine family, not a network protocol.
static_assert(std::endian::native == std::endian::little,
              "binary report container assumes a little-endian host");

namespace {

enum Section : std::uint32_t {
  kHeader = 1,
  kEnv = 2,
  kDicts = 3,
  kCells = 4,
  kSamples = 5,
  kFits = 6,
};

constexpr std::uint32_t kSectionIds[] = {kHeader, kEnv,     kDicts,
                                         kCells,  kSamples, kFits};

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kHeader: return "HEADER";
    case kEnv: return "ENV";
    case kDicts: return "DICTS";
    case kCells: return "CELLS";
    case kSamples: return "SAMPLES";
    case kFits: return "FITS";
    default: return "?";
  }
}

[[noreturn]] void bad(const std::string& what) {
  throw util::ParseError("binary report: " + what);
}

// ---- encoding helpers ----------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

template <typename T>
std::string_view column_bytes(const std::vector<T>& column) {
  return {reinterpret_cast<const char*>(column.data()),
          column.size() * sizeof(T)};
}

// ---- decoding helpers ----------------------------------------------

/// Bounds-checked reader over one section payload; every overrun names
/// the section it happened in.
class Cursor {
 public:
  Cursor(std::string_view data, std::uint32_t section)
      : data_(data), section_(section) {}

  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }
  template <typename T>
  void column(std::vector<T>& out, std::uint64_t rows) {
    need(rows * sizeof(T));
    out.resize(rows);
    std::memcpy(out.data(), data_.data() + pos_, rows * sizeof(T));
    pos_ += rows * sizeof(T);
  }
  void finish() const {
    if (pos_ != data_.size()) {
      bad(std::string("section ") + section_name(section_) +
          " carries trailing bytes");
    }
  }

 private:
  void need(std::uint64_t bytes) const {
    if (bytes > data_.size() - pos_) {
      bad(std::string("section ") + section_name(section_) +
          " is shorter than its contents claim");
    }
  }
  void raw(void* out, std::size_t bytes) {
    need(bytes);
    std::memcpy(out, data_.data() + pos_, bytes);
    pos_ += bytes;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  std::uint32_t section_;
};

// ---- section payloads ----------------------------------------------

std::string header_payload(const CellStore& store) {
  std::string out;
  put_u64(out, store.version);
  put_u64(out, store.config_hash);
  put_u64(out, store.cells_total);
  put_u64(out, store.shards);
  put_u64(out, store.shard_index);
  put_u64(out, store.wall_ms);
  put_u32(out, store.truncated ? 1 : 0);
  put_str(out, store.name);
  put_str(out, robust::cancel_reason_name(store.truncate_reason));
  return out;
}

std::string env_payload(const CellStore& store) {
  std::string out;
  put_str(out, store.env.version);
  put_str(out, store.env.git_hash);
  put_str(out, store.env.build_type);
  put_str(out, store.env.compiler);
  put_str(out, store.env.cxx_flags);
  return out;
}

std::string dicts_payload(const CellStore& store) {
  std::string out;
  for (const StringDict* dict :
       {&store.algo_dict, &store.profile_dict, &store.sort_dict,
        &store.policy_dict}) {
    put_u32(out, static_cast<std::uint32_t>(dict->size()));
    for (const std::string& token : dict->tokens()) put_str(out, token);
  }
  return out;
}

std::string fits_payload(const CellStore& store) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(store.fits.size()));
  for (const FitRow& fit : store.fits) {
    put_u32(out, fit.algo_id);
    put_u32(out, fit.profile_id);
    put_f64(out, fit.exponent);
    put_f64(out, fit.scale);
    put_f64(out, fit.r2);
    put_f64(out, fit.expected);
  }
  return out;
}

/// The CELLS section is the store's columns verbatim; rather than copy
/// them into a payload string, visit (prefix, column bytes...) spans in
/// encoding order — save_store_file runs the visitor twice, once to CRC
/// and size the section, once to write it.
template <typename Visit>
void visit_cells_spans(const CellStore& store, std::string& prefix,
                       Visit&& visit) {
  prefix.clear();
  put_u64(prefix, store.cell_count());
  visit(std::string_view(prefix));
  visit(column_bytes(store.index));
  visit(column_bytes(store.algo_id));
  visit(column_bytes(store.profile_id));
  visit(column_bytes(store.sort_id));
  visit(column_bytes(store.policy_id));
  visit(column_bytes(store.k));
  visit(column_bytes(store.n));
  visit(column_bytes(store.trials));
  visit(column_bytes(store.completed));
  visit(column_bytes(store.incomplete));
  visit(column_bytes(store.capped));
  visit(column_bytes(store.failed));
  visit(column_bytes(store.mean));
  visit(column_bytes(store.ci_lo));
  visit(column_bytes(store.ci_hi));
  visit(column_bytes(store.q50));
  visit(column_bytes(store.q90));
  visit(column_bytes(store.q95));
  visit(column_bytes(store.boxes_mean));
  visit(column_bytes(store.wall_ns));
  visit(column_bytes(store.samples_offset));
}

template <typename Visit>
void visit_samples_spans(const CellStore& store, std::string& prefix,
                         Visit&& visit) {
  prefix.clear();
  put_u64(prefix, store.samples.size());
  visit(std::string_view(prefix));
  visit(column_bytes(store.samples));
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  // Slice-by-8: the byte-at-a-time recurrence caps the checksum near
  // 1 GB/s, which would dominate loading a multi-GB container. Eight
  // derived tables let each iteration fold 8 bytes with independent
  // lookups; the resulting function is the same CRC-32 (seed chaining
  // still composes: crc32(b, crc32(a)) == crc32(a + b)).
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  std::uint32_t state = seed ^ 0xFFFFFFFFu;
  const char* p = data.data();
  std::size_t len = data.size();
  while (len >= 8) {
    std::uint32_t lo = 0, hi = 0;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= state;
    state = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
            tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
            tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
            tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (; len != 0; --len, ++p) {
    state = tables[0][(state ^ static_cast<unsigned char>(*p)) & 0xFFu] ^
            (state >> 8);
  }
  return state ^ 0xFFFFFFFFu;
}

void save_store_file(const std::string& path, const CellStore& store,
                     robust::IoBackend& io) {
  const std::string header = header_payload(store);
  const std::string env = env_payload(store);
  const std::string dicts = dicts_payload(store);
  const std::string fits = fits_payload(store);

  // Size and CRC the two big sections without materializing them.
  std::string prefix;
  std::uint64_t cells_len = 0;
  std::uint32_t cells_crc = 0;
  visit_cells_spans(store, prefix, [&](std::string_view span) {
    cells_len += span.size();
    cells_crc = crc32(span, cells_crc);
  });
  std::uint64_t samples_len = 0;
  std::uint32_t samples_crc = 0;
  visit_samples_spans(store, prefix, [&](std::string_view span) {
    samples_len += span.size();
    samples_crc = crc32(span, samples_crc);
  });

  struct Entry {
    std::uint32_t id;
    std::uint32_t crc;
    std::uint64_t length;
  };
  const Entry entries[] = {
      {kHeader, crc32(header), header.size()},
      {kEnv, crc32(env), env.size()},
      {kDicts, crc32(dicts), dicts.size()},
      {kCells, cells_crc, cells_len},
      {kSamples, samples_crc, samples_len},
      {kFits, crc32(fits), fits.size()},
  };

  std::string front;
  front.append(kBinaryReportMagic, sizeof(kBinaryReportMagic));
  put_u32(front, kBinaryReportVersion);
  put_u32(front, static_cast<std::uint32_t>(std::size(entries)));
  std::uint64_t offset =
      front.size() + std::size(entries) * 24;  // table entry = 24 bytes
  for (const Entry& entry : entries) {
    put_u32(front, entry.id);
    put_u32(front, entry.crc);
    put_u64(front, offset);
    put_u64(front, entry.length);
    offset += entry.length;
  }

  robust::AtomicFileWriter out(path, io);
  out.write(front);
  out.write(header);
  out.write(env);
  out.write(dicts);
  visit_cells_spans(store, prefix,
                    [&](std::string_view span) { out.write(span); });
  visit_samples_spans(store, prefix,
                      [&](std::string_view span) { out.write(span); });
  out.write(fits);
  out.commit();
}

CellStore load_store(std::string_view bytes) {
  if (bytes.size() < sizeof(kBinaryReportMagic) + 8 ||
      std::memcmp(bytes.data(), kBinaryReportMagic,
                  sizeof(kBinaryReportMagic)) != 0) {
    bad("missing magic — not a binary report");
  }
  std::uint32_t container_version = 0;
  std::uint32_t section_count = 0;
  std::memcpy(&container_version, bytes.data() + 8, 4);
  std::memcpy(&section_count, bytes.data() + 12, 4);
  if (container_version != kBinaryReportVersion) {
    bad("unsupported container version " + std::to_string(container_version));
  }
  if (section_count != std::size(kSectionIds)) {
    bad("expected " + std::to_string(std::size(kSectionIds)) +
        " sections, found " + std::to_string(section_count));
  }
  const std::uint64_t table_end = 16 + std::uint64_t{section_count} * 24;
  if (table_end > bytes.size()) {
    bad("truncated file — the section table extends past end of file");
  }

  // Locate and integrity-check every section before decoding any.
  std::string_view payloads[std::size(kSectionIds) + 1];
  bool seen[std::size(kSectionIds) + 1] = {};
  for (std::uint32_t s = 0; s < section_count; ++s) {
    std::uint32_t id = 0, crc = 0;
    std::uint64_t offset = 0, length = 0;
    const char* entry = bytes.data() + 16 + s * 24;
    std::memcpy(&id, entry, 4);
    std::memcpy(&crc, entry + 4, 4);
    std::memcpy(&offset, entry + 8, 8);
    std::memcpy(&length, entry + 16, 8);
    if (id == 0 || id > std::size(kSectionIds)) {
      bad("unknown section id " + std::to_string(id));
    }
    if (seen[id]) {
      bad(std::string("duplicate section ") + section_name(id));
    }
    seen[id] = true;
    if (offset > bytes.size() || length > bytes.size() - offset) {
      bad(std::string("truncated file — section ") + section_name(id) +
          " extends past end of file");
    }
    const std::string_view payload = bytes.substr(offset, length);
    if (crc32(payload) != crc) {
      bad(std::string("CRC mismatch in section ") + section_name(id));
    }
    payloads[id] = payload;
  }
  for (const std::uint32_t id : kSectionIds) {
    if (!seen[id]) bad(std::string("missing section ") + section_name(id));
  }

  CellStore store;

  {
    Cursor c(payloads[kHeader], kHeader);
    store.version = c.u64();
    if (store.version != 1) {
      bad("unsupported report version " + std::to_string(store.version));
    }
    store.config_hash = c.u64();
    store.cells_total = c.u64();
    store.shards = c.u64();
    store.shard_index = c.u64();
    store.wall_ms = c.u64();
    store.truncated = c.u32() != 0;
    store.name = c.str();
    if (const auto reason = robust::parse_cancel_reason(c.str());
        reason.has_value()) {
      store.truncate_reason = *reason;
    }
    c.finish();
  }
  {
    Cursor c(payloads[kEnv], kEnv);
    store.env.version = c.str();
    store.env.git_hash = c.str();
    store.env.build_type = c.str();
    store.env.compiler = c.str();
    store.env.cxx_flags = c.str();
    c.finish();
  }
  {
    Cursor c(payloads[kDicts], kDicts);
    for (StringDict* dict : {&store.algo_dict, &store.profile_dict,
                             &store.sort_dict, &store.policy_dict}) {
      const std::uint32_t count = c.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        if (dict->intern(c.str()) != i) {
          bad("section DICTS repeats a token — ids would not round-trip");
        }
      }
    }
    c.finish();
  }

  std::uint64_t rows = 0;
  {
    Cursor c(payloads[kCells], kCells);
    rows = c.u64();
    c.column(store.index, rows);
    c.column(store.algo_id, rows);
    c.column(store.profile_id, rows);
    c.column(store.sort_id, rows);
    c.column(store.policy_id, rows);
    c.column(store.k, rows);
    c.column(store.n, rows);
    c.column(store.trials, rows);
    c.column(store.completed, rows);
    c.column(store.incomplete, rows);
    c.column(store.capped, rows);
    c.column(store.failed, rows);
    c.column(store.mean, rows);
    c.column(store.ci_lo, rows);
    c.column(store.ci_hi, rows);
    c.column(store.q50, rows);
    c.column(store.q90, rows);
    c.column(store.q95, rows);
    c.column(store.boxes_mean, rows);
    c.column(store.wall_ns, rows);
    c.column(store.samples_offset, rows);
    c.finish();
  }
  {
    Cursor c(payloads[kSamples], kSamples);
    const std::uint64_t count = c.u64();
    c.column(store.samples, count);
    c.finish();
  }
  {
    Cursor c(payloads[kFits], kFits);
    const std::uint32_t count = c.u32();
    store.fits.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      FitRow fit;
      fit.algo_id = c.u32();
      fit.profile_id = c.u32();
      std::uint64_t raw = c.u64();
      std::memcpy(&fit.exponent, &raw, 8);
      raw = c.u64();
      std::memcpy(&fit.scale, &raw, 8);
      raw = c.u64();
      std::memcpy(&fit.r2, &raw, 8);
      raw = c.u64();
      std::memcpy(&fit.expected, &raw, 8);
      store.fits.push_back(fit);
    }
    c.finish();
  }

  // Cross-section consistency: dictionary ids in range, the samples
  // arena exactly covered by the per-cell (offset, completed) runs.
  const auto check_ids = [&](const std::vector<std::uint32_t>& column,
                             const StringDict& dict, const char* what) {
    for (const std::uint32_t id : column) {
      if (id >= dict.size()) {
        bad(std::string("section CELLS references ") + what +
            " dictionary id " + std::to_string(id) + " of " +
            std::to_string(dict.size()));
      }
    }
  };
  check_ids(store.algo_id, store.algo_dict, "algo");
  check_ids(store.profile_id, store.profile_dict, "profile");
  check_ids(store.sort_id, store.sort_dict, "sort");
  check_ids(store.policy_id, store.policy_dict, "policy");
  std::uint64_t running = 0;
  for (std::uint64_t row = 0; row < rows; ++row) {
    if (store.samples_offset[row] != running) {
      bad("section CELLS samples offsets do not tile the arena (cell " +
          std::to_string(store.index[row]) + ")");
    }
    running += store.completed[row];
  }
  if (running != store.samples.size()) {
    bad("section SAMPLES carries " + std::to_string(store.samples.size()) +
        " samples but cells claim " + std::to_string(running));
  }
  return store;
}

CellStore load_store_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw util::IoError("cannot open report: " + path);
  const std::streamoff size = is.tellg();
  if (size < 0) throw util::IoError("cannot read report: " + path);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  is.seekg(0);
  is.read(bytes.data(), size);
  if (is.gcount() != size) {
    throw util::IoError("cannot read report: " + path);
  }
  return load_store(bytes);
}

bool is_binary_report_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[sizeof(kBinaryReportMagic)] = {};
  is.read(magic, sizeof(magic));
  return is.gcount() == sizeof(magic) &&
         std::memcmp(magic, kBinaryReportMagic, sizeof(magic)) == 0;
}

}  // namespace cadapt::report
