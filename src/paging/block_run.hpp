// Compressed block-run traces: record once, replay many (docs/PERF.md,
// "Paging fast path").
//
// A deterministic algorithm whose access stream does not depend on the
// machine's paging state (every cache-oblivious kernel in src/algos —
// but NOT adaptive_merge_sort, which queries current_box_size()) touches
// the same block sequence on every trial of a Monte-Carlo cell. Running
// it once through a BlockRunRecorder captures that sequence as
// coalesced BlockRun{block, count} stretches; replay_into() then drives
// any number of machines (one per sampled profile) through
// Machine::access_run at O(runs) cost — no algorithm re-execution, no
// per-word dispatch.
//
// Bit-identity contract: the replayed machine sees the exact block
// sequence of the original run, so every counter a block-granular
// machine exposes (misses, boxes, accesses, cache stats) matches a
// direct simulation exactly; tests/test_paging_fast.cpp proves this
// across thread pools 1/2/8. Replay addresses the first word of each
// block — only word-granular observers (TraceRecorder) can tell.
#pragma once

#include <cstdint>
#include <vector>

#include "paging/machine.hpp"

namespace cadapt::paging {

/// `count` consecutive accesses, all inside block `block`.
struct BlockRun {
  BlockId block = 0;
  std::uint64_t count = 0;

  friend bool operator==(const BlockRun&, const BlockRun&) = default;
};

/// A coalesced block-access trace. push() merges adjacent runs of the
/// same block, so the stored form is canonical: no two neighboring runs
/// share a block and every count is >= 1.
class BlockRunTrace {
 public:
  BlockRunTrace() = default;
  explicit BlockRunTrace(std::uint64_t block_size)
      : block_size_(block_size) {}

  void push(BlockId block, std::uint64_t count);

  const std::vector<BlockRun>& runs() const { return runs_; }
  std::uint64_t accesses() const { return accesses_; }
  /// Block size of the recording machine; 0 = unspecified.
  std::uint64_t block_size() const { return block_size_; }

  /// One entry per run of the replay index that CaMachine::replay_trace
  /// consumes: prev1 = 1 + index of the nearest earlier run touching the
  /// same block, or 0 if there is none — so run i touches a block unseen
  /// since run p began iff steps[i].prev1 <= p. count mirrors the run's
  /// access count. Packed to 8 bytes because the replay walk is
  /// memory-bound: real traces coalesce poorly (block-alternating merge
  /// and matrix streams have mean run length < 2), so the walk streams
  /// the whole index once per trial.
  struct ReplayStep {
    std::uint32_t prev1;
    std::uint32_t count;
  };

  /// Build the replay index: one pass, done once per trace
  /// (BlockRunRecorder::take finalizes it); afterwards any number of
  /// threads replay off the shared read-only index. push() invalidates
  /// it. Traces the packed form cannot represent (>= 2^32 - 1 runs, or a
  /// single run of >= 2^32 accesses) are left unindexed and replay
  /// through the generic per-run path.
  void ensure_replay_index();
  bool has_replay_index() const {
    return !runs_.empty() && steps_.size() == runs_.size();
  }
  const std::vector<ReplayStep>& replay_steps() const { return steps_; }

  /// Drive `machine` through the trace: exactly equivalent (block-wise)
  /// to re-running the recorded algorithm against it. Checks the block
  /// sizes match when the trace carries one.
  void replay_into(Machine& machine) const;

  /// The expanded per-access block stream (tests, sched traces).
  std::vector<BlockId> expand() const;

 private:
  std::uint64_t block_size_ = 0;
  std::uint64_t accesses_ = 0;
  std::vector<BlockRun> runs_;
  std::vector<ReplayStep> steps_;
};

/// A Machine that captures the coalesced block-run stream of whatever is
/// run against it (no paging simulated; misses() reports 0). Repeat
/// accesses ride the base-class shortcut, so capturing costs O(block
/// changes), and run lengths are recovered exactly from the access
/// counter — the recorder works identically on the per-access path.
class BlockRunRecorder final : public Machine {
 public:
  explicit BlockRunRecorder(std::uint64_t block_size)
      : Machine(block_size), trace_(block_size) {}

  std::uint64_t misses() const override { return 0; }

  /// Finalize the pending run and move the trace out. The recorder is
  /// spent afterwards (recording into it again is undefined).
  BlockRunTrace take();

 protected:
  void access_cold(WordAddr, BlockId block) override;

 private:
  BlockRunTrace trace_;
  BlockId run_block_ = 0;
  std::uint64_t run_start_ = 0;  ///< accesses() before the open run began
  bool have_run_ = false;
};

}  // namespace cadapt::paging
