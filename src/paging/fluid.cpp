#include "paging/fluid.hpp"

#include <utility>

#include "util/check.hpp"

namespace cadapt::paging {

FluidCaMachine::FluidCaMachine(MemoryProfileFn profile,
                               std::uint64_t block_size)
    : Machine(block_size), profile_(std::move(profile)), cache_(0) {
  CADAPT_CHECK(profile_ != nullptr);
  const std::uint64_t initial = profile_(0);
  CADAPT_CHECK_MSG(initial >= 1, "memory profile must stay >= 1 block");
  cache_.set_capacity(initial);
}

FluidCaMachine::FluidCaMachine(std::vector<std::uint64_t> profile,
                               std::uint64_t block_size)
    : FluidCaMachine(
          [p = std::move(profile)](std::uint64_t t) -> std::uint64_t {
            // An empty profile yields 0, which the capacity check rejects
            // with a clear message.
            return p.empty() ? 0 : p[t % p.size()];
          },
          block_size) {}

void FluidCaMachine::access_cold(WordAddr, BlockId block) {
  if (cache_.access(block)) {
    mark_hot(block);  // MRU: stays resident until at least the next miss
    return;
  }
  clear_hot();  // the capacity check below can throw mid-access
  ++misses_;
  const std::uint64_t capacity = profile_(misses_);
  CADAPT_CHECK_MSG(capacity >= 1, "memory profile must stay >= 1 block");
  // Shrinking evicts from the LRU end and capacity stays >= 1, so the
  // block just loaded (the MRU) survives this resize.
  cache_.set_capacity(capacity);
  mark_hot(block);
}

}  // namespace cadapt::paging
