#include "paging/policy.hpp"

#include <charconv>

#include "paging/arc_cache.hpp"
#include "paging/assoc_cache.hpp"
#include "paging/car_cache.hpp"
#include "paging/clock_cache.hpp"
#include "util/check.hpp"

namespace cadapt::paging {

namespace {

/// LruCache behind the CachePolicy interface. The adapter's own stats_
/// mirrors the wrapped cache's counters so stats() stays a reference to
/// the base-class member like every other policy.
class LruPolicy final : public CachePolicy {
 public:
  explicit LruPolicy(std::uint64_t capacity_blocks) : cache_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override {
    const LruCache::AccessResult r = cache_.access_tracking(block);
    stats_ = cache_.stats();
    return r;
  }
  void set_capacity(std::uint64_t capacity_blocks) override {
    cache_.set_capacity(capacity_blocks);
    stats_ = cache_.stats();
  }
  void clear() override { cache_.clear(); }
  std::uint64_t capacity() const override { return cache_.capacity(); }
  std::uint64_t size() const override { return cache_.size(); }
  bool contains(BlockId block) const override {
    return cache_.contains(block);
  }

 private:
  LruCache cache_;
};

}  // namespace

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kClock: return "clock";
    case PolicyKind::kArc: return "arc";
    case PolicyKind::kCar: return "car";
    case PolicyKind::kLruAssoc: return "assoc";
  }
  return "?";
}

std::string PolicySpec::token() const {
  if (kind == PolicyKind::kLruAssoc) {
    return std::string("assoc:") + std::to_string(ways);
  }
  return policy_kind_name(kind);
}

PolicySpec parse_policy_token(const std::string& token) {
  PolicySpec spec;
  if (token == "lru") {
    spec.kind = PolicyKind::kLru;
  } else if (token == "clock") {
    spec.kind = PolicyKind::kClock;
  } else if (token == "arc") {
    spec.kind = PolicyKind::kArc;
  } else if (token == "car") {
    spec.kind = PolicyKind::kCar;
  } else if (token.rfind("assoc:", 0) == 0) {
    spec.kind = PolicyKind::kLruAssoc;
    const std::string arg = token.substr(6);
    std::uint64_t ways = 0;
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), ways);
    if (ec != std::errc() || ptr != arg.data() + arg.size() || ways == 0) {
      throw util::ParseError("policy '" + token +
                             "': assoc ways must be an integer >= 1");
    }
    spec.ways = ways;
  } else {
    throw util::ParseError("unknown policy '" + token +
                           "' (expected lru, clock, arc, car, or assoc:W)");
  }
  return spec;
}

std::unique_ptr<CachePolicy> make_policy_cache(const PolicySpec& spec,
                                               std::uint64_t capacity_blocks) {
  switch (spec.kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>(capacity_blocks);
    case PolicyKind::kClock:
      return std::make_unique<ClockCache>(capacity_blocks);
    case PolicyKind::kArc:
      return std::make_unique<ArcCache>(capacity_blocks);
    case PolicyKind::kCar:
      return std::make_unique<CarCache>(capacity_blocks);
    case PolicyKind::kLruAssoc:
      CADAPT_CHECK(spec.ways >= 1);
      return std::make_unique<AssocLruCache>(capacity_blocks, spec.ways);
  }
  throw util::CheckError("unreachable policy kind");
}

std::uint64_t CaConfig::tier1_capacity(std::uint64_t box) const {
  // (box / den) * num + ((box % den) * num) / den == floor(box*num/den)
  // without the intermediate overflow of box * num.
  const std::uint64_t scaled =
      (box / tier1_den) * tier1_num + ((box % tier1_den) * tier1_num) / tier1_den;
  return scaled == 0 ? 1 : scaled;
}

void CaConfig::validate() const {
  CADAPT_CHECK_MSG(tier1_den >= 1 && tier1_num >= 1,
                   "tier-1 share must have num, den >= 1");
  CADAPT_CHECK_MSG(tier1_num <= tier1_den,
                   "tier-1 share must be <= 1 (num <= den)");
  CADAPT_CHECK_MSG(tier2_hit_cost >= 1, "tier-2 hit cost must be >= 1");
  CADAPT_CHECK_MSG(tier2_miss_cost >= tier2_hit_cost,
                   "tier-2 miss cost must be >= the hit cost");
  if (policy.kind == PolicyKind::kLruAssoc) {
    CADAPT_CHECK_MSG(policy.ways >= 1, "assoc policy needs ways >= 1");
  } else {
    CADAPT_CHECK_MSG(policy.ways == 0,
                     "ways is only meaningful for the assoc policy");
  }
}

}  // namespace cadapt::paging
