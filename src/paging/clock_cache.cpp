#include "paging/clock_cache.hpp"

namespace cadapt::paging {

void ClockCache::sweep_to_victim() {
  while (frames_[hand_].ref) {
    frames_[hand_].ref = false;
    hand_ = (hand_ + 1) % frames_.size();
  }
}

LruCache::AccessResult ClockCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const auto it = index_.find(block);
  if (it != index_.end()) {
    frames_[it->second].ref = true;  // second chance; no movement
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  ++stats_.misses;
  if (capacity_ == 0) return r;
  if (frames_.size() < capacity_) {
    index_.emplace(block, frames_.size());
    frames_.push_back({block, false});
    return r;
  }
  sweep_to_victim();
  r.evicted = true;
  r.victim = frames_[hand_].key;
  ++stats_.evictions;
  index_.erase(r.victim);
  frames_[hand_] = {block, false};
  index_.emplace(block, hand_);
  hand_ = (hand_ + 1) % frames_.size();
  return r;
}

void ClockCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  while (frames_.size() > capacity_) {
    sweep_to_victim();
    const std::size_t slot = hand_;
    index_.erase(frames_[slot].key);
    frames_.erase(frames_.begin() + static_cast<std::ptrdiff_t>(slot));
    ++stats_.evictions;
    // Removing a frame shifts every later slot down by one; the hand now
    // points at the frame that followed the victim (wrapping if needed).
    for (auto& [key, s] : index_) {
      if (s > slot) --s;
    }
    if (hand_ >= frames_.size()) hand_ = 0;
  }
}

void ClockCache::clear() {
  frames_.clear();
  index_.clear();
  hand_ = 0;
}

}  // namespace cadapt::paging
