// The "fluid" cache-adaptive machine: the raw model of Bender et al. [6]
// before the square-profile reduction.
//
// The memory profile m(t) gives the cache capacity (in blocks) after the
// t-th I/O; the cache is NOT cleared when the size changes — on a shrink,
// LRU blocks are evicted until the new capacity is met. Comparing this
// machine against paging::CaMachine driven by the inner square profile of
// the same m(t) empirically validates the square-profile reduction the
// whole analysis rests on (Definition 1 and the w.l.o.g. discussion
// in §2 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "paging/lru_cache.hpp"
#include "paging/machine.hpp"

namespace cadapt::paging {

/// Capacity after the t-th I/O (t counts misses, 0-based).
using MemoryProfileFn = std::function<std::uint64_t(std::uint64_t)>;

class FluidCaMachine final : public Machine {
 public:
  FluidCaMachine(MemoryProfileFn profile, std::uint64_t block_size);

  /// Convenience: a materialized profile, repeated cyclically.
  FluidCaMachine(std::vector<std::uint64_t> profile, std::uint64_t block_size);

  std::uint64_t misses() const override { return misses_; }
  std::uint64_t current_capacity() const { return cache_.capacity(); }

 protected:
  void access_cold(WordAddr addr, BlockId block) override;

 private:
  MemoryProfileFn profile_;
  LruCache cache_;
  std::uint64_t misses_ = 0;
};

}  // namespace cadapt::paging
