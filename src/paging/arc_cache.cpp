#include "paging/arc_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cadapt::paging {

std::list<BlockId>& ArcCache::list_of(Where where) {
  switch (where) {
    case Where::kT1: return t1_;
    case Where::kT2: return t2_;
    case Where::kB1: return b1_;
    case Where::kB2: return b2_;
  }
  throw util::CheckError("unreachable ARC list");
}

bool ArcCache::contains(BlockId block) const {
  const auto it = map_.find(block);
  return it != map_.end() &&
         (it->second.where == Where::kT1 || it->second.where == Where::kT2);
}

void ArcCache::replace(bool in_b2, LruCache::AccessResult* r) {
  const bool from_t1 =
      !t1_.empty() && (t1_.size() > p_ || (in_b2 && t1_.size() == p_));
  std::list<BlockId>& from = from_t1 ? t1_ : (!t2_.empty() ? t2_ : t1_);
  if (from.empty()) return;  // no residents: nothing to demote
  std::list<BlockId>& ghost = (&from == &t1_) ? b1_ : b2_;
  const Where where = (&from == &t1_) ? Where::kB1 : Where::kB2;
  const BlockId victim = from.back();
  from.pop_back();
  ghost.push_front(victim);
  map_[victim] = {where, ghost.begin()};
  ++stats_.evictions;
  if (r != nullptr && !r->evicted) {
    r->evicted = true;
    r->victim = victim;
  }
}

void ArcCache::drop_lru(Where ghost) {
  std::list<BlockId>& list = list_of(ghost);
  CADAPT_CHECK(!list.empty());
  map_.erase(list.back());
  list.pop_back();
}

LruCache::AccessResult ArcCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const auto it = map_.find(block);
  const bool known = it != map_.end();
  if (known &&
      (it->second.where == Where::kT1 || it->second.where == Where::kT2)) {
    // Case I: resident hit — promote to MRU of T2.
    ++stats_.hits;
    r.hit = true;
    list_of(it->second.where).erase(it->second.it);
    t2_.push_front(block);
    it->second = {Where::kT2, t2_.begin()};
    return r;
  }
  ++stats_.misses;
  if (capacity_ == 0) return r;
  if (known && it->second.where == Where::kB1) {
    // Case II: ghost hit in B1 — favor recency.
    const std::uint64_t delta =
        std::max<std::uint64_t>(1, b2_.size() / b1_.size());
    p_ = std::min(capacity_, p_ + delta);
    replace(/*in_b2=*/false, &r);
    b1_.erase(map_.at(block).it);
    t2_.push_front(block);
    map_[block] = {Where::kT2, t2_.begin()};
    return r;
  }
  if (known && it->second.where == Where::kB2) {
    // Case III: ghost hit in B2 — favor frequency.
    const std::uint64_t delta =
        std::max<std::uint64_t>(1, b1_.size() / b2_.size());
    p_ = p_ >= delta ? p_ - delta : 0;
    replace(/*in_b2=*/true, &r);
    b2_.erase(map_.at(block).it);
    t2_.push_front(block);
    map_[block] = {Where::kT2, t2_.begin()};
    return r;
  }
  // Case IV: a brand-new block.
  const std::uint64_t l1 = t1_.size() + b1_.size();
  if (l1 == capacity_) {
    if (!b1_.empty()) {
      drop_lru(Where::kB1);
      replace(/*in_b2=*/false, &r);
    } else {
      // B1 empty, T1 full: drop T1's LRU entirely (no ghost).
      const BlockId victim = t1_.back();
      t1_.pop_back();
      map_.erase(victim);
      ++stats_.evictions;
      r.evicted = true;
      r.victim = victim;
    }
  } else {
    const std::uint64_t total =
        t1_.size() + t2_.size() + b1_.size() + b2_.size();
    if (total >= capacity_) {
      if (total == 2 * capacity_) {
        drop_lru(b2_.empty() ? Where::kB1 : Where::kB2);
      }
      replace(/*in_b2=*/false, &r);
    }
  }
  t1_.push_front(block);
  map_[block] = {Where::kT1, t1_.begin()};
  return r;
}

void ArcCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  if (capacity_ == 0) {
    // Shrinking to nothing evicts every resident (counted, like
    // LruCache::set_capacity(0)) and forgets all history.
    stats_.evictions += t1_.size() + t2_.size();
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    map_.clear();
    p_ = 0;
    return;
  }
  p_ = std::min(p_, capacity_);
  while (t1_.size() + t2_.size() > capacity_) replace(false, nullptr);
  while (t1_.size() + b1_.size() > capacity_ && !b1_.empty()) {
    drop_lru(Where::kB1);
  }
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() >
         2 * capacity_) {
    drop_lru(b2_.empty() ? Where::kB1 : Where::kB2);
  }
}

void ArcCache::clear() {
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  map_.clear();
  p_ = 0;
}

}  // namespace cadapt::paging
