// ARC (Megiddo–Modha adaptive replacement): resident lists T1 (seen
// once) and T2 (seen at least twice) plus ghost lists B1/B2 remembering
// recently evicted keys; the adaptation target p steers REPLACE between
// recency (T1) and frequency (T2) on ghost hits, with the paper's
// integer max(1, |B_other|/|B_hit|) step. Spec notes pinned by the
// differential suite (docs/PAGING.md):
//   - only resident departures (T1/T2 -> B1/B2, or the full-T1 drop in
//     case IV-A) count as evictions and report a victim; ghost drops do
//     not;
//   - capacity 0 is a pure miss counter (no residents, no ghosts);
//   - set_capacity clamps p, evicts residents via REPLACE, and trims
//     ghosts back to the |T1|+|B1| <= c and |L| <= 2c invariants;
//   - clear() drops all four lists and resets p to 0.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "paging/policy.hpp"

namespace cadapt::paging {

class ArcCache final : public CachePolicy {
 public:
  explicit ArcCache(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return t1_.size() + t2_.size(); }
  bool contains(BlockId block) const override;

  /// The adaptation target (|T1|'s preferred size); exposed for the
  /// known-answer tests.
  std::uint64_t target_p() const { return p_; }

 private:
  enum class Where : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Loc {
    Where where;
    std::list<BlockId>::iterator it;
  };

  std::list<BlockId>& list_of(Where where);
  /// The REPLACE routine: demote one resident LRU block to its ghost
  /// list, counting the eviction (and reporting it via `r` if non-null
  /// and unclaimed). in_b2 biases the tie at |T1| == p toward T1.
  void replace(bool in_b2, LruCache::AccessResult* r);
  void drop_lru(Where ghost);

  std::uint64_t capacity_;
  std::uint64_t p_ = 0;
  std::list<BlockId> t1_, t2_, b1_, b2_;  ///< front = MRU, back = LRU
  std::unordered_map<BlockId, Loc> map_;
};

}  // namespace cadapt::paging
