// The replacement-policy zoo (docs/PAGING.md): CLOCK, ARC, CAR, and a
// limited-associativity LRU behind one observable cache contract — the
// same AccessResult/Stats/clear/resize surface as LruCache — selectable
// on CaMachine/DamMachine construction via a PolicySpec. Every policy
// ships with a deliberately naive oracle simulator
// (paging/reference_policies.hpp) and a randomized differential suite
// (tests/test_paging_policies.cpp) holding the two together, the same
// way PR 5 established the flat LruCache against reference_lru.
//
// CaConfig additionally generalizes the cache-adaptive machine to a
// two-tier memory (DRAM/SSD-like): tier 1 follows the (possibly scaled)
// square profile and is cleared at box boundaries; tier 2 is a fixed-
// size persistent cache that absorbs tier-1 spill, with asymmetric
// hit/miss costs charged against the box budget. The default CaConfig
// is bit-for-bit the historical Definition-1 machine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "paging/lru_cache.hpp"

namespace cadapt::paging {

enum class PolicyKind : std::uint8_t {
  kLru,       ///< full LRU (the historical default; LruCache fast path)
  kClock,     ///< one-bit second chance over a circular frame buffer
  kArc,       ///< Megiddo–Modha adaptive replacement (T1/T2 + ghosts)
  kCar,       ///< Bansal–Modha CLOCK with adaptive replacement
  kLruAssoc,  ///< set-associative LRU: block % S sets of <= W ways
};

/// Base spelling of the kind ("lru", "clock", "arc", "car", "assoc").
const char* policy_kind_name(PolicyKind kind);

/// A parsed policy token: lru | clock | arc | car | assoc:W (W >= 1
/// ways; assoc:1 is direct-mapped). token() renders the canonical
/// spelling used in manifests, reports, and checkpoint fingerprints.
struct PolicySpec {
  PolicyKind kind = PolicyKind::kLru;
  std::uint64_t ways = 0;  ///< kLruAssoc only; 0 otherwise

  std::string token() const;
  bool is_lru() const { return kind == PolicyKind::kLru; }

  friend bool operator==(const PolicySpec&, const PolicySpec&) = default;
};

/// Parse "lru" | "clock" | "arc" | "car" | "assoc:W". Throws
/// util::ParseError on anything else (the manifest and CLI layers
/// re-wrap with their own context).
PolicySpec parse_policy_token(const std::string& token);

/// The observable cache contract every policy implements — identical to
/// LruCache's surface so machines and differential tests are generic
/// over the policy. Semantics shared by all implementations:
///   - access_tracking: hit flag + the evicted resident block, if any
///     (ghost-list drops are not evictions; at most one victim per
///     access);
///   - set_capacity: shrinking evicts under pressure (counted in
///     Stats::evictions), capacity 0 retains nothing;
///   - clear(): a model reset — drops everything (including any ghost
///     or adaptation state) without counting evictions.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  bool access(BlockId block) { return access_tracking(block).hit; }
  virtual LruCache::AccessResult access_tracking(BlockId block) = 0;
  virtual void set_capacity(std::uint64_t capacity_blocks) = 0;
  virtual void clear() = 0;
  virtual std::uint64_t capacity() const = 0;
  virtual std::uint64_t size() const = 0;
  virtual bool contains(BlockId block) const = 0;

  const LruCache::Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 protected:
  LruCache::Stats stats_;
};

/// Build a policy cache. LRU wraps the production LruCache; the other
/// kinds construct their dedicated implementations.
std::unique_ptr<CachePolicy> make_policy_cache(const PolicySpec& spec,
                                               std::uint64_t capacity_blocks);

/// Construction-time configuration of a CaMachine beyond Definition 1.
/// The default (LRU, full share, no tier 2) selects the historical
/// plain-LRU fast path — counter-for-counter the pre-zoo machine.
struct CaConfig {
  PolicySpec policy;

  /// Tier-1 capacity share: a box of size s installs a tier-1 cache of
  /// max(1, floor(s * num / den)) blocks (num <= den). With the full
  /// share (1/1) and a single tier, capacity equals the miss budget and
  /// the machine never evicts under pressure — which is why replacement
  /// policy is only observable below full share or with two tiers.
  std::uint64_t tier1_num = 1;
  std::uint64_t tier1_den = 1;

  /// Tier 2: a fixed-capacity cache (same policy as tier 1) that
  /// persists across box boundaries and absorbs tier-1 eviction spill.
  /// 0 = single-tier (the historical machine). A tier-1 miss consults
  /// tier 2 and charges tier2_hit_cost or tier2_miss_cost box-budget
  /// units (hits in tier 1 stay free); single-tier misses cost 1.
  std::uint64_t tier2_blocks = 0;
  std::uint64_t tier2_hit_cost = 1;
  std::uint64_t tier2_miss_cost = 4;

  bool two_tier() const { return tier2_blocks != 0; }
  /// True iff this config is the historical machine (plain LRU, full
  /// share, single tier) — the LruCache fast path and the replay_trace
  /// fast walk are valid exactly then.
  bool plain_lru() const {
    return policy.is_lru() && !two_tier() && tier1_num == tier1_den;
  }
  /// Tier-1 blocks installed for a box of size `box` (>= 1).
  std::uint64_t tier1_capacity(std::uint64_t box) const;
  /// Throws util::CheckError on an inconsistent config (num > den,
  /// zero denominators/costs, miss cost below hit cost, assoc without
  /// ways, ways without assoc).
  void validate() const;

  friend bool operator==(const CaConfig&, const CaConfig&) = default;
};

}  // namespace cadapt::paging
