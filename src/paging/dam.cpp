#include "paging/dam.hpp"

#include "util/check.hpp"

namespace cadapt::paging {

DamMachine::DamMachine(std::uint64_t cache_blocks, std::uint64_t block_size)
    : cache_(cache_blocks), block_size_(block_size) {
  CADAPT_CHECK(block_size >= 1);
  CADAPT_CHECK(cache_blocks >= 1);
}

void DamMachine::access(WordAddr addr) {
  ++accesses_;
  if (!cache_.access(addr / block_size_)) ++misses_;
}

}  // namespace cadapt::paging
