#include "paging/dam.hpp"

#include "util/check.hpp"

namespace cadapt::paging {

DamMachine::DamMachine(std::uint64_t cache_blocks, std::uint64_t block_size)
    : Machine(block_size), cache_(cache_blocks) {
  CADAPT_CHECK(cache_blocks >= 1);
}

DamMachine::DamMachine(std::uint64_t cache_blocks, std::uint64_t block_size,
                       const PolicySpec& policy)
    : Machine(block_size), cache_(cache_blocks) {
  CADAPT_CHECK(cache_blocks >= 1);
  if (!policy.is_lru()) policy_ = make_policy_cache(policy, cache_blocks);
}

}  // namespace cadapt::paging
