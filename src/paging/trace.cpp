#include "paging/trace.hpp"

#include <limits>
#include <set>
#include <unordered_map>

#include "paging/lru_cache.hpp"
#include "util/check.hpp"

namespace cadapt::paging {

std::vector<BlockId> TraceRecorder::block_trace() const {
  std::vector<BlockId> blocks;
  blocks.reserve(trace_.size());
  for (const WordAddr addr : trace_) blocks.push_back(block_of(addr));
  return blocks;
}

void replay(std::span<const WordAddr> trace, Machine& machine) {
  for (const WordAddr addr : trace) machine.access(addr);
}

std::uint64_t lru_misses(std::span<const BlockId> blocks,
                         std::uint64_t capacity) {
  LruCache cache(capacity);
  std::uint64_t misses = 0;
  for (const BlockId b : blocks)
    if (!cache.access(b)) ++misses;
  return misses;
}

std::uint64_t opt_misses(std::span<const BlockId> blocks,
                         std::uint64_t capacity) {
  CADAPT_CHECK(capacity >= 1);
  const std::size_t n = blocks.size();
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  // next_use[i]: index of the next access to blocks[i] after i, or kNever.
  std::vector<std::size_t> next_use(n, kNever);
  {
    std::unordered_map<BlockId, std::size_t> last_seen;
    for (std::size_t i = n; i-- > 0;) {
      const auto it = last_seen.find(blocks[i]);
      if (it != last_seen.end()) next_use[i] = it->second;
      last_seen[blocks[i]] = i;
    }
  }

  // Resident set ordered by next use, furthest first; Belady evicts the
  // block whose next use is furthest in the future.
  std::set<std::pair<std::size_t, BlockId>, std::greater<>> by_next_use;
  std::unordered_map<BlockId, std::size_t> resident;  // block -> next use
  std::uint64_t misses = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const BlockId b = blocks[i];
    const auto it = resident.find(b);
    if (it != resident.end()) {
      // Hit: refresh the block's next-use key.
      by_next_use.erase({it->second, b});
    } else {
      ++misses;
      if (resident.size() == capacity) {
        const auto victim = *by_next_use.begin();
        by_next_use.erase(by_next_use.begin());
        resident.erase(victim.second);
      }
    }
    resident[b] = next_use[i];
    by_next_use.insert({next_use[i], b});
  }
  return misses;
}

}  // namespace cadapt::paging
