// Limited-associativity LRU: capacity C split into S = ceil(C / W)
// sets of at most W ways, block b mapped to set b % S, LRU within the
// set. The per-set capacities base + (i < C mod S ? 1 : 0) with
// base = floor(C / S) sum to C and never exceed W, so the cache holds
// exactly C blocks at full occupancy while conflict misses make the
// policy observably non-LRU (docs/PAGING.md). W >= C degenerates to a
// single fully-associative LRU set. Spec notes pinned by the
// differential suite:
//   - the victim on a conflict miss is the set's LRU resident, even if
//     globally recent;
//   - set_capacity recomputes the geometry and redistributes residents
//     in global MRU-first order; blocks whose new set is full are
//     dropped as counted evictions (no victim report, matching
//     LruCache::set_capacity's shrink accounting);
//   - a global recency list is maintained purely for that MRU-first
//     redistribution walk.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "paging/policy.hpp"

namespace cadapt::paging {

class AssocLruCache final : public CachePolicy {
 public:
  AssocLruCache(std::uint64_t capacity_blocks, std::uint64_t ways);

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return map_.size(); }
  bool contains(BlockId block) const override {
    return map_.find(block) != map_.end();
  }

  std::uint64_t ways() const { return ways_; }
  std::uint64_t num_sets() const { return sets_.size(); }

 private:
  struct Entry {
    std::list<BlockId>::iterator global_it;
    std::list<BlockId>::iterator set_it;
    std::size_t set;
  };

  void rebuild_geometry();
  std::size_t set_of(BlockId block) const {
    return static_cast<std::size_t>(block % sets_.size());
  }
  std::uint64_t set_cap(std::size_t set) const {
    return base_ + (set < extra_ ? 1 : 0);
  }

  std::uint64_t capacity_;
  std::uint64_t ways_;
  std::uint64_t base_ = 0;   ///< floor(capacity / S)
  std::size_t extra_ = 0;    ///< capacity mod S (first sets get +1)
  std::list<BlockId> global_;             ///< front = MRU
  std::vector<std::list<BlockId>> sets_;  ///< per-set, front = MRU
  std::unordered_map<BlockId, Entry> map_;
};

}  // namespace cadapt::paging
