#include "paging/car_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cadapt::paging {

bool CarCache::contains(BlockId block) const {
  const auto it = map_.find(block);
  return it != map_.end() &&
         (it->second.where == Where::kT1 || it->second.where == Where::kT2);
}

void CarCache::replace(LruCache::AccessResult* r) {
  while (true) {
    if (t1_.empty() && t2_.empty()) return;  // no residents to demote
    const bool from_t1 =
        !t1_.empty() && t1_.size() >= std::max<std::uint64_t>(1, p_);
    if (from_t1) {
      Frame head = t1_.front();
      t1_.pop_front();
      if (!head.ref) {
        b1_.push_front(head.key);
        map_[head.key] = {Where::kB1, {}, b1_.begin()};
        ++stats_.evictions;
        if (r != nullptr && !r->evicted) {
          r->evicted = true;
          r->victim = head.key;
        }
        return;
      }
      head.ref = false;  // second chance: move to T2's tail
      t2_.push_back(head);
      map_[head.key] = {Where::kT2, std::prev(t2_.end()), {}};
    } else {
      Frame head = t2_.front();
      t2_.pop_front();
      if (!head.ref) {
        b2_.push_front(head.key);
        map_[head.key] = {Where::kB2, {}, b2_.begin()};
        ++stats_.evictions;
        if (r != nullptr && !r->evicted) {
          r->evicted = true;
          r->victim = head.key;
        }
        return;
      }
      head.ref = false;  // recycle within T2
      t2_.push_back(head);
      map_[head.key] = {Where::kT2, std::prev(t2_.end()), {}};
    }
  }
}

void CarCache::drop_ghost_lru(bool prefer_b2) {
  std::list<BlockId>& ghost = (prefer_b2 && !b2_.empty()) ? b2_ : b1_;
  CADAPT_CHECK(!ghost.empty());
  map_.erase(ghost.back());
  ghost.pop_back();
}

LruCache::AccessResult CarCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const auto it = map_.find(block);
  const bool known = it != map_.end();
  if (known &&
      (it->second.where == Where::kT1 || it->second.where == Where::kT2)) {
    it->second.fit->ref = true;  // cache hit: set the bit, no movement
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  ++stats_.misses;
  if (capacity_ == 0) return r;
  const bool in_b1 = known && it->second.where == Where::kB1;
  const bool in_b2 = known && it->second.where == Where::kB2;
  if (t1_.size() + t2_.size() == capacity_) replace(&r);
  if (!in_b1 && !in_b2) {
    // Brand-new block: trim history before taking a T1 frame.
    while (!b1_.empty() && t1_.size() + b1_.size() >= capacity_) {
      drop_ghost_lru(/*prefer_b2=*/false);
    }
    while ((!b1_.empty() || !b2_.empty()) && total() >= 2 * capacity_) {
      drop_ghost_lru(/*prefer_b2=*/true);
    }
    t1_.push_back({block, false});
    map_[block] = {Where::kT1, std::prev(t1_.end()), {}};
    return r;
  }
  if (in_b1) {
    const std::uint64_t delta =
        std::max<std::uint64_t>(1, b2_.size() / b1_.size());
    p_ = std::min(capacity_, p_ + delta);
    b1_.erase(map_.at(block).git);
  } else {
    const std::uint64_t delta =
        std::max<std::uint64_t>(1, b1_.size() / b2_.size());
    p_ = p_ >= delta ? p_ - delta : 0;
    b2_.erase(map_.at(block).git);
  }
  t2_.push_back({block, false});
  map_[block] = {Where::kT2, std::prev(t2_.end()), {}};
  return r;
}

void CarCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  if (capacity_ == 0) {
    stats_.evictions += t1_.size() + t2_.size();
    clear();
    return;
  }
  p_ = std::min(p_, capacity_);
  while (t1_.size() + t2_.size() > capacity_) replace(nullptr);
  while (!b1_.empty() && t1_.size() + b1_.size() > capacity_) {
    drop_ghost_lru(/*prefer_b2=*/false);
  }
  while ((!b1_.empty() || !b2_.empty()) && total() > 2 * capacity_) {
    drop_ghost_lru(/*prefer_b2=*/true);
  }
}

void CarCache::clear() {
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  map_.clear();
  p_ = 0;
}

}  // namespace cadapt::paging
