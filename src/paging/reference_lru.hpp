// The reference paging stack: the original std::list +
// std::unordered_map LRU that LruCache replaced, and the original
// per-word cache-adaptive machine built on it (docs/PERF.md, "Paging
// fast path"). Kept verbatim — same API, same observable behavior — as
// the oracle for the differential suite in tests/test_paging_fast.cpp
// (randomized access/resize/clear schedules, identical hit flags,
// victims, sizes and Stats at every step; machine-level miss/box/stat
// identity) and as the honest "before" side of the committed
// BENCH_paging.json benchmarks. Production code links LruCache/
// CaMachine; nothing outside tests and bench should use these classes.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "paging/lru_cache.hpp"
#include "paging/machine.hpp"
#include "profile/box_source.hpp"

namespace cadapt::paging {

/// Node-based LRU set of block ids; behaviorally identical to LruCache.
class ReferenceLruCache {
 public:
  explicit ReferenceLruCache(std::uint64_t capacity_blocks);

  bool access(BlockId block) { return access_tracking(block).hit; }

  /// Same result/Stats types as LruCache so differential tests compare
  /// the two member-for-member.
  LruCache::AccessResult access_tracking(BlockId block);

  void set_capacity(std::uint64_t capacity_blocks);
  void clear();

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t size() const { return map_.size(); }
  bool contains(BlockId block) const { return map_.count(block) != 0; }

  const LruCache::Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void evict_to(std::uint64_t limit);

  std::uint64_t capacity_;
  LruCache::Stats stats_;
  std::list<BlockId> order_;  // front = most recently used
  std::unordered_map<BlockId, std::list<BlockId>::iterator> map_;
};

/// The pre-fast-path CaMachine, verbatim: every word access takes the
/// virtual dispatch into a ReferenceLruCache lookup — no hot-block
/// shortcut, no run batching (it never calls mark_hot). Semantically
/// identical to CaMachine by Definition 1; the differential suite
/// checks misses/boxes/accesses/stats against it access for access.
class ReferenceCaMachine final : public Machine {
 public:
  ReferenceCaMachine(std::unique_ptr<profile::BoxSource> source,
                     std::uint64_t block_size);

  std::uint64_t misses() const override { return misses_; }
  std::uint64_t boxes_started() const { return boxes_started_; }
  std::uint64_t current_box_size() const { return box_size_; }
  const LruCache::Stats& cache_stats() const { return cache_.stats(); }

 protected:
  void access_cold(WordAddr addr, BlockId block) override;

 private:
  void start_next_box();

  std::unique_ptr<profile::BoxSource> source_;
  ReferenceLruCache cache_;
  std::uint64_t misses_ = 0;
  std::uint64_t boxes_started_ = 0;
  std::uint64_t box_size_ = 0;
  std::uint64_t misses_in_box_ = 0;
};

}  // namespace cadapt::paging
