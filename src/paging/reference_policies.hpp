// Deliberately naive oracle simulators for the replacement-policy zoo,
// in the spirit of reference_lru.hpp: each policy re-implemented from
// its published description with flat vectors and linear scans — no
// index maps, no intrusive lists, no shared code with the production
// caches in clock_cache/arc_cache/car_cache/assoc_cache. The randomized
// differential suite (tests/test_paging_policies.cpp) holds each
// production policy to its oracle access for access: identical hit
// flags, victims, sizes, and Stats across seeded access/resize/clear
// schedules. Nothing outside tests should use these classes.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "paging/policy.hpp"

namespace cadapt::paging {

/// CLOCK over a plain vector in clock order; the hand is an index and
/// membership is a linear scan.
class ReferenceClockCache final : public CachePolicy {
 public:
  explicit ReferenceClockCache(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return frames_.size(); }
  bool contains(BlockId block) const override;

 private:
  void sweep();

  std::uint64_t capacity_;
  std::size_t hand_ = 0;
  std::vector<std::pair<BlockId, bool>> frames_;  ///< (key, ref bit)
};

/// ARC with the four lists as vectors (index 0 = MRU, back = LRU) and
/// linear membership scans.
class ReferenceArcCache final : public CachePolicy {
 public:
  explicit ReferenceArcCache(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return t1_.size() + t2_.size(); }
  bool contains(BlockId block) const override;

  std::uint64_t target_p() const { return p_; }

 private:
  void replace(bool in_b2, LruCache::AccessResult* r);

  std::uint64_t capacity_;
  std::uint64_t p_ = 0;
  std::vector<BlockId> t1_, t2_, b1_, b2_;  ///< index 0 = MRU
};

/// CAR with the resident clocks as vectors (index 0 = head / oldest,
/// push_back = tail) and the ghosts as MRU-first vectors.
class ReferenceCarCache final : public CachePolicy {
 public:
  explicit ReferenceCarCache(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return t1_.size() + t2_.size(); }
  bool contains(BlockId block) const override;

  std::uint64_t target_p() const { return p_; }

 private:
  struct Frame {
    BlockId key = 0;
    bool ref = false;
  };

  void replace(LruCache::AccessResult* r);
  std::uint64_t total() const {
    return t1_.size() + t2_.size() + b1_.size() + b2_.size();
  }

  std::uint64_t capacity_;
  std::uint64_t p_ = 0;
  std::vector<Frame> t1_, t2_;     ///< index 0 = clock head (oldest)
  std::vector<BlockId> b1_, b2_;   ///< index 0 = MRU
};

/// Set-associative LRU as a single MRU-first vector: the set geometry
/// is recomputed from (capacity, ways) on demand, occupancy is counted
/// by scanning, and the victim is the last (least recent) member of the
/// full set.
class ReferenceAssocLruCache final : public CachePolicy {
 public:
  ReferenceAssocLruCache(std::uint64_t capacity_blocks, std::uint64_t ways);

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override { order_.clear(); }
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return order_.size(); }
  bool contains(BlockId block) const override;

 private:
  std::uint64_t num_sets() const {
    return capacity_ == 0 ? 0 : (capacity_ + ways_ - 1) / ways_;
  }
  std::uint64_t set_cap(std::uint64_t set) const;

  std::uint64_t capacity_;
  std::uint64_t ways_;
  std::vector<BlockId> order_;  ///< index 0 = MRU
};

/// Build the oracle matching `spec` (LRU wraps ReferenceLruCache).
std::unique_ptr<CachePolicy> make_reference_policy(
    const PolicySpec& spec, std::uint64_t capacity_blocks);

}  // namespace cadapt::paging
