// The cache-adaptive machine (Definition 1 + paper conventions): the cache
// size follows a square profile. A box of size x means the cache holds x
// blocks for exactly x I/Os (misses); the cache is cleared at each box
// boundary (w.l.o.g. per the paging results underlying cache-adaptivity).
// Hits are free — only misses advance time.
//
// A CaConfig (paging/policy.hpp) generalizes this to the two-tier,
// policy-parameterized machine of docs/PAGING.md; the default config
// is the historical Definition-1 machine on its LruCache fast path.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "obs/recorder.hpp"
#include "paging/block_run.hpp"
#include "paging/lru_cache.hpp"
#include "paging/machine.hpp"
#include "paging/policy.hpp"
#include "profile/box_source.hpp"

namespace cadapt::paging {

/// Which path served the last replay_trace call (docs/PAGING.md): the
/// O(runs) fast walk, or the generic per-run replay with the reason the
/// walk was refused. kNone until replay_trace has been called.
enum class ReplayPath : std::uint8_t {
  kNone,               ///< replay_trace not called yet
  kFastWalk,           ///< Definition-1 fast walk
  kGenericConfig,      ///< non-LRU policy, scaled share, or two tiers
  kGenericRecorder,    ///< per-access recorder attached
  kGenericPerAccess,   ///< set_per_access(true)
  kGenericBoxHook,     ///< box hook must see real cache state
  kGenericUsedMachine, ///< machine already served accesses
  kGenericUnindexed,   ///< trace recorded without its replay index
};

const char* replay_path_name(ReplayPath path);

class CaMachine final : public Machine {
 public:
  /// Takes ownership of the box stream. The stream must supply a box
  /// whenever one is needed (use profile::CyclingSource for finite
  /// adversarial profiles); exhaustion mid-run is a checked error.
  /// An optional recorder tallies hits/misses/evictions bucketed by the
  /// size class (floor log2) of the box they landed in; it must outlive
  /// the machine. A non-null recorder forces the per-access reference
  /// path (set_per_access) so its per-access tallies stay byte-identical
  /// to the pre-fast-path behavior (docs/PERF.md, docs/OBSERVABILITY.md).
  ///
  /// `config` generalizes the machine beyond Definition 1 (docs/
  /// PAGING.md): a replacement policy other than LRU, a tier-1 capacity
  /// share below 1, and/or a fixed-size persistent tier 2 absorbing
  /// tier-1 spill with asymmetric hit/miss costs charged against the
  /// box budget. The default config is the historical machine bit for
  /// bit — same LruCache member, same code path.
  CaMachine(std::unique_ptr<profile::BoxSource> source,
            std::uint64_t block_size, bool record_boxes = true,
            obs::PagingRecorder* recorder = nullptr, CaConfig config = {});

  std::uint64_t misses() const override { return misses_; }

  /// Boxes started so far (the last one may be partially used).
  std::uint64_t boxes_started() const { return boxes_started_; }
  /// Misses served within the current box (< its size).
  std::uint64_t misses_in_current_box() const { return misses_in_box_; }
  std::uint64_t current_box_size() const { return box_size_; }
  /// Sizes of boxes started, if record_boxes was set. With a box-log cap
  /// (below) this is the most recent cap..2*cap boxes, oldest first.
  const std::vector<profile::BoxSize>& box_log() const { return box_log_; }
  /// Lifetime hit/miss/eviction counters of the underlying tier-1
  /// cache. Repeat hits resolved by the base-class shortcut never reach
  /// the cache, so they are folded back into `hits` here — the totals
  /// are identical to the per-access path by construction.
  LruCache::Stats cache_stats() const {
    LruCache::Stats stats = plain_ ? cache_.stats() : tier1_->stats();
    stats.hits += fast_hits() + replay_hits_;
    stats.misses += replay_misses_;
    stats.evictions += replay_evictions_;
    return stats;
  }
  /// Tier-2 cache counters (zero when single-tier). Spill inserts of
  /// tier-1 victims and demand fetches both land here; the per-access
  /// demand split is on the recorder's tier2() tally.
  LruCache::Stats tier2_stats() const {
    return tier2_ != nullptr ? tier2_->stats() : LruCache::Stats{};
  }
  const CaConfig& config() const { return config_; }

  /// Consume a recorded trace, exactly equivalent (counter for counter:
  /// accesses, misses, boxes, misses_in_current_box, cache_stats,
  /// box_log) to trace.replay_into(*this) — and through it to running
  /// the recorded algorithm directly. The fast walk exploits Definition
  /// 1: each box's cache is exactly its miss budget, so the CA machine
  /// never evicts under pressure and a box's misses are precisely the
  /// distinct blocks touched since it began. With the trace's
  /// previous-occurrence index that is one branch per run — no hash
  /// probe, no LRU update (docs/PERF.md, "Paging fast path"). Falls back
  /// to the generic per-run replay whenever exactness demands it: a
  /// non-default CaConfig (the walk's never-evict argument needs plain
  /// LRU at full share with one tier), a recorder or per-access mode
  /// (per-access observation), a box hook (fault injection must see
  /// real cache state), prior accesses, or a trace without its index.
  /// last_replay_path() reports which path ran and, for the generic
  /// path, why. After the fast walk the counters are final but the
  /// cache contents are unspecified: do not feed the machine further
  /// accesses.
  void replay_trace(const BlockRunTrace& trace);

  /// The path taken by the most recent replay_trace call.
  ReplayPath last_replay_path() const { return last_replay_path_; }

  /// Bound box_log_ memory for long runs: once the log holds 2*cap
  /// entries, the oldest cap are dropped (amortized O(1)), keeping the
  /// most recent >= cap boxes. 0 (the default) = unbounded, the
  /// historical behavior. Drops are counted, never silent.
  void set_box_log_cap(std::uint64_t cap) { box_log_cap_ = cap; }
  std::uint64_t box_log_dropped() const { return box_log_dropped_; }

  /// Called as (box_index, box_size) at every box boundary, before the
  /// box is counted or its cache installed — so a hook that throws (e.g.
  /// robust::paging_fault_hook injecting at the paging_step site) leaves
  /// the machine's tallies consistent with the boxes actually started.
  /// Null (the default) costs one predictable branch per box.
  using BoxHook = std::function<void(std::uint64_t, std::uint64_t)>;
  void set_box_hook(BoxHook hook) { box_hook_ = std::move(hook); }

 protected:
  void access_cold(WordAddr addr, BlockId block) override;

 private:
  void start_next_box();
  void access_cold_general(BlockId block);

  std::unique_ptr<profile::BoxSource> source_;
  LruCache cache_;  ///< tier 1 on the plain-LRU fast path
  CaConfig config_;
  bool plain_;  ///< config_.plain_lru(), hoisted for the hot path
  // Non-default configs route through the policy interface: tier1_ is
  // installed per box (share-scaled capacity), tier2_ persists across
  // boxes. Both null on the plain path.
  std::unique_ptr<CachePolicy> tier1_;
  std::unique_ptr<CachePolicy> tier2_;
  bool record_boxes_;
  obs::PagingRecorder* recorder_;
  std::uint64_t misses_ = 0;
  std::uint64_t boxes_started_ = 0;
  std::uint64_t box_size_ = 0;
  std::uint64_t misses_in_box_ = 0;
  std::uint64_t box_log_cap_ = 0;
  std::uint64_t box_log_dropped_ = 0;
  // Cache events accounted by the replay_trace fast walk, which bypasses
  // cache_; folded into cache_stats() so totals match the direct run.
  std::uint64_t replay_hits_ = 0;
  std::uint64_t replay_misses_ = 0;
  std::uint64_t replay_evictions_ = 0;
  ReplayPath last_replay_path_ = ReplayPath::kNone;
  BoxHook box_hook_;
  std::vector<profile::BoxSize> box_log_;
};

}  // namespace cadapt::paging
