// The cache-adaptive machine (Definition 1 + paper conventions): the cache
// size follows a square profile. A box of size x means the cache holds x
// blocks for exactly x I/Os (misses); the cache is cleared at each box
// boundary (w.l.o.g. per the paging results underlying cache-adaptivity).
// Hits are free — only misses advance time.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "obs/recorder.hpp"
#include "paging/lru_cache.hpp"
#include "paging/machine.hpp"
#include "profile/box_source.hpp"

namespace cadapt::paging {

class CaMachine final : public Machine {
 public:
  /// Takes ownership of the box stream. The stream must supply a box
  /// whenever one is needed (use profile::CyclingSource for finite
  /// adversarial profiles); exhaustion mid-run is a checked error.
  /// An optional recorder tallies hits/misses/evictions bucketed by the
  /// size class (floor log2) of the box they landed in; it must outlive
  /// the machine. Null = disabled.
  CaMachine(std::unique_ptr<profile::BoxSource> source,
            std::uint64_t block_size, bool record_boxes = true,
            obs::PagingRecorder* recorder = nullptr);

  void access(WordAddr addr) override;
  std::uint64_t accesses() const override { return accesses_; }
  std::uint64_t misses() const override { return misses_; }
  std::uint64_t block_size() const override { return block_size_; }

  /// Boxes started so far (the last one may be partially used).
  std::uint64_t boxes_started() const { return boxes_started_; }
  /// Misses served within the current box (< its size).
  std::uint64_t misses_in_current_box() const { return misses_in_box_; }
  std::uint64_t current_box_size() const { return box_size_; }
  /// Sizes of all boxes started, if record_boxes was set.
  const std::vector<profile::BoxSize>& box_log() const { return box_log_; }
  /// Lifetime hit/miss/eviction counters of the underlying cache.
  const LruCache::Stats& cache_stats() const { return cache_.stats(); }

  /// Called as (box_index, box_size) at every box boundary, before the
  /// box is counted or its cache installed — so a hook that throws (e.g.
  /// robust::paging_fault_hook injecting at the paging_step site) leaves
  /// the machine's tallies consistent with the boxes actually started.
  /// Null (the default) costs one predictable branch per box.
  using BoxHook = std::function<void(std::uint64_t, std::uint64_t)>;
  void set_box_hook(BoxHook hook) { box_hook_ = std::move(hook); }

 private:
  void start_next_box();

  std::unique_ptr<profile::BoxSource> source_;
  LruCache cache_;
  std::uint64_t block_size_;
  bool record_boxes_;
  obs::PagingRecorder* recorder_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t boxes_started_ = 0;
  std::uint64_t box_size_ = 0;
  std::uint64_t misses_in_box_ = 0;
  BoxHook box_hook_;
  std::vector<profile::BoxSize> box_log_;
};

}  // namespace cadapt::paging
