// CLOCK (one-bit second chance): frames sit in a circular buffer in
// insertion order; a hit sets the frame's reference bit without moving
// it. On a full miss the hand sweeps from its current position,
// clearing reference bits, and evicts the first unreferenced frame; the
// new block is installed in that slot with its bit clear and the hand
// advances past it (docs/PAGING.md). Deterministic spec pinned by the
// differential suite: insertions while the cache is below capacity
// append at the logical end of the circle, the hand starts at the
// oldest frame, and shrinking set_capacity evicts by the same sweep.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "paging/policy.hpp"

namespace cadapt::paging {

class ClockCache final : public CachePolicy {
 public:
  explicit ClockCache(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return frames_.size(); }
  bool contains(BlockId block) const override {
    return index_.find(block) != index_.end();
  }

 private:
  struct Frame {
    BlockId key = 0;
    bool ref = false;
  };

  /// Advance the hand to the next unreferenced frame, clearing bits.
  void sweep_to_victim();

  std::uint64_t capacity_;
  std::size_t hand_ = 0;
  std::vector<Frame> frames_;  ///< circular order; index = clock position
  std::unordered_map<BlockId, std::size_t> index_;  ///< key -> frame slot
};

}  // namespace cadapt::paging
