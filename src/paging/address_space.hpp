// Simple bump allocator for simulated memory regions.
//
// Instrumented data structures (algos::SimMatrix etc.) obtain disjoint
// word-address ranges here; block alignment prevents two logically
// distinct regions from sharing a cache block.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace cadapt::paging {

class AddressSpace {
 public:
  explicit AddressSpace(std::uint64_t block_size) : block_size_(block_size) {
    CADAPT_CHECK(block_size >= 1);
  }

  /// Reserve `words` words, aligned up to a block boundary. Returns the
  /// base address.
  std::uint64_t allocate(std::uint64_t words) {
    const std::uint64_t base = next_;
    const std::uint64_t padded =
        (words + block_size_ - 1) / block_size_ * block_size_;
    next_ += padded;
    return base;
  }

  std::uint64_t words_allocated() const { return next_; }
  std::uint64_t block_size() const { return block_size_; }

 private:
  std::uint64_t block_size_;
  std::uint64_t next_ = 0;
};

}  // namespace cadapt::paging
