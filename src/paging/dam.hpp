// The classical disk-access-machine (DAM) of Aggarwal–Vitter: a fixed
// cache of M blocks over blocks of B words — LRU by default, or any
// replacement policy from the zoo (docs/PAGING.md). Unlike the CA
// machine at full share, a fixed-capacity DAM genuinely evicts under
// pressure, so the policy choice is observable here.
#pragma once

#include <memory>

#include "paging/lru_cache.hpp"
#include "paging/machine.hpp"
#include "paging/policy.hpp"

namespace cadapt::paging {

class DamMachine final : public Machine {
 public:
  /// cache_blocks = M (in blocks), block_size = B (in words).
  DamMachine(std::uint64_t cache_blocks, std::uint64_t block_size);
  /// Same machine with a replacement policy from the zoo; the default
  /// LRU spec selects the LruCache fast path, bit for bit.
  DamMachine(std::uint64_t cache_blocks, std::uint64_t block_size,
             const PolicySpec& policy);

  std::uint64_t misses() const override { return misses_; }
  std::uint64_t cache_blocks() const {
    return policy_ != nullptr ? policy_->capacity() : cache_.capacity();
  }
  /// Lifetime cache counters with shortcut-resolved repeat hits folded
  /// back in (same contract as CaMachine::cache_stats).
  LruCache::Stats cache_stats() const {
    LruCache::Stats stats =
        policy_ != nullptr ? policy_->stats() : cache_.stats();
    stats.hits += fast_hits();
    return stats;
  }

 protected:
  void access_cold(WordAddr, BlockId block) override {
    if (policy_ == nullptr) {
      if (!cache_.access(block)) ++misses_;
      mark_hot(block);  // now MRU: an immediate repeat is an LRU hit
      return;
    }
    if (policy_->access(block)) {
      mark_hot(block);  // the hit ran the policy update; repeats are no-ops
      return;
    }
    clear_hot();
    ++misses_;
    // No mark_hot after a policy miss: the first repeat is a hit that
    // still mutates policy state (reference bits, ARC promotion) and
    // must reach the cache — see CaMachine::access_cold_general.
  }

 private:
  LruCache cache_;
  std::unique_ptr<CachePolicy> policy_;  ///< null on the LRU fast path
  std::uint64_t misses_ = 0;
};

}  // namespace cadapt::paging
