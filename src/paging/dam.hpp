// The classical disk-access-machine (DAM) of Aggarwal–Vitter: a fixed
// cache of M blocks with LRU replacement over blocks of B words.
#pragma once

#include "paging/lru_cache.hpp"
#include "paging/machine.hpp"

namespace cadapt::paging {

class DamMachine final : public Machine {
 public:
  /// cache_blocks = M (in blocks), block_size = B (in words).
  DamMachine(std::uint64_t cache_blocks, std::uint64_t block_size);

  std::uint64_t misses() const override { return misses_; }
  std::uint64_t cache_blocks() const { return cache_.capacity(); }

 protected:
  void access_cold(WordAddr, BlockId block) override {
    if (!cache_.access(block)) ++misses_;
    mark_hot(block);  // now MRU: an immediate repeat is an LRU hit
  }

 private:
  LruCache cache_;
  std::uint64_t misses_ = 0;
};

}  // namespace cadapt::paging
