#include "paging/assoc_cache.hpp"

#include <utility>

#include "util/check.hpp"

namespace cadapt::paging {

AssocLruCache::AssocLruCache(std::uint64_t capacity_blocks, std::uint64_t ways)
    : capacity_(capacity_blocks), ways_(ways) {
  CADAPT_CHECK_MSG(ways_ >= 1, "assoc LRU needs ways >= 1");
  rebuild_geometry();
}

void AssocLruCache::rebuild_geometry() {
  const std::uint64_t num_sets =
      capacity_ == 0 ? 0 : (capacity_ + ways_ - 1) / ways_;
  sets_.assign(static_cast<std::size_t>(num_sets), {});
  base_ = num_sets == 0 ? 0 : capacity_ / num_sets;
  extra_ = num_sets == 0 ? 0 : static_cast<std::size_t>(capacity_ % num_sets);
}

LruCache::AccessResult AssocLruCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const auto it = map_.find(block);
  if (it != map_.end()) {
    r.hit = true;
    ++stats_.hits;
    Entry& e = it->second;
    global_.splice(global_.begin(), global_, e.global_it);
    std::list<BlockId>& set = sets_[e.set];
    set.splice(set.begin(), set, e.set_it);
    return r;
  }
  ++stats_.misses;
  if (sets_.empty()) return r;  // capacity 0: nothing retained
  const std::size_t s = set_of(block);
  std::list<BlockId>& set = sets_[s];
  if (set.size() >= set_cap(s)) {
    // Conflict (or capacity) miss: evict the set's LRU resident.
    const BlockId victim = set.back();
    r.evicted = true;
    r.victim = victim;
    ++stats_.evictions;
    global_.erase(map_.at(victim).global_it);
    set.pop_back();
    map_.erase(victim);
  }
  global_.push_front(block);
  set.push_front(block);
  map_[block] = {global_.begin(), set.begin(), s};
  return r;
}

void AssocLruCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  // Rebuild the geometry, then re-place residents in global MRU-first
  // order; anything that no longer fits its set is a counted eviction.
  std::list<BlockId> order = std::move(global_);
  global_.clear();
  map_.clear();
  rebuild_geometry();
  for (const BlockId block : order) {
    if (sets_.empty()) {
      ++stats_.evictions;
      continue;
    }
    const std::size_t s = set_of(block);
    std::list<BlockId>& set = sets_[s];
    if (set.size() >= set_cap(s)) {
      ++stats_.evictions;
      continue;
    }
    global_.push_back(block);
    set.push_back(block);
    map_[block] = {std::prev(global_.end()), std::prev(set.end()), s};
  }
}

void AssocLruCache::clear() {
  global_.clear();
  map_.clear();
  for (auto& set : sets_) set.clear();
}

}  // namespace cadapt::paging
