// Trace recording and offline paging analysis.
//
// TraceRecorder captures the exact word-address stream of an instrumented
// algorithm; the offline analyses (Belady's OPT, LRU replay) then evaluate
// the same stream under different paging policies and cache sizes. This
// is how the DAM-optimality premise of Theorem 2 ("suppose A is optimal
// in the DAM model") is checked concretely.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "paging/lru_cache.hpp"
#include "paging/machine.hpp"

namespace cadapt::paging {

/// A Machine that records every access (no paging is simulated; misses()
/// reports 0). Never marks blocks hot: a word-exact trace must see every
/// repeat, so each access takes the virtual path by design.
class TraceRecorder final : public Machine {
 public:
  explicit TraceRecorder(std::uint64_t block_size) : Machine(block_size) {}

  std::uint64_t misses() const override { return 0; }

  const std::vector<WordAddr>& trace() const { return trace_; }

  /// The block-id stream of the recorded trace.
  std::vector<BlockId> block_trace() const;

 protected:
  void access_cold(WordAddr addr, BlockId) override {
    trace_.push_back(addr);
  }

 private:
  std::vector<WordAddr> trace_;
};

/// Replay a recorded word trace into another machine.
void replay(std::span<const WordAddr> trace, Machine& machine);

/// Misses of LRU with the given capacity on a block trace.
std::uint64_t lru_misses(std::span<const BlockId> blocks,
                         std::uint64_t capacity);

/// Misses of Belady's offline-optimal replacement (OPT/MIN) with the
/// given capacity on a block trace. Lower-bounds every online policy.
std::uint64_t opt_misses(std::span<const BlockId> blocks,
                         std::uint64_t capacity);

}  // namespace cadapt::paging
