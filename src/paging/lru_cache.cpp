#include "paging/lru_cache.hpp"

#include "util/check.hpp"

namespace cadapt::paging {

namespace {

/// splitmix64 finalizer: full-avalanche mix so dense block ids (and the
/// scheduler's pid-tagged ids) spread over the power-of-two table.
std::uint64_t mix(BlockId key) {
  std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

LruCache::LruCache(std::uint64_t capacity_blocks) : capacity_(capacity_blocks) {}

std::size_t LruCache::find_slot(BlockId key) const {
  if (size_ == 0) return kNotFound;  // also covers a never-built table
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = mix(key) & mask;
  while (slots_[i].gen == gen_) {
    if (nodes_[slots_[i].node].key == key) return i;
    i = (i + 1) & mask;
  }
  return kNotFound;
}

void LruCache::grow_table() {
  // Load factor <= 1/4 right after a rebuild, <= 1/2 before the next one:
  // linear-probe clusters stay short. The rebuild re-inserts every
  // resident node (including one pushed onto the list just before the
  // call), walking the recency list.
  std::size_t new_size = 16;
  while (new_size < size_ * 4) new_size <<= 1;
  slots_.assign(new_size, Slot{});
  gen_ = 1;
  const std::size_t mask = new_size - 1;
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
    std::size_t i = mix(nodes_[n].key) & mask;
    while (slots_[i].gen == gen_) i = (i + 1) & mask;
    slots_[i] = Slot{gen_, n};
  }
}

void LruCache::insert_key(BlockId key, std::uint32_t node) {
  if (slots_.empty() || size_ * 2 > slots_.size()) {
    grow_table();  // rebuild already placed `node` (it is on the list)
    return;
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = mix(key) & mask;
  while (slots_[i].gen == gen_) i = (i + 1) & mask;
  slots_[i] = Slot{gen_, node};
}

void LruCache::erase_slot(std::size_t slot) {
  // Backward-shift deletion keeps probe chains gap-free without
  // tombstones: walk the cluster after the hole and pull back every
  // entry whose home position does not lie strictly after the hole.
  const std::size_t mask = slots_.size() - 1;
  std::size_t hole = slot;
  std::size_t i = slot;
  for (;;) {
    i = (i + 1) & mask;
    if (slots_[i].gen != gen_) break;
    const std::size_t home = mix(nodes_[slots_[i].node].key) & mask;
    if (((i - home) & mask) >= ((i - hole) & mask)) {
      slots_[hole] = slots_[i];
      hole = i;
    }
  }
  slots_[hole].gen = 0;  // gen_ >= 1 always, so 0 marks empty
}

void LruCache::push_front(std::uint32_t node) {
  nodes_[node].prev = kNil;
  nodes_[node].next = head_;
  if (head_ != kNil) nodes_[head_].prev = node;
  head_ = node;
  if (tail_ == kNil) tail_ = node;
}

void LruCache::unlink(std::uint32_t node) {
  const std::uint32_t p = nodes_[node].prev;
  const std::uint32_t n = nodes_[node].next;
  if (p != kNil) nodes_[p].next = n; else head_ = n;
  if (n != kNil) nodes_[n].prev = p; else tail_ = p;
}

void LruCache::evict_lru() {
  const std::uint32_t node = tail_;
  erase_slot(find_slot(nodes_[node].key));
  unlink(node);
  free_.push_back(node);
  --size_;
}

LruCache::AccessResult LruCache::access_tracking(BlockId block) {
  AccessResult result;
  const std::size_t slot = find_slot(block);
  if (slot != kNotFound) {
    const std::uint32_t node = slots_[slot].node;
    if (node != head_) {
      unlink(node);
      push_front(node);
    }
    result.hit = true;
    ++stats_.hits;
    return result;
  }
  ++stats_.misses;
  if (capacity_ == 0) return result;  // nothing can be retained
  if (size_ == capacity_) {
    result.evicted = true;
    result.victim = nodes_[tail_].key;
    ++stats_.evictions;
    evict_lru();
  }
  std::uint32_t node;
  if (!free_.empty()) {
    node = free_.back();
    free_.pop_back();
  } else {
    CADAPT_CHECK(nodes_.size() < kNil);
    node = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[node].key = block;
  push_front(node);
  ++size_;
  insert_key(block, node);
  return result;
}

std::uint64_t LruCache::access_run(const BlockId* blocks, std::uint64_t count,
                                   BlockId tag_or, AccessResult* last) {
  CADAPT_CHECK(last != nullptr);
  *last = AccessResult{};
  std::uint64_t done = 0;
  while (done < count) {
    const BlockId block = tag_or | blocks[done];
    ++done;
    // Repeat-hit shortcut: an access to the block already at the head of
    // the recency list is a hit that moves nothing — take it without the
    // table probe. Block-run traces make this the common case.
    if (head_ != kNil && nodes_[head_].key == block) {
      ++stats_.hits;
      *last = AccessResult{/*hit=*/true, /*evicted=*/false, /*victim=*/0};
      continue;
    }
    *last = access_tracking(block);
    if (!last->hit) break;
  }
  return done;
}

void LruCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  evict_to(capacity_);
}

void LruCache::clear() {
  size_ = 0;
  head_ = tail_ = kNil;
  nodes_.clear();
  free_.clear();
  // O(1) table clear: bump the generation; on (unlikely) wrap, pay one
  // full reset so stale stamps can never collide with a reused value.
  if (++gen_ == 0) {
    slots_.assign(slots_.size(), Slot{});
    gen_ = 1;
  }
}

void LruCache::evict_to(std::uint64_t limit) {
  while (size_ > limit) {
    ++stats_.evictions;
    evict_lru();
  }
}

}  // namespace cadapt::paging
