#include "paging/lru_cache.hpp"

namespace cadapt::paging {

LruCache::LruCache(std::uint64_t capacity_blocks) : capacity_(capacity_blocks) {}

bool LruCache::access(BlockId block) {
  return access_tracking(block).hit;
}

LruCache::AccessResult LruCache::access_tracking(BlockId block) {
  AccessResult result;
  const auto it = map_.find(block);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    result.hit = true;
    ++stats_.hits;
    return result;
  }
  ++stats_.misses;
  if (capacity_ == 0) return result;  // nothing can be retained
  if (map_.size() == capacity_) {
    result.evicted = true;
    result.victim = order_.back();
    ++stats_.evictions;
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(block);
  map_[block] = order_.begin();
  return result;
}

void LruCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  evict_to(capacity_);
}

void LruCache::clear() {
  order_.clear();
  map_.clear();
}

void LruCache::evict_to(std::uint64_t limit) {
  while (map_.size() > limit) {
    ++stats_.evictions;
    map_.erase(order_.back());
    order_.pop_back();
  }
}

}  // namespace cadapt::paging
