// CAR (Bansal–Modha, Clock with Adaptive Replacement): ARC's T1/T2 +
// B1/B2 structure with the resident lists run as CLOCKs instead of
// LRUs. A resident hit just sets the frame's reference bit (no
// movement); REPLACE sweeps T1's head when |T1| >= max(1, p) (demoting
// referenced frames to T2's tail) and T2's head otherwise (recycling
// referenced frames to its own tail). Ghost hits adapt p exactly as in
// ARC. Spec notes pinned by the differential suite (docs/PAGING.md):
//   - resident clocks are std::lists with front = head (oldest, next
//     swept) and back = tail (insertion point); ghosts are MRU-front
//     LRU-back like ARC's;
//   - the paper's equality-triggered ghost discards are restated as
//     while-loops applied before inserting a brand-new block (drop LRU
//     B1 while |T1|+|B1| >= c; then drop LRU B2 — B1 if B2 is empty —
//     while the four lists total >= 2c), which is equivalent on
//     fixed-capacity histories and stays bounded after set_capacity;
//   - only resident departures count as evictions / report victims.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "paging/policy.hpp"

namespace cadapt::paging {

class CarCache final : public CachePolicy {
 public:
  explicit CarCache(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override;
  void set_capacity(std::uint64_t capacity_blocks) override;
  void clear() override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t size() const override { return t1_.size() + t2_.size(); }
  bool contains(BlockId block) const override;

  /// The adaptation target for |T1|; exposed for the known-answer tests.
  std::uint64_t target_p() const { return p_; }

 private:
  struct Frame {
    BlockId key = 0;
    bool ref = false;
  };
  enum class Where : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Loc {
    Where where;
    std::list<Frame>::iterator fit;    ///< valid for kT1/kT2
    std::list<BlockId>::iterator git;  ///< valid for kB1/kB2
  };

  /// Sweep the clocks until one unreferenced head is evicted to its
  /// ghost list (counted; reported via `r` if non-null and unclaimed).
  void replace(LruCache::AccessResult* r);
  void drop_ghost_lru(bool prefer_b2);
  std::uint64_t total() const {
    return t1_.size() + t2_.size() + b1_.size() + b2_.size();
  }

  std::uint64_t capacity_;
  std::uint64_t p_ = 0;
  std::list<Frame> t1_, t2_;     ///< front = clock head (oldest)
  std::list<BlockId> b1_, b2_;   ///< front = MRU, back = LRU
  std::unordered_map<BlockId, Loc> map_;
};

}  // namespace cadapt::paging
