// LRU block cache used by both the DAM and cache-adaptive machines.
//
// Flat intrusive implementation (docs/PERF.md, "Paging fast path"): the
// recency list is an index-linked list over a contiguous node array and
// the block -> node map is an open-addressing table (power-of-two,
// linear probing, backward-shift deletion), so an access touches two
// small flat arrays instead of chasing std::list nodes through a
// std::unordered_map. clear() is O(1) via a generation stamp on the
// table slots. Memory is lazy — O(max resident blocks), never
// O(capacity) — because the CA machine routinely sets capacities far
// larger than any working set it will ever hold.
//
// The observable behavior (hit flag, victim choice, eviction order,
// Stats counters) is access-for-access identical to the reference
// std::list/unordered_map implementation kept in
// paging/reference_lru.hpp; tests/test_paging_fast.cpp holds the two
// implementations together over randomized access/resize/clear
// schedules.
#pragma once

#include <cstdint>
#include <vector>

namespace cadapt::paging {

using BlockId = std::uint64_t;

/// Fixed-capacity (but resizable) LRU set of block ids.
class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_blocks);

  /// Touch a block. Returns true on a hit; on a miss the block is loaded,
  /// evicting the least recently used block if the cache is full.
  bool access(BlockId block) { return access_tracking(block).hit; }

  /// Outcome of access_tracking: hit flag plus the evicted block, if any.
  struct AccessResult {
    bool hit = false;
    bool evicted = false;
    BlockId victim = 0;
  };

  /// Like access(), but reports the evicted block — used by the shared-
  /// cache scheduler to maintain per-process occupancy counts.
  AccessResult access_tracking(BlockId block);

  /// Batched until-first-miss walk (docs/PERF.md): touch
  /// tag_or | blocks[i] in order, stopping AFTER the first miss. Returns
  /// the number of accesses performed — the leading hits plus the final
  /// miss, if any (== count when every block hit); `last` receives the
  /// AccessResult of the final access performed (zeroed when count == 0).
  /// tag_or is the caller's namespace tag (the shared-cache scheduler's
  /// pid tag; 0 = untagged). Observably identical — Stats, recency order,
  /// victim choice — to that many access_tracking(tag_or | blocks[i])
  /// calls (tests/test_sched_worksteal.cpp holds the two together);
  /// consecutive hits on the resident MRU block skip the table probe.
  std::uint64_t access_run(const BlockId* blocks, std::uint64_t count,
                           BlockId tag_or, AccessResult* last);

  /// Change capacity; evicts LRU blocks if shrinking. Capacity 0 is
  /// allowed (every access misses and nothing is retained).
  void set_capacity(std::uint64_t capacity_blocks);

  /// Drop all cached blocks (the model's cache clear at box boundaries).
  /// Not counted as evictions: a clear is a model reset, not pressure.
  void clear();

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t size() const { return size_; }
  bool contains(BlockId block) const { return find_slot(block) != kNotFound; }

  /// Lifetime counters, kept unconditionally: two integer increments per
  /// access are noise next to the table probe, and they make every
  /// machine built on this cache explainable after the fact.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Capacity-pressure evictions (including shrinking set_capacity).
    std::uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  struct Node {
    BlockId key = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };
  /// One table slot; gen != gen_ means empty (clear() bumps gen_).
  struct Slot {
    std::uint32_t gen = 0;
    std::uint32_t node = 0;
  };

  std::size_t find_slot(BlockId key) const;
  void insert_key(BlockId key, std::uint32_t node);
  void erase_slot(std::size_t slot);  ///< backward-shift deletion
  void grow_table();
  void push_front(std::uint32_t node);
  void unlink(std::uint32_t node);
  void evict_lru();  ///< unlink + erase + free the tail node
  void evict_to(std::uint64_t limit);

  std::uint64_t capacity_;
  Stats stats_;
  std::uint64_t size_ = 0;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  std::uint32_t gen_ = 1;  // current table generation; slot gen 0 = never used
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;  // node indices released by evictions
  std::vector<Slot> slots_;          // open-addressing table, power-of-two
};

}  // namespace cadapt::paging
