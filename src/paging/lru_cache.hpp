// LRU block cache used by both the DAM and cache-adaptive machines.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace cadapt::paging {

using BlockId = std::uint64_t;

/// Fixed-capacity (but resizable) LRU set of block ids.
class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_blocks);

  /// Touch a block. Returns true on a hit; on a miss the block is loaded,
  /// evicting the least recently used block if the cache is full.
  bool access(BlockId block);

  /// Outcome of access_tracking: hit flag plus the evicted block, if any.
  struct AccessResult {
    bool hit = false;
    bool evicted = false;
    BlockId victim = 0;
  };

  /// Like access(), but reports the evicted block — used by the shared-
  /// cache scheduler to maintain per-process occupancy counts.
  AccessResult access_tracking(BlockId block);

  /// Change capacity; evicts LRU blocks if shrinking. Capacity 0 is
  /// allowed (every access misses and nothing is retained).
  void set_capacity(std::uint64_t capacity_blocks);

  /// Drop all cached blocks (the model's cache clear at box boundaries).
  /// Not counted as evictions: a clear is a model reset, not pressure.
  void clear();

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t size() const { return map_.size(); }
  bool contains(BlockId block) const { return map_.count(block) != 0; }

  /// Lifetime counters, kept unconditionally: two integer increments per
  /// access are noise next to the hash-map work, and they make every
  /// machine built on this cache explainable after the fact.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Capacity-pressure evictions (including shrinking set_capacity).
    std::uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void evict_to(std::uint64_t limit);

  std::uint64_t capacity_;
  Stats stats_;
  std::list<BlockId> order_;  // front = most recently used
  std::unordered_map<BlockId, std::list<BlockId>::iterator> map_;
};

}  // namespace cadapt::paging
