#include "paging/reference_policies.hpp"

#include <algorithm>

#include "paging/reference_lru.hpp"
#include "util/check.hpp"

namespace cadapt::paging {

namespace {

template <typename Vec, typename Pred>
std::size_t find_index(const Vec& vec, Pred pred) {
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (pred(vec[i])) return i;
  }
  return vec.size();
}

/// ReferenceLruCache behind the CachePolicy interface, mirroring stats
/// like the production LruPolicy adapter.
class ReferenceLruPolicy final : public CachePolicy {
 public:
  explicit ReferenceLruPolicy(std::uint64_t capacity_blocks)
      : cache_(capacity_blocks) {}

  LruCache::AccessResult access_tracking(BlockId block) override {
    const LruCache::AccessResult r = cache_.access_tracking(block);
    stats_ = cache_.stats();
    return r;
  }
  void set_capacity(std::uint64_t capacity_blocks) override {
    cache_.set_capacity(capacity_blocks);
    stats_ = cache_.stats();
  }
  void clear() override { cache_.clear(); }
  std::uint64_t capacity() const override { return cache_.capacity(); }
  std::uint64_t size() const override { return cache_.size(); }
  bool contains(BlockId block) const override {
    return cache_.contains(block);
  }

 private:
  ReferenceLruCache cache_;
};

}  // namespace

// ---------------------------------------------------------------- CLOCK

bool ReferenceClockCache::contains(BlockId block) const {
  return find_index(frames_, [&](const auto& f) { return f.first == block; }) <
         frames_.size();
}

void ReferenceClockCache::sweep() {
  while (frames_[hand_].second) {
    frames_[hand_].second = false;
    hand_ = (hand_ + 1) % frames_.size();
  }
}

LruCache::AccessResult ReferenceClockCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const std::size_t i =
      find_index(frames_, [&](const auto& f) { return f.first == block; });
  if (i < frames_.size()) {
    frames_[i].second = true;
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  ++stats_.misses;
  if (capacity_ == 0) return r;
  if (frames_.size() < capacity_) {
    frames_.emplace_back(block, false);
    return r;
  }
  sweep();
  r.evicted = true;
  r.victim = frames_[hand_].first;
  ++stats_.evictions;
  frames_[hand_] = {block, false};
  hand_ = (hand_ + 1) % frames_.size();
  return r;
}

void ReferenceClockCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  while (frames_.size() > capacity_) {
    sweep();
    frames_.erase(frames_.begin() + static_cast<std::ptrdiff_t>(hand_));
    ++stats_.evictions;
    if (hand_ >= frames_.size()) hand_ = 0;
  }
}

void ReferenceClockCache::clear() {
  frames_.clear();
  hand_ = 0;
}

// ------------------------------------------------------------------ ARC

bool ReferenceArcCache::contains(BlockId block) const {
  const auto is = [&](BlockId b) { return b == block; };
  return find_index(t1_, is) < t1_.size() || find_index(t2_, is) < t2_.size();
}

void ReferenceArcCache::replace(bool in_b2, LruCache::AccessResult* r) {
  const bool from_t1 =
      !t1_.empty() && (t1_.size() > p_ || (in_b2 && t1_.size() == p_));
  std::vector<BlockId>& from = from_t1 ? t1_ : (!t2_.empty() ? t2_ : t1_);
  if (from.empty()) return;
  std::vector<BlockId>& ghost = (&from == &t1_) ? b1_ : b2_;
  const BlockId victim = from.back();
  from.pop_back();
  ghost.insert(ghost.begin(), victim);
  ++stats_.evictions;
  if (r != nullptr && !r->evicted) {
    r->evicted = true;
    r->victim = victim;
  }
}

LruCache::AccessResult ReferenceArcCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const auto is = [&](BlockId b) { return b == block; };
  std::size_t i = find_index(t1_, is);
  if (i < t1_.size()) {
    t1_.erase(t1_.begin() + static_cast<std::ptrdiff_t>(i));
    t2_.insert(t2_.begin(), block);
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  i = find_index(t2_, is);
  if (i < t2_.size()) {
    t2_.erase(t2_.begin() + static_cast<std::ptrdiff_t>(i));
    t2_.insert(t2_.begin(), block);
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  ++stats_.misses;
  if (capacity_ == 0) return r;
  i = find_index(b1_, is);
  if (i < b1_.size()) {
    p_ = std::min(capacity_,
                  p_ + std::max<std::uint64_t>(1, b2_.size() / b1_.size()));
    replace(false, &r);
    b1_.erase(b1_.begin() + static_cast<std::ptrdiff_t>(
                                find_index(b1_, is)));
    t2_.insert(t2_.begin(), block);
    return r;
  }
  i = find_index(b2_, is);
  if (i < b2_.size()) {
    const std::uint64_t delta =
        std::max<std::uint64_t>(1, b1_.size() / b2_.size());
    p_ = p_ >= delta ? p_ - delta : 0;
    replace(true, &r);
    b2_.erase(b2_.begin() + static_cast<std::ptrdiff_t>(
                                find_index(b2_, is)));
    t2_.insert(t2_.begin(), block);
    return r;
  }
  const std::uint64_t l1 = t1_.size() + b1_.size();
  if (l1 == capacity_) {
    if (!b1_.empty()) {
      b1_.pop_back();
      replace(false, &r);
    } else {
      r.evicted = true;
      r.victim = t1_.back();
      t1_.pop_back();
      ++stats_.evictions;
    }
  } else {
    const std::uint64_t all = t1_.size() + t2_.size() + b1_.size() + b2_.size();
    if (all >= capacity_) {
      if (all == 2 * capacity_) {
        if (b2_.empty()) {
          b1_.pop_back();
        } else {
          b2_.pop_back();
        }
      }
      replace(false, &r);
    }
  }
  t1_.insert(t1_.begin(), block);
  return r;
}

void ReferenceArcCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  if (capacity_ == 0) {
    stats_.evictions += t1_.size() + t2_.size();
    clear();
    return;
  }
  p_ = std::min(p_, capacity_);
  while (t1_.size() + t2_.size() > capacity_) replace(false, nullptr);
  while (!b1_.empty() && t1_.size() + b1_.size() > capacity_) b1_.pop_back();
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * capacity_) {
    if (b2_.empty()) {
      b1_.pop_back();
    } else {
      b2_.pop_back();
    }
  }
}

void ReferenceArcCache::clear() {
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  p_ = 0;
}

// ------------------------------------------------------------------ CAR

bool ReferenceCarCache::contains(BlockId block) const {
  const auto is = [&](const Frame& f) { return f.key == block; };
  return find_index(t1_, is) < t1_.size() || find_index(t2_, is) < t2_.size();
}

void ReferenceCarCache::replace(LruCache::AccessResult* r) {
  while (true) {
    if (t1_.empty() && t2_.empty()) return;
    if (!t1_.empty() && t1_.size() >= std::max<std::uint64_t>(1, p_)) {
      Frame head = t1_.front();
      t1_.erase(t1_.begin());
      if (!head.ref) {
        b1_.insert(b1_.begin(), head.key);
        ++stats_.evictions;
        if (r != nullptr && !r->evicted) {
          r->evicted = true;
          r->victim = head.key;
        }
        return;
      }
      head.ref = false;
      t2_.push_back(head);
    } else {
      Frame head = t2_.front();
      t2_.erase(t2_.begin());
      if (!head.ref) {
        b2_.insert(b2_.begin(), head.key);
        ++stats_.evictions;
        if (r != nullptr && !r->evicted) {
          r->evicted = true;
          r->victim = head.key;
        }
        return;
      }
      head.ref = false;
      t2_.push_back(head);
    }
  }
}

LruCache::AccessResult ReferenceCarCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const auto is_frame = [&](const Frame& f) { return f.key == block; };
  const auto is = [&](BlockId b) { return b == block; };
  std::size_t i = find_index(t1_, is_frame);
  if (i < t1_.size()) {
    t1_[i].ref = true;
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  i = find_index(t2_, is_frame);
  if (i < t2_.size()) {
    t2_[i].ref = true;
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  ++stats_.misses;
  if (capacity_ == 0) return r;
  const std::size_t g1 = find_index(b1_, is);
  const std::size_t g2 = find_index(b2_, is);
  const bool in_b1 = g1 < b1_.size();
  const bool in_b2 = g2 < b2_.size();
  if (t1_.size() + t2_.size() == capacity_) replace(&r);
  if (!in_b1 && !in_b2) {
    while (!b1_.empty() && t1_.size() + b1_.size() >= capacity_) {
      b1_.pop_back();
    }
    while ((!b1_.empty() || !b2_.empty()) && total() >= 2 * capacity_) {
      if (b2_.empty()) {
        b1_.pop_back();
      } else {
        b2_.pop_back();
      }
    }
    t1_.push_back({block, false});
    return r;
  }
  if (in_b1) {
    p_ = std::min(capacity_,
                  p_ + std::max<std::uint64_t>(1, b2_.size() / b1_.size()));
    b1_.erase(b1_.begin() + static_cast<std::ptrdiff_t>(find_index(b1_, is)));
  } else {
    const std::uint64_t delta =
        std::max<std::uint64_t>(1, b1_.size() / b2_.size());
    p_ = p_ >= delta ? p_ - delta : 0;
    b2_.erase(b2_.begin() + static_cast<std::ptrdiff_t>(find_index(b2_, is)));
  }
  t2_.push_back({block, false});
  return r;
}

void ReferenceCarCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  if (capacity_ == 0) {
    stats_.evictions += t1_.size() + t2_.size();
    clear();
    return;
  }
  p_ = std::min(p_, capacity_);
  while (t1_.size() + t2_.size() > capacity_) replace(nullptr);
  while (!b1_.empty() && t1_.size() + b1_.size() > capacity_) b1_.pop_back();
  while ((!b1_.empty() || !b2_.empty()) && total() > 2 * capacity_) {
    if (b2_.empty()) {
      b1_.pop_back();
    } else {
      b2_.pop_back();
    }
  }
}

void ReferenceCarCache::clear() {
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  p_ = 0;
}

// ------------------------------------------------------------ assoc LRU

ReferenceAssocLruCache::ReferenceAssocLruCache(std::uint64_t capacity_blocks,
                                               std::uint64_t ways)
    : capacity_(capacity_blocks), ways_(ways) {
  CADAPT_CHECK_MSG(ways_ >= 1, "assoc LRU needs ways >= 1");
}

std::uint64_t ReferenceAssocLruCache::set_cap(std::uint64_t set) const {
  const std::uint64_t sets = num_sets();
  return capacity_ / sets + (set < capacity_ % sets ? 1 : 0);
}

bool ReferenceAssocLruCache::contains(BlockId block) const {
  return std::find(order_.begin(), order_.end(), block) != order_.end();
}

LruCache::AccessResult ReferenceAssocLruCache::access_tracking(BlockId block) {
  LruCache::AccessResult r;
  const auto it = std::find(order_.begin(), order_.end(), block);
  if (it != order_.end()) {
    order_.erase(it);
    order_.insert(order_.begin(), block);
    r.hit = true;
    ++stats_.hits;
    return r;
  }
  ++stats_.misses;
  const std::uint64_t sets = num_sets();
  if (sets == 0) return r;
  const std::uint64_t s = block % sets;
  std::uint64_t occupancy = 0;
  for (const BlockId b : order_) {
    if (b % sets == s) ++occupancy;
  }
  if (occupancy >= set_cap(s)) {
    // Victim: the least recent member of the set (scan from the back).
    for (std::size_t i = order_.size(); i-- > 0;) {
      if (order_[i] % sets == s) {
        r.evicted = true;
        r.victim = order_[i];
        ++stats_.evictions;
        order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  order_.insert(order_.begin(), block);
  return r;
}

void ReferenceAssocLruCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  const std::uint64_t sets = num_sets();
  std::vector<BlockId> kept;
  std::vector<std::uint64_t> occupancy(
      static_cast<std::size_t>(sets), 0);
  for (const BlockId block : order_) {  // MRU-first redistribution
    if (sets == 0) {
      ++stats_.evictions;
      continue;
    }
    const std::uint64_t s = block % sets;
    if (occupancy[static_cast<std::size_t>(s)] >= set_cap(s)) {
      ++stats_.evictions;
      continue;
    }
    ++occupancy[static_cast<std::size_t>(s)];
    kept.push_back(block);
  }
  order_ = std::move(kept);
}

std::unique_ptr<CachePolicy> make_reference_policy(
    const PolicySpec& spec, std::uint64_t capacity_blocks) {
  switch (spec.kind) {
    case PolicyKind::kLru:
      return std::make_unique<ReferenceLruPolicy>(capacity_blocks);
    case PolicyKind::kClock:
      return std::make_unique<ReferenceClockCache>(capacity_blocks);
    case PolicyKind::kArc:
      return std::make_unique<ReferenceArcCache>(capacity_blocks);
    case PolicyKind::kCar:
      return std::make_unique<ReferenceCarCache>(capacity_blocks);
    case PolicyKind::kLruAssoc:
      CADAPT_CHECK(spec.ways >= 1);
      return std::make_unique<ReferenceAssocLruCache>(capacity_blocks,
                                                      spec.ways);
  }
  throw util::CheckError("unreachable policy kind");
}

}  // namespace cadapt::paging
