// Abstract two-level memory machine interface.
//
// Instrumented algorithms (src/algos) report every word they touch through
// access(); concrete machines translate words to blocks and account I/Os.
// Time in both the DAM and the cache-adaptive model is the number of
// block transfers (misses).
//
// The hot path (docs/PERF.md, "Paging fast path"): access() is a
// non-virtual inline wrapper that resolves *guaranteed repeat hits* —
// consecutive accesses to the block the machine just resolved — with two
// compares and an increment, no virtual dispatch and no hash probe.
// Concrete machines opt a block in by calling mark_hot(block) at the end
// of access_cold() whenever their model makes an immediate repeat a free
// hit (LRU keeps the MRU block resident; the CA machine never evicts the
// block it just loaded). The contract is bit-identity, not approximation:
// every counter a machine exposes must be exactly what the per-access
// path produces. set_per_access(true) disables the shortcut so every
// access takes the virtual path — the reference driver for differential
// tests (`cadapt mc/sweep --per-access`) — and machines that attach an
// observer with per-access granularity (paging::CaMachine with an
// obs::PagingRecorder) force it themselves.
#pragma once

#include <bit>
#include <cstdint>
#include <unordered_set>

#include "util/check.hpp"

namespace cadapt::paging {

using WordAddr = std::uint64_t;
using BlockId = std::uint64_t;

class Machine {
 public:
  explicit Machine(std::uint64_t block_size)
      : block_size_(block_size),
        block_shift_(std::has_single_bit(block_size)
                         ? static_cast<int>(std::countr_zero(block_size))
                         : -1) {
    CADAPT_CHECK(block_size >= 1);
  }
  virtual ~Machine() = default;

  /// Touch one word of memory (read or write — the models do not
  /// distinguish).
  void access(WordAddr addr) {
    ++accesses_;
    const BlockId block = block_of(addr);
    if (repeat_free_ && block == hot_block_) {
      ++fast_hits_;
      return;
    }
    access_cold(addr, block);
  }

  /// Exactly equivalent to `count` access(addr) calls. When the first
  /// access leaves addr's block hot, the remaining count - 1 guaranteed
  /// hits retire in O(1); otherwise they loop through access(). This is
  /// the bulk entry point BlockRunTrace::replay_into drives.
  void access_run(WordAddr addr, std::uint64_t count) {
    if (count == 0) return;
    access(addr);
    if (count == 1) return;
    const BlockId block = block_of(addr);
    if (repeat_free_ && block == hot_block_) {
      accesses_ += count - 1;
      fast_hits_ += count - 1;
    } else {
      for (std::uint64_t i = 1; i < count; ++i) access(addr);
    }
  }

  std::uint64_t accesses() const { return accesses_; }
  /// Block transfers performed so far (= elapsed time in the model).
  virtual std::uint64_t misses() const = 0;
  std::uint64_t block_size() const { return block_size_; }

  BlockId block_of(WordAddr addr) const {
    return block_shift_ >= 0 ? addr >> block_shift_ : addr / block_size_;
  }

  /// Force every access through the virtual per-access path (the
  /// reference driver; bit-identical by contract, docs/PERF.md).
  void set_per_access(bool per_access) {
    per_access_ = per_access;
    if (per_access) repeat_free_ = false;
  }
  bool per_access() const { return per_access_; }

  /// Accesses resolved by the repeat-hit shortcut (0 on the reference
  /// path). Machines whose exposed hit counters live below the shortcut
  /// fold this back in (see CaMachine::cache_stats).
  std::uint64_t fast_hits() const { return fast_hits_; }

 protected:
  /// Resolve one access that the repeat shortcut could not (first touch
  /// of a block, or a block change). `block` == block_of(addr).
  /// Implementations call mark_hot(block) before returning iff an
  /// immediate re-access of `block` is a guaranteed free hit, and must
  /// clear_hot() before any step that can throw or evict the previously
  /// hot block.
  virtual void access_cold(WordAddr addr, BlockId block) = 0;

  void mark_hot(BlockId block) {
    if (!per_access_) {
      hot_block_ = block;
      repeat_free_ = true;
    }
  }
  void clear_hot() { repeat_free_ = false; }

  /// Account accesses a machine resolved wholesale outside access()/
  /// access_run — the trace-replay walk (CaMachine::replay_trace) retires
  /// entire runs at once and reports their word count here.
  void count_bulk_accesses(std::uint64_t count) { accesses_ += count; }

 private:
  std::uint64_t block_size_;
  int block_shift_;  ///< log2(block_size), or -1 if not a power of two
  std::uint64_t accesses_ = 0;
  std::uint64_t fast_hits_ = 0;
  BlockId hot_block_ = 0;
  bool repeat_free_ = false;
  bool per_access_ = false;
};

/// A machine with an infinitely large cache: every block faults exactly
/// once (cold misses only). The I/O lower-bound baseline.
class IdealMachine final : public Machine {
 public:
  explicit IdealMachine(std::uint64_t block_size) : Machine(block_size) {}

  std::uint64_t misses() const override { return misses_; }

 protected:
  void access_cold(WordAddr, BlockId block) override {
    if (seen_.insert(block).second) ++misses_;
    mark_hot(block);  // a seen block stays seen: repeats never miss
  }

 private:
  std::uint64_t misses_ = 0;
  std::unordered_set<BlockId> seen_;
};

}  // namespace cadapt::paging
