// Abstract two-level memory machine interface.
//
// Instrumented algorithms (src/algos) report every word they touch through
// access(); concrete machines translate words to blocks and account I/Os.
// Time in both the DAM and the cache-adaptive model is the number of
// block transfers (misses).
#pragma once

#include <cstdint>
#include <unordered_set>

namespace cadapt::paging {

using WordAddr = std::uint64_t;

class Machine {
 public:
  virtual ~Machine() = default;

  /// Touch one word of memory (read or write — the models do not
  /// distinguish).
  virtual void access(WordAddr addr) = 0;

  virtual std::uint64_t accesses() const = 0;
  /// Block transfers performed so far (= elapsed time in the model).
  virtual std::uint64_t misses() const = 0;
  virtual std::uint64_t block_size() const = 0;
};

/// A machine with an infinitely large cache: every block faults exactly
/// once (cold misses only). The I/O lower-bound baseline.
class IdealMachine final : public Machine {
 public:
  explicit IdealMachine(std::uint64_t block_size) : block_size_(block_size) {}

  void access(WordAddr addr) override {
    ++accesses_;
    if (seen_.insert(addr / block_size_).second) ++misses_;
  }
  std::uint64_t accesses() const override { return accesses_; }
  std::uint64_t misses() const override { return misses_; }
  std::uint64_t block_size() const override { return block_size_; }

 private:
  std::uint64_t block_size_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace cadapt::paging
