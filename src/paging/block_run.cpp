#include "paging/block_run.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"

namespace cadapt::paging {

void BlockRunTrace::push(BlockId block, std::uint64_t count) {
  if (count == 0) return;
  accesses_ += count;
  steps_.clear();  // appended runs invalidate the replay index
  if (!runs_.empty() && runs_.back().block == block) {
    runs_.back().count += count;
    return;
  }
  runs_.push_back(BlockRun{block, count});
}

void BlockRunTrace::ensure_replay_index() {
  if (has_replay_index() || runs_.empty()) return;
  constexpr std::uint64_t kMax = 0xffffffffull;
  if (runs_.size() >= kMax) return;  // unindexable: generic replay
  steps_.assign(runs_.size(), ReplayStep{0, 0});
  for (std::uint64_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].count >= kMax) {
      steps_.clear();  // unindexable: generic replay
      return;
    }
    steps_[i].count = static_cast<std::uint32_t>(runs_[i].count);
  }
  // AddressSpace hands out block ids densely from 0, so a direct-mapped
  // table covers the common case without any hashing; fall back to a
  // hash map only for genuinely sparse id spaces.
  BlockId max_block = 0;
  for (const BlockRun& run : runs_) max_block = std::max(max_block, run.block);
  if (max_block <= 8 * runs_.size() + 1024) {
    std::vector<std::uint32_t> last(max_block + 1, 0);  // block -> 1 + index
    for (std::uint64_t i = 0; i < runs_.size(); ++i) {
      std::uint32_t& slot = last[runs_[i].block];
      steps_[i].prev1 = slot;
      slot = static_cast<std::uint32_t>(i + 1);
    }
    return;
  }
  std::unordered_map<BlockId, std::uint32_t> last;  // block -> 1 + run index
  for (std::uint64_t i = 0; i < runs_.size(); ++i) {
    auto [it, inserted] =
        last.try_emplace(runs_[i].block, static_cast<std::uint32_t>(i + 1));
    if (!inserted) {
      steps_[i].prev1 = it->second;
      it->second = static_cast<std::uint32_t>(i + 1);
    }
  }
}

void BlockRunTrace::replay_into(Machine& machine) const {
  if (block_size_ != 0) {
    CADAPT_CHECK_MSG(machine.block_size() == block_size_,
                     "trace recorded at block size "
                         << block_size_ << ", machine uses "
                         << machine.block_size());
  }
  const std::uint64_t b = machine.block_size();
  for (const BlockRun& run : runs_) {
    machine.access_run(run.block * b, run.count);
  }
}

std::vector<BlockId> BlockRunTrace::expand() const {
  std::vector<BlockId> blocks;
  blocks.reserve(accesses_);
  for (const BlockRun& run : runs_) {
    blocks.insert(blocks.end(), run.count, run.block);
  }
  return blocks;
}

void BlockRunRecorder::access_cold(WordAddr, BlockId block) {
  if (have_run_ && block == run_block_) return;  // per-access-path revisit
  const std::uint64_t seen = accesses() - 1;  // this access already counted
  if (have_run_) trace_.push(run_block_, seen - run_start_);
  run_block_ = block;
  run_start_ = seen;
  have_run_ = true;
  mark_hot(block);
}

BlockRunTrace BlockRunRecorder::take() {
  if (have_run_) {
    trace_.push(run_block_, accesses() - run_start_);
    have_run_ = false;
  }
  trace_.ensure_replay_index();
  return std::move(trace_);
}

}  // namespace cadapt::paging
