#include "paging/ca_machine.hpp"

#include "util/check.hpp"

namespace cadapt::paging {

CaMachine::CaMachine(std::unique_ptr<profile::BoxSource> source,
                     std::uint64_t block_size, bool record_boxes,
                     obs::PagingRecorder* recorder)
    : source_(std::move(source)), cache_(0), block_size_(block_size),
      record_boxes_(record_boxes), recorder_(recorder) {
  CADAPT_CHECK(source_ != nullptr);
  CADAPT_CHECK(block_size >= 1);
  start_next_box();
}

void CaMachine::start_next_box() {
  const auto box = source_->next();
  CADAPT_CHECK_MSG(box.has_value(),
                   "profile exhausted after " << boxes_started_
                                              << " boxes; wrap finite profiles "
                                                 "in profile::CyclingSource");
  box_size_ = *box;
  CADAPT_CHECK(box_size_ >= 1);
  if (box_hook_) box_hook_(boxes_started_, box_size_);
  misses_in_box_ = 0;
  ++boxes_started_;
  cache_.clear();
  cache_.set_capacity(box_size_);
  if (record_boxes_) box_log_.push_back(box_size_);
  if (recorder_ != nullptr) recorder_->on_box_start(box_size_);
}

void CaMachine::access(WordAddr addr) {
  ++accesses_;
  const BlockId block = addr / block_size_;
  if (cache_.access(block)) {  // hit: free
    if (recorder_ != nullptr) {
      recorder_->on_access(box_size_, /*hit=*/true, /*evicted=*/false);
    }
    return;
  }
  // The access that fell out of the current box's capacity starts the
  // next box; with the cleared cache it is necessarily a miss there.
  if (misses_in_box_ == box_size_) {
    start_next_box();
    const bool hit = cache_.access(block);
    CADAPT_CHECK(!hit);
  }
  ++misses_;
  ++misses_in_box_;
  if (recorder_ != nullptr) {
    // The CA machine never evicts under pressure: each box's cache is
    // exactly as large as its miss budget, so a box fills up and is then
    // cleared wholesale at the boundary.
    recorder_->on_access(box_size_, /*hit=*/false, /*evicted=*/false);
  }
}

}  // namespace cadapt::paging
