#include "paging/ca_machine.hpp"

#include "util/check.hpp"

namespace cadapt::paging {

const char* replay_path_name(ReplayPath path) {
  switch (path) {
    case ReplayPath::kNone: return "none";
    case ReplayPath::kFastWalk: return "fast-walk";
    case ReplayPath::kGenericConfig: return "generic:config";
    case ReplayPath::kGenericRecorder: return "generic:recorder";
    case ReplayPath::kGenericPerAccess: return "generic:per-access";
    case ReplayPath::kGenericBoxHook: return "generic:box-hook";
    case ReplayPath::kGenericUsedMachine: return "generic:used-machine";
    case ReplayPath::kGenericUnindexed: return "generic:unindexed";
  }
  return "?";
}

CaMachine::CaMachine(std::unique_ptr<profile::BoxSource> source,
                     std::uint64_t block_size, bool record_boxes,
                     obs::PagingRecorder* recorder, CaConfig config)
    : Machine(block_size), source_(std::move(source)), cache_(0),
      config_(std::move(config)), plain_(config_.plain_lru()),
      record_boxes_(record_boxes), recorder_(recorder) {
  CADAPT_CHECK(source_ != nullptr);
  config_.validate();
  if (!plain_) {
    tier1_ = make_policy_cache(config_.policy, 0);
    if (config_.two_tier()) {
      tier2_ = make_policy_cache(config_.policy, config_.tier2_blocks);
    }
  }
  // Per-access recorder granularity is incompatible with the repeat-hit
  // shortcut (skipped hits would never reach on_access), so a recorder
  // pins the machine to the reference path.
  if (recorder_ != nullptr) set_per_access(true);
  start_next_box();
}

void CaMachine::start_next_box() {
  const auto box = source_->next();
  CADAPT_CHECK_MSG(box.has_value(),
                   "profile exhausted after " << boxes_started_
                                              << " boxes; wrap finite profiles "
                                                 "in profile::CyclingSource");
  box_size_ = *box;
  CADAPT_CHECK(box_size_ >= 1);
  if (box_hook_) box_hook_(boxes_started_, box_size_);
  misses_in_box_ = 0;
  ++boxes_started_;
  if (plain_) {
    cache_.clear();
    cache_.set_capacity(box_size_);
  } else {
    // The boundary clear is a model reset: tier-1 contents vanish
    // without spilling into tier 2. Tier 2 persists across boxes.
    tier1_->clear();
    tier1_->set_capacity(config_.tier1_capacity(box_size_));
  }
  if (record_boxes_) {
    if (box_log_cap_ != 0 && box_log_.size() >= box_log_cap_ * 2) {
      const std::size_t drop = box_log_.size() - box_log_cap_;
      box_log_.erase(box_log_.begin(),
                     box_log_.begin() + static_cast<std::ptrdiff_t>(drop));
      box_log_dropped_ += drop;
    }
    box_log_.push_back(box_size_);
  }
  if (recorder_ != nullptr) recorder_->on_box_start(box_size_);
}

void CaMachine::replay_trace(const BlockRunTrace& trace) {
  // The fast walk's never-evict argument only holds for the historical
  // Definition-1 machine (plain LRU, full share, one tier); everything
  // else must actually run the cache(s).
  ReplayPath generic = ReplayPath::kNone;
  if (!plain_) {
    generic = ReplayPath::kGenericConfig;
  } else if (recorder_ != nullptr) {
    generic = ReplayPath::kGenericRecorder;
  } else if (per_access()) {
    generic = ReplayPath::kGenericPerAccess;
  } else if (box_hook_) {
    generic = ReplayPath::kGenericBoxHook;
  } else if (accesses() != 0) {
    generic = ReplayPath::kGenericUsedMachine;
  } else if (!trace.has_replay_index()) {
    generic = ReplayPath::kGenericUnindexed;
  }
  if (generic != ReplayPath::kNone) {
    last_replay_path_ = generic;
    trace.replay_into(*this);
    return;
  }
  last_replay_path_ = ReplayPath::kFastWalk;
  if (trace.block_size() != 0) {
    CADAPT_CHECK_MSG(block_size() == trace.block_size(),
                     "trace recorded at block size "
                         << trace.block_size() << ", machine uses "
                         << block_size());
  }
  const std::vector<BlockRunTrace::ReplayStep>& steps = trace.replay_steps();
  std::uint64_t box_start = 0;  // run index where the current box began
  std::uint64_t new_misses = 0;
  for (std::uint64_t i = 0; i < steps.size(); ++i) {
    // prev1 <= box_start: the block was last touched before this box
    // began (or never) — it is not cached, so this run opens with a miss;
    // all other accesses of the run hit for free. Kept branchless (the
    // miss/hit pattern is data-dependent) except for the rare rollover.
    const std::uint64_t miss =
        static_cast<std::uint64_t>(steps[i].prev1 <= box_start);
    misses_in_box_ += miss;
    new_misses += miss;
    if (misses_in_box_ > box_size_) [[unlikely]] {
      // On the direct path the access that overflows the box first
      // misses in (and evicts from) the dying box's full cache, then
      // re-misses after the boundary clears it.
      ++replay_evictions_;
      ++replay_misses_;
      start_next_box();
      box_start = i;
      misses_in_box_ = 1;
    }
  }
  misses_ += new_misses;
  replay_misses_ += new_misses;
  replay_hits_ += trace.accesses() - new_misses;
  count_bulk_accesses(trace.accesses());
}

void CaMachine::access_cold_general(BlockId block) {
  // Tier 1 follows the (possibly scaled) box profile under the chosen
  // policy; unlike the Definition-1 fast path it can genuinely evict
  // under pressure.
  LruCache::AccessResult r1 = tier1_->access_tracking(block);
  if (r1.hit) {  // tier-1 hit: free
    if (recorder_ != nullptr) {
      recorder_->on_access(box_size_, /*hit=*/true, /*evicted=*/false);
    }
    mark_hot(block);
    return;
  }
  clear_hot();
  // Spill the victim down before fetching: tier 2 models the next
  // memory level, so a block pushed out of tier 1 lands there (free —
  // write-back is not charged against the box budget).
  if (tier2_ != nullptr && r1.evicted) tier2_->access(r1.victim);
  // Asymmetric costs can overshoot the budget, so boxes roll over on
  // >=, not ==; the overshooting access's cost was charged to the box
  // that ran out (it overruns rather than splits).
  if (misses_in_box_ >= box_size_) {
    start_next_box();
    // Mirror the plain path's boundary double-miss: the access re-runs
    // against the fresh (cleared) tier 1, which cannot hit.
    const LruCache::AccessResult r1b = tier1_->access_tracking(block);
    CADAPT_CHECK(!r1b.hit);
  }
  std::uint64_t cost = 1;
  if (tier2_ != nullptr) {
    const LruCache::AccessResult r2 = tier2_->access_tracking(block);
    cost = r2.hit ? config_.tier2_hit_cost : config_.tier2_miss_cost;
    if (recorder_ != nullptr) recorder_->on_tier2(r2.hit);
  }
  misses_ += cost;
  misses_in_box_ += cost;
  if (recorder_ != nullptr) {
    recorder_->on_access(box_size_, /*hit=*/false, r1.evicted);
  }
  // No mark_hot here, unlike the plain path: the first re-access after
  // a miss is a hit that still mutates policy state (CLOCK/CAR set the
  // reference bit, ARC promotes T1 -> T2), so it must reach the cache.
  // Once that hit has run (and armed the shortcut above), further
  // repeats are idempotent for every policy in the zoo.
}

void CaMachine::access_cold(WordAddr, BlockId block) {
  if (!plain_) [[unlikely]] {
    access_cold_general(block);
    return;
  }
  if (cache_.access(block)) {  // hit: free
    if (recorder_ != nullptr) {
      recorder_->on_access(box_size_, /*hit=*/true, /*evicted=*/false);
    }
    mark_hot(block);  // the MRU block survives until the next miss at worst
    return;
  }
  // The hook/check below can throw mid-access; drop the repeat shortcut
  // first so a contained failure cannot leave a stale hot block.
  clear_hot();
  // The access that fell out of the current box's capacity starts the
  // next box; with the cleared cache it is necessarily a miss there.
  if (misses_in_box_ == box_size_) {
    start_next_box();
    const bool hit = cache_.access(block);
    CADAPT_CHECK(!hit);
  }
  ++misses_;
  ++misses_in_box_;
  if (recorder_ != nullptr) {
    // The CA machine never evicts under pressure: each box's cache is
    // exactly as large as its miss budget, so a box fills up and is then
    // cleared wholesale at the boundary.
    recorder_->on_access(box_size_, /*hit=*/false, /*evicted=*/false);
  }
  mark_hot(block);  // just loaded: box capacity >= 1 keeps it resident
}

}  // namespace cadapt::paging
