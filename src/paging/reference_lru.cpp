#include "paging/reference_lru.hpp"

#include <utility>

#include "util/check.hpp"

namespace cadapt::paging {

ReferenceLruCache::ReferenceLruCache(std::uint64_t capacity_blocks)
    : capacity_(capacity_blocks) {}

LruCache::AccessResult ReferenceLruCache::access_tracking(BlockId block) {
  LruCache::AccessResult result;
  const auto it = map_.find(block);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    result.hit = true;
    ++stats_.hits;
    return result;
  }
  ++stats_.misses;
  if (capacity_ == 0) return result;  // nothing can be retained
  if (map_.size() == capacity_) {
    result.evicted = true;
    result.victim = order_.back();
    ++stats_.evictions;
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(block);
  map_[block] = order_.begin();
  return result;
}

void ReferenceLruCache::set_capacity(std::uint64_t capacity_blocks) {
  capacity_ = capacity_blocks;
  evict_to(capacity_);
}

void ReferenceLruCache::clear() {
  order_.clear();
  map_.clear();
}

void ReferenceLruCache::evict_to(std::uint64_t limit) {
  while (map_.size() > limit) {
    ++stats_.evictions;
    map_.erase(order_.back());
    order_.pop_back();
  }
}

ReferenceCaMachine::ReferenceCaMachine(
    std::unique_ptr<profile::BoxSource> source, std::uint64_t block_size)
    : Machine(block_size), source_(std::move(source)), cache_(0) {
  CADAPT_CHECK(source_ != nullptr);
  start_next_box();
}

void ReferenceCaMachine::start_next_box() {
  const auto box = source_->next();
  CADAPT_CHECK_MSG(box.has_value(),
                   "profile exhausted after " << boxes_started_
                                              << " boxes; wrap finite profiles "
                                                 "in profile::CyclingSource");
  box_size_ = *box;
  CADAPT_CHECK(box_size_ >= 1);
  misses_in_box_ = 0;
  ++boxes_started_;
  cache_.clear();
  cache_.set_capacity(box_size_);
}

void ReferenceCaMachine::access_cold(WordAddr, BlockId block) {
  if (cache_.access(block)) return;  // hit: free
  // The access that fell out of the current box's capacity starts the
  // next box; with the cleared cache it is necessarily a miss there.
  if (misses_in_box_ == box_size_) {
    start_next_box();
    const bool hit = cache_.access(block);
    CADAPT_CHECK(!hit);
  }
  ++misses_;
  ++misses_in_box_;
}

}  // namespace cadapt::paging
