// Parallel Monte-Carlo estimation of cache-adaptivity in expectation
// (Definition 3): repeatedly run an (a,b,c)-regular execution on freshly
// drawn random profiles and aggregate the adaptivity ratio
// Σ min(n,|□_i|)^{log_b a} / n^{log_b a} and the stopping time S_n.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "engine/exec.hpp"
#include "model/regular.hpp"
#include "obs/recorder.hpp"
#include "profile/box_source.hpp"
#include "profile/distributions.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace cadapt::engine {

/// Builds a fresh profile stream for one trial from a trial-specific RNG.
/// Determinism: the RNG depends only on (seed, trial index), never on
/// scheduling, so results are reproducible across thread counts.
using TrialSourceFactory =
    std::function<std::unique_ptr<profile::BoxSource>(util::Rng&)>;

struct McOptions {
  std::uint64_t trials = 64;
  std::uint64_t seed = 42;
  ScanPlacement placement = ScanPlacement::kEnd;
  BoxSemantics semantics = BoxSemantics::kOptimistic;
  std::uint64_t max_boxes = UINT64_C(1) << 40;
  util::ThreadPool* pool = nullptr;  ///< nullptr = util::default_pool()
  /// Optional observability hook: receives one obs::TrialObservation per
  /// trial (in trial order, deterministic across pool sizes) plus the
  /// final "mc" aggregate event. Null = disabled, zero overhead.
  obs::McRecorder* recorder = nullptr;
};

struct McSummary {
  /// Ratio statistics cover COMPLETED trials only: a trial that hit the
  /// box cap has no meaningful ratio, so recording its partial value
  /// would bias the mean downward silently. Invariants (tested):
  ///   ratio.count() == ratio_samples.size()
  ///   ratio_samples.size() + incomplete == trials
  /// `boxes` covers all trials (an incomplete trial spent max_boxes).
  util::RunningStat ratio;       ///< adaptivity ratio per completed trial
  util::RunningStat unit_ratio;  ///< operation-based ratio per completed trial
  util::RunningStat boxes;       ///< boxes consumed per trial (S_n)
  std::uint64_t incomplete = 0;  ///< trials that hit the box cap / exhaustion
  /// Raw per-completed-trial samples, for tail statistics
  /// (beyond-expectation analysis: Definition 3 only bounds the mean).
  /// Use an obs::McRecorder to see which trials were dropped and why.
  std::vector<double> ratio_samples;
  std::vector<double> unit_ratio_samples;
};

/// Fully custom trial body for experiments that must couple the profile
/// and the execution (e.g. the adversary-matched order perturbation):
/// receives a per-trial seed and returns the finished RunResult.
using TrialRunner = std::function<RunResult(std::uint64_t trial_seed)>;

/// Run `trials` independent trials; trial i receives a seed derived only
/// from (seed, i), so results are reproducible across thread counts.
/// A non-null recorder receives per-trial observations in trial order
/// (tests/test_engine_determinism.cpp holds this to bit-identical output
/// across pool sizes {1, 2, 8}).
McSummary run_monte_carlo_custom(std::uint64_t trials, std::uint64_t seed,
                                 const TrialRunner& runner,
                                 util::ThreadPool* pool = nullptr,
                                 obs::McRecorder* recorder = nullptr);

/// Run `options.trials` independent executions of the (params, n) algorithm
/// on profiles produced by `make_source`.
McSummary run_monte_carlo(const model::RegularParams& params, std::uint64_t n,
                          const TrialSourceFactory& make_source,
                          const McOptions& options = {});

/// Convenience: i.i.d. profile from a distribution (Theorem 1's setting).
McSummary run_monte_carlo_iid(const model::RegularParams& params,
                              std::uint64_t n,
                              const profile::BoxDistribution& dist,
                              const McOptions& options = {});

}  // namespace cadapt::engine
