// Parallel Monte-Carlo estimation of cache-adaptivity in expectation
// (Definition 3): repeatedly run an (a,b,c)-regular execution on freshly
// drawn random profiles and aggregate the adaptivity ratio
// Σ min(n,|□_i|)^{log_b a} / n^{log_b a} and the stopping time S_n.
//
// The driver is the robustness layer's main customer
// (docs/ROBUSTNESS.md): a trial that throws is *contained* as a
// structured robust::TrialError in the summary (with a bounded
// retry-with-reseed policy) instead of tearing down the campaign; a
// seeded robust::FaultPlan can inject failures at registered sites;
// resource budgets truncate a campaign explicitly; and periodic JSONL
// checkpoints make a killed campaign resumable with a bit-identical
// summary.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "engine/exec.hpp"
#include "model/regular.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "profile/box_source.hpp"
#include "profile/distributions.hpp"
#include "robust/backoff.hpp"
#include "robust/budget.hpp"
#include "robust/cancel.hpp"
#include "robust/checkpoint.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace cadapt::engine {

/// Builds a fresh profile stream for one trial from a trial-specific RNG.
/// Determinism: the RNG depends only on (seed, trial index, attempt),
/// never on scheduling, so results are reproducible across thread counts.
using TrialSourceFactory =
    std::function<std::unique_ptr<profile::BoxSource>(util::Rng&)>;

struct McOptions {
  std::uint64_t trials = 64;
  std::uint64_t seed = 42;
  ScanPlacement placement = ScanPlacement::kEnd;
  BoxSemantics semantics = BoxSemantics::kOptimistic;
  std::uint64_t max_boxes = UINT64_C(1) << 40;
  /// Force the per-box reference driver in every trial (docs/PERF.md);
  /// the default bulk path is bit-identical, so this exists for
  /// differential tests and debugging.
  bool per_box = false;
  util::ThreadPool* pool = nullptr;  ///< nullptr = util::default_pool()
  /// Optional observability hook: receives one obs::TrialObservation (or
  /// obs::TrialErrorObservation) per trial — in trial order, deterministic
  /// across pool sizes — plus the final "mc" aggregate event. Null =
  /// disabled, zero overhead.
  obs::McRecorder* recorder = nullptr;

  // ---- Robustness controls (docs/ROBUSTNESS.md) ----
  /// Attempts per trial before its failure is recorded as a TrialError.
  /// Attempt k reruns the trial with a reseeded derived seed; attempt 0
  /// uses the same derivation as always, so retries change nothing for
  /// campaigns that never fail.
  std::uint32_t max_attempts = 1;
  /// Seeded fault injection plan; null = no injection. The driver visits
  /// FaultSite::kTrialBody at every attempt, and run_monte_carlo wraps
  /// each trial's profile stream so FaultSite::kBoxDraw is visited per
  /// drawn box. Must outlive the call.
  const robust::FaultPlan* faults = nullptr;
  /// Wall-clock / total-box budget. A tripped budget stops the campaign
  /// at the next chunk boundary and marks the summary truncated; the
  /// trials that did run are always the prefix [0, trials_run).
  robust::Budget budget;
  /// Path for periodic JSONL checkpoints; empty = no checkpointing.
  std::string checkpoint_path;
  /// Trials per chunk: the driver runs, aggregates, and checkpoints in
  /// chunks of this size (budget checks happen at chunk boundaries).
  /// Chunking never changes the summary or the event stream.
  std::uint64_t checkpoint_every = 256;
  /// Load checkpoint_path (if it exists) and skip the trials it records;
  /// newly run trials are appended to the same file. The merged summary
  /// is bit-identical to an uninterrupted run. The checkpoint's header
  /// (trials, seed, config) must match or the driver throws ParseError.
  bool resume = false;
  /// Free-form fingerprint of the campaign stored in the checkpoint
  /// header and verified on resume (fill it with params/distribution/
  /// semantics — anything that shapes a trial besides trials and seed).
  std::string config;
  /// Test seam for the wall-clock deadline.
  obs::ClockFn clock = &obs::steady_now_ns;
  /// Cooperative cancellation token polled at every attempt start and
  /// forwarded into the engine's box loops (docs/ROBUSTNESS.md). Null =
  /// disabled. Create the token (and any robust::Watchdog) BEFORE
  /// building runners: make_regular_trial_runner captures options by
  /// value. A fired token truncates the campaign at the next chunk
  /// boundary, discarding the in-flight chunk wholesale.
  const robust::CancelToken* cancel = nullptr;
  /// Seeded exponential backoff between retry attempts of a failed
  /// trial; disabled (base_ns == 0) by default. Attempt 0 never sleeps,
  /// so campaigns that do not retry are bit-compatible with pre-backoff
  /// artifacts. The realized delay lands in TrialRecord::backoff_ns.
  robust::BackoffPolicy backoff;
  /// Test seam for backoff sleeping; null = real sleep in <=10ms slices
  /// that poll `cancel` between slices (a cancelled campaign never waits
  /// out a long backoff schedule).
  void (*sleep_fn)(std::uint64_t ns) = nullptr;
  /// Durable I/O backend for checkpoint writes; null = robust::system_io().
  /// Tests substitute robust::FaultyIo to exercise ENOSPC/short-write/
  /// fsync failures without touching a real filesystem knob.
  robust::IoBackend* io = nullptr;
};

struct McSummary {
  /// Ratio statistics cover COMPLETED trials only: a trial that hit the
  /// box cap has no meaningful ratio, so recording its partial value
  /// would bias the mean downward silently. Invariants (tested):
  ///   ratio.count() == ratio_samples.size()
  ///   ratio_samples.size() + incomplete + failed == trials_run
  /// `boxes` covers all non-failed trials (an incomplete trial spent
  /// max_boxes; a failed trial's spend is unknowable mid-exception).
  util::RunningStat ratio;       ///< adaptivity ratio per completed trial
  util::RunningStat unit_ratio;  ///< operation-based ratio per completed trial
  util::RunningStat boxes;       ///< boxes consumed per non-failed trial
  std::uint64_t incomplete = 0;  ///< trials that hit the box cap / exhaustion
  /// Of the incomplete trials, how many stopped on the max_boxes cap
  /// (StopReason::kBoxCapHit); the rest exhausted their finite source.
  std::uint64_t capped = 0;
  /// Raw per-completed-trial samples, for tail statistics
  /// (beyond-expectation analysis: Definition 3 only bounds the mean).
  /// Use an obs::McRecorder to see which trials were dropped and why.
  std::vector<double> ratio_samples;
  std::vector<double> unit_ratio_samples;

  /// Contained trial failures, in trial order. A campaign only throws
  /// for *campaign-level* faults (unreadable checkpoint, bad options);
  /// per-trial exceptions land here instead.
  std::vector<robust::TrialError> errors;
  std::uint64_t failed = 0;  ///< == errors.size()
  /// True when a budget or cancellation stopped the campaign early. The
  /// mean over the prefix [0, trials_run) is still an unbiased estimate
  /// (trials are exchangeable), but it is never silently presented as
  /// the full run.
  bool truncated = false;
  /// Why the campaign truncated (kNone when truncated == false):
  /// kBudget for the box budget, kDeadline for the wall-clock deadline
  /// (tracker- or watchdog-detected), kExternal for an externally
  /// requested CancelToken.
  robust::CancelReason truncate_reason = robust::CancelReason::kNone;
  std::uint64_t trials_requested = 0;
  std::uint64_t trials_run = 0;  ///< prefix of trials actually aggregated
};

/// Fully custom trial body for experiments that must couple the profile
/// and the execution (e.g. the adversary-matched order perturbation):
/// receives a per-trial seed and returns the finished RunResult.
using TrialRunner = std::function<RunResult(std::uint64_t trial_seed)>;

/// Trial body with access to the trial's fault injector, so custom
/// runners can visit registered fault sites (wrap sources in
/// robust::FaultyBoxSource, sinks in robust::FaultySink, ...).
using RobustTrialRunner =
    std::function<RunResult(std::uint64_t trial_seed,
                            robust::FaultInjector& faults)>;

/// Derived seed of (campaign seed, trial, attempt). Attempt 0 is the
/// historical derivation — recorded seeds from older traces reproduce.
std::uint64_t derive_trial_seed(std::uint64_t seed, std::uint64_t trial,
                                std::uint32_t attempt);

/// Run ONE trial with the full containment policy (bounded retry with
/// reseed, fault injection, categorized capture). Never throws: the
/// record of a trial that exhausts its attempts carries the last
/// attempt's category and message. Only `options`' seed, max_attempts and
/// faults fields participate. This is the unit the campaign runner
/// (src/campaign) drives inline from its own worker threads — same
/// containment as run_monte_carlo_robust, no nested thread pools.
robust::TrialRecord run_single_trial(const McOptions& options,
                                     const RobustTrialRunner& runner,
                                     std::uint64_t trial, bool timing = false);

/// Package the standard (params, n, source-factory) trial body — the one
/// run_monte_carlo executes — as a self-contained runner: draws a fresh
/// profile per trial from make_source and runs the regular execution
/// against it, routing box draws through the trial's fault injector when
/// options.faults is armed. Captures everything by value except
/// options.faults (a borrowed pointer that must outlive the runner).
RobustTrialRunner make_regular_trial_runner(model::RegularParams params,
                                            std::uint64_t n,
                                            TrialSourceFactory make_source,
                                            const McOptions& options);

/// Adapt a seed-only TrialRunner to the robust interface (the injector's
/// kTrialBody site still fires in run_single_trial before the body runs).
RobustTrialRunner as_robust_runner(TrialRunner runner);

/// The full robust driver: containment, retries, fault injection,
/// budgets, checkpoint/resume — all controlled by `options` (trials,
/// seed, pool, recorder and the robustness fields; placement/semantics/
/// max_boxes are ignored here, they belong to run_monte_carlo's runner).
McSummary run_monte_carlo_robust(const McOptions& options,
                                 const RobustTrialRunner& runner);

/// Run `trials` independent trials; trial i receives a seed derived only
/// from (seed, i), so results are reproducible across thread counts.
/// A non-null recorder receives per-trial observations in trial order
/// (tests/test_engine_determinism.cpp holds this to bit-identical output
/// across pool sizes {1, 2, 8}). A trial that throws is contained as a
/// TrialError in the summary (no retries at this entry point).
McSummary run_monte_carlo_custom(std::uint64_t trials, std::uint64_t seed,
                                 const TrialRunner& runner,
                                 util::ThreadPool* pool = nullptr,
                                 obs::McRecorder* recorder = nullptr);

/// Run `options.trials` independent executions of the (params, n) algorithm
/// on profiles produced by `make_source`.
McSummary run_monte_carlo(const model::RegularParams& params, std::uint64_t n,
                          const TrialSourceFactory& make_source,
                          const McOptions& options = {});

/// Convenience: i.i.d. profile from a distribution (Theorem 1's setting).
McSummary run_monte_carlo_iid(const model::RegularParams& params,
                              std::uint64_t n,
                              const profile::BoxDistribution& dist,
                              const McOptions& options = {});

}  // namespace cadapt::engine
