// Brute-force reference implementation of the §4 simplified caching
// semantics, used to differential-test engine::RegularExecution.
//
// The whole execution of the algorithm is flattened into a vector of unit
// accesses (base cases and individual scan blocks) with, for every unit,
// the chain of enclosing problems. Box consumption is then resolved by
// direct lookup. Memory is Θ(total accesses · depth), so this is only for
// small problems — which is exactly what a test oracle needs to be:
// simple and obviously correct.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/exec.hpp"
#include "model/regular.hpp"
#include "profile/box.hpp"

namespace cadapt::engine {

class ReferenceExecution {
 public:
  ReferenceExecution(const model::RegularParams& params, std::uint64_t n,
                     ScanPlacement placement = ScanPlacement::kEnd,
                     std::uint64_t adversary_seed = 0,
                     BoxSemantics semantics = BoxSemantics::kOptimistic);

  BoxReport consume_box(profile::BoxSize s);

  /// Runs consume as a literal per-box loop — the oracle stays obviously
  /// correct; provided so differential tests can feed both engines the
  /// same run stream.
  RunReport consume_run(profile::BoxSize s, std::uint64_t count);

  /// Pure successor function under the optimistic semantics: the position
  /// after a box of size s starting at `pos` (no state is mutated). Used
  /// by the exhaustive adversary search (engine/adversary.hpp).
  std::size_t advance_from(std::size_t pos, profile::BoxSize s) const;

  /// Pure successor under the budgeted semantics (same contract).
  std::size_t advance_from_budgeted(std::size_t pos,
                                    profile::BoxSize s) const;

  bool done() const { return pos_ == units_.size(); }
  std::uint64_t leaves_done() const { return leaves_done_; }
  std::uint64_t total_units() const { return units_.size(); }
  /// Units consumed so far (comparable to RegularExecution::units_done()).
  std::uint64_t units_done() const { return pos_; }

 private:
  struct Unit {
    bool is_leaf;
    /// Exclusive end (unit index) of the scan chunk this unit belongs to
    /// (only for scan units).
    std::size_t chunk_end;
    /// Enclosing problems, outermost first: (size, exclusive end index).
    std::vector<std::pair<std::uint64_t, std::size_t>> enclosing;
  };

  void build(std::uint64_t size,
             std::vector<std::pair<std::uint64_t, std::size_t>>& chain,
             std::uint64_t node_hash);
  BoxReport consume_box_optimistic(profile::BoxSize s);
  BoxReport consume_box_budgeted(profile::BoxSize s);
  /// Advance pos_ to new_pos, counting leaves into the report, and record
  /// the largest problem whose end coincides with new_pos.
  void advance_to(std::size_t new_pos, BoxReport& report);
  /// Total units of a problem of the given size (placement-independent).
  std::uint64_t units_of(std::uint64_t size) const;

  model::RegularParams params_;
  ScanPlacement placement_;
  BoxSemantics semantics_;
  std::vector<Unit> units_;
  std::size_t pos_ = 0;
  std::uint64_t leaves_done_ = 0;
};

}  // namespace cadapt::engine
