// Execution of an (a,b,c)-regular algorithm over a square profile, under
// the simplified caching semantics of Section 4 of the paper (proved
// there to be w.l.o.g. for cache-adaptive analysis):
//
//   * a box of size s that begins inside a problem of size <= s completes
//     the largest enclosing problem of size <= s, and goes no further;
//   * a box of size s that begins in the scan of a problem larger than s
//     advances min(s, remaining scan) accesses of that scan.
//
// The execution is symbolic: no data is touched, only the position within
// the recursion tree is tracked, so profiles with tens of millions of
// boxes run in seconds. (The paging + algos modules provide the
// complementary *concrete* machine that runs real algorithms.)
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "model/potential.hpp"
#include "model/regular.hpp"
#include "profile/box_source.hpp"

namespace cadapt::obs {
class ExecRecorder;
enum class ExecBranch : std::uint8_t;
}  // namespace cadapt::obs

namespace cadapt::robust {
class CancelToken;
}  // namespace cadapt::robust

namespace cadapt::engine {

/// Where the linear scan of each problem is placed.
///
/// kEnd is the paper's canonical form (w.l.o.g. for its worst-case
/// constructions): the whole scan follows the last recursive call.
/// kInterleaved splits the scan into a equal chunks, one after each
/// recursive call — a lightweight form of the scan-hiding idea of
/// Lincoln et al. [40] that de-synchronizes the scan from profiles
/// engineered against trailing scans.
/// kAdversaryMatched places each problem's whole scan after child number
/// profile::OrderPerturbedWorstCaseSource::own_after(node_hash, a): with
/// the same seed it mirrors the order-perturbed worst-case profile — the
/// witness algorithm for the paper's third negative result.
enum class ScanPlacement { kEnd, kInterleaved, kAdversaryMatched };

/// How much work one box can complete.
///
/// kOptimistic is the paper's §4 simplified model: a box of size s
/// beginning inside a problem of size <= s completes the largest
/// enclosing problem of size <= s, regardless of how much of that problem
/// already ran. This is the semantics under which the paper proves its
/// positive theorem (it only over-credits boxes, which is safe for an
/// upper bound).
///
/// kBudgeted is a conservative model of the underlying machine when the
/// algorithm's scans and sibling subproblems occupy disjoint blocks: the
/// box has a budget of s block loads; completing a whole problem of size
/// m (from its start) costs m, and each scan access costs 1. A box never
/// jumps out of a scan it lands in — exactly the accounting behind the
/// paper's worst-case profiles and its negative (robustness) results.
enum class BoxSemantics { kOptimistic, kBudgeted };

/// Result of consuming one box.
struct BoxReport {
  /// Base-case subproblems completed within this box (the paper's
  /// "progress").
  std::uint64_t progress = 0;
  /// Size of the problem this box completed in full, or 0 if the box only
  /// advanced a scan.
  std::uint64_t completed_problem = 0;
  // Note: the per-box scan advance (non-base-case unit accesses) is NOT a
  // field here — keeping this struct register-returnable (16 bytes on the
  // SysV ABI) is what keeps the uninstrumented hot loop at seed speed. An
  // attached obs::ExecRecorder receives it per box, derived from the
  // identity scan = units_done() - leaves_done(); per run,
  // Σ progress + Σ scan_advance == total_units() — the conservation
  // invariant the observability layer checks traces against.
};

/// Result of consuming a run of equal-size boxes (consume_run).
struct RunReport {
  /// Base-case subproblems completed within the run.
  std::uint64_t progress = 0;
  /// Largest problem completed in full by any box of the run, or 0.
  std::uint64_t completed_problem = 0;
};

/// Position snapshot for periodicity probing (docs/PERF.md): the
/// (size, phase, scan_offset) triple of every stack frame, root first.
/// node_hash is deliberately excluded — it only influences execution
/// under ScanPlacement::kAdversaryMatched, where probing is disabled.
using StackSignature = std::vector<std::array<std::uint64_t, 3>>;

/// A certified periodic advance: starting from the probed signature, each
/// further repeat of the same box subsequence moves only stack frame
/// `frame`, by `dphase`/`doffset`, for up to `max_repeats` repeats.
struct PeriodicDelta {
  std::size_t frame = 0;
  std::uint64_t dphase = 0;
  std::uint64_t doffset = 0;
  std::uint64_t max_repeats = 0;
};

/// State machine for one execution of an (a,b,c)-regular algorithm on a
/// problem of n blocks (n a power of b).
class RegularExecution {
 public:
  /// adversary_seed is only consulted for ScanPlacement::kAdversaryMatched;
  /// pass the seed of the OrderPerturbedWorstCaseSource being matched.
  RegularExecution(const model::RegularParams& params, std::uint64_t n,
                   ScanPlacement placement = ScanPlacement::kEnd,
                   std::uint64_t adversary_seed = 0,
                   BoxSemantics semantics = BoxSemantics::kOptimistic);

  /// Feed the next box of the profile to the algorithm. Must not be
  /// called once done().
  BoxReport consume_box(profile::BoxSize s);

  /// Bulk path (docs/PERF.md): consume `count` consecutive boxes of size
  /// s, bit-identical in every observable to `count` consume_box(s) calls
  /// but O(1) per arithmetic scan stretch / certified period instead of
  /// O(count). Stops early when the execution completes; returns the
  /// number of boxes actually consumed via boxes_consumed(). Falls back
  /// to literal per-box stepping whenever a per-box recorder is attached
  /// (ExecRecorder in kBoxes granularity) or no closed form applies.
  RunReport consume_run(profile::BoxSize s, std::uint64_t count);

  /// Snapshot of the stack for periodicity probing. O(depth).
  StackSignature signature() const;

  /// Decide whether the state change since `before` (one consumed repeat
  /// of some box subsequence) is a certified periodic advance that can be
  /// replayed, and for how many further repeats (capped at `want`).
  /// Returns std::nullopt when the change is not provably periodic —
  /// always, under ScanPlacement::kAdversaryMatched, where node hashes
  /// (excluded from signatures) influence chunk placement.
  std::optional<PeriodicDelta> classify_period(const StackSignature& before,
                                               std::uint64_t want) const;

  /// Replay `m <= delta.max_repeats` further repeats in closed form:
  /// advances the delta frame arithmetically and credits
  /// m * boxes_per_repeat boxes and m * leaves_per_repeat base cases.
  /// The caller certifies (via classify_period) that literal re-execution
  /// would reach exactly this state.
  void apply_period(const PeriodicDelta& delta, std::uint64_t m,
                    std::uint64_t boxes_per_repeat,
                    std::uint64_t leaves_per_repeat);

  bool done() const { return stack_.empty(); }
  std::uint64_t problem_size() const { return n_; }
  std::uint64_t boxes_consumed() const { return boxes_consumed_; }
  /// Base cases completed so far; total_leaves() when done.
  std::uint64_t leaves_done() const { return leaves_done_; }
  std::uint64_t total_leaves() const { return total_leaves_; }
  const model::RegularParams& params() const { return params_; }

  /// Position in the flattened execution: unit accesses (base cases plus
  /// individual scan blocks) completed so far. This is the reference
  /// position r_i of the No-Catch-up Lemma (Lemma 2): a run that is ahead
  /// in units can never fall behind one that is behind, given the same
  /// remaining boxes.
  std::uint64_t units_done() const;
  /// Total unit accesses of the whole problem.
  std::uint64_t total_units() const { return units_by_level_.back(); }

  /// Attach (or detach, with nullptr) an observability recorder: every
  /// subsequent consume_box emits one obs::BoxObservation. The disabled
  /// path (no recorder) costs a single predictable branch per box —
  /// guarded by bench_microbench's BM_EngineUnitBoxes family.
  void set_recorder(obs::ExecRecorder* recorder) { recorder_ = recorder; }
  obs::ExecRecorder* recorder() const { return recorder_; }

 private:
  struct Frame {
    std::uint64_t size;         // problem size in blocks (power of b)
    std::uint64_t phase;        // 0..2a-1: even 2i = in child i, odd 2i+1 = in scan chunk i
    std::uint64_t scan_offset;  // progress within the current scan chunk
    std::uint64_t node_hash;    // path hash (used by kAdversaryMatched)
  };

  /// Scan chunk i (0-based) of the problem in frame f.
  std::uint64_t chunk_size(const Frame& f, std::uint64_t chunk) const;
  /// Children of the frame that are fully complete: (phase + 1) / 2.
  static std::uint64_t completed_children(const Frame& f) {
    return (f.phase + 1) / 2;
  }
  /// Base cases already completed strictly within stack_[idx].
  std::uint64_t leaves_done_within(std::size_t idx) const;
  /// Restore the invariant: the deepest frame is a pending base case or a
  /// scan chunk with work remaining; completed frames are retired.
  /// Returns the size of the largest problem retired, or 0.
  std::uint64_t normalize();

  BoxReport consume_box_optimistic(profile::BoxSize s);
  BoxReport consume_box_budgeted(profile::BoxSize s);
  /// Recording path, kept cold and out of line: classifies the branch the
  /// box is about to take, samples the scan position
  /// (units_done() - leaves_done()) around the box, consumes it, and
  /// emits the BoxObservation — so the hot disabled path pays only the
  /// recorder_ null test and is otherwise instruction-identical to the
  /// uninstrumented engine.
  BoxReport consume_box_recorded(profile::BoxSize s);

  model::RegularParams params_;
  std::uint64_t n_;
  ScanPlacement placement_;
  std::uint64_t adversary_seed_;
  BoxSemantics semantics_;
  std::uint64_t total_leaves_;
  std::uint64_t leaves_done_ = 0;
  std::uint64_t boxes_consumed_ = 0;
  obs::ExecRecorder* recorder_ = nullptr;
  std::vector<Frame> stack_;
  /// units_by_level_[k] = unit accesses of a problem of size b^k.
  std::vector<std::uint64_t> units_by_level_;
};

/// Why run_to_completion stopped.
enum class StopReason : std::uint8_t {
  kCompleted = 0,        ///< the algorithm finished
  kSourceExhausted = 1,  ///< finite profile ran out of boxes first
  kBoxCapHit = 2,        ///< the max_boxes cap was reached first
};

/// Outcome of running an execution to completion over a box stream.
struct RunResult {
  bool completed = false;           ///< == (stop == StopReason::kCompleted)
  StopReason stop = StopReason::kSourceExhausted;  ///< why the run ended
  std::uint64_t boxes = 0;          ///< boxes consumed (the paper's S_n)
  std::uint64_t leaves = 0;         ///< base cases completed
  double sum_bounded_potential = 0; ///< Σ min(n,|□_i|)^{log_b a}
  double ratio = 0;                 ///< sum_bounded_potential / n^{log_b a}
  /// Same criterion under the operation-based progress function (paper
  /// footnote 4): Σ ρ_U(min(n,|□_i|)) / U(n). Use for a <= b, where base
  /// cases under-count the algorithm's work.
  double unit_ratio = 0;
};

/// Knobs for run_to_completion.
struct RunOptions {
  std::uint64_t max_boxes = UINT64_C(1) << 40;
  /// Attached to the execution for the duration of the run; receives one
  /// observation per box (kBoxes granularity) or aggregated run/bulk
  /// observations (kRuns), plus the final "run" summary event.
  obs::ExecRecorder* recorder = nullptr;
  /// Force the literal per-box reference loop (source.next() +
  /// consume_box), disabling runs and block replay. The bulk path is
  /// bit-identical to this; the flag exists so differential tests and
  /// debugging can compare the two.
  bool per_box = false;
  /// Cooperative cancellation (docs/ROBUSTNESS.md): polled at every loop
  /// head (per box on the reference path, per run on the bulk path), so
  /// a deadline interrupts even a single enormous trial. Throws
  /// robust::CancelledError out of run_to_completion; the campaign
  /// drivers discard the interrupted work (never aggregate it). Null =
  /// disabled, one never-taken branch of overhead.
  const robust::CancelToken* cancel = nullptr;
};

/// Drive an execution over a box stream until the algorithm finishes, the
/// stream is exhausted, or max_boxes boxes have been consumed.
///
/// By default this is the O(runs) bulk driver of docs/PERF.md: boxes are
/// pulled via source.next_run(), consumed via consume_run, and — when the
/// source announces repeated blocks (peek_block) — whole repeats are
/// retired in closed form after one probed repeat certifies periodicity
/// (classify_period) and the floating-point accumulators certify exact
/// replayability. Every RunResult field is bit-identical to the per-box
/// reference loop (options.per_box = true). A recorder in kBoxes
/// granularity forces the reference loop so per-box traces stay intact.
RunResult run_to_completion(RegularExecution& exec, profile::BoxSource& source,
                            const RunOptions& options);

/// Legacy signature; delegates to the options overload.
RunResult run_to_completion(RegularExecution& exec, profile::BoxSource& source,
                            std::uint64_t max_boxes = UINT64_C(1) << 40,
                            obs::ExecRecorder* recorder = nullptr);

/// Convenience: build the execution and run it.
RunResult run_regular(const model::RegularParams& params, std::uint64_t n,
                      profile::BoxSource& source,
                      ScanPlacement placement = ScanPlacement::kEnd,
                      std::uint64_t max_boxes = UINT64_C(1) << 40,
                      std::uint64_t adversary_seed = 0,
                      BoxSemantics semantics = BoxSemantics::kOptimistic,
                      obs::ExecRecorder* recorder = nullptr);

/// Convenience: build the execution and run it with full options.
RunResult run_regular(const model::RegularParams& params, std::uint64_t n,
                      profile::BoxSource& source, ScanPlacement placement,
                      std::uint64_t adversary_seed, BoxSemantics semantics,
                      const RunOptions& options);

}  // namespace cadapt::engine
