#include "engine/exec.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "profile/worst_case.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace cadapt::engine {

RegularExecution::RegularExecution(const model::RegularParams& params,
                                   std::uint64_t n, ScanPlacement placement,
                                   std::uint64_t adversary_seed,
                                   BoxSemantics semantics)
    : params_(params), n_(n), placement_(placement),
      adversary_seed_(adversary_seed), semantics_(semantics) {
  params_.validate();
  CADAPT_CHECK_MSG(util::is_power_of(n, params_.b),
                   "problem size must be a power of b; n=" << n);
  total_leaves_ = params_.leaves(n);
  // U(b^0) = 1; U(b^k) = a·U(b^{k-1}) + scan_size(b^k).
  const unsigned levels = util::ilog(n, params_.b);
  units_by_level_.resize(levels + 1);
  units_by_level_[0] = 1;
  std::uint64_t size = 1;
  for (unsigned k = 1; k <= levels; ++k) {
    size *= params_.b;
    units_by_level_[k] =
        params_.a * units_by_level_[k - 1] + params_.scan_size(size);
  }
  stack_.push_back(
      {n, 0, 0, profile::OrderPerturbedWorstCaseSource::root_hash(adversary_seed_)});
  normalize();
  CADAPT_CHECK(!stack_.empty());  // a fresh problem always has work
}

std::uint64_t RegularExecution::units_done() const {
  if (stack_.empty()) return total_units();
  std::uint64_t total = 0;
  for (const Frame& f : stack_) {
    if (f.size == 1) break;  // pending base case contributes nothing
    const unsigned child_level = util::ilog(f.size / params_.b, params_.b);
    total += completed_children(f) * units_by_level_[child_level];
    const std::uint64_t chunks_complete = f.phase / 2;
    for (std::uint64_t j = 0; j < chunks_complete; ++j)
      total += chunk_size(f, j);
    if (f.phase % 2 == 1) total += f.scan_offset;
  }
  return total;
}

std::uint64_t RegularExecution::chunk_size(const Frame& f,
                                           std::uint64_t chunk) const {
  const std::uint64_t scan = params_.scan_size(f.size);
  const std::uint64_t a = params_.a;
  CADAPT_CHECK(chunk < a);
  switch (placement_) {
    case ScanPlacement::kEnd:
      return chunk + 1 == a ? scan : 0;
    case ScanPlacement::kAdversaryMatched: {
      // The whole scan goes right after child own_after (1-based); chunk
      // i follows child i+1, so the scan lands in chunk own_after - 1.
      const std::uint64_t after = profile::OrderPerturbedWorstCaseSource::
          own_after(f.node_hash, a);
      return chunk + 1 == after ? scan : 0;
    }
    case ScanPlacement::kInterleaved:
      break;
  }
  // kInterleaved: distribute as evenly as possible; earlier chunks take
  // the remainder.
  const std::uint64_t base = scan / a;
  const std::uint64_t extra = chunk < scan % a ? 1 : 0;
  return base + extra;
}

std::uint64_t RegularExecution::leaves_done_within(std::size_t idx) const {
  std::uint64_t total = 0;
  for (std::size_t i = idx; i < stack_.size(); ++i) {
    if (stack_[i].size == 1) break;  // a pending base case contributes 0
    total += completed_children(stack_[i]) * params_.leaves(stack_[i].size / params_.b);
  }
  return total;
}

std::uint64_t RegularExecution::normalize() {
  const std::uint64_t a = params_.a;
  std::uint64_t largest_retired = 0;
  while (!stack_.empty()) {
    Frame& f = stack_.back();
    if (f.size == 1) break;  // pending base case
    if (f.phase % 2 == 0) {
      // Descend into child phase/2.
      const std::uint64_t child_index = f.phase / 2;
      stack_.push_back({f.size / params_.b, 0, 0,
                        util::hash_combine(f.node_hash, child_index)});
      continue;
    }
    // Odd phase: scan chunk (phase - 1) / 2.
    if (f.scan_offset < chunk_size(f, (f.phase - 1) / 2)) break;
    f.phase += 1;
    f.scan_offset = 0;
    if (f.phase == 2 * a) {
      largest_retired = std::max(largest_retired, f.size);
      stack_.pop_back();
      if (!stack_.empty()) {
        // The parent's current (even) child phase just completed.
        stack_.back().phase += 1;
        stack_.back().scan_offset = 0;
      }
    }
  }
  return largest_retired;
}

BoxReport RegularExecution::consume_box(profile::BoxSize s) {
  CADAPT_CHECK_MSG(s >= 1, "box size must be >= 1");
  CADAPT_CHECK_MSG(!done(), "consume_box on a finished execution");
  ++boxes_consumed_;
  // Disabled path (no recorder): one predictable never-taken branch, then
  // the same tail-call dispatch as the uninstrumented engine — guarded by
  // bench_microbench's BM_EngineUnitBoxes staying within noise of the
  // seed engine.
  if (recorder_ != nullptr) [[unlikely]] return consume_box_recorded(s);
  return semantics_ == BoxSemantics::kOptimistic ? consume_box_optimistic(s)
                                                 : consume_box_budgeted(s);
}

[[gnu::cold, gnu::noinline]] BoxReport RegularExecution::consume_box_recorded(
    profile::BoxSize s) {
  // Classify the branch before consuming: frame sizes strictly decrease
  // with depth, so the box jump-completes iff the deepest frame — the
  // smallest enclosing problem — has size <= s.
  const obs::ExecBranch branch =
      semantics_ == BoxSemantics::kBudgeted ? obs::ExecBranch::kBudgeted
      : stack_.back().size <= s             ? obs::ExecBranch::kCompleteJump
                                            : obs::ExecBranch::kScanAdvance;
  // Per-box scan advance is the delta of the identity
  // scan position = units_done() - leaves_done() around the box; the two
  // O(depth) units_done() walks are paid only here, on the recording path.
  const std::uint64_t scan_before = units_done() - leaves_done_;
  const BoxReport report = semantics_ == BoxSemantics::kOptimistic
                               ? consume_box_optimistic(s)
                               : consume_box_budgeted(s);
  recorder_->on_box({boxes_consumed_ - 1, s, report.progress,
                     units_done() - leaves_done_ - scan_before,
                     report.completed_problem, branch});
  return report;
}

BoxReport RegularExecution::consume_box_optimistic(profile::BoxSize s) {
  BoxReport report;

  // Frame sizes strictly decrease with depth, so the frames of size <= s
  // form a suffix of the stack; find the topmost one.
  std::size_t idx = stack_.size();
  while (idx > 0 && stack_[idx - 1].size <= s) --idx;

  if (idx < stack_.size()) {
    // The box begins inside the problem stack_[idx] of size <= s: it
    // completes that problem in full and goes no further (§4 semantics).
    const std::uint64_t completed_size = stack_[idx].size;
    const std::uint64_t remaining =
        params_.leaves(completed_size) - leaves_done_within(idx);
    leaves_done_ += remaining;
    report.progress = remaining;
    report.completed_problem = completed_size;
    stack_.resize(idx);
    if (!stack_.empty()) {
      stack_.back().phase += 1;
      stack_.back().scan_offset = 0;
      // The jump may cascade: completing the last child of a problem with
      // no (remaining) scan completes that problem too.
      report.completed_problem =
          std::max(report.completed_problem, normalize());
    }
    return report;
  }

  // Every enclosing problem is larger than s, so the current position is
  // inside a scan (a pending base case has size 1 <= s and would have been
  // caught above).
  Frame& f = stack_.back();
  CADAPT_CHECK(f.phase % 2 == 1);
  const std::uint64_t chunk = chunk_size(f, (f.phase - 1) / 2);
  CADAPT_CHECK(f.scan_offset < chunk);
  const std::uint64_t advance = std::min<std::uint64_t>(s, chunk - f.scan_offset);
  f.scan_offset += advance;
  // Finishing the last scan chunk retires the problem (and possibly its
  // ancestors); report the largest problem retired.
  report.completed_problem = normalize();
  return report;
}

BoxReport RegularExecution::consume_box_budgeted(profile::BoxSize s) {
  BoxReport report;
  std::uint64_t budget = s;
  while (budget > 0 && !stack_.empty()) {
    Frame& f = stack_.back();
    if (f.phase % 2 == 1) {
      // In a scan: each scan access loads one (fresh) block.
      const std::uint64_t chunk = chunk_size(f, (f.phase - 1) / 2);
      CADAPT_CHECK(f.scan_offset < chunk);
      const std::uint64_t advance =
          std::min<std::uint64_t>(budget, chunk - f.scan_offset);
      f.scan_offset += advance;
      budget -= advance;
      report.completed_problem =
          std::max(report.completed_problem, normalize());
      continue;
    }
    // Pending base case. The position is at the *start* of every ancestor
    // frame reachable upward through phase-0 frames; completing one of
    // them wholesale costs its size in block loads. Take the largest that
    // fits in the remaining budget.
    CADAPT_CHECK(f.size == 1);
    std::size_t idx = stack_.size() - 1;  // the leaf frame itself
    while (idx > 0 && stack_[idx - 1].phase == 0 &&
           stack_[idx - 1].scan_offset == 0 && stack_[idx - 1].size <= budget) {
      --idx;
    }
    if (stack_[idx].size > budget) break;  // cannot even afford the leaf
    const std::uint64_t completed_size = stack_[idx].size;
    const std::uint64_t remaining =
        params_.leaves(completed_size) - leaves_done_within(idx);
    CADAPT_CHECK(remaining == params_.leaves(completed_size));  // at start
    leaves_done_ += remaining;
    report.progress += remaining;
    report.completed_problem = std::max(report.completed_problem, completed_size);
    budget -= completed_size;
    stack_.resize(idx);
    if (!stack_.empty()) {
      stack_.back().phase += 1;
      stack_.back().scan_offset = 0;
      report.completed_problem =
          std::max(report.completed_problem, normalize());
    }
  }
  return report;
}

RunResult run_to_completion(RegularExecution& exec, profile::BoxSource& source,
                            std::uint64_t max_boxes,
                            obs::ExecRecorder* recorder) {
  if (recorder != nullptr) exec.set_recorder(recorder);
  model::AdaptivityAccumulator acc(exec.params(), exec.problem_size());
  double sum_unit_potential = 0.0;
  RunResult result;
  while (!exec.done()) {
    if (exec.boxes_consumed() >= max_boxes) break;
    const auto box = source.next();
    if (!box) break;  // finite profile exhausted before completion
    acc.add_box(*box);
    sum_unit_potential +=
        model::bounded_rho_units(exec.params(), exec.problem_size(), *box);
    exec.consume_box(*box);
  }
  result.completed = exec.done();
  result.boxes = exec.boxes_consumed();
  result.leaves = exec.leaves_done();
  result.sum_bounded_potential = acc.sum_bounded_potential();
  result.ratio = acc.ratio();
  result.unit_ratio =
      sum_unit_potential /
      static_cast<double>(
          model::problem_units(exec.params(), exec.problem_size()));
  if (recorder != nullptr) recorder->finish(result.completed);
  return result;
}

RunResult run_regular(const model::RegularParams& params, std::uint64_t n,
                      profile::BoxSource& source, ScanPlacement placement,
                      std::uint64_t max_boxes, std::uint64_t adversary_seed,
                      BoxSemantics semantics, obs::ExecRecorder* recorder) {
  RegularExecution exec(params, n, placement, adversary_seed, semantics);
  return run_to_completion(exec, source, max_boxes, recorder);
}

}  // namespace cadapt::engine
