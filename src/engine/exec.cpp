#include "engine/exec.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "profile/worst_case.hpp"
#include "robust/cancel.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace cadapt::engine {

RegularExecution::RegularExecution(const model::RegularParams& params,
                                   std::uint64_t n, ScanPlacement placement,
                                   std::uint64_t adversary_seed,
                                   BoxSemantics semantics)
    : params_(params), n_(n), placement_(placement),
      adversary_seed_(adversary_seed), semantics_(semantics) {
  params_.validate();
  CADAPT_CHECK_MSG(util::is_power_of(n, params_.b),
                   "problem size must be a power of b; n=" << n);
  total_leaves_ = params_.leaves(n);
  // U(b^0) = 1; U(b^k) = a·U(b^{k-1}) + scan_size(b^k).
  const unsigned levels = util::ilog(n, params_.b);
  units_by_level_.resize(levels + 1);
  units_by_level_[0] = 1;
  std::uint64_t size = 1;
  for (unsigned k = 1; k <= levels; ++k) {
    size *= params_.b;
    units_by_level_[k] =
        params_.a * units_by_level_[k - 1] + params_.scan_size(size);
  }
  stack_.push_back(
      {n, 0, 0, profile::OrderPerturbedWorstCaseSource::root_hash(adversary_seed_)});
  normalize();
  CADAPT_CHECK(!stack_.empty());  // a fresh problem always has work
}

std::uint64_t RegularExecution::units_done() const {
  if (stack_.empty()) return total_units();
  std::uint64_t total = 0;
  for (const Frame& f : stack_) {
    if (f.size == 1) break;  // pending base case contributes nothing
    const unsigned child_level = util::ilog(f.size / params_.b, params_.b);
    total += completed_children(f) * units_by_level_[child_level];
    const std::uint64_t chunks_complete = f.phase / 2;
    for (std::uint64_t j = 0; j < chunks_complete; ++j)
      total += chunk_size(f, j);
    if (f.phase % 2 == 1) total += f.scan_offset;
  }
  return total;
}

std::uint64_t RegularExecution::chunk_size(const Frame& f,
                                           std::uint64_t chunk) const {
  const std::uint64_t scan = params_.scan_size(f.size);
  const std::uint64_t a = params_.a;
  CADAPT_CHECK(chunk < a);
  switch (placement_) {
    case ScanPlacement::kEnd:
      return chunk + 1 == a ? scan : 0;
    case ScanPlacement::kAdversaryMatched: {
      // The whole scan goes right after child own_after (1-based); chunk
      // i follows child i+1, so the scan lands in chunk own_after - 1.
      const std::uint64_t after = profile::OrderPerturbedWorstCaseSource::
          own_after(f.node_hash, a);
      return chunk + 1 == after ? scan : 0;
    }
    case ScanPlacement::kInterleaved:
      break;
  }
  // kInterleaved: distribute as evenly as possible; earlier chunks take
  // the remainder.
  const std::uint64_t base = scan / a;
  const std::uint64_t extra = chunk < scan % a ? 1 : 0;
  return base + extra;
}

std::uint64_t RegularExecution::leaves_done_within(std::size_t idx) const {
  std::uint64_t total = 0;
  for (std::size_t i = idx; i < stack_.size(); ++i) {
    if (stack_[i].size == 1) break;  // a pending base case contributes 0
    total += completed_children(stack_[i]) * params_.leaves(stack_[i].size / params_.b);
  }
  return total;
}

std::uint64_t RegularExecution::normalize() {
  const std::uint64_t a = params_.a;
  std::uint64_t largest_retired = 0;
  while (!stack_.empty()) {
    Frame& f = stack_.back();
    if (f.size == 1) break;  // pending base case
    if (f.phase % 2 == 0) {
      // Descend into child phase/2.
      const std::uint64_t child_index = f.phase / 2;
      stack_.push_back({f.size / params_.b, 0, 0,
                        util::hash_combine(f.node_hash, child_index)});
      continue;
    }
    // Odd phase: scan chunk (phase - 1) / 2.
    if (f.scan_offset < chunk_size(f, (f.phase - 1) / 2)) break;
    f.phase += 1;
    f.scan_offset = 0;
    if (f.phase == 2 * a) {
      largest_retired = std::max(largest_retired, f.size);
      stack_.pop_back();
      if (!stack_.empty()) {
        // The parent's current (even) child phase just completed.
        stack_.back().phase += 1;
        stack_.back().scan_offset = 0;
      }
    }
  }
  return largest_retired;
}

BoxReport RegularExecution::consume_box(profile::BoxSize s) {
  CADAPT_CHECK_MSG(s >= 1, "box size must be >= 1");
  CADAPT_CHECK_MSG(!done(), "consume_box on a finished execution");
  ++boxes_consumed_;
  // Disabled path (no recorder): one predictable never-taken branch, then
  // the same tail-call dispatch as the uninstrumented engine — guarded by
  // bench_microbench's BM_EngineUnitBoxes staying within noise of the
  // seed engine.
  if (recorder_ != nullptr) [[unlikely]] return consume_box_recorded(s);
  return semantics_ == BoxSemantics::kOptimistic ? consume_box_optimistic(s)
                                                 : consume_box_budgeted(s);
}

[[gnu::cold, gnu::noinline]] BoxReport RegularExecution::consume_box_recorded(
    profile::BoxSize s) {
  // Classify the branch before consuming: frame sizes strictly decrease
  // with depth, so the box jump-completes iff the deepest frame — the
  // smallest enclosing problem — has size <= s.
  const obs::ExecBranch branch =
      semantics_ == BoxSemantics::kBudgeted ? obs::ExecBranch::kBudgeted
      : stack_.back().size <= s             ? obs::ExecBranch::kCompleteJump
                                            : obs::ExecBranch::kScanAdvance;
  // Per-box scan advance is the delta of the identity
  // scan position = units_done() - leaves_done() around the box; the two
  // O(depth) units_done() walks are paid only here, on the recording path.
  const std::uint64_t scan_before = units_done() - leaves_done_;
  const BoxReport report = semantics_ == BoxSemantics::kOptimistic
                               ? consume_box_optimistic(s)
                               : consume_box_budgeted(s);
  recorder_->on_box({boxes_consumed_ - 1, s, report.progress,
                     units_done() - leaves_done_ - scan_before,
                     report.completed_problem, branch});
  return report;
}

BoxReport RegularExecution::consume_box_optimistic(profile::BoxSize s) {
  BoxReport report;

  // Frame sizes strictly decrease with depth, so the frames of size <= s
  // form a suffix of the stack; find the topmost one.
  std::size_t idx = stack_.size();
  while (idx > 0 && stack_[idx - 1].size <= s) --idx;

  if (idx < stack_.size()) {
    // The box begins inside the problem stack_[idx] of size <= s: it
    // completes that problem in full and goes no further (§4 semantics).
    const std::uint64_t completed_size = stack_[idx].size;
    const std::uint64_t remaining =
        params_.leaves(completed_size) - leaves_done_within(idx);
    leaves_done_ += remaining;
    report.progress = remaining;
    report.completed_problem = completed_size;
    stack_.resize(idx);
    if (!stack_.empty()) {
      stack_.back().phase += 1;
      stack_.back().scan_offset = 0;
      // The jump may cascade: completing the last child of a problem with
      // no (remaining) scan completes that problem too.
      report.completed_problem =
          std::max(report.completed_problem, normalize());
    }
    return report;
  }

  // Every enclosing problem is larger than s, so the current position is
  // inside a scan (a pending base case has size 1 <= s and would have been
  // caught above).
  Frame& f = stack_.back();
  CADAPT_CHECK(f.phase % 2 == 1);
  const std::uint64_t chunk = chunk_size(f, (f.phase - 1) / 2);
  CADAPT_CHECK(f.scan_offset < chunk);
  const std::uint64_t advance = std::min<std::uint64_t>(s, chunk - f.scan_offset);
  f.scan_offset += advance;
  // Finishing the last scan chunk retires the problem (and possibly its
  // ancestors); report the largest problem retired.
  report.completed_problem = normalize();
  return report;
}

BoxReport RegularExecution::consume_box_budgeted(profile::BoxSize s) {
  BoxReport report;
  std::uint64_t budget = s;
  while (budget > 0 && !stack_.empty()) {
    Frame& f = stack_.back();
    if (f.phase % 2 == 1) {
      // In a scan: each scan access loads one (fresh) block.
      const std::uint64_t chunk = chunk_size(f, (f.phase - 1) / 2);
      CADAPT_CHECK(f.scan_offset < chunk);
      const std::uint64_t advance =
          std::min<std::uint64_t>(budget, chunk - f.scan_offset);
      f.scan_offset += advance;
      budget -= advance;
      report.completed_problem =
          std::max(report.completed_problem, normalize());
      continue;
    }
    // Pending base case. The position is at the *start* of every ancestor
    // frame reachable upward through phase-0 frames; completing one of
    // them wholesale costs its size in block loads. Take the largest that
    // fits in the remaining budget.
    CADAPT_CHECK(f.size == 1);
    std::size_t idx = stack_.size() - 1;  // the leaf frame itself
    while (idx > 0 && stack_[idx - 1].phase == 0 &&
           stack_[idx - 1].scan_offset == 0 && stack_[idx - 1].size <= budget) {
      --idx;
    }
    if (stack_[idx].size > budget) break;  // cannot even afford the leaf
    const std::uint64_t completed_size = stack_[idx].size;
    const std::uint64_t remaining =
        params_.leaves(completed_size) - leaves_done_within(idx);
    CADAPT_CHECK(remaining == params_.leaves(completed_size));  // at start
    leaves_done_ += remaining;
    report.progress += remaining;
    report.completed_problem = std::max(report.completed_problem, completed_size);
    budget -= completed_size;
    stack_.resize(idx);
    if (!stack_.empty()) {
      stack_.back().phase += 1;
      stack_.back().scan_offset = 0;
      report.completed_problem =
          std::max(report.completed_problem, normalize());
    }
  }
  return report;
}

RunReport RegularExecution::consume_run(profile::BoxSize s,
                                        std::uint64_t count) {
  CADAPT_CHECK_MSG(count >= 1, "run count must be >= 1");
  CADAPT_CHECK_MSG(!done(), "consume_run on a finished execution");
  RunReport report;
  // A per-box recorder must observe every box: literal reference loop.
  if (recorder_ != nullptr && !recorder_->aggregates_runs()) {
    for (std::uint64_t i = 0; i < count && !done(); ++i) {
      const BoxReport r = consume_box(s);
      report.progress += r.progress;
      report.completed_problem =
          std::max(report.completed_problem, r.completed_problem);
    }
    return report;
  }
  CADAPT_CHECK_MSG(s >= 1, "box size must be >= 1");
  std::uint64_t consumed = 0;
  // One failed probe means the run is not periodic from here on cheaply;
  // finish it per-box instead of re-probing (and re-copying the stack)
  // for every remaining box.
  bool probing = true;
  while (consumed < count && !done()) {
    // (1) Arithmetic in-scan stretch: the position is inside a scan chunk
    // and each box advances it by exactly s, strictly within the chunk —
    // q boxes collapse to one addition. (Optimistic boxes land in the
    // scan only when every enclosing problem is larger; budgeted boxes
    // always spend their budget from inside a pending scan.)
    {
      Frame& f = stack_.back();
      if (f.phase % 2 == 1 &&
          (semantics_ == BoxSemantics::kBudgeted || f.size > s)) {
        const std::uint64_t chunk = chunk_size(f, (f.phase - 1) / 2);
        const std::uint64_t remaining = chunk - f.scan_offset;
        if (remaining > s) {
          const std::uint64_t q =
              std::min<std::uint64_t>(count - consumed, (remaining - 1) / s);
          if (q >= 1) {
            f.scan_offset += q * s;
            boxes_consumed_ += q;
            consumed += q;
            if (recorder_ != nullptr) {
              recorder_->on_run(
                  {boxes_consumed_ - q, s, q, 0, q * s, 0,
                   semantics_ == BoxSemantics::kBudgeted
                       ? obs::ExecBranch::kBudgeted
                       : obs::ExecBranch::kScanAdvance});
            }
            continue;
          }
        }
      }
    }
    // (2) One literal box, wrapped in a period probe: if the box left the
    // stack one certified periodic step ahead, the remaining equal boxes
    // replay in closed form (e.g. a run of size-b^j boxes each completing
    // one subtree of the same parent).
    const bool try_probe = probing && count - consumed >= 2 &&
                           placement_ != ScanPlacement::kAdversaryMatched;
    StackSignature sig;
    obs::ExecRecorder::Mark mark;
    if (try_probe) {
      sig = signature();
      if (recorder_ != nullptr) mark = recorder_->mark();
    }
    const std::uint64_t leaves_before = leaves_done_;
    const BoxReport r = consume_box(s);
    ++consumed;
    report.progress += r.progress;
    report.completed_problem =
        std::max(report.completed_problem, r.completed_problem);
    if (!try_probe) continue;
    if (done()) break;
    const auto delta = classify_period(sig, count - consumed);
    if (!delta) {
      probing = false;
      continue;
    }
    const std::uint64_t m = delta->max_repeats;
    const std::uint64_t leaves_per_repeat = leaves_done_ - leaves_before;
    apply_period(*delta, m, /*boxes_per_repeat=*/1, leaves_per_repeat);
    report.progress += m * leaves_per_repeat;
    consumed += m;
    if (recorder_ != nullptr) recorder_->replay(mark, m);
  }
  return report;
}

StackSignature RegularExecution::signature() const {
  StackSignature sig;
  sig.reserve(stack_.size());
  for (const Frame& f : stack_) {
    sig.push_back({f.size, f.phase, f.scan_offset});
  }
  return sig;
}

std::optional<PeriodicDelta> RegularExecution::classify_period(
    const StackSignature& before, std::uint64_t want) const {
  if (want == 0) return std::nullopt;
  // Node hashes are excluded from signatures; under kAdversaryMatched
  // they choose chunk placements, so nothing is certifiable there.
  if (placement_ == ScanPlacement::kAdversaryMatched) return std::nullopt;
  if (stack_.empty() || stack_.size() != before.size()) return std::nullopt;
  const std::size_t len = stack_.size();
  // Exactly one frame may have moved; sizes must agree everywhere (the
  // frames deeper than the moved one are the recreated descent into the
  // next child — identical triples mean identical future behavior, since
  // chunk sizes depend only on (size, placement) here).
  std::size_t p = len;
  for (std::size_t i = 0; i < len; ++i) {
    const Frame& f = stack_[i];
    if (f.size != before[i][0]) return std::nullopt;
    if (f.phase != before[i][1] || f.scan_offset != before[i][2]) {
      if (p != len) return std::nullopt;
      p = i;
    }
  }
  if (p == len) return std::nullopt;  // nothing visibly moved
  const Frame& f = stack_[p];
  const std::uint64_t phase0 = before[p][1];
  const std::uint64_t off0 = before[p][2];
  PeriodicDelta delta;
  delta.frame = p;
  if (f.phase == phase0) {
    // Same odd phase, offset advanced: in-chunk scan periodicity. Only
    // certifiable when p is the deepest frame (no suffix to re-create).
    if (p + 1 != len || f.phase % 2 != 1) return std::nullopt;
    if (f.scan_offset <= off0) return std::nullopt;
    delta.doffset = f.scan_offset - off0;
    const std::uint64_t chunk = chunk_size(f, (f.phase - 1) / 2);
    CADAPT_CHECK(f.scan_offset < chunk);  // normalized resting state
    // Stay strictly inside the chunk so every replayed state is exactly
    // the normalized state literal execution would rest in.
    delta.max_repeats = std::min<std::uint64_t>(
        want, (chunk - 1 - f.scan_offset) / delta.doffset);
  } else {
    // Phase advanced by whole children: repeated subtree completions.
    if (f.phase < phase0 || phase0 % 2 != 0 || f.phase % 2 != 0)
      return std::nullopt;
    if (off0 != 0 || f.scan_offset != 0) return std::nullopt;
    delta.dphase = f.phase - phase0;
    const std::uint64_t a = params_.a;
    const std::uint64_t di = delta.dphase / 2;
    const std::uint64_t i0 = phase0 / 2;
    const std::uint64_t i1 = f.phase / 2;
    // Each further repeat r traverses scan chunks i1+(r-1)·di .. and must
    // see the same chunk sizes the probed repeat saw at i0 .., and must
    // end still "about to descend a child" (phase < 2a) so the stack
    // shape is preserved.
    std::uint64_t m = 0;
    while (m < want) {
      const std::uint64_t r = m + 1;
      if (i1 + r * di > a - 1) break;
      bool same = true;
      for (std::uint64_t j = 0; j < di && same; ++j) {
        same = chunk_size(f, i1 + (r - 1) * di + j) == chunk_size(f, i0 + j);
      }
      if (!same) break;
      m = r;
    }
    delta.max_repeats = m;
  }
  if (delta.max_repeats == 0) return std::nullopt;
  return delta;
}

void RegularExecution::apply_period(const PeriodicDelta& delta, std::uint64_t m,
                                    std::uint64_t boxes_per_repeat,
                                    std::uint64_t leaves_per_repeat) {
  CADAPT_CHECK(m >= 1 && m <= delta.max_repeats);
  CADAPT_CHECK(delta.frame < stack_.size());
  Frame& f = stack_[delta.frame];
  f.phase += m * delta.dphase;
  f.scan_offset += m * delta.doffset;
  leaves_done_ += m * leaves_per_repeat;
  boxes_consumed_ += m * boxes_per_repeat;
}

namespace {

/// In-flight block probe of the bulk driver (docs/PERF.md): opened at a
/// source repeat boundary, closed when the execution reaches the end of
/// the first repeat — at which point the remaining repeats may be retired
/// in closed form (engine state via apply_period, source position via
/// skip_repeats, potential sums via exact replay, recorder via replay).
struct BlockProbe {
  StackSignature sig;
  std::uint64_t target = 0;        ///< boxes_consumed() ending the repeat
  std::uint64_t boxes_per_repeat = 0;
  std::uint64_t repeats_left = 0;  ///< repeats after the probed one
  std::uint64_t leaves_before = 0;
  double acc_sum_before = 0;
  std::uint64_t acc_boxes_before = 0;
  double unit_sum_before = 0;
  obs::ExecRecorder::Mark mark;
};

}  // namespace

RunResult run_to_completion(RegularExecution& exec, profile::BoxSource& source,
                            const RunOptions& options) {
  obs::ExecRecorder* recorder = options.recorder;
  if (recorder != nullptr) exec.set_recorder(recorder);
  model::AdaptivityAccumulator acc(exec.params(), exec.problem_size());
  double sum_unit_potential = 0.0;
  RunResult result;
  const std::uint64_t max_boxes = options.max_boxes;
  // The bulk path is disabled by the per_box flag and by a per-box-trace
  // recorder; either way the loop below is the seed driver, byte for byte.
  const bool bulk = !options.per_box &&
                    (recorder == nullptr || recorder->aggregates_runs());
  const robust::CancelToken* cancel = options.cancel;
  if (!bulk) {
    while (!exec.done()) {
      if (cancel != nullptr) cancel->poll();
      if (exec.boxes_consumed() >= max_boxes) {
        result.stop = StopReason::kBoxCapHit;
        break;
      }
      const auto box = source.next();
      if (!box) {  // finite profile exhausted before completion
        result.stop = StopReason::kSourceExhausted;
        break;
      }
      acc.add_box(*box);
      sum_unit_potential +=
          model::bounded_rho_units(exec.params(), exec.problem_size(), *box);
      exec.consume_box(*box);
    }
  } else {
    std::vector<BlockProbe> probes;
    const bool blocks = source.provides_blocks();
    while (!exec.done()) {
      // Per-run, not per-box: the bulk path retires millions of boxes per
      // iteration, so this is the bounded-interval poll point.
      if (cancel != nullptr) cancel->poll();
      if (exec.boxes_consumed() >= max_boxes) {
        result.stop = StopReason::kBoxCapHit;
        break;
      }
      if (blocks) {
        if (const auto blk = source.peek_block()) {
          // One-box repeats gain nothing over runs; a repeat that cannot
          // finish under the cap can never be replayed.
          if (blk->repeats >= 2 && blk->boxes_per_repeat >= 2 &&
              exec.boxes_consumed() + blk->boxes_per_repeat <= max_boxes) {
            BlockProbe probe;
            probe.sig = exec.signature();
            probe.target = exec.boxes_consumed() + blk->boxes_per_repeat;
            probe.boxes_per_repeat = blk->boxes_per_repeat;
            probe.repeats_left = blk->repeats - 1;
            probe.leaves_before = exec.leaves_done();
            probe.acc_sum_before = acc.sum_bounded_potential();
            probe.acc_boxes_before = acc.boxes();
            probe.unit_sum_before = sum_unit_potential;
            if (recorder != nullptr) probe.mark = recorder->mark();
            probes.push_back(std::move(probe));
          }
        }
      }
      const auto run = source.next_run();
      if (!run) {
        result.stop = StopReason::kSourceExhausted;
        break;
      }
      const std::uint64_t take = std::min<std::uint64_t>(
          run->count, max_boxes - exec.boxes_consumed());
      const std::uint64_t before_boxes = exec.boxes_consumed();
      exec.consume_run(run->size, take);
      // Only the boxes actually consumed are charged (the run may end
      // early when the execution completes) — same count, same values,
      // same addition sequence as the per-box loop.
      const std::uint64_t used = exec.boxes_consumed() - before_boxes;
      acc.add_boxes(run->size, used);
      sum_unit_potential = model::bulk_add(
          sum_unit_potential,
          model::bounded_rho_units(exec.params(), exec.problem_size(),
                                   run->size),
          used);
      // Close every probe whose first repeat just ended.
      while (!probes.empty() &&
             exec.boxes_consumed() >= probes.back().target) {
        const BlockProbe probe = std::move(probes.back());
        probes.pop_back();
        // Overshot the boundary (a run straddled it) or finished: the
        // probe cannot certify anything — drop it, keep consuming.
        if (exec.boxes_consumed() != probe.target || exec.done()) continue;
        // Defensive re-peek: the source must still be at a boundary of
        // the same block, one repeat in.
        const auto cur = source.peek_block();
        if (!cur || cur->boxes_per_repeat != probe.boxes_per_repeat ||
            cur->repeats < 1) {
          continue;
        }
        const auto delta = exec.classify_period(
            probe.sig, std::min(probe.repeats_left, cur->repeats));
        if (!delta) continue;
        const std::uint64_t m = std::min(
            delta->max_repeats,
            (max_boxes - exec.boxes_consumed()) / probe.boxes_per_repeat);
        if (m == 0) continue;
        // Commit only if BOTH potential sums replay exactly (all-integer
        // window below 2^53); otherwise fall back to literal consumption.
        if (!acc.all_integer() ||
            !model::exactly_replayable(probe.acc_sum_before,
                                       acc.sum_bounded_potential(), m) ||
            !model::exactly_replayable(probe.unit_sum_before,
                                       sum_unit_potential, m)) {
          continue;
        }
        source.skip_repeats(m);
        exec.apply_period(*delta, m, probe.boxes_per_repeat,
                          exec.leaves_done() - probe.leaves_before);
        acc.apply_replay(probe.acc_sum_before, probe.acc_boxes_before, m);
        sum_unit_potential =
            model::replay_sum(probe.unit_sum_before, sum_unit_potential, m);
        if (recorder != nullptr) recorder->replay(probe.mark, m);
      }
    }
  }
  result.completed = exec.done();
  if (result.completed) result.stop = StopReason::kCompleted;
  result.boxes = exec.boxes_consumed();
  result.leaves = exec.leaves_done();
  result.sum_bounded_potential = acc.sum_bounded_potential();
  result.ratio = acc.ratio();
  result.unit_ratio =
      sum_unit_potential /
      static_cast<double>(
          model::problem_units(exec.params(), exec.problem_size()));
  if (recorder != nullptr) recorder->finish(result.completed);
  return result;
}

RunResult run_to_completion(RegularExecution& exec, profile::BoxSource& source,
                            std::uint64_t max_boxes,
                            obs::ExecRecorder* recorder) {
  RunOptions options;
  options.max_boxes = max_boxes;
  options.recorder = recorder;
  return run_to_completion(exec, source, options);
}

RunResult run_regular(const model::RegularParams& params, std::uint64_t n,
                      profile::BoxSource& source, ScanPlacement placement,
                      std::uint64_t max_boxes, std::uint64_t adversary_seed,
                      BoxSemantics semantics, obs::ExecRecorder* recorder) {
  RegularExecution exec(params, n, placement, adversary_seed, semantics);
  return run_to_completion(exec, source, max_boxes, recorder);
}

RunResult run_regular(const model::RegularParams& params, std::uint64_t n,
                      profile::BoxSource& source, ScanPlacement placement,
                      std::uint64_t adversary_seed, BoxSemantics semantics,
                      const RunOptions& options) {
  RegularExecution exec(params, n, placement, adversary_seed, semantics);
  return run_to_completion(exec, source, options);
}

}  // namespace cadapt::engine
