// Exact evaluation of the Lemma 3 stopping-time recurrence.
//
// For box sizes drawn i.i.d. from a distribution Σ, Lemma 3 expresses the
// expected number of boxes f(n) needed to complete a problem of size n in
// terms of f(n/b):
//
//   p      = Pr[|□| >= n] · f(n/b)
//   f'(n)  = Σ_{i=1..a} (1-p)^{i-1} · f(n/b)        (subproblems)
//   f(n)   = f'(n) + (1-p)^a · K(n)                 (plus the final scan)
//
// where K(n), the expected number of boxes to complete the scan alone, is
// evaluated exactly by a renewal dynamic program over the remaining scan
// length (each box advances min(s, remaining)).
//
// By Wald's identity, cache-adaptivity in expectation (Definition 3) is
// equivalent to f(n) · m_n <= O(n^{log_b a}) with
// m_n = E[min(n,|□|)^{log_b a}] — Equation 3 of the paper. The solver
// reports the ratio f(n)·m_n / n^{log_b a} per level, plus the Equation 8
// correction factors f(b^k)/f'(b^k) whose product the paper bounds by a
// constant.
#pragma once

#include <cstdint>
#include <vector>

#include "model/regular.hpp"
#include "profile/distributions.hpp"

namespace cadapt::engine {

/// Per-level output of the recurrence, for n = b^k.
struct AnalyticLevel {
  std::uint64_t n = 0;
  double f = 0;            ///< E[boxes to complete a problem of size n]
  double f_prime = 0;      ///< same, excluding the final scan
  double p = 0;            ///< Pr[a >= n box arrives during one subproblem]
  double scan_boxes = 0;   ///< K(n): E[boxes for the scan alone]
  double m_n = 0;          ///< E[min(n,|□|)^{log_b a}]
  double ratio = 0;        ///< f(n)·m_n / n^{log_b a} (Theorem 1: O(1))
  double correction = 1;   ///< f(n)/f'(n) (Equation 8 factor)
};

class AnalyticSolver {
 public:
  AnalyticSolver(const model::RegularParams& params,
                 const profile::BoxDistribution& dist);

  /// Evaluate the recurrence for n = 1, b, b^2, ..., up to n_max (a power
  /// of b). Levels are returned smallest first.
  std::vector<AnalyticLevel> solve(std::uint64_t n_max) const;

  /// E[boxes] to complete a standalone linear scan of `length` blocks.
  double expected_scan_boxes(std::uint64_t length) const;

 private:
  model::RegularParams params_;
  const profile::BoxDistribution* dist_;
};

}  // namespace cadapt::engine
