#include "engine/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::engine {

AnalyticSolver::AnalyticSolver(const model::RegularParams& params,
                               const profile::BoxDistribution& dist)
    : params_(params), dist_(&dist) {
  params_.validate();
}

double AnalyticSolver::expected_scan_boxes(std::uint64_t length) const {
  if (length == 0) return 0.0;
  // Renewal DP over the remaining scan length r: one box advances
  // min(s, r), so E[K(r)] = 1 + Σ_s Pr[s] · E[K(r - min(s, r))].
  std::vector<double> k(length + 1, 0.0);
  const auto& pmf = dist_->pmf();
  for (std::uint64_t r = 1; r <= length; ++r) {
    double acc = 1.0;
    for (const auto& entry : pmf) {
      const std::uint64_t advance = std::min<std::uint64_t>(entry.size, r);
      acc += entry.prob * k[r - advance];
    }
    k[r] = acc;
  }
  return k[length];
}

std::vector<AnalyticLevel> AnalyticSolver::solve(std::uint64_t n_max) const {
  CADAPT_CHECK(util::is_power_of(n_max, params_.b));
  const double e = params_.exponent();

  std::vector<AnalyticLevel> levels;
  double f_prev = 1.0;  // f(1): any box (size >= 1) completes a base case

  for (std::uint64_t n = 1; n <= n_max; n *= params_.b) {
    AnalyticLevel lvl;
    lvl.n = n;
    lvl.m_n = dist_->mean_min_pow(n, e);
    if (n == 1) {
      lvl.f = lvl.f_prime = 1.0;
      lvl.p = dist_->prob_ge(1);  // = 1: every box completes the base case
      lvl.scan_boxes = 0.0;
      lvl.correction = 1.0;
    } else {
      const double f_child = f_prev;
      lvl.p = std::min(1.0, dist_->prob_ge(n) * f_child);
      const double q = 1.0 - lvl.p;
      // Σ_{i=1..a} q^{i-1} f(n/b), summed in closed form when p > 0.
      double subproblem_boxes;
      if (lvl.p > 0.0) {
        subproblem_boxes =
            f_child * (1.0 - std::pow(q, static_cast<double>(params_.a))) / lvl.p;
      } else {
        subproblem_boxes = f_child * static_cast<double>(params_.a);
      }
      lvl.f_prime = subproblem_boxes;
      lvl.scan_boxes = expected_scan_boxes(params_.scan_size(n));
      lvl.f = lvl.f_prime +
              std::pow(q, static_cast<double>(params_.a)) * lvl.scan_boxes;
      lvl.correction = lvl.f_prime > 0.0 ? lvl.f / lvl.f_prime : 1.0;
    }
    lvl.ratio = lvl.f * lvl.m_n / util::pow_log_ratio(n, params_.a, params_.b);
    levels.push_back(lvl);
    f_prev = lvl.f;
    if (n > n_max / params_.b) break;  // avoid overflow on n *= b
  }
  return levels;
}

}  // namespace cadapt::engine
