#include "engine/adversary.hpp"

#include <algorithm>

#include "engine/reference.hpp"
#include "model/potential.hpp"
#include "profile/worst_case.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::engine {

AdversaryResult solve_adversary(const model::RegularParams& params,
                                std::uint64_t n, ScanPlacement placement,
                                BoxSemantics semantics) {
  params.validate();
  ReferenceExecution flat(params, n, placement, 0, semantics);
  const std::size_t units = flat.total_units();
  CADAPT_CHECK_MSG(units * n <= (1ull << 32),
                   "adversary DP too large: units=" << units << " n=" << n);
  auto advance = [&](std::size_t pos, profile::BoxSize s) {
    return semantics == BoxSemantics::kOptimistic
               ? flat.advance_from(pos, s)
               : flat.advance_from_budgeted(pos, s);
  };

  // W[pos] = max remaining potential from position pos; best_box[pos]
  // records the maximizer for witness reconstruction.
  std::vector<double> w(units + 1, 0.0);
  std::vector<profile::BoxSize> best_box(units + 1, 1);

  for (std::size_t pos = units; pos-- > 0;) {
    double best = -1.0;
    for (profile::BoxSize s = 1; s <= n; ++s) {
      const std::size_t next = advance(pos, s);
      const double value = model::bounded_rho(params, n, s) + w[next];
      if (value > best) {
        best = value;
        best_box[pos] = s;
      }
    }
    w[pos] = best;
  }

  AdversaryResult result;
  result.optimal_potential = w[0];
  result.optimal_ratio = w[0] / model::rho(params, n);
  if (params.c == 1.0 && util::is_power_of(n, params.b)) {
    result.construction_potential =
        profile::worst_case_total_potential(params.a, params.b, n);
  }
  // Reconstruct one optimal profile.
  std::size_t pos = 0;
  while (pos < units) {
    result.witness.push_back(best_box[pos]);
    pos = advance(pos, best_box[pos]);
  }
  return result;
}

}  // namespace cadapt::engine
