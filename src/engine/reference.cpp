#include "engine/reference.hpp"

#include <algorithm>

#include "profile/worst_case.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace cadapt::engine {

ReferenceExecution::ReferenceExecution(const model::RegularParams& params,
                                       std::uint64_t n,
                                       ScanPlacement placement,
                                       std::uint64_t adversary_seed,
                                       BoxSemantics semantics)
    : params_(params), placement_(placement), semantics_(semantics) {
  params_.validate();
  CADAPT_CHECK(util::is_power_of(n, params_.b));
  std::vector<std::pair<std::uint64_t, std::size_t>> chain;
  build(n, chain,
        profile::OrderPerturbedWorstCaseSource::root_hash(adversary_seed));
  CADAPT_CHECK(chain.empty());
}

void ReferenceExecution::build(
    std::uint64_t size,
    std::vector<std::pair<std::uint64_t, std::size_t>>& chain,
    std::uint64_t node_hash) {
  // Reserve a slot in the chain for this problem; the end index is patched
  // once the problem's units are all emitted.
  chain.emplace_back(size, 0);
  const std::size_t chain_idx = chain.size() - 1;
  const std::size_t start_unit = units_.size();

  auto emit_scan_chunk = [&](std::uint64_t len) {
    const std::size_t start = units_.size();
    for (std::uint64_t i = 0; i < len; ++i) {
      Unit u;
      u.is_leaf = false;
      u.chunk_end = start + len;
      u.enclosing = chain;
      units_.push_back(std::move(u));
    }
  };

  if (size == 1) {
    Unit u;
    u.is_leaf = true;
    u.chunk_end = 0;
    u.enclosing = chain;
    units_.push_back(std::move(u));
  } else {
    const std::uint64_t scan = params_.scan_size(size);
    const std::uint64_t a = params_.a;
    for (std::uint64_t child = 0; child < a; ++child) {
      build(size / params_.b, chain, util::hash_combine(node_hash, child));
      std::uint64_t len = 0;
      switch (placement_) {
        case ScanPlacement::kEnd:
          len = child + 1 == a ? scan : 0;
          break;
        case ScanPlacement::kAdversaryMatched:
          len = child + 1 == profile::OrderPerturbedWorstCaseSource::own_after(
                                 node_hash, a)
                    ? scan
                    : 0;
          break;
        case ScanPlacement::kInterleaved:
          len = scan / a + (child < scan % a ? 1 : 0);
          break;
      }
      emit_scan_chunk(len);
    }
  }

  // Patch the exclusive end of this problem in every unit it contains.
  const std::size_t end = units_.size();
  for (std::size_t i = start_unit; i < end; ++i) {
    Unit& u = units_[i];
    CADAPT_CHECK(u.enclosing.size() > chain_idx);
    CADAPT_CHECK(u.enclosing[chain_idx].first == size);
    u.enclosing[chain_idx].second = end;
  }
  chain.pop_back();
}

std::uint64_t ReferenceExecution::units_of(std::uint64_t size) const {
  std::uint64_t u = 1;
  for (std::uint64_t m = params_.b; m <= size; m *= params_.b)
    u = params_.a * u + params_.scan_size(m);
  return u;
}

void ReferenceExecution::advance_to(std::size_t new_pos, BoxReport& report) {
  CADAPT_CHECK(new_pos > pos_);
  for (std::size_t i = pos_; i < new_pos; ++i) {
    if (units_[i].is_leaf) {
      ++leaves_done_;
      ++report.progress;
    }
  }
  for (const auto& enc : units_[new_pos - 1].enclosing) {
    if (enc.second == new_pos) {
      report.completed_problem = std::max(report.completed_problem, enc.first);
      break;
    }
  }
  pos_ = new_pos;
}

BoxReport ReferenceExecution::consume_box(profile::BoxSize s) {
  CADAPT_CHECK(s >= 1);
  CADAPT_CHECK(!done());
  return semantics_ == BoxSemantics::kOptimistic ? consume_box_optimistic(s)
                                                 : consume_box_budgeted(s);
}

RunReport ReferenceExecution::consume_run(profile::BoxSize s,
                                          std::uint64_t count) {
  CADAPT_CHECK(count >= 1);
  RunReport report;
  for (std::uint64_t i = 0; i < count && !done(); ++i) {
    const BoxReport r = consume_box(s);
    report.progress += r.progress;
    report.completed_problem =
        std::max(report.completed_problem, r.completed_problem);
  }
  return report;
}

BoxReport ReferenceExecution::consume_box_budgeted(profile::BoxSize s) {
  BoxReport report;
  std::uint64_t budget = s;
  while (budget > 0 && !done()) {
    const Unit& u = units_[pos_];
    if (!u.is_leaf) {
      // Scan unit: one block load per access.
      const std::size_t advance = std::min<std::size_t>(
          static_cast<std::size_t>(budget), u.chunk_end - pos_);
      advance_to(pos_ + advance, report);
      budget -= advance;
      continue;
    }
    // Leaf: complete the largest enclosing problem that starts exactly
    // here and fits in the budget (costs its size in block loads).
    const std::pair<std::uint64_t, std::size_t>* target = nullptr;
    for (const auto& enc : u.enclosing) {
      if (enc.first <= budget && enc.second - units_of(enc.first) == pos_) {
        target = &enc;
        break;
      }
    }
    CADAPT_CHECK(target != nullptr);  // the size-1 problem always qualifies
    budget -= target->first;
    advance_to(target->second, report);
  }
  return report;
}

std::size_t ReferenceExecution::advance_from_budgeted(
    std::size_t pos, profile::BoxSize s) const {
  CADAPT_CHECK(s >= 1);
  CADAPT_CHECK(pos < units_.size());
  std::uint64_t budget = s;
  while (budget > 0 && pos < units_.size()) {
    const Unit& u = units_[pos];
    if (!u.is_leaf) {
      const std::size_t advance = std::min<std::size_t>(
          static_cast<std::size_t>(budget), u.chunk_end - pos);
      pos += advance;
      budget -= advance;
      continue;
    }
    const std::pair<std::uint64_t, std::size_t>* target = nullptr;
    for (const auto& enc : u.enclosing) {
      if (enc.first <= budget && enc.second - units_of(enc.first) == pos) {
        target = &enc;
        break;
      }
    }
    CADAPT_CHECK(target != nullptr);
    budget -= target->first;
    pos = target->second;
  }
  return pos;
}

std::size_t ReferenceExecution::advance_from(std::size_t pos,
                                             profile::BoxSize s) const {
  CADAPT_CHECK(s >= 1);
  CADAPT_CHECK(pos < units_.size());
  const Unit& u = units_[pos];
  // Largest enclosing problem of size <= s (enclosing sizes decrease from
  // outermost to innermost).
  for (const auto& enc : u.enclosing) {
    if (enc.first <= s) return enc.second;
  }
  CADAPT_CHECK(!u.is_leaf);  // a leaf is enclosed by its size-1 problem
  return std::min<std::size_t>(pos + s, u.chunk_end);
}

BoxReport ReferenceExecution::consume_box_optimistic(profile::BoxSize s) {
  BoxReport report;
  advance_to(advance_from(pos_, s), report);
  return report;
}

}  // namespace cadapt::engine
