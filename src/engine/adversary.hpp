// Exhaustive adversary search: how bad can ANY square profile be?
//
// The paper exhibits the recursive profile M_{a,b}(n) with total consumed
// potential n^{log_b a} (log_b n + 1) and proves the matching
// O(log n)-competitiveness upper bound. This module *searches* the full
// profile space: a dynamic program over execution positions computes, for
// each position, the maximum total n-bounded potential an adversary can
// extract from the remaining execution by choosing every box size freely
// (under the §4 optimistic semantics, where a position fully determines
// the execution state). Comparing the DP optimum against the
// construction's value certifies how close to truly-optimal the paper's
// adversary is — and yields the exact worst-case constant at small n.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/exec.hpp"
#include "model/regular.hpp"

namespace cadapt::engine {

struct AdversaryResult {
  /// max over all square profiles of Σ min(n,|□_i|)^{log_b a} consumed by
  /// a complete execution.
  double optimal_potential = 0;
  /// The same quantity for the paper's construction M_{a,b}(n):
  /// n^{log_b a} (log_b n + 1).
  double construction_potential = 0;
  /// optimal / n^{log_b a} — the exact worst-case adaptivity ratio at n.
  double optimal_ratio = 0;
  /// Box sizes of one optimal adversarial profile (a witness).
  std::vector<profile::BoxSize> witness;
};

/// Solve the adversary DP for an (a,b,c)-regular execution of size n.
/// Cost: O(U(n) · n · log) where U(n) is the total unit count — use small
/// n (say n <= b^5 for a = 8, b = 4).
///
/// Semantics choice matters: kBudgeted (the default) is the sound
/// adversary model — a box always converts its full capacity into work.
/// Under kOptimistic the "completes the enclosing problem and goes no
/// further" truncation lets the adversary hand out boxes sized just below
/// a power of b whose potential is charged but whose excess capacity
/// evaporates, inflating the optimum by an extra Θ(b^{log_b a - 1})-ish
/// factor; that artifact is measurable here (bench_e17) but says nothing
/// about real machines.
AdversaryResult solve_adversary(
    const model::RegularParams& params, std::uint64_t n,
    ScanPlacement placement = ScanPlacement::kEnd,
    BoxSemantics semantics = BoxSemantics::kBudgeted);

}  // namespace cadapt::engine
