#include "engine/montecarlo.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "robust/checkpoint.hpp"
#include "util/check.hpp"

namespace cadapt::engine {

namespace {

/// Sleep out a backoff delay in slices short enough that a cancellation
/// request interrupts the wait promptly — a cancelled campaign must not
/// wait out a multi-second retry schedule. `sleep_fn` is the test seam:
/// when set it receives the full delay once, unsliced.
void backoff_sleep(std::uint64_t ns, const robust::CancelToken* cancel,
                   void (*sleep_fn)(std::uint64_t)) {
  if (ns == 0) return;
  if (sleep_fn != nullptr) {
    sleep_fn(ns);
    return;
  }
  constexpr std::uint64_t kSliceNs = 10'000'000;  // 10ms
  while (ns > 0) {
    if (cancel != nullptr) cancel->poll();
    const std::uint64_t slice = std::min(ns, kSliceNs);
    std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
    ns -= slice;
  }
}

}  // namespace

std::uint64_t derive_trial_seed(std::uint64_t seed, std::uint64_t trial,
                                std::uint32_t attempt) {
  // Attempt 0 must stay bit-compatible with the original derivation:
  // per-trial seeds are recorded in traces and checkpoints, and resumes
  // rely on reproducing them exactly.
  std::uint64_t mix = seed;
  (void)util::splitmix64(mix);
  mix ^= 0x9E3779B97F4A7C15ull * (trial + 1);
  if (attempt != 0) mix = util::hash_combine(mix, attempt);
  return mix;
}

robust::TrialRecord run_single_trial(const McOptions& options,
                                     const RobustTrialRunner& runner,
                                     std::uint64_t trial, bool timing) {
  robust::TrialRecord record;
  record.trial = trial;
  for (std::uint32_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (options.cancel != nullptr) options.cancel->poll();
    if (attempt != 0 && options.backoff.enabled()) {
      const std::uint64_t delay =
          robust::backoff_delay_ns(options.backoff, trial, attempt);
      record.backoff_ns += delay;
      backoff_sleep(delay, options.cancel, options.sleep_fn);
    }
    const std::uint64_t seed = derive_trial_seed(options.seed, trial, attempt);
    record.seed = seed;
    record.attempts = attempt + 1;
    record.failed = false;
    robust::FaultInjector injector(options.faults, trial, attempt);
    const std::uint64_t t0 = timing ? obs::steady_now_ns() : 0;
    try {
      injector.step(robust::FaultSite::kTrialBody);
      const RunResult r = runner(seed, injector);
      record.completed = r.completed;
      record.capped = r.stop == StopReason::kBoxCapHit;
      record.boxes = r.boxes;
      record.ratio = r.ratio;
      record.unit_ratio = r.unit_ratio;
      record.duration_ns = timing ? obs::steady_now_ns() - t0 : 0;
      return record;
    } catch (const robust::CancelledError&) {
      // Cancellation is not a trial failure: never contained, never
      // retried, never persisted. It propagates to the campaign driver,
      // which discards the whole in-flight chunk.
      throw;
    } catch (const std::exception& e) {
      record.failed = true;
      record.category = robust::categorize(e);
      record.what = e.what();
    } catch (...) {
      record.failed = true;
      record.category = robust::ErrorCategory::kOther;
      record.what = "non-std::exception thrown by trial body";
    }
  }
  return record;
}

RobustTrialRunner make_regular_trial_runner(model::RegularParams params,
                                            std::uint64_t n,
                                            TrialSourceFactory make_source,
                                            const McOptions& options) {
  CADAPT_CHECK(make_source != nullptr);
  return [params, n, make_source = std::move(make_source),
          placement = options.placement, semantics = options.semantics,
          max_boxes = options.max_boxes, per_box = options.per_box,
          faults = options.faults,
          cancel = options.cancel](std::uint64_t trial_seed,
                                   robust::FaultInjector& injector) {
    util::Rng rng(trial_seed);
    auto source = make_source(rng);
    CADAPT_CHECK(source != nullptr);
    RunOptions run_options;
    run_options.max_boxes = max_boxes;
    run_options.per_box = per_box;
    run_options.cancel = cancel;
    if (faults != nullptr) {
      // Route every draw through the injector so FaultSite::kBoxDraw
      // is exercised; unarmed plans never take this branch's cost.
      // FaultyBoxSource does not forward runs or blocks, so injection
      // stays per-box (see robust/fault.hpp).
      robust::FaultyBoxSource faulty(std::move(source), &injector);
      return run_regular(params, n, faulty, placement,
                         /*adversary_seed=*/0, semantics, run_options);
    }
    return run_regular(params, n, *source, placement,
                       /*adversary_seed=*/0, semantics, run_options);
  };
}

RobustTrialRunner as_robust_runner(TrialRunner runner) {
  CADAPT_CHECK(runner != nullptr);
  return [runner = std::move(runner)](std::uint64_t trial_seed,
                                      robust::FaultInjector&) {
    return runner(trial_seed);
  };
}

namespace {

/// Fold one finished trial into the summary and the recorder — always on
/// the driver thread, always in trial order, so summary and event stream
/// are independent of the pool size and of chunk boundaries.
void aggregate_trial(McSummary& summary, const robust::TrialRecord& t,
                     obs::McRecorder* recorder) {
  if (t.failed) {
    summary.errors.push_back({t.trial, t.seed, t.attempts, t.category, t.what});
    ++summary.failed;
    if (recorder != nullptr) {
      recorder->on_trial_error({t.trial, t.seed, t.attempts,
                                robust::error_category_name(t.category),
                                t.what});
    }
    return;
  }
  summary.boxes.add(static_cast<double>(t.boxes));
  if (recorder != nullptr) {
    recorder->on_trial({t.trial, t.seed, t.completed, t.capped, t.boxes,
                        t.ratio, t.unit_ratio, t.duration_ns});
  }
  if (!t.completed) {
    // No meaningful ratio: the run was cut off. Keep the sample vectors
    // aligned with completed trials only (see McSummary's invariants).
    ++summary.incomplete;
    if (t.capped) ++summary.capped;
    return;
  }
  summary.ratio.add(t.ratio);
  summary.unit_ratio.add(t.unit_ratio);
  summary.ratio_samples.push_back(t.ratio);
  summary.unit_ratio_samples.push_back(t.unit_ratio);
}

}  // namespace

McSummary run_monte_carlo_robust(const McOptions& options,
                                 const RobustTrialRunner& runner) {
  CADAPT_CHECK(options.trials >= 1);
  CADAPT_CHECK(runner != nullptr);
  CADAPT_CHECK(options.max_attempts >= 1);
  util::ThreadPool& the_pool =
      options.pool != nullptr ? *options.pool : util::default_pool();
  obs::McRecorder* recorder = options.recorder;
  const bool timing = recorder != nullptr && recorder->record_timing();

  // Resume: a missing file is a fresh start, anything else must parse and
  // must identify the same campaign.
  const robust::CheckpointHeader header{1, options.trials, options.seed,
                                        options.config};
  std::map<std::uint64_t, robust::TrialRecord> known;
  if (options.resume && !options.checkpoint_path.empty()) {
    std::ifstream probe(options.checkpoint_path);
    if (probe.good()) {
      robust::CheckpointData data = robust::load_checkpoint(probe);
      if (!(data.header == header)) {
        // Name every mismatched field: "different campaign" alone sends
        // the user diffing JSONL headers by hand.
        std::string detail;
        const auto note = [&detail](const char* field, const std::string& have,
                                    const std::string& want) {
          if (!detail.empty()) detail += ", ";
          detail += std::string(field) + " is " + have + " but campaign has " +
                    want;
        };
        if (data.header.version != header.version) {
          note("version", std::to_string(data.header.version),
               std::to_string(header.version));
        }
        if (data.header.trials != header.trials) {
          note("trials", std::to_string(data.header.trials),
               std::to_string(header.trials));
        }
        if (data.header.seed != header.seed) {
          note("seed", std::to_string(data.header.seed),
               std::to_string(header.seed));
        }
        if (data.header.config != header.config) {
          note("config_hash", "'" + data.header.config + "'",
               "'" + header.config + "'");
        }
        throw util::ParseError("checkpoint '" + options.checkpoint_path +
                               "' belongs to a different campaign (its " +
                               detail + ")");
      }
      known = std::move(data.records);
    }
  }
  robust::IoBackend& io =
      options.io != nullptr ? *options.io : robust::system_io();
  std::unique_ptr<robust::CheckpointWriter> writer;
  if (!options.checkpoint_path.empty()) {
    writer = std::make_unique<robust::CheckpointWriter>(
        options.checkpoint_path, header, /*append=*/options.resume, io);
  }

  robust::BudgetTracker tracker(options.budget, options.clock);

  // Chunk size only matters when something observes chunk boundaries
  // (checkpoint flushes, budget checks); otherwise run one big chunk.
  // Chunking never changes the summary: aggregation happens in trial
  // order either way.
  const std::uint64_t chunk_size =
      (writer != nullptr || options.budget.enabled())
          ? std::max<std::uint64_t>(1, options.checkpoint_every)
          : options.trials;

  McSummary summary;
  summary.trials_requested = options.trials;
  summary.ratio_samples.reserve(options.trials);
  summary.unit_ratio_samples.reserve(options.trials);
  for (std::uint64_t start = 0; start < options.trials; start += chunk_size) {
    if (options.cancel != nullptr && options.cancel->requested()) {
      summary.truncated = true;
      summary.truncate_reason = options.cancel->reason();
      break;
    }
    if (tracker.exceeded()) {
      summary.truncated = true;
      summary.truncate_reason = tracker.boxes_exceeded()
                                    ? robust::CancelReason::kBudget
                                    : robust::CancelReason::kDeadline;
      break;
    }
    const std::uint64_t end =
        std::min(options.trials, start + chunk_size);

    // Indices in this chunk that the checkpoint does not already cover.
    std::vector<std::uint64_t> todo;
    todo.reserve(end - start);
    for (std::uint64_t i = start; i < end; ++i) {
      if (known.find(i) == known.end()) todo.push_back(i);
    }
    std::vector<robust::TrialRecord> fresh(todo.size());
    try {
      util::parallel_for(the_pool, todo.size(), [&](std::size_t k) {
        fresh[k] = run_single_trial(options, runner, todo[k], timing);
      });
    } catch (const robust::CancelledError& e) {
      // Discard the whole in-flight chunk: aggregating a partially
      // filled `fresh` would make the reported prefix depend on which
      // trials happened to finish before the token fired. Committed
      // chunks are untouched, so a --resume re-runs exactly this chunk
      // and the merged summary stays bit-identical.
      summary.truncated = true;
      summary.truncate_reason = e.reason();
      break;
    }

    // Merge, account, aggregate, persist — single-threaded, trial order.
    std::size_t next_fresh = 0;
    for (std::uint64_t i = start; i < end; ++i) {
      const auto it = known.find(i);
      const robust::TrialRecord& t =
          it != known.end() ? it->second : fresh[next_fresh++];
      if (it == known.end() && !t.failed) tracker.add_boxes(t.boxes);
      aggregate_trial(summary, t, recorder);
    }
    if (writer != nullptr && !fresh.empty()) writer->append(fresh);
    summary.trials_run = end;
  }

  CADAPT_CHECK(summary.ratio_samples.size() + summary.incomplete +
                   summary.failed ==
               summary.trials_run);
  if (recorder != nullptr) {
    recorder->finish({summary.trials_requested, summary.truncated});
  }
  return summary;
}

McSummary run_monte_carlo_custom(std::uint64_t trials, std::uint64_t seed,
                                 const TrialRunner& runner,
                                 util::ThreadPool* pool,
                                 obs::McRecorder* recorder) {
  CADAPT_CHECK(runner != nullptr);
  McOptions options;
  options.trials = trials;
  options.seed = seed;
  options.pool = pool;
  options.recorder = recorder;
  return run_monte_carlo_robust(options, as_robust_runner(runner));
}

McSummary run_monte_carlo(const model::RegularParams& params, std::uint64_t n,
                          const TrialSourceFactory& make_source,
                          const McOptions& options) {
  return run_monte_carlo_robust(
      options, make_regular_trial_runner(params, n, make_source, options));
}

McSummary run_monte_carlo_iid(const model::RegularParams& params,
                              std::uint64_t n,
                              const profile::BoxDistribution& dist,
                              const McOptions& options) {
  return run_monte_carlo(
      params, n,
      [&dist](util::Rng& rng) {
        return std::make_unique<profile::DistributionSource>(dist, rng.split());
      },
      options);
}

}  // namespace cadapt::engine
