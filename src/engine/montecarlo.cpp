#include "engine/montecarlo.hpp"

#include <mutex>
#include <vector>

#include "obs/span.hpp"
#include "profile/distributions.hpp"
#include "util/check.hpp"

namespace cadapt::engine {

McSummary run_monte_carlo_custom(std::uint64_t trials, std::uint64_t seed,
                                 const TrialRunner& runner,
                                 util::ThreadPool* pool,
                                 obs::McRecorder* recorder) {
  CADAPT_CHECK(trials >= 1);
  CADAPT_CHECK(runner != nullptr);
  util::ThreadPool& the_pool = pool != nullptr ? *pool : util::default_pool();
  const bool timing = recorder != nullptr && recorder->record_timing();

  struct Trial {
    std::uint64_t seed = 0;
    double ratio = 0;
    double unit_ratio = 0;
    std::uint64_t boxes = 0;
    bool completed = false;
    std::uint64_t duration_ns = 0;
  };
  std::vector<Trial> results(trials);

  util::parallel_for(the_pool, trials, [&](std::size_t i) {
    // Per-trial seed depends only on (seed, i).
    std::uint64_t mix = seed;
    (void)util::splitmix64(mix);
    mix ^= 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(i) + 1);
    const std::uint64_t t0 = timing ? obs::steady_now_ns() : 0;
    const RunResult r = runner(mix);
    const std::uint64_t dt = timing ? obs::steady_now_ns() - t0 : 0;
    results[i] = {mix, r.ratio, r.unit_ratio, r.boxes, r.completed, dt};
  });

  // Aggregation (and trace emission) runs on this thread, in trial order:
  // the summary and the event stream are independent of the pool size.
  McSummary summary;
  summary.ratio_samples.reserve(results.size());
  summary.unit_ratio_samples.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Trial& t = results[i];
    summary.boxes.add(static_cast<double>(t.boxes));
    if (recorder != nullptr) {
      recorder->on_trial({i, t.seed, t.completed, t.boxes, t.ratio,
                          t.unit_ratio, t.duration_ns});
    }
    if (!t.completed) {
      // No meaningful ratio: the run was cut off. Keep the sample vectors
      // aligned with completed trials only (see McSummary's invariants).
      ++summary.incomplete;
      continue;
    }
    summary.ratio.add(t.ratio);
    summary.unit_ratio.add(t.unit_ratio);
    summary.ratio_samples.push_back(t.ratio);
    summary.unit_ratio_samples.push_back(t.unit_ratio);
  }
  CADAPT_CHECK(summary.ratio_samples.size() + summary.incomplete == trials);
  if (recorder != nullptr) recorder->finish();
  return summary;
}

McSummary run_monte_carlo(const model::RegularParams& params, std::uint64_t n,
                          const TrialSourceFactory& make_source,
                          const McOptions& options) {
  return run_monte_carlo_custom(
      options.trials, options.seed,
      [&](std::uint64_t trial_seed) {
        util::Rng rng(trial_seed);
        auto source = make_source(rng);
        CADAPT_CHECK(source != nullptr);
        return run_regular(params, n, *source, options.placement,
                           options.max_boxes, /*adversary_seed=*/0,
                           options.semantics);
      },
      options.pool, options.recorder);
}

McSummary run_monte_carlo_iid(const model::RegularParams& params,
                              std::uint64_t n,
                              const profile::BoxDistribution& dist,
                              const McOptions& options) {
  return run_monte_carlo(
      params, n,
      [&dist](util::Rng& rng) {
        return std::make_unique<profile::DistributionSource>(dist, rng.split());
      },
      options);
}

}  // namespace cadapt::engine
