#include "engine/montecarlo.hpp"

#include <mutex>
#include <vector>

#include "profile/distributions.hpp"
#include "util/check.hpp"

namespace cadapt::engine {

McSummary run_monte_carlo_custom(std::uint64_t trials, std::uint64_t seed,
                                 const TrialRunner& runner,
                                 util::ThreadPool* pool) {
  CADAPT_CHECK(trials >= 1);
  CADAPT_CHECK(runner != nullptr);
  util::ThreadPool& the_pool = pool != nullptr ? *pool : util::default_pool();

  struct Trial {
    double ratio = 0;
    double unit_ratio = 0;
    double boxes = 0;
    bool completed = false;
  };
  std::vector<Trial> results(trials);

  util::parallel_for(the_pool, trials, [&](std::size_t i) {
    // Per-trial seed depends only on (seed, i).
    std::uint64_t mix = seed;
    (void)util::splitmix64(mix);
    mix ^= 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(i) + 1);
    const RunResult r = runner(mix);
    results[i] = {r.ratio, r.unit_ratio, static_cast<double>(r.boxes),
                  r.completed};
  });

  McSummary summary;
  summary.ratio_samples.reserve(results.size());
  summary.unit_ratio_samples.reserve(results.size());
  for (const auto& t : results) {
    summary.ratio.add(t.ratio);
    summary.unit_ratio.add(t.unit_ratio);
    summary.boxes.add(t.boxes);
    summary.ratio_samples.push_back(t.ratio);
    summary.unit_ratio_samples.push_back(t.unit_ratio);
    if (!t.completed) ++summary.incomplete;
  }
  return summary;
}

McSummary run_monte_carlo(const model::RegularParams& params, std::uint64_t n,
                          const TrialSourceFactory& make_source,
                          const McOptions& options) {
  return run_monte_carlo_custom(
      options.trials, options.seed,
      [&](std::uint64_t trial_seed) {
        util::Rng rng(trial_seed);
        auto source = make_source(rng);
        CADAPT_CHECK(source != nullptr);
        return run_regular(params, n, *source, options.placement,
                           options.max_boxes, /*adversary_seed=*/0,
                           options.semantics);
      },
      options.pool);
}

McSummary run_monte_carlo_iid(const model::RegularParams& params,
                              std::uint64_t n,
                              const profile::BoxDistribution& dist,
                              const McOptions& options) {
  return run_monte_carlo(
      params, n,
      [&dist](util::Rng& rng) {
        return std::make_unique<profile::DistributionSource>(dist, rng.split());
      },
      options);
}

}  // namespace cadapt::engine
