// Rendering of experiment series — shared by the bench harness and the
// cadapt CLI.
#pragma once

#include <iosfwd>

#include "core/experiments.hpp"

namespace cadapt::core {

struct ReportOptions {
  /// Base b for the log_b n column and the slope fit.
  std::uint64_t log_base = 4;
  /// Additionally emit the series as a CSV block.
  bool csv = false;
};

/// Print a ratio series as an aligned table plus the fitted slope of the
/// ratio against log_b n.
void print_series(std::ostream& os, const Series& series,
                  const ReportOptions& options);

}  // namespace cadapt::core
