// Rendering of experiment series — shared by the bench harness and the
// cadapt CLI.
#pragma once

#include <iosfwd>

#include "core/experiments.hpp"

namespace cadapt::obs {
class ExecRecorder;
class McRecorder;
class PagingRecorder;
}  // namespace cadapt::obs

namespace cadapt::core {

struct ReportOptions {
  /// Base b for the log_b n column and the slope fit.
  std::uint64_t log_base = 4;
  /// Additionally emit the series as a CSV block.
  bool csv = false;
};

/// Print a ratio series as an aligned table plus the fitted slope of the
/// ratio against log_b n.
void print_series(std::ostream& os, const Series& series,
                  const ReportOptions& options);

/// Per-size-class breakdown of one instrumented execution: for each box
/// size class (floor log2 |□|) the boxes seen, Σ|□|, base-case progress,
/// scan advance and problems retired, followed by a totals row and the
/// semantics-branch counts. Companion to the `cadapt_cli trace` JSONL
/// stream (docs/OBSERVABILITY.md).
void print_trace_summary(std::ostream& os, const obs::ExecRecorder& recorder);

/// Per-trial table of an instrumented Monte-Carlo run: trial index, seed,
/// completion, boxes, ratios and (if timed) wall-clock duration.
void print_trial_summary(std::ostream& os, const obs::McRecorder& recorder);

/// Per-size-class hit/miss table from the concrete CA machine.
void print_paging_summary(std::ostream& os,
                          const obs::PagingRecorder& recorder);

}  // namespace cadapt::core
