#include "core/workloads.hpp"

#include <utility>

#include "profile/worst_case.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::core {

engine::TrialSourceFactory worst_profile_source(model::RegularParams params,
                                                std::uint64_t n,
                                                std::uint64_t profile_a,
                                                std::uint64_t profile_b) {
  const std::uint64_t pa = profile_a == 0 ? params.a : profile_a;
  const std::uint64_t pb = profile_b == 0 ? params.b : profile_b;
  return [pa, pb, n](util::Rng&) -> std::unique_ptr<profile::BoxSource> {
    // Cycle so that a mismatched (algorithm, profile) pair still
    // completes; the canonical pair finishes within one pass.
    return std::make_unique<profile::CyclingSource>([pa, pb, n] {
      return std::make_unique<profile::WorstCaseSource>(pa, pb, n);
    });
  };
}

engine::TrialSourceFactory iid_source(
    std::shared_ptr<const profile::BoxDistribution> dist) {
  CADAPT_CHECK(dist != nullptr);
  return [dist = std::move(dist)](
             util::Rng& rng) -> std::unique_ptr<profile::BoxSource> {
    return std::make_unique<profile::DistributionSource>(*dist, rng.split());
  };
}

engine::TrialSourceFactory shuffled_census_source(model::RegularParams params,
                                                  std::uint64_t n) {
  // The census of M_{a,b}(n) is geometric over powers of b with weight a;
  // sampling i.i.d. from it is the random reshuffle of the adversarial
  // profile. GeometricPowers weights: Pr[b^k] ∝ a^{-k} matches the census
  // count a^{K-k} after normalization.
  const unsigned K = util::ilog(n, params.b);
  return iid_source(std::make_shared<profile::GeometricPowers>(
      params.b, static_cast<double>(params.a), 0, K));
}

engine::TrialSourceFactory size_perturb_source(
    model::RegularParams params, std::uint64_t n,
    profile::PerturbSampler sampler) {
  CADAPT_CHECK(sampler != nullptr);
  return [params, n, sampler = std::move(sampler)](
             util::Rng& rng) -> std::unique_ptr<profile::BoxSource> {
    // Perturbation factors are drawn per box from `sampler`; the profile
    // repeats cyclically (with fresh perturbations each cycle) so the
    // execution always completes.
    util::Rng perturb_rng = rng.split();
    auto factory = [params, sampler, n, perturb_rng]() mutable
        -> std::unique_ptr<profile::BoxSource> {
      auto inner =
          std::make_unique<profile::WorstCaseSource>(params.a, params.b, n);
      return std::make_unique<profile::SizePerturbSource>(
          std::move(inner), sampler, perturb_rng.split());
    };
    return std::make_unique<profile::CyclingSource>(std::move(factory));
  };
}

engine::TrialSourceFactory cyclic_shift_source(model::RegularParams params,
                                               std::uint64_t n) {
  const std::uint64_t total =
      profile::worst_case_box_count(params.a, params.b, n);
  return [params, n,
          total](util::Rng& rng) -> std::unique_ptr<profile::BoxSource> {
    const std::uint64_t offset = rng.below(total);
    auto base_factory = [params, n]() {
      return std::make_unique<profile::WorstCaseSource>(params.a, params.b, n);
    };
    // One cyclic rotation, repeated forever.
    auto shifted_factory = [base_factory,
                            offset]() -> std::unique_ptr<profile::BoxSource> {
      return std::make_unique<profile::CyclicShiftSource>(base_factory, offset);
    };
    return std::make_unique<profile::CyclingSource>(shifted_factory);
  };
}

engine::TrialRunner order_perturb_runner(model::RegularParams params,
                                         std::uint64_t n, bool matched,
                                         engine::BoxSemantics semantics) {
  return [params, n, matched, semantics](std::uint64_t trial_seed) {
    // The same perturbed profile repeats each cycle (the factory captures
    // the trial seed by value), and — when matched — the execution places
    // its scans with the same seed.
    auto factory = [params, n,
                    trial_seed]() -> std::unique_ptr<profile::BoxSource> {
      return std::make_unique<profile::OrderPerturbedWorstCaseSource>(
          params.a, params.b, n, trial_seed);
    };
    profile::CyclingSource source(factory);
    return engine::run_regular(params, n, source,
                               matched
                                   ? engine::ScanPlacement::kAdversaryMatched
                                   : engine::ScanPlacement::kEnd,
                               UINT64_C(1) << 40, trial_seed, semantics);
  };
}

engine::TrialRunner randomized_scan_runner(model::RegularParams params,
                                           std::uint64_t n,
                                           engine::BoxSemantics semantics) {
  return [params, n, semantics](std::uint64_t trial_seed) {
    auto factory = [params, n]() -> std::unique_ptr<profile::BoxSource> {
      return std::make_unique<profile::WorstCaseSource>(params.a, params.b, n);
    };
    profile::CyclingSource source(factory);
    // trial_seed randomizes the ALGORITHM's scan placement; the profile
    // is the same deterministic adversary every trial.
    return engine::run_regular(params, n, source,
                               engine::ScanPlacement::kAdversaryMatched,
                               UINT64_C(1) << 40, trial_seed, semantics);
  };
}

}  // namespace cadapt::core
