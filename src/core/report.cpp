#include "core/report.hpp"

#include <ostream>

#include "util/math.hpp"
#include "util/table.hpp"

namespace cadapt::core {

void print_series(std::ostream& os, const Series& series,
                  const ReportOptions& options) {
  os << "\n--- " << series.name << " ---\n";
  util::Table table(
      {"n", "log_b n", "ratio", "ci95", "p95", "E[boxes]", "trials"});
  for (const auto& p : series.points) {
    table.row()
        .cell(p.n)
        .cell(static_cast<std::uint64_t>(util::ilog(p.n, options.log_base)))
        .cell(p.ratio_mean, 3)
        .cell(p.ratio_ci95, 3)
        .cell(p.ratio_p95, 3)
        .cell(p.boxes_mean, 1)
        .cell(p.trials);
  }
  table.print(os);
  if (series.points.size() >= 2) {
    os << "slope of ratio vs log_b n: "
       << util::format_double(slope_vs_log_n(series, options.log_base), 3)
       << "   (Θ(1) ratio => slope ~ 0; full log gap => slope ~ 1)\n";
  }
  if (options.csv) {
    os << "csv:series," << series.name << '\n';
    table.print_csv(os);
  }
}

}  // namespace cadapt::core
