#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "obs/recorder.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace cadapt::core {

void print_series(std::ostream& os, const Series& series,
                  const ReportOptions& options) {
  os << "\n--- " << series.name << " ---\n";
  util::Table table(
      {"n", "log_b n", "ratio", "ci95", "p95", "E[boxes]", "trials"});
  for (const auto& p : series.points) {
    table.row()
        .cell(p.n)
        .cell(static_cast<std::uint64_t>(util::ilog(p.n, options.log_base)))
        .cell(p.ratio_mean, 3)
        .cell(p.ratio_ci95, 3)
        .cell(p.ratio_p95, 3)
        .cell(p.boxes_mean, 1)
        .cell(p.trials);
  }
  table.print(os);
  if (series.points.size() >= 2) {
    os << "slope of ratio vs log_b n: "
       << util::format_double(slope_vs_log_n(series, options.log_base), 3)
       << "   (Θ(1) ratio => slope ~ 0; full log gap => slope ~ 1)\n";
  }
  if (options.csv) {
    os << "csv:series," << series.name << '\n';
    table.print_csv(os);
  }
}

namespace {

std::string class_range(std::size_t k) {
  std::ostringstream out;
  out << "[2^" << k << ", 2^" << k + 1 << ")";
  return out.str();
}

}  // namespace

void print_trace_summary(std::ostream& os, const obs::ExecRecorder& rec) {
  util::Table table(
      {"class", "|box|", "boxes", "sum |box|", "progress", "scan", "retired"});
  const auto& classes = rec.size_classes();
  for (std::size_t k = 0; k < classes.size(); ++k) {
    const auto& t = classes[k];
    if (t.boxes == 0) continue;
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(class_range(k))
        .cell(t.boxes)
        .cell(t.sum_box)
        .cell(t.progress)
        .cell(t.scan_advance)
        .cell(t.completions);
  }
  table.row()
      .cell(std::string("all"))
      .cell(std::string(""))
      .cell(rec.boxes())
      .cell(rec.sum_box_sizes())
      .cell(rec.total_progress())
      .cell(rec.total_scan_advance())
      .cell(rec.completions());
  table.print(os);
  os << "branches: jump=" << rec.branch_count(obs::ExecBranch::kCompleteJump)
     << " scan=" << rec.branch_count(obs::ExecBranch::kScanAdvance)
     << " budgeted=" << rec.branch_count(obs::ExecBranch::kBudgeted) << "\n";
}

void print_trial_summary(std::ostream& os, const obs::McRecorder& rec) {
  const bool timed = rec.record_timing();
  std::vector<std::string> headers = {"trial", "seed",  "done",
                                      "boxes", "ratio", "unit ratio"};
  if (timed) headers.push_back("ms");
  util::Table table(std::move(headers));
  for (const auto& t : rec.trials()) {
    auto& row = table.row()
                    .cell(t.trial)
                    .cell(t.seed)
                    .cell(std::string(t.completed ? "yes" : "NO"))
                    .cell(t.boxes)
                    .cell(t.ratio, 3)
                    .cell(t.unit_ratio, 3);
    if (timed) row.cell(static_cast<double>(t.duration_ns) / 1e6, 3);
  }
  table.print(os);
}

void print_paging_summary(std::ostream& os, const obs::PagingRecorder& rec) {
  util::Table table(
      {"class", "|box|", "boxes", "accesses", "hits", "misses", "evictions"});
  for (std::size_t k = 0; k < rec.levels().size(); ++k) {
    const auto& t = rec.levels()[k];
    if (t.boxes == 0 && t.accesses == 0) continue;
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(class_range(k))
        .cell(t.boxes)
        .cell(t.accesses)
        .cell(t.hits)
        .cell(t.misses)
        .cell(t.evictions);
  }
  table.print(os);
  os << "totals: hits=" << rec.total_hits()
     << " misses=" << rec.total_misses() << "\n";
  // Only two-tier machines produce tier-2 traffic; single-tier output
  // stays byte-identical to the historical summary.
  const auto& t2 = rec.tier2();
  if (t2.accesses != 0) {
    os << "tier2: accesses=" << t2.accesses << " hits=" << t2.hits
       << " misses=" << t2.misses << "\n";
  }
}

}  // namespace cadapt::core
