#include "core/experiments.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "core/workloads.hpp"
#include "profile/worst_case.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"

namespace cadapt::core {

RatioPoint point_from_summary(std::uint64_t n, const engine::McSummary& s,
                              bool unit_progress) {
  const util::RunningStat& stat = unit_progress ? s.unit_ratio : s.ratio;
  const std::vector<double>& samples =
      unit_progress ? s.unit_ratio_samples : s.ratio_samples;
  RatioPoint p;
  p.n = n;
  p.ratio_mean = stat.mean();
  p.ratio_ci95 = stat.ci95();
  p.ratio_p95 = samples.empty() ? 0.0 : util::quantile(samples, 0.95);
  p.boxes_mean = s.boxes.mean();
  p.trials = stat.count();
  p.incomplete = s.incomplete;
  return p;
}

namespace {

/// Sweep n = b^k and build a Series from a per-n Monte-Carlo factory.
template <typename MakeFactory>
Series sweep(const std::string& name, const model::RegularParams& params,
             const SweepOptions& options, MakeFactory&& make_factory) {
  CADAPT_CHECK(options.kmin <= options.kmax);
  Series series;
  series.name = name;
  for (unsigned k = options.kmin; k <= options.kmax; ++k) {
    const std::uint64_t n = util::ipow(params.b, k);
    engine::McOptions mc;
    mc.trials = options.trials;
    mc.seed = options.seed + k;  // decorrelate points
    mc.placement = options.placement;
    mc.semantics = options.semantics;
    const engine::McSummary summary =
        engine::run_monte_carlo(params, n, make_factory(n), mc);
    series.points.push_back(
        point_from_summary(n, summary, options.unit_progress));
  }
  return series;
}

/// Sweep n = b^k over a per-n custom trial runner (profile coupled to the
/// execution through the trial seed).
template <typename MakeRunner>
Series sweep_custom(const std::string& name, const model::RegularParams& params,
                    const SweepOptions& options, MakeRunner&& make_runner) {
  CADAPT_CHECK(options.kmin <= options.kmax);
  Series series;
  series.name = name;
  for (unsigned k = options.kmin; k <= options.kmax; ++k) {
    const std::uint64_t n = util::ipow(params.b, k);
    const engine::McSummary summary = engine::run_monte_carlo_custom(
        options.trials, options.seed + k, make_runner(n));
    series.points.push_back(
        point_from_summary(n, summary, options.unit_progress));
  }
  return series;
}

}  // namespace

double slope_vs_log_n(const Series& series, std::uint64_t b) {
  CADAPT_CHECK(series.points.size() >= 2);
  std::vector<double> xs, ys;
  xs.reserve(series.points.size());
  ys.reserve(series.points.size());
  for (const auto& p : series.points) {
    xs.push_back(static_cast<double>(util::ilog(p.n, b)));
    ys.push_back(p.ratio_mean);
  }
  return util::fit_linear(xs, ys).slope;
}

Series worst_case_gap_curve(const model::RegularParams& params,
                            const SweepOptions& options,
                            std::uint64_t profile_a, std::uint64_t profile_b) {
  const std::uint64_t pa = profile_a == 0 ? params.a : profile_a;
  const std::uint64_t pb = profile_b == 0 ? params.b : profile_b;
  std::ostringstream name;
  name << params.name() << " on M_{" << pa << "," << pb << "}";
  SweepOptions opts = options;
  opts.trials = 1;  // deterministic
  return sweep(name.str(), params, opts, [&params, pa, pb](std::uint64_t n) {
    return worst_profile_source(params, n, pa, pb);
  });
}

Series iid_curve(const model::RegularParams& params,
                 const profile::BoxDistribution& dist,
                 const SweepOptions& options) {
  // Non-owning alias: the caller keeps `dist` alive for the duration of
  // the sweep, as this signature always required.
  std::shared_ptr<const profile::BoxDistribution> alias(
      std::shared_ptr<const profile::BoxDistribution>(), &dist);
  return sweep(params.name() + " on iid " + dist.name(), params, options,
               [&alias](std::uint64_t) { return iid_source(alias); });
}

Series shuffled_worst_case_curve(const model::RegularParams& params,
                                 const SweepOptions& options) {
  return sweep(params.name() + " on shuffled M_{a,b}", params, options,
               [&params](std::uint64_t n) {
                 return shuffled_census_source(params, n);
               });
}

Series size_perturb_curve(const model::RegularParams& params,
                          const profile::PerturbSampler& sampler,
                          const SweepOptions& options) {
  return sweep(params.name() + " on size-perturbed M_{a,b}", params, options,
               [&params, &sampler](std::uint64_t n) {
                 return size_perturb_source(params, n, sampler);
               });
}

Series cyclic_shift_curve(const model::RegularParams& params,
                          const SweepOptions& options) {
  return sweep(params.name() + " on cyclic-shifted M_{a,b}", params, options,
               [&params](std::uint64_t n) {
                 return cyclic_shift_source(params, n);
               });
}

Series order_perturb_curve(const model::RegularParams& params,
                           const SweepOptions& options, bool matched) {
  const std::string name =
      params.name() + " on order-perturbed M_{a,b}" +
      (matched ? " (matched scans)" : " (canonical scans)");
  return sweep_custom(name, params, options,
                      [&params, matched, &options](std::uint64_t n) {
                        return order_perturb_runner(params, n, matched,
                                                    options.semantics);
                      });
}

Series randomized_scan_curve(const model::RegularParams& params,
                             const SweepOptions& options) {
  const std::string name =
      params.name() + " with per-node random scan placement on fixed M_{a,b}";
  return sweep_custom(name, params, options,
                      [&params, &options](std::uint64_t n) {
                        return randomized_scan_runner(params, n,
                                                      options.semantics);
                      });
}

Series scan_hiding_curve(const model::RegularParams& params,
                         const SweepOptions& options) {
  SweepOptions opts = options;
  opts.placement = engine::ScanPlacement::kInterleaved;
  Series series = worst_case_gap_curve(params, opts);
  series.name += " (interleaved scans)";
  return series;
}

std::uint64_t measure_box_potential(const model::RegularParams& params,
                                    std::uint64_t n, std::uint64_t s,
                                    std::uint64_t samples, std::uint64_t seed) {
  CADAPT_CHECK(s >= 1);
  std::uint64_t best = 0;
  util::Rng rng(seed);
  const std::uint64_t total_units = [&] {
    engine::RegularExecution probe(params, n);
    return probe.total_units();
  }();
  for (std::uint64_t trial = 0; trial <= samples; ++trial) {
    engine::RegularExecution exec(params, n);
    if (trial > 0) {
      // Advance to a random position with a random mix of small boxes
      // (each advances at least one unit, so every walk terminates).
      const std::uint64_t skip = rng.below(total_units);
      while (!exec.done() && exec.units_done() < skip)
        exec.consume_box(1 + rng.below(1 + skip - exec.units_done()));
    }
    if (exec.done()) continue;
    best = std::max(best, exec.consume_box(s).progress);
  }
  return best;
}

std::uint64_t count_completions(const model::RegularParams& params,
                                std::uint64_t n, profile::BoxSource& source,
                                std::uint64_t max_runs) {
  std::uint64_t completed = 0;
  while (completed < max_runs) {
    engine::RegularExecution exec(params, n);
    while (!exec.done()) {
      const auto box = source.next();
      if (!box) return completed;  // profile exhausted mid-run
      exec.consume_box(*box);
    }
    ++completed;
  }
  return completed;
}

std::uint64_t no_catchup_violations(const model::RegularParams& params,
                                    std::uint64_t n, std::uint64_t trials,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint64_t violations = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    engine::RegularExecution ahead(params, n);
    engine::RegularExecution behind(params, n);
    // Put `ahead` strictly in front by feeding it a random warm-up.
    const std::uint64_t warmup = 1 + rng.below(8);
    for (std::uint64_t i = 0; i < warmup && !ahead.done(); ++i)
      ahead.consume_box(1 + rng.below(n));
    // Now feed both the same random suffix; `behind` must never overtake.
    for (std::uint64_t step = 0; step < 64; ++step) {
      if (ahead.done() && behind.done()) break;
      const std::uint64_t s = 1 + rng.below(n);
      if (!ahead.done()) ahead.consume_box(s);
      if (!behind.done()) behind.consume_box(s);
      if (behind.units_done() > ahead.units_done()) {
        ++violations;
        break;
      }
    }
  }
  return violations;
}

}  // namespace cadapt::core
