// Reusable trial workloads: every random-profile experiment in this repo
// is "run an (a,b,c)-regular execution against boxes from X", and each
// builder here packages one X as a self-contained engine trial factory.
//
// The experiment curves (core/experiments.cpp) and the campaign sweep
// runner (campaign/cell_runner.cpp) both consume these, so a manifest
// cell named `worst` measures exactly what bench_e2's curve measures —
// one definition, two drivers.
//
// Every builder copies or owns what it captures; the returned functor has
// no dangling references and may outlive all arguments.
#pragma once

#include <cstdint>
#include <memory>

#include "engine/montecarlo.hpp"
#include "model/regular.hpp"
#include "profile/distributions.hpp"
#include "profile/transforms.hpp"

namespace cadapt::core {

/// E2's workload: the deterministic adversarial profile M_{pa,pb}(n),
/// cycled so a mismatched (algorithm, profile) pair still completes.
/// profile_a/profile_b default (0) to the algorithm's own parameters.
engine::TrialSourceFactory worst_profile_source(model::RegularParams params,
                                                std::uint64_t n,
                                                std::uint64_t profile_a = 0,
                                                std::uint64_t profile_b = 0);

/// E3's workload (Theorem 1): i.i.d. boxes from `dist`. The factory
/// shares ownership of the distribution.
engine::TrialSourceFactory iid_source(
    std::shared_ptr<const profile::BoxDistribution> dist);

/// E3's headline instance: i.i.d. boxes from the box-size census of
/// M_{a,b}(n) itself — the random reshuffle of the adversarial profile.
engine::TrialSourceFactory shuffled_census_source(model::RegularParams params,
                                                  std::uint64_t n);

/// E5's workload (negative): M_{a,b}(n) with every box size multiplied by
/// an i.i.d. factor from `sampler` (the paper's P over [0,t]); the
/// profile repeats cyclically with fresh perturbations each cycle.
engine::TrialSourceFactory size_perturb_source(model::RegularParams params,
                                               std::uint64_t n,
                                               profile::PerturbSampler sampler);

/// E6's workload (negative): cyclic shift of M_{a,b}(n) by a uniformly
/// random box offset, repeated forever.
engine::TrialSourceFactory cyclic_shift_source(model::RegularParams params,
                                               std::uint64_t n);

/// E7's trial body (negative): order-perturbed recursive construction.
/// Profile and execution are coupled through the trial seed, so this is a
/// full TrialRunner rather than a source factory; with matched = true the
/// algorithm's scan placement mirrors the perturbation
/// (ScanPlacement::kAdversaryMatched).
engine::TrialRunner order_perturb_runner(model::RegularParams params,
                                         std::uint64_t n, bool matched,
                                         engine::BoxSemantics semantics);

/// E18's trial body (beyond the paper): the profile is the FIXED
/// adversarial M_{a,b}(n); the trial seed randomizes the ALGORITHM's
/// per-node scan placement instead.
engine::TrialRunner randomized_scan_runner(model::RegularParams params,
                                           std::uint64_t n,
                                           engine::BoxSemantics semantics);

}  // namespace cadapt::core
