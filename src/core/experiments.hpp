// High-level experiment drivers — the public API a downstream user calls
// to reproduce the paper's claims. Each function returns a Series of
// (problem size, adaptivity ratio) points; the adaptivity ratio
// Σ min(n,|□_i|)^{log_b a} / n^{log_b a} is Θ(1) for cache-adaptive
// executions and Θ(log_b n) at the paper's worst case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/exec.hpp"
#include "engine/montecarlo.hpp"
#include "model/regular.hpp"
#include "profile/distributions.hpp"
#include "profile/transforms.hpp"

namespace cadapt::core {

struct RatioPoint {
  std::uint64_t n = 0;        ///< problem size (blocks)
  double ratio_mean = 0;      ///< mean adaptivity ratio over trials
  double ratio_ci95 = 0;      ///< 95% confidence half-width (0 if 1 trial)
  double ratio_p95 = 0;       ///< 95th-percentile ratio (tail behaviour)
  double boxes_mean = 0;      ///< mean boxes to completion (S_n)
  std::uint64_t trials = 0;
  std::uint64_t incomplete = 0;  ///< trials that did not finish (should be 0)
};

struct Series {
  std::string name;
  std::vector<RatioPoint> points;
};

/// Collapse a Monte-Carlo summary into one curve point. With
/// unit_progress the operation-based (footnote 4) ratio is reported
/// instead of the base-case-based one. This is the single place a summary
/// becomes a reported statistic — the curves below and the campaign
/// runner both go through it.
RatioPoint point_from_summary(std::uint64_t n, const engine::McSummary& s,
                              bool unit_progress = false);

/// OLS slope of ratio_mean against log_b n. A Θ(log n) gap shows as a
/// positive slope bounded away from 0; a cache-adaptive series has slope
/// ≈ 0.
double slope_vs_log_n(const Series& series, std::uint64_t b);

/// Common sweep options.
struct SweepOptions {
  unsigned kmin = 2;          ///< smallest n = b^kmin
  unsigned kmax = 7;          ///< largest n = b^kmax
  std::uint64_t trials = 32;  ///< Monte-Carlo trials per point
  std::uint64_t seed = 42;
  engine::ScanPlacement placement = engine::ScanPlacement::kEnd;
  engine::BoxSemantics semantics = engine::BoxSemantics::kOptimistic;
  /// Report the operation-based (footnote 4) ratio instead of the
  /// base-case-based one. The right choice for a <= b parameter sets.
  bool unit_progress = false;
};

/// E2: run the algorithm on its own adversarial profile M_{a,b}(n) for
/// n = b^k, k in [kmin, kmax]. Deterministic (one trial per point).
/// profile_a/profile_b default to the algorithm's parameters; pass
/// different values to run one algorithm against another's bad profile
/// (e.g. MM-Inplace on MM-Scan's profile).
Series worst_case_gap_curve(const model::RegularParams& params,
                            const SweepOptions& options,
                            std::uint64_t profile_a = 0,
                            std::uint64_t profile_b = 0);

/// E3 (Theorem 1): i.i.d. boxes from a fixed distribution Σ.
Series iid_curve(const model::RegularParams& params,
                 const profile::BoxDistribution& dist,
                 const SweepOptions& options);

/// E3 (Theorem 1, the paper's headline instance): i.i.d. boxes from the
/// box-size census of M_{a,b}(n) itself — the "random reshuffle" of the
/// adversarial profile.
Series shuffled_worst_case_curve(const model::RegularParams& params,
                                 const SweepOptions& options);

/// E5 (negative): M_{a,b}(n) with every box size multiplied by an i.i.d.
/// factor from `sampler` (paper's P over [0,t]).
Series size_perturb_curve(const model::RegularParams& params,
                          const profile::PerturbSampler& sampler,
                          const SweepOptions& options);

/// E6 (negative): cyclic shift of M_{a,b}(n) by a uniformly random box
/// offset (profile repeats cyclically so the run always completes).
Series cyclic_shift_curve(const model::RegularParams& params,
                          const SweepOptions& options);

/// E7 (negative): order-perturbed recursive construction (size-n box after
/// a random recursive instance at every level).
///
/// With matched = true the execution uses ScanPlacement::kAdversaryMatched
/// with the profile's seed: the (a,b,1)-regular algorithm whose scan
/// placement mirrors the perturbation. The paper's claim — the perturbed
/// profile stays worst-case with probability one — is witnessed by this
/// matched algorithm (ratio Θ(log n)). With matched = false the canonical
/// trailing-scan algorithm runs instead and largely escapes the profile
/// (an instructive non-claim: the profile is worst-case for *some*
/// algorithm in the class, not for every algorithm).
Series order_perturb_curve(const model::RegularParams& params,
                           const SweepOptions& options, bool matched = false);

/// E12 (extension): the same adversarial profile, but the algorithm
/// interleaves its scans (ScanPlacement::kInterleaved) — a lightweight
/// scan-hiding transform.
Series scan_hiding_curve(const model::RegularParams& params,
                         const SweepOptions& options);

/// E18 (beyond the paper): the profile is the FIXED adversarial
/// M_{a,b}(n); each trial randomizes the ALGORITHM's per-node scan
/// placement instead (ScanPlacement::kAdversaryMatched with a per-trial
/// seed the profile knows nothing about).
Series randomized_scan_curve(const model::RegularParams& params,
                             const SweepOptions& options);

/// E8 (Lemma 1): empirical potential of a box of size s against a problem
/// of size n: max progress observed over `samples` random placements plus
/// the aligned placement. Returns max progress (base cases).
std::uint64_t measure_box_potential(const model::RegularParams& params,
                                    std::uint64_t n, std::uint64_t s,
                                    std::uint64_t samples, std::uint64_t seed);

/// §3's progress comparison: run back-to-back fresh executions of the
/// algorithm on one pass of a finite profile and count how many complete
/// ("MM-Scan can perform exactly one multiply on this profile;
/// MM-Inplace can perform Ω(log n) multiplies"). Returns the number of
/// full executions completed before the profile ran out.
std::uint64_t count_completions(const model::RegularParams& params,
                                std::uint64_t n, profile::BoxSource& source,
                                std::uint64_t max_runs = 1u << 20);

/// E10 (Lemma 2): empirically validate the No-Catch-up Lemma. Runs
/// `trials` random experiments: two copies of an execution, one ahead of
/// the other, receive the same random box suffix; counts how often the
/// delayed copy finishes strictly earlier (must be 0).
std::uint64_t no_catchup_violations(const model::RegularParams& params,
                                    std::uint64_t n, std::uint64_t trials,
                                    std::uint64_t seed);

}  // namespace cadapt::core
