// Umbrella header: the full public API of the cadapt library.
//
// Quick tour:
//   model::RegularParams      — an (a,b,c)-regular algorithm's shape
//   profile::*                — square profiles, distributions, transforms
//   engine::RegularExecution  — symbolic cache-adaptive execution
//   engine::AnalyticSolver    — exact Lemma-3 stopping-time recurrence
//   engine::run_monte_carlo   — parallel expectation estimation
//   paging::CaMachine         — concrete cache-adaptive paging machine
//   algos::*                  — instrumented real algorithms (MM-Scan, ...)
//   core::*_curve             — one-call reproductions of the paper's claims
#pragma once

#include "core/experiments.hpp"     // IWYU pragma: export
#include "engine/analytic.hpp"      // IWYU pragma: export
#include "engine/exec.hpp"          // IWYU pragma: export
#include "engine/montecarlo.hpp"    // IWYU pragma: export
#include "model/potential.hpp"      // IWYU pragma: export
#include "model/regular.hpp"        // IWYU pragma: export
#include "paging/ca_machine.hpp"    // IWYU pragma: export
#include "paging/dam.hpp"           // IWYU pragma: export
#include "paging/fluid.hpp"         // IWYU pragma: export
#include "paging/trace.hpp"         // IWYU pragma: export
#include "profile/distributions.hpp"  // IWYU pragma: export
#include "profile/render.hpp"       // IWYU pragma: export
#include "profile/square_approx.hpp"  // IWYU pragma: export
#include "profile/transforms.hpp"   // IWYU pragma: export
#include "profile/worst_case.hpp"   // IWYU pragma: export
#include "sched/shared_cache.hpp"   // IWYU pragma: export
