#include "campaign/report.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <iterator>
#include <map>
#include <utility>

#include "stats/bootstrap.hpp"
#include "stats/fit.hpp"
#include "stats/quantiles.hpp"
#include "stats/streaming.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace cadapt::campaign {

namespace {

/// Shortest-round-trip encoding, matching obs/event.cpp's doubles: the
/// parsed sample is bit-identical to the aggregated one.
std::string join_samples(const std::vector<double>& samples) {
  std::string out;
  std::array<char, 32> buf;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i != 0) out += ' ';
    const auto res =
        std::to_chars(buf.data(), buf.data() + buf.size(), samples[i]);
    CADAPT_CHECK(res.ec == std::errc());
    out.append(buf.data(), res.ptr);
  }
  return out;
}

std::vector<double> split_samples(const std::string& joined,
                                  std::size_t line_no) {
  std::vector<double> samples;
  const char* p = joined.data();
  const char* end = p + joined.size();
  while (p < end) {
    if (*p == ' ') {
      ++p;
      continue;
    }
    double value = 0;
    const auto res = std::from_chars(p, end, value);
    if (res.ec != std::errc() || !std::isfinite(value)) {
      throw util::ParseError("sweep report: malformed samples field",
                             line_no);
    }
    samples.push_back(value);
    p = res.ptr;
  }
  return samples;
}

}  // namespace

/// log_b a from an "a:b:c" token (0 when the token is malformed — fits
/// still carry the measured exponent).
double algo_expected_exponent(const std::string& algo_token) {
  std::uint64_t a = 0, b = 0;
  const char* p = algo_token.data();
  const char* end = p + algo_token.size();
  auto res = std::from_chars(p, end, a);
  if (res.ec != std::errc() || res.ptr == end || *res.ptr != ':') return 0;
  res = std::from_chars(res.ptr + 1, end, b);
  if (res.ec != std::errc() || a == 0 || b < 2) return 0;
  return std::log(static_cast<double>(a)) / std::log(static_cast<double>(b));
}

obs::Event report_header_event(const Report& report) {
  obs::Event event("sweep_report");
  event.u64("version", report.version)
      .str("name", report.name)
      .u64("config_hash", report.config_hash)
      .u64("cells_total", report.cells_total)
      .u64("shards", report.shards)
      .u64("shard_index", report.shard_index)
      .flag("truncated", report.truncated);
  // Emitted only for truncated reports with a known reason, so reports
  // written before the field existed stay byte-identical on regen.
  if (report.truncated &&
      report.truncate_reason != robust::CancelReason::kNone) {
    event.str("truncate_reason",
              robust::cancel_reason_name(report.truncate_reason));
  }
  event.u64("wall_ms", report.wall_ms);
  return event;
}

obs::Event report_fit_event(const FitResult& fit) {
  obs::Event event("sweep_fit");
  event.str("algo", fit.algo)
      .str("profile", fit.profile)
      .f64("exponent", fit.exponent)
      .f64("scale", fit.scale)
      .f64("r2", fit.r2)
      .f64("expected", fit.expected);
  return event;
}

namespace {

FitResult fit_from_event(const obs::Event& event) {
  FitResult fit;
  fit.algo = event.str_or("algo", "");
  fit.profile = event.str_or("profile", "");
  fit.exponent = event.f64_or("exponent", 0);
  fit.scale = event.f64_or("scale", 0);
  fit.r2 = event.f64_or("r2", 0);
  fit.expected = event.f64_or("expected", 0);
  return fit;
}

}  // namespace

std::uint64_t cell_ci_seed(std::uint64_t config_hash,
                           std::uint64_t cell_index) {
  return util::hash_combine(config_hash, cell_index);
}

CellResult aggregate_cell(const Cell& cell,
                          const std::vector<robust::TrialRecord>& records,
                          std::uint64_t config_hash, bool unit_progress) {
  CellResult result;
  result.index = cell.index;
  result.algo = cell.algo.token;
  result.profile = cell.profile.token;
  result.sort = cell.sort;
  result.policy = cell.policy;
  result.k = cell.k;
  result.n = cell.n;
  result.trials = cell.trials;

  stats::Welford boxes;
  for (const robust::TrialRecord& record : records) {
    result.wall_ns += record.duration_ns;
    if (record.failed) {
      ++result.failed;
      continue;
    }
    boxes.add(static_cast<double>(record.boxes));
    if (!record.completed) {
      ++result.incomplete;
      if (record.capped) ++result.capped;
      continue;
    }
    ++result.completed;
    result.samples.push_back(unit_progress ? record.unit_ratio
                                           : record.ratio);
  }
  if (boxes.count() > 0) result.boxes_mean = boxes.mean();
  if (!result.samples.empty()) {
    const stats::BootstrapCi ci = stats::bootstrap_mean_ci(
        result.samples, {}, cell_ci_seed(config_hash, cell.index));
    result.mean = ci.point;
    result.ci_lo = ci.lo;
    result.ci_hi = ci.hi;
    result.q50 = stats::exact_quantile(result.samples, 0.50);
    result.q90 = stats::exact_quantile(result.samples, 0.90);
    result.q95 = stats::exact_quantile(result.samples, 0.95);
  }
  return result;
}

std::vector<FitResult> compute_fits(const Report& report) {
  // Group ratio cells by (algo, profile) in first-appearance order.
  std::vector<std::pair<std::string, std::string>> order;
  std::map<std::pair<std::string, std::string>,
           std::vector<const CellResult*>>
      series;
  for (const CellResult& cell : report.cells) {
    if (cell.algo.empty() || !cell.sort.empty()) continue;
    auto key = std::make_pair(cell.algo, cell.profile);
    auto [it, inserted] = series.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(&cell);
  }

  std::vector<FitResult> fits;
  for (const auto& key : order) {
    const auto& cells = series.at(key);
    std::vector<std::uint64_t> ns;
    std::vector<double> means;
    bool usable = true;
    for (const CellResult* cell : cells) {
      if (cell->completed == 0) {
        usable = false;
        break;
      }
      ns.push_back(cell->n);
      means.push_back(cell->mean);
    }
    // A fit needs two distinct sizes; a flat grid has no slope to measure.
    std::vector<std::uint64_t> distinct = ns;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (!usable || distinct.size() < 2) continue;
    const stats::ExponentFit fit = stats::fit_power_law(ns, means);
    FitResult out;
    out.algo = key.first;
    out.profile = key.second;
    out.exponent = fit.exponent;
    out.scale = fit.scale;
    out.r2 = fit.r2;
    out.expected = algo_expected_exponent(key.first);
    fits.push_back(std::move(out));
  }
  return fits;
}

obs::Event cell_event(const CellResult& cell) {
  obs::Event event("sweep_cell");
  event.u64("index", cell.index)
      .str("algo", cell.algo)
      .str("profile", cell.profile)
      .str("sort", cell.sort);
  // Emitted only when non-empty so policy-free reports stay
  // byte-identical to ones written before the axis existed.
  if (!cell.policy.empty()) event.str("policy", cell.policy);
  event.u64("k", cell.k)
      .u64("n", cell.n)
      .u64("trials", cell.trials)
      .u64("completed", cell.completed)
      .u64("incomplete", cell.incomplete)
      .u64("failed", cell.failed);
  // Emitted only when nonzero so cap-free reports stay byte-identical to
  // ones written before the field existed (the regen diff relies on it).
  if (cell.capped != 0) event.u64("capped", cell.capped);
  event.f64("mean", cell.mean)
      .f64("ci_lo", cell.ci_lo)
      .f64("ci_hi", cell.ci_hi)
      .f64("q50", cell.q50)
      .f64("q90", cell.q90)
      .f64("q95", cell.q95)
      .f64("boxes_mean", cell.boxes_mean)
      .u64("wall_ns", cell.wall_ns)
      .str("samples", join_samples(cell.samples));
  return event;
}

CellResult cell_from_event(const obs::Event& event, std::size_t line_no) {
  CellResult cell;
  cell.index = event.u64_or("index", 0);
  cell.algo = event.str_or("algo", "");
  cell.profile = event.str_or("profile", "");
  cell.sort = event.str_or("sort", "");
  cell.policy = event.str_or("policy", "");
  cell.k = static_cast<unsigned>(event.u64_or("k", 0));
  cell.n = event.u64_or("n", 0);
  cell.trials = event.u64_or("trials", 0);
  cell.completed = event.u64_or("completed", 0);
  cell.incomplete = event.u64_or("incomplete", 0);
  cell.capped = event.u64_or("capped", 0);
  cell.failed = event.u64_or("failed", 0);
  cell.mean = event.f64_or("mean", 0);
  cell.ci_lo = event.f64_or("ci_lo", 0);
  cell.ci_hi = event.f64_or("ci_hi", 0);
  cell.q50 = event.f64_or("q50", 0);
  cell.q90 = event.f64_or("q90", 0);
  cell.q95 = event.f64_or("q95", 0);
  cell.boxes_mean = event.f64_or("boxes_mean", 0);
  cell.wall_ns = event.u64_or("wall_ns", 0);
  cell.samples = split_samples(event.str_or("samples", ""), line_no);
  if (cell.samples.size() != cell.completed) {
    throw util::ParseError("sweep report: cell " +
                               std::to_string(cell.index) + " carries " +
                               std::to_string(cell.samples.size()) +
                               " samples but claims " +
                               std::to_string(cell.completed) +
                               " completed trials",
                           line_no);
  }
  return cell;
}

namespace {

/// Render every report line into `sink` (newline included), reusing one
/// encode buffer across lines. Both writers below share this, so the
/// streamed file commit is byte-identical to the ostream path.
template <typename Sink>
void render_report(const Report& report, Sink&& sink) {
  std::string buf;
  const auto emit = [&](const obs::Event& event) {
    obs::to_jsonl(event, buf);
    buf += '\n';
    sink(std::string_view(buf));
  };
  emit(report_header_event(report));
  emit(provenance_event(report.env));
  for (const CellResult& cell : report.cells) emit(cell_event(cell));
  for (const FitResult& fit : report.fits) emit(report_fit_event(fit));
}

}  // namespace

void write_report(std::ostream& os, const Report& report) {
  render_report(report, [&os](std::string_view line) {
    os.write(line.data(), static_cast<std::streamsize>(line.size()));
  });
}

void write_report_file(const std::string& path, const Report& report,
                       robust::IoBackend& io) {
  // Bounded-memory commit: lines stream through chunked durable writes
  // instead of one report-sized ostringstream. Reports under the chunk
  // size still cost exactly one durable write, so the chaos lane's
  // crash-point indexes are unchanged.
  robust::AtomicFileWriter out(path, io);
  render_report(report,
                [&out](std::string_view line) { out.write(line); });
  out.commit();
}

Report load_report(std::istream& is) {
  const std::vector<robust::JsonlLine> lines =
      robust::load_jsonl_tolerant(is, "sweep report");
  if (lines.empty()) {
    throw util::ParseError("sweep report: empty stream");
  }
  const obs::Event& head = lines.front().event;
  if (head.type != "sweep_report") {
    throw util::ParseError("sweep report: first line must be sweep_report",
                           lines.front().line_no);
  }
  Report report;
  report.version = head.u64_or("version", 0);
  if (report.version != 1) {
    throw util::ParseError("sweep report: unsupported version " +
                               std::to_string(report.version),
                           lines.front().line_no);
  }
  report.name = head.str_or("name", "");
  report.config_hash = head.u64_or("config_hash", 0);
  report.cells_total = head.u64_or("cells_total", 0);
  report.shards = head.u64_or("shards", 1);
  report.shard_index = head.u64_or("shard_index", 0);
  report.truncated = head.flag_or("truncated", false);
  if (const auto reason =
          robust::parse_cancel_reason(head.str_or("truncate_reason", "none"));
      reason.has_value()) {
    report.truncate_reason = *reason;
  }
  report.wall_ms = head.u64_or("wall_ms", 0);

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const obs::Event& event = lines[i].event;
    if (event.type == "sweep_env") {
      report.env = provenance_from_event(event);
    } else if (event.type == "sweep_cell") {
      report.cells.push_back(cell_from_event(event, lines[i].line_no));
    } else if (event.type == "sweep_fit") {
      report.fits.push_back(fit_from_event(event));
    } else {
      throw util::ParseError(
          "sweep report: unexpected line type '" + event.type + "'",
          lines[i].line_no);
    }
  }
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.index < b.index;
            });
  return report;
}

Report load_report_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::IoError("cannot open report: " + path);
  return load_report(is);
}

Report merge_reports(std::vector<Report> parts) {
  if (parts.empty()) {
    throw util::ParseError("sweep merge: no input reports");
  }
  Report merged;
  const Report& first = parts.front();
  merged.version = first.version;
  merged.name = first.name;
  merged.config_hash = first.config_hash;
  merged.cells_total = first.cells_total;
  merged.env = first.env;

  // Move every shard's cells straight into the merged vector — no map,
  // no deep copies of samples vectors — then restore index order with
  // one sort (shards interleave round-robin). Duplicates show up as
  // adjacent equal indexes after the sort.
  std::size_t total = 0;
  for (const Report& part : parts) total += part.cells.size();
  merged.cells.reserve(total);
  for (Report& part : parts) {
    if (part.name != merged.name ||
        part.config_hash != merged.config_hash ||
        part.cells_total != merged.cells_total ||
        part.version != merged.version) {
      throw util::ParseError(
          "sweep merge: report '" + part.name +
          "' belongs to a different campaign (name/config_hash/"
          "cells_total mismatch)");
    }
    merged.truncated = merged.truncated || part.truncated;
    // Keep the first shard's reason (shard order, deterministic) when
    // several truncated for different causes.
    if (merged.truncate_reason == robust::CancelReason::kNone) {
      merged.truncate_reason = part.truncate_reason;
    }
    merged.wall_ms += part.wall_ms;
    merged.cells.insert(merged.cells.end(),
                        std::make_move_iterator(part.cells.begin()),
                        std::make_move_iterator(part.cells.end()));
    part.cells.clear();
  }
  std::sort(merged.cells.begin(), merged.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.index < b.index;
            });
  for (std::size_t i = 1; i < merged.cells.size(); ++i) {
    if (merged.cells[i].index == merged.cells[i - 1].index) {
      throw util::ParseError("sweep merge: cell " +
                             std::to_string(merged.cells[i].index) +
                             " appears in more than one report");
    }
  }
  if (merged.cells.size() != merged.cells_total) {
    throw util::ParseError(
        "sweep merge: " + std::to_string(merged.cells.size()) + " cells of " +
        std::to_string(merged.cells_total) +
        " — the shard set does not cover the grid");
  }
  merged.fits = compute_fits(merged);
  return merged;
}

}  // namespace cadapt::campaign
