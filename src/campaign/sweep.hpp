// The sweep orchestrator: execute a Plan's cells on a thread pool and
// aggregate a Report (docs/SWEEPS.md).
//
// Parallelism is across CELLS — each worker runs one cell's trials
// inline through engine::run_single_trial — so the campaign gets the
// Monte-Carlo layer's per-trial containment/retry/fault machinery
// without nesting thread pools. Because every trial is a pure function
// of (cell seed, trial index, attempt) and aggregation is
// index-addressed, the report is bit-identical across --jobs values,
// across a --shards split merged back together, and across a
// kill + --resume (wall clocks excepted; pass timing = false to zero
// them, as the bit-identity tests do).
//
// Checkpoint format (JSONL, shared cell encoding with the report):
//
//   {"type":"sweep_checkpoint","version":1,"config_hash":...,
//    "shards":...,"shard_index":...,"cells":...}
//   {"type":"sweep_cell",...}   — one line per FINISHED cell, completion
//                                 order (the report re-sorts by index)
//
// Cells are the checkpoint grain: a killed sweep loses at most the cells
// in flight, and --resume re-derives exactly the missing ones.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "robust/backoff.hpp"
#include "robust/budget.hpp"
#include "robust/cancel.hpp"
#include "robust/fault.hpp"
#include "robust/io.hpp"

namespace cadapt::campaign {

struct SweepOptions {
  std::uint64_t jobs = 0;  ///< worker threads; 0 = hardware concurrency
  /// Intra-cell trial parallelism override (docs/PARALLEL.md): 0 = honor
  /// the manifest's `workers` key; >= 1 replaces it for this run. Never
  /// changes the report bytes — sort-cell trials land at their index.
  std::uint64_t workers = 0;
  std::uint64_t shards = 1;
  std::uint64_t shard_index = 0;
  /// false zeroes wall_ms and every cell's wall_ns — bit-identical runs.
  bool timing = true;
  /// Force the per-box reference driver in every trial (docs/PERF.md).
  /// The default bulk path produces a bit-identical report, so this
  /// exists for differential tests (`cadapt sweep --per-box`).
  bool per_box = false;
  /// Force per-word Machine dispatch in sort-workload trials (disable the
  /// hot-block shortcut). Also bit-identical by contract; exists for
  /// differential tests (`cadapt sweep --per-access`).
  bool per_access = false;
  std::uint32_t max_attempts = 1;  ///< per-trial attempts before containment
  /// Seeded fault plan shared by every trial; null = no injection. Must
  /// outlive the call.
  const robust::FaultPlan* faults = nullptr;
  /// Wall-clock / total-box budget, checked at cell boundaries. A tripped
  /// budget skips the remaining cells and marks the report truncated.
  /// When deadline_ns is set and no external `cancel` token is supplied,
  /// run_sweep arms an internal robust::Watchdog so a stuck cell is also
  /// cancelled MID-cell (boxes budgets stay boundary-checked only — the
  /// truncation point must be a deterministic function of the work done).
  robust::Budget budget;
  /// External cooperative cancellation; null = none. A non-null token is
  /// polled at cell and box boundaries and suppresses the internal
  /// deadline watchdog (the caller owns the token's lifecycle). Must
  /// outlive the call.
  const robust::CancelToken* cancel = nullptr;
  /// Poll `cancel` at every box boundary in sort cells (the machine's
  /// box hook). True preserves the historical behavior; drivers that arm
  /// `cancel` only for signal interrupts (no deadline) pass false and
  /// accept attempt-boundary latency — the hook forces the generic
  /// replay path (docs/PAGING.md), a perf tax a mere Ctrl-C safety net
  /// should not impose. See CellRunOptions::cancel_per_box.
  bool cancel_per_box = true;
  /// Seeded retry backoff for failed trials (docs/ROBUSTNESS.md);
  /// disabled by default — attempt 0 never sleeps, so reports stay
  /// byte-identical for campaigns that never retry.
  robust::BackoffPolicy backoff;
  /// Durable I/O backend for checkpoint writes; null = system_io().
  /// Tests substitute robust::FaultyIo for ENOSPC/short-write drills.
  robust::IoBackend* io = nullptr;
  std::string checkpoint_path;  ///< empty = no checkpointing
  /// Load checkpoint_path (header must match this plan + sharding) and
  /// skip the cells it records; new cells append to the same file.
  bool resume = false;
  /// Optional observability stream: one sweep_cell event per newly
  /// executed cell in COMPLETION order (scheduling-dependent — this is
  /// telemetry, the report is the deterministic artifact) plus a
  /// sweep_trial_error event per contained failure. Null = disabled.
  obs::TraceSink* trace = nullptr;
  obs::ClockFn clock = &obs::steady_now_ns;  ///< test seam
};

/// Run this shard of the plan. Throws util::ParseError for a mismatched
/// resume checkpoint, util::UsageError for bad sharding, and
/// util::IoError when a checkpoint commit fails (a failed commit never
/// leaves a torn line: the appender either durably commits a whole cell
/// record or reports); per-trial failures never throw (contained in the
/// cells' failed counts). Cancellation (deadline watchdog or external
/// token) discards the in-flight cells and returns a truncated report
/// carrying the reason — committed checkpoint cells survive for resume.
Report run_sweep(const Plan& plan, const SweepOptions& options = {});

// The pieces run_sweep is made of, exposed so other drivers of the same
// checkpoint/report formats — the `cadapt serve` daemon foremost — reuse
// them instead of re-deriving the encoding. A serve job IS a shards=1
// sweep of its manifest: same header, same loader, same report assembly,
// which is what makes "daemon report == one-shot sweep report" a
// byte-for-byte identity rather than a convention.

/// The checkpoint's header line: version, config_hash, sharding, grid
/// size. A resume refuses any mismatch (see load_sweep_checkpoint).
obs::Event sweep_checkpoint_header(const Plan& plan, std::uint64_t shards,
                                   std::uint64_t shard_index);

/// Finished cells recorded by a previous run of this exact shard, keyed
/// by cell index. A missing file is an empty map (fresh start). Throws
/// util::ParseError when the header does not match — every divergent
/// field is NAMED with both values.
std::map<std::uint64_t, CellResult> load_sweep_checkpoint(
    const std::string& path, const Plan& plan, std::uint64_t shards,
    std::uint64_t shard_index);

/// Assemble the deterministic report exactly as run_sweep does: cells
/// sorted by index, fits only at full grid coverage, this binary's build
/// provenance. `wall_ms` is stored verbatim (pass 0 for timing-free
/// artifacts).
Report assemble_report(const Plan& plan, std::vector<CellResult> cells,
                       std::uint64_t shards, std::uint64_t shard_index,
                       bool truncated, robust::CancelReason truncate_reason,
                       std::uint64_t wall_ms);

}  // namespace cadapt::campaign
