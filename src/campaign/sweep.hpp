// The sweep orchestrator: execute a Plan's cells on a thread pool and
// aggregate a Report (docs/SWEEPS.md).
//
// Parallelism is across CELLS — each worker runs one cell's trials
// inline through engine::run_single_trial — so the campaign gets the
// Monte-Carlo layer's per-trial containment/retry/fault machinery
// without nesting thread pools. Because every trial is a pure function
// of (cell seed, trial index, attempt) and aggregation is
// index-addressed, the report is bit-identical across --jobs values,
// across a --shards split merged back together, and across a
// kill + --resume (wall clocks excepted; pass timing = false to zero
// them, as the bit-identity tests do).
//
// Checkpoint format (JSONL, shared cell encoding with the report):
//
//   {"type":"sweep_checkpoint","version":1,"config_hash":...,
//    "shards":...,"shard_index":...,"cells":...}
//   {"type":"sweep_cell",...}   — one line per FINISHED cell, completion
//                                 order (the report re-sorts by index)
//
// Cells are the checkpoint grain: a killed sweep loses at most the cells
// in flight, and --resume re-derives exactly the missing ones.
#pragma once

#include <string>

#include "campaign/plan.hpp"
#include "campaign/report.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "robust/budget.hpp"
#include "robust/fault.hpp"

namespace cadapt::campaign {

struct SweepOptions {
  std::uint64_t jobs = 0;  ///< worker threads; 0 = hardware concurrency
  std::uint64_t shards = 1;
  std::uint64_t shard_index = 0;
  /// false zeroes wall_ms and every cell's wall_ns — bit-identical runs.
  bool timing = true;
  /// Force the per-box reference driver in every trial (docs/PERF.md).
  /// The default bulk path produces a bit-identical report, so this
  /// exists for differential tests (`cadapt sweep --per-box`).
  bool per_box = false;
  /// Force per-word Machine dispatch in sort-workload trials (disable the
  /// hot-block shortcut). Also bit-identical by contract; exists for
  /// differential tests (`cadapt sweep --per-access`).
  bool per_access = false;
  std::uint32_t max_attempts = 1;  ///< per-trial attempts before containment
  /// Seeded fault plan shared by every trial; null = no injection. Must
  /// outlive the call.
  const robust::FaultPlan* faults = nullptr;
  /// Wall-clock / total-box budget, checked at cell boundaries. A tripped
  /// budget skips the remaining cells and marks the report truncated.
  robust::Budget budget;
  std::string checkpoint_path;  ///< empty = no checkpointing
  /// Load checkpoint_path (header must match this plan + sharding) and
  /// skip the cells it records; new cells append to the same file.
  bool resume = false;
  /// Optional observability stream: one sweep_cell event per newly
  /// executed cell in COMPLETION order (scheduling-dependent — this is
  /// telemetry, the report is the deterministic artifact) plus a
  /// sweep_trial_error event per contained failure. Null = disabled.
  obs::TraceSink* trace = nullptr;
  obs::ClockFn clock = &obs::steady_now_ns;  ///< test seam
};

/// Run this shard of the plan. Throws util::ParseError for a mismatched
/// resume checkpoint and util::UsageError for bad sharding; per-trial
/// failures never throw (contained in the cells' failed counts).
Report run_sweep(const Plan& plan, const SweepOptions& options = {});

}  // namespace cadapt::campaign
