// Baseline regression gating (docs/SWEEPS.md): compare a fresh sweep
// report against a stored baseline of the SAME campaign and fail —
// CLI exit code 4 — when any cell got significantly worse.
//
// "Worse" is metric-up (the adaptivity ratio and sort I/O counts both
// measure cost), and "significantly" means the two bootstrap 95% CIs do
// not overlap AND the relative increase of the means exceeds
// `rel_threshold` — the CI separation filters noise, the relative floor
// filters statistically-real-but-tiny drift on near-deterministic cells.
//
// CIs are recomputed here from each report's persisted samples with the
// shared (config_hash, cell index) seed derivation, so gating is a pure
// function of the two reports: rerunning the gate never flips a verdict.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "stats/bootstrap.hpp"

namespace cadapt::campaign {

struct GateOptions {
  /// Minimum relative mean increase for a CI-separated cell to count as a
  /// regression.
  double rel_threshold = 0.05;
  /// Multiply every current-report sample by this factor before
  /// comparing — a seeded rehearsal of a real slowdown, used by the CLI's
  /// --gate-inject and the exit-code tests to prove the gate can fail.
  double inject_factor = 1.0;
};

struct CellGate {
  std::uint64_t index = 0;
  std::string algo;
  std::string profile;
  std::string sort;
  std::uint64_t n = 0;
  stats::BootstrapCi baseline;
  stats::BootstrapCi current;
  double rel_change = 0;  ///< (current.point - baseline.point) / baseline.point
  bool comparable = false;  ///< both sides had completed-trial samples
  bool regression = false;
};

struct GateResult {
  std::vector<CellGate> cells;  ///< one per grid cell, index order
  std::uint64_t compared = 0;
  std::uint64_t skipped = 0;  ///< cells without samples on either side
  std::uint64_t regressions = 0;

  bool passed() const { return regressions == 0; }
};

/// Gate `current` against `baseline`. Both must be full-grid reports of
/// the same campaign (name, config_hash, cells_total) with structurally
/// matching cells; anything else throws util::ParseError — comparing two
/// different experiments is an input error, never a pass.
GateResult gate_against_baseline(const Report& baseline,
                                 const Report& current,
                                 const GateOptions& options = {});

/// Human-readable verdict table (one line per compared cell plus a
/// summary) — what the CLI prints.
void print_gate(std::ostream& os, const GateResult& result,
                const GateOptions& options);

}  // namespace cadapt::campaign
