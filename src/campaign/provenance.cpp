#include "campaign/provenance.hpp"

#include <sstream>

#include "campaign/provenance_gen.hpp"

namespace cadapt::campaign {

const Provenance& build_provenance() {
  static const Provenance p = [] {
    Provenance out;
    out.version = CADAPT_PROVENANCE_VERSION;
    out.git_hash = CADAPT_PROVENANCE_GIT_HASH;
    out.build_type = CADAPT_PROVENANCE_BUILD_TYPE;
#if defined(__VERSION__)
#if defined(__clang__)
    out.compiler = "clang " __VERSION__;
#elif defined(__GNUC__)
    out.compiler = "gcc " __VERSION__;
#else
    out.compiler = __VERSION__;
#endif
#else
    out.compiler = "unknown";
#endif
    out.cxx_flags = CADAPT_PROVENANCE_CXX_FLAGS;
    return out;
  }();
  return p;
}

std::string provenance_text(const Provenance& p) {
  std::ostringstream os;
  os << "cadapt " << p.version << "\n"
     << "  git:        " << p.git_hash << "\n"
     << "  build type: " << (p.build_type.empty() ? "(unset)" : p.build_type)
     << "\n"
     << "  compiler:   " << p.compiler << "\n"
     << "  cxx flags:  " << (p.cxx_flags.empty() ? "(none)" : p.cxx_flags)
     << "\n";
  return os.str();
}

obs::Event provenance_event(const Provenance& p) {
  obs::Event event("sweep_env");
  event.str("version", p.version)
      .str("git", p.git_hash)
      .str("build_type", p.build_type)
      .str("compiler", p.compiler)
      .str("cxx_flags", p.cxx_flags);
  return event;
}

Provenance provenance_from_event(const obs::Event& event) {
  Provenance p;
  p.version = event.str_or("version", "");
  p.git_hash = event.str_or("git", "");
  p.build_type = event.str_or("build_type", "");
  p.compiler = event.str_or("compiler", "");
  p.cxx_flags = event.str_or("cxx_flags", "");
  return p;
}

}  // namespace cadapt::campaign
