#include "campaign/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "campaign/cell_runner.hpp"
#include "robust/cancel.hpp"
#include "robust/checkpoint.hpp"
#include "robust/error.hpp"
#include "robust/io.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cadapt::campaign {

obs::Event sweep_checkpoint_header(const Plan& plan, std::uint64_t shards,
                                   std::uint64_t shard_index) {
  obs::Event event("sweep_checkpoint");
  event.u64("version", 1)
      .u64("config_hash", plan.config_hash)
      .u64("shards", shards)
      .u64("shard_index", shard_index)
      .u64("cells", plan.cells.size());
  return event;
}

std::map<std::uint64_t, CellResult> load_sweep_checkpoint(
    const std::string& path, const Plan& plan, std::uint64_t shards,
    std::uint64_t shard_index) {
  std::ifstream is(path);
  if (!is) return {};  // nothing to resume from — a fresh start
  const std::vector<robust::JsonlLine> lines =
      robust::load_jsonl_tolerant(is, "sweep checkpoint");
  if (lines.empty()) return {};
  const obs::Event& head = lines.front().event;
  const obs::Event expected = sweep_checkpoint_header(plan, shards,
                                                      shard_index);
  if (head != expected) {
    // Name every mismatched field with both values: "does not match"
    // alone sends the user diffing JSONL headers by hand.
    std::string detail;
    const auto note = [&detail, &head, &expected](const char* field) {
      const std::uint64_t have = head.u64_or(field, 0);
      const std::uint64_t want = expected.u64_or(field, 0);
      if (have == want) return;
      if (!detail.empty()) detail += ", ";
      detail += std::string(field) + " is " + std::to_string(have) +
                " but this campaign has " + std::to_string(want);
    };
    note("version");
    note("config_hash");
    note("shards");
    note("shard_index");
    note("cells");
    std::string message = "sweep checkpoint '" + path +
                          "' does not match this campaign/sharding";
    if (!detail.empty()) message += " (its " + detail + ")";
    message += " — refusing to resume";
    throw util::ParseError(std::move(message), lines.front().line_no);
  }
  std::map<std::uint64_t, CellResult> finished;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].event.type != "sweep_cell") {
      throw util::ParseError("sweep checkpoint: unexpected line type '" +
                                 lines[i].event.type + "'",
                             lines[i].line_no);
    }
    CellResult cell = cell_from_event(lines[i].event, lines[i].line_no);
    finished.insert_or_assign(cell.index, std::move(cell));
  }
  return finished;
}

Report assemble_report(const Plan& plan, std::vector<CellResult> cells,
                       std::uint64_t shards, std::uint64_t shard_index,
                       bool truncated, robust::CancelReason truncate_reason,
                       std::uint64_t wall_ms) {
  Report report;
  report.name = plan.manifest.name;
  report.config_hash = plan.config_hash;
  report.cells_total = plan.cells.size();
  report.shards = shards;
  report.shard_index = shard_index;
  report.truncated = truncated;
  report.truncate_reason = truncate_reason;
  report.env = build_provenance();
  report.cells = std::move(cells);
  // Index order, not completion order: the report is the deterministic
  // artifact (cells were filled shard-slot-wise, which is already sorted
  // by index for round-robin sharding, but don't rely on it).
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.index < b.index;
            });
  if (report.cells.size() == report.cells_total) {
    report.fits = compute_fits(report);
  }
  report.wall_ms = wall_ms;
  return report;
}

namespace {

void emit_trial_errors(obs::TraceSink& sink, const Cell& cell,
                       const std::vector<robust::TrialRecord>& records) {
  for (const robust::TrialRecord& record : records) {
    if (!record.failed) continue;
    obs::Event event("sweep_trial_error");
    event.u64("cell", cell.index)
        .u64("trial", record.trial)
        .u64("seed", record.seed)
        .u64("attempts", record.attempts)
        .str("category", robust::error_category_name(record.category))
        .str("what", record.what);
    sink.write(event);
  }
}

}  // namespace

Report run_sweep(const Plan& plan, const SweepOptions& options) {
  const std::vector<std::size_t> mine =
      shard_cells(plan, options.shards, options.shard_index);
  const std::uint64_t started_ns = options.timing ? options.clock() : 0;

  std::map<std::uint64_t, CellResult> finished;
  if (options.resume && !options.checkpoint_path.empty()) {
    finished = load_sweep_checkpoint(options.checkpoint_path, plan,
                                     options.shards, options.shard_index);
  }

  robust::IoBackend& io =
      options.io != nullptr ? *options.io : robust::system_io();
  std::unique_ptr<robust::DurableAppender> checkpoint;
  if (!options.checkpoint_path.empty()) {
    // A kill can land mid-write; drop the torn tail before appending so
    // new records start on a fresh line.
    robust::truncate_torn_tail(options.checkpoint_path);
    const bool fresh = finished.empty() && !options.resume;
    checkpoint = std::make_unique<robust::DurableAppender>(
        options.checkpoint_path, /*truncate=*/fresh, io);
    if (checkpoint->initial_size() == 0) {
      checkpoint->write(obs::to_jsonl(sweep_checkpoint_header(
          plan, options.shards, options.shard_index)));
      checkpoint->write("\n");
      checkpoint->commit();
    }
  }

  // Cancellation: an external token wins; otherwise an armed deadline
  // gets an internal watchdog so a stuck cell is cancelled MID-cell
  // (the BudgetTracker alone only notices at cell boundaries). Boxes
  // budgets are never watchdog-driven — their truncation point must be
  // a deterministic function of the work done, not of wall time.
  robust::CancelToken internal_token;
  std::optional<robust::Watchdog> watchdog;
  const robust::CancelToken* cancel = options.cancel;
  if (cancel == nullptr && options.budget.deadline_ns != 0) {
    watchdog.emplace(internal_token, options.budget.deadline_ns,
                     options.clock);
    cancel = &internal_token;
  }

  CellRunOptions cell_options = cell_options_from(plan.manifest);
  cell_options.per_box = options.per_box;
  cell_options.per_access = options.per_access;
  cell_options.max_attempts = options.max_attempts;
  cell_options.faults = options.faults;
  cell_options.cancel = cancel;
  // The internal watchdog path is always a deadline: keep box-granular
  // polling there regardless of what the caller set for its own token.
  cell_options.cancel_per_box =
      watchdog.has_value() || options.cancel_per_box;
  cell_options.backoff = options.backoff;
  cell_options.timing = options.timing;
  if (options.workers != 0) cell_options.workers = options.workers;

  robust::BudgetTracker tracker(options.budget, options.clock);
  std::vector<std::optional<CellResult>> results(mine.size());
  std::atomic<bool> truncated{false};
  std::atomic<std::uint8_t> reason_raw{0};
  const auto note_truncation = [&truncated, &reason_raw](
                                   robust::CancelReason reason) {
    truncated.store(true, std::memory_order_relaxed);
    std::uint8_t expected = 0;  // keep the first reason observed
    reason_raw.compare_exchange_strong(expected,
                                       static_cast<std::uint8_t>(reason),
                                       std::memory_order_relaxed);
  };
  std::mutex sink_mutex;  // checkpoint + trace share one writer lock
  std::string checkpoint_line;  // encode buffer reused under sink_mutex

  util::ThreadPool pool(static_cast<std::size_t>(options.jobs));
  try {
    util::parallel_for(pool, mine.size(), [&](std::size_t i) {
      const Cell& cell = plan.cells[mine[i]];
      if (const auto it = finished.find(cell.index); it != finished.end()) {
        results[i] = it->second;
        return;
      }
      if (cancel != nullptr && cancel->requested()) {
        note_truncation(cancel->reason());
        return;
      }
      if (tracker.exceeded()) {
        note_truncation(tracker.boxes_exceeded()
                            ? robust::CancelReason::kBudget
                            : robust::CancelReason::kDeadline);
        return;
      }
      const std::vector<robust::TrialRecord> records =
          run_cell(cell, cell_options);
      std::uint64_t boxes = 0;
      for (const robust::TrialRecord& record : records) boxes += record.boxes;
      tracker.add_boxes(boxes);
      CellResult result = aggregate_cell(cell, records, plan.config_hash,
                                         plan.manifest.unit_progress);
      {
        const std::lock_guard<std::mutex> lock(sink_mutex);
        if (checkpoint != nullptr) {
          // One durable commit per cell: a kill between cells loses
          // nothing, a kill mid-commit loses only the torn tail that
          // truncate_torn_tail drops on resume.
          obs::to_jsonl(cell_event(result), checkpoint_line);
          checkpoint->write(checkpoint_line);
          checkpoint->write("\n");
          checkpoint->commit();
        }
        if (options.trace != nullptr) {
          options.trace->write(cell_event(result));
          emit_trial_errors(*options.trace, cell, records);
        }
      }
      results[i] = std::move(result);
    });
  } catch (const robust::CancelledError& e) {
    // In-flight cells are discarded wholesale (their results slots were
    // never filled): a partially executed cell must never reach the
    // report or the checkpoint. Committed cells survive for --resume.
    note_truncation(e.reason());
  }

  std::vector<CellResult> cells;
  for (std::optional<CellResult>& result : results) {
    if (result.has_value()) cells.push_back(std::move(*result));
  }
  const std::uint64_t wall_ms =
      options.timing ? (options.clock() - started_ns) / 1000000u : 0;
  return assemble_report(plan, std::move(cells), options.shards,
                         options.shard_index,
                         truncated.load(std::memory_order_relaxed),
                         static_cast<robust::CancelReason>(
                             reason_raw.load(std::memory_order_relaxed)),
                         wall_ms);
}

}  // namespace cadapt::campaign
