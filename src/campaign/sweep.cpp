#include "campaign/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "campaign/cell_runner.hpp"
#include "robust/checkpoint.hpp"
#include "robust/error.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cadapt::campaign {

namespace {

obs::Event checkpoint_header(const Plan& plan, const SweepOptions& options) {
  obs::Event event("sweep_checkpoint");
  event.u64("version", 1)
      .u64("config_hash", plan.config_hash)
      .u64("shards", options.shards)
      .u64("shard_index", options.shard_index)
      .u64("cells", plan.cells.size());
  return event;
}

/// Finished cells recorded by a previous run of this exact shard.
std::map<std::uint64_t, CellResult> load_sweep_checkpoint(
    const std::string& path, const Plan& plan, const SweepOptions& options) {
  std::ifstream is(path);
  if (!is) return {};  // nothing to resume from — a fresh start
  const std::vector<robust::JsonlLine> lines =
      robust::load_jsonl_tolerant(is, "sweep checkpoint");
  if (lines.empty()) return {};
  const obs::Event& head = lines.front().event;
  const obs::Event expected = checkpoint_header(plan, options);
  if (head != expected) {
    throw util::ParseError(
        "sweep checkpoint '" + path +
            "' does not match this campaign/sharding — refusing to resume",
        lines.front().line_no);
  }
  std::map<std::uint64_t, CellResult> finished;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].event.type != "sweep_cell") {
      throw util::ParseError("sweep checkpoint: unexpected line type '" +
                                 lines[i].event.type + "'",
                             lines[i].line_no);
    }
    CellResult cell = cell_from_event(lines[i].event, lines[i].line_no);
    finished.insert_or_assign(cell.index, std::move(cell));
  }
  return finished;
}

void emit_trial_errors(obs::TraceSink& sink, const Cell& cell,
                       const std::vector<robust::TrialRecord>& records) {
  for (const robust::TrialRecord& record : records) {
    if (!record.failed) continue;
    obs::Event event("sweep_trial_error");
    event.u64("cell", cell.index)
        .u64("trial", record.trial)
        .u64("seed", record.seed)
        .u64("attempts", record.attempts)
        .str("category", robust::error_category_name(record.category))
        .str("what", record.what);
    sink.write(event);
  }
}

}  // namespace

Report run_sweep(const Plan& plan, const SweepOptions& options) {
  const std::vector<std::size_t> mine =
      shard_cells(plan, options.shards, options.shard_index);
  const std::uint64_t started_ns = options.timing ? options.clock() : 0;

  std::map<std::uint64_t, CellResult> finished;
  if (options.resume && !options.checkpoint_path.empty()) {
    finished = load_sweep_checkpoint(options.checkpoint_path, plan, options);
  }

  std::ofstream checkpoint;
  if (!options.checkpoint_path.empty()) {
    // A kill can land mid-write; drop the torn tail before appending so
    // new records start on a fresh line.
    robust::truncate_torn_tail(options.checkpoint_path);
    const bool fresh = finished.empty() && !options.resume;
    checkpoint.open(options.checkpoint_path,
                    fresh ? std::ios::trunc : std::ios::app);
    if (!checkpoint) {
      throw util::IoError("cannot open sweep checkpoint: " +
                          options.checkpoint_path);
    }
    checkpoint.seekp(0, std::ios::end);
    if (checkpoint.tellp() == std::streampos(0)) {
      checkpoint << obs::to_jsonl(checkpoint_header(plan, options)) << '\n';
      checkpoint.flush();
    }
  }

  CellRunOptions cell_options = cell_options_from(plan.manifest);
  cell_options.per_box = options.per_box;
  cell_options.per_access = options.per_access;
  cell_options.max_attempts = options.max_attempts;
  cell_options.faults = options.faults;
  cell_options.timing = options.timing;

  robust::BudgetTracker tracker(options.budget, options.clock);
  std::vector<std::optional<CellResult>> results(mine.size());
  std::atomic<bool> truncated{false};
  std::mutex sink_mutex;  // checkpoint + trace share one writer lock

  util::ThreadPool pool(static_cast<std::size_t>(options.jobs));
  util::parallel_for(pool, mine.size(), [&](std::size_t i) {
    const Cell& cell = plan.cells[mine[i]];
    if (const auto it = finished.find(cell.index); it != finished.end()) {
      results[i] = it->second;
      return;
    }
    if (tracker.exceeded()) {
      truncated.store(true, std::memory_order_relaxed);
      return;
    }
    const std::vector<robust::TrialRecord> records =
        run_cell(cell, cell_options);
    std::uint64_t boxes = 0;
    for (const robust::TrialRecord& record : records) boxes += record.boxes;
    tracker.add_boxes(boxes);
    CellResult result = aggregate_cell(cell, records, plan.config_hash,
                                       plan.manifest.unit_progress);
    {
      const std::lock_guard<std::mutex> lock(sink_mutex);
      if (checkpoint.is_open()) {
        checkpoint << obs::to_jsonl(cell_event(result)) << '\n';
        checkpoint.flush();
      }
      if (options.trace != nullptr) {
        options.trace->write(cell_event(result));
        emit_trial_errors(*options.trace, cell, records);
      }
    }
    results[i] = std::move(result);
  });

  Report report;
  report.name = plan.manifest.name;
  report.config_hash = plan.config_hash;
  report.cells_total = plan.cells.size();
  report.shards = options.shards;
  report.shard_index = options.shard_index;
  report.truncated = truncated.load(std::memory_order_relaxed);
  report.env = build_provenance();
  for (std::optional<CellResult>& result : results) {
    if (result.has_value()) report.cells.push_back(std::move(*result));
  }
  // Index order, not completion order: the report is the deterministic
  // artifact (cells were filled shard-slot-wise, which is already sorted
  // by index for round-robin sharding, but don't rely on it).
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.index < b.index;
            });
  if (report.cells.size() == report.cells_total) {
    report.fits = compute_fits(report);
  }
  if (options.timing) {
    report.wall_ms = (options.clock() - started_ns) / 1000000u;
  }
  return report;
}

}  // namespace cadapt::campaign
