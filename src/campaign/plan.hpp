// The planner: expand a Manifest into its deterministic cell grid.
//
// A cell is one (algorithm × profile × problem size) point with its trial
// count and base seed — the atom of sweep execution, checkpointing, and
// sharding. Expansion order is fixed (algo-major, then profile, then k;
// sort-major, then profile, then policy for sort workloads — the policy
// axis only exists when the manifest names one), so cell indices are
// stable across runs,
// shards, and resumes; every artifact addresses cells by this index.
//
// Sharding is round-robin by index (cell i belongs to shard i % shards):
// contiguous slicing would give shard 0 all the small-n cells and the
// last shard all the big ones, so round-robin is both balanced and
// deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/manifest.hpp"

namespace cadapt::campaign {

struct Cell {
  std::uint64_t index = 0;  ///< position in the full expanded grid
  AlgoSpec algo;            ///< ratio workload (token empty for sort)
  ProfileSpec profile;
  unsigned k = 0;       ///< ratio: n = b^k
  std::uint64_t n = 0;  ///< ratio: problem blocks; sort: keys
  std::string sort;     ///< sort workload: adaptive|funnel|merge2
  /// Sort workload: canonical replacement-policy token, or "" when the
  /// manifest has no policy axis (the historical LRU machine).
  std::string policy;
  std::uint64_t trials = 1;
  std::uint64_t seed = 0;  ///< base seed for derive_trial_seed
};

struct Plan {
  Manifest manifest;
  std::uint64_t config_hash = 0;  ///< manifest_hash(manifest)
  std::vector<Cell> cells;        ///< full grid, index order
};

/// Expand the manifest. Ratio cells use seed = manifest.seed + k (the
/// same per-point decorrelation as core's sweep drivers) and force
/// trials = 1 on deterministic `worst` cells; sort cells use
/// seed = manifest.seed + index.
Plan expand_plan(const Manifest& manifest);

/// Indices into plan.cells owned by one shard (round-robin). Throws
/// util::UsageError unless shard_index < shards and shards >= 1.
std::vector<std::size_t> shard_cells(const Plan& plan, std::uint64_t shards,
                                     std::uint64_t shard_index);

}  // namespace cadapt::campaign
