#include "campaign/cell_runner.hpp"

#include <memory>
#include <utility>

#include "algos/adaptive_sort.hpp"
#include "algos/funnelsort.hpp"
#include "algos/sim_data.hpp"
#include "algos/sort.hpp"
#include "core/workloads.hpp"
#include "paging/address_space.hpp"
#include "paging/ca_machine.hpp"
#include "profile/generators.hpp"
#include "profile/square_approx.hpp"
#include "profile/transforms.hpp"
#include "profile/worst_case.hpp"
#include "util/check.hpp"

namespace cadapt::campaign {

namespace {

std::shared_ptr<const profile::BoxDistribution> make_distribution(
    const ProfileSpec& spec, const model::RegularParams& params) {
  CADAPT_CHECK(spec.kind == ProfileKind::kIid);
  if (spec.dist == "geometric") {
    return std::make_shared<profile::GeometricPowers>(
        params.b, static_cast<double>(params.a), 0,
        static_cast<unsigned>(spec.uargs.at(0)));
  }
  if (spec.dist == "uniform-powers") {
    return std::make_shared<profile::UniformPowers>(
        params.b, static_cast<unsigned>(spec.uargs.at(0)),
        static_cast<unsigned>(spec.uargs.at(1)));
  }
  if (spec.dist == "bimodal") {
    return std::make_shared<profile::Bimodal>(spec.uargs.at(0),
                                              spec.uargs.at(1), spec.farg);
  }
  if (spec.dist == "point") {
    return std::make_shared<profile::PointMass>(spec.uargs.at(0));
  }
  if (spec.dist == "uniform-range") {
    return std::make_shared<profile::UniformRange>(spec.uargs.at(0),
                                                   spec.uargs.at(1));
  }
  throw util::CheckError("unreachable iid distribution '" + spec.dist + "'");
}

engine::RobustTrialRunner ratio_runner(const Cell& cell,
                                       const CellRunOptions& options) {
  const model::RegularParams& p = cell.algo.params;
  const std::uint64_t n = cell.n;
  engine::McOptions mc;  // only the workload-shaping fields matter here
  mc.semantics = options.semantics;
  mc.max_boxes = options.max_boxes;
  mc.per_box = options.per_box;
  mc.faults = options.faults;
  switch (cell.profile.kind) {
    case ProfileKind::kWorst:
      return engine::make_regular_trial_runner(
          p, n, core::worst_profile_source(p, n), mc);
    case ProfileKind::kShuffled:
      return engine::make_regular_trial_runner(
          p, n, core::shuffled_census_source(p, n), mc);
    case ProfileKind::kShifted:
      return engine::make_regular_trial_runner(
          p, n, core::cyclic_shift_source(p, n), mc);
    case ProfileKind::kPerturb:
      return engine::make_regular_trial_runner(
          p, n,
          core::size_perturb_source(
              p, n, profile::uniform_real_perturb(cell.profile.farg)),
          mc);
    case ProfileKind::kOrder:
      return engine::as_robust_runner(
          core::order_perturb_runner(p, n, /*matched=*/false,
                                     options.semantics));
    case ProfileKind::kOrderMatched:
      return engine::as_robust_runner(
          core::order_perturb_runner(p, n, /*matched=*/true,
                                     options.semantics));
    case ProfileKind::kRandScan:
      return engine::as_robust_runner(
          core::randomized_scan_runner(p, n, options.semantics));
    case ProfileKind::kIid:
      return engine::make_regular_trial_runner(
          p, n, core::iid_source(make_distribution(cell.profile, p)), mc);
    default:
      throw util::CheckError("profile '" + cell.profile.token +
                             "' is not a ratio workload");
  }
}

/// A fresh box stream for one sort trial. The profile RNG is derived from
/// the trial seed so random profiles decorrelate across trials while the
/// whole trial stays a pure function of its seed.
profile::SourceFactory sort_profile_factory(const ProfileSpec& spec,
                                            std::uint64_t trial_seed) {
  switch (spec.kind) {
    case ProfileKind::kConst: {
      const std::uint64_t size = spec.uargs.at(0);
      return [size] {
        return std::make_unique<profile::VectorSource>(
            std::vector<profile::BoxSize>(64, size));
      };
    }
    case ProfileKind::kUniform: {
      auto dist = std::make_shared<profile::UniformRange>(spec.uargs.at(0),
                                                          spec.uargs.at(1));
      util::Rng rng(util::hash_combine(trial_seed, 0x50f17eull));
      return [dist, rng]() mutable {
        return std::make_unique<profile::DistributionSource>(*dist,
                                                             rng.split());
      };
    }
    case ProfileKind::kSawtooth: {
      const auto m = profile::sawtooth_profile(spec.uargs.at(0),
                                               spec.uargs.at(1));
      const auto boxes = profile::inner_square_profile(m);
      return [boxes] {
        return std::make_unique<profile::VectorSource>(boxes);
      };
    }
    case ProfileKind::kMWorst: {
      const std::uint64_t a = spec.uargs.at(0), b = spec.uargs.at(1);
      const std::uint64_t n = spec.uargs.at(2), scale = spec.uargs.at(3);
      return [a, b, n, scale] {
        return std::make_unique<profile::WorstCaseSource>(a, b, n, scale);
      };
    }
    default:
      throw util::CheckError("profile '" + spec.token +
                             "' is not a sort workload");
  }
}

/// One sort trial, shoehorned into the engine's RunResult so the shared
/// containment path (run_single_trial) and record format serve both
/// workloads: ratio <- total I/Os (the sort metric), unit_ratio <- I/Os
/// per key, boxes <- boxes started, completed <- output actually sorted.
engine::RobustTrialRunner sort_runner(const Cell& cell,
                                      const CellRunOptions& options) {
  const ProfileSpec spec = cell.profile;
  const std::string sort = cell.sort;
  const std::uint64_t keys = options.keys;
  const std::uint64_t block = options.block;
  return [spec, sort, keys, block](std::uint64_t trial_seed,
                                   robust::FaultInjector&) {
    paging::CaMachine machine(
        std::make_unique<profile::CyclingSource>(
            sort_profile_factory(spec, trial_seed)),
        block, /*record_boxes=*/false);
    paging::AddressSpace space(block);
    algos::SimVector<std::int64_t> data(machine, space,
                                        static_cast<std::size_t>(keys));
    util::Rng rng(trial_seed);
    for (std::size_t i = 0; i < keys; ++i) {
      data.raw(i) = static_cast<std::int64_t>(rng.below(1u << 24));
    }

    if (sort == "adaptive") {
      algos::adaptive_merge_sort(machine, space, data, [&machine] {
        return machine.current_box_size();
      });
    } else if (sort == "funnel") {
      algos::funnelsort(machine, space, data);
    } else {
      CADAPT_CHECK_MSG(sort == "merge2", "unknown sort '" << sort << "'");
      algos::merge_sort(machine, space, data);
    }

    bool sorted = true;
    for (std::size_t i = 1; i < keys; ++i) {
      if (data.raw(i - 1) > data.raw(i)) sorted = false;
    }
    engine::RunResult r;
    r.completed = sorted;
    r.boxes = machine.boxes_started();
    r.ratio = static_cast<double>(machine.misses());
    r.unit_ratio =
        static_cast<double>(machine.misses()) / static_cast<double>(keys);
    return r;
  };
}

}  // namespace

CellRunOptions cell_options_from(const Manifest& manifest) {
  CellRunOptions options;
  options.semantics = manifest.semantics;
  options.max_boxes = manifest.max_boxes;
  options.keys = manifest.keys;
  options.block = manifest.block;
  return options;
}

std::vector<robust::TrialRecord> run_cell(const Cell& cell,
                                          const CellRunOptions& options) {
  const engine::RobustTrialRunner runner =
      cell.sort.empty() ? ratio_runner(cell, options)
                        : sort_runner(cell, options);
  engine::McOptions trial_options;
  trial_options.seed = cell.seed;
  trial_options.max_attempts = options.max_attempts;
  trial_options.faults = options.faults;
  std::vector<robust::TrialRecord> records;
  records.reserve(cell.trials);
  for (std::uint64_t trial = 0; trial < cell.trials; ++trial) {
    records.push_back(
        engine::run_single_trial(trial_options, runner, trial,
                                 options.timing));
  }
  return records;
}

}  // namespace cadapt::campaign
