#include "campaign/cell_runner.hpp"

#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "algos/adaptive_sort.hpp"
#include "algos/funnelsort.hpp"
#include "algos/fw.hpp"
#include "algos/mm.hpp"
#include "algos/sim_data.hpp"
#include "algos/sort.hpp"
#include "core/workloads.hpp"
#include "paging/address_space.hpp"
#include "paging/block_run.hpp"
#include "paging/ca_machine.hpp"
#include "profile/generators.hpp"
#include "profile/square_approx.hpp"
#include "profile/transforms.hpp"
#include "profile/worst_case.hpp"
#include "sched/worksteal.hpp"
#include "util/check.hpp"

namespace cadapt::campaign {

namespace {

std::shared_ptr<const profile::BoxDistribution> make_distribution(
    const ProfileSpec& spec, const model::RegularParams& params) {
  CADAPT_CHECK(spec.kind == ProfileKind::kIid);
  if (spec.dist == "geometric") {
    return std::make_shared<profile::GeometricPowers>(
        params.b, static_cast<double>(params.a), 0,
        static_cast<unsigned>(spec.uargs.at(0)));
  }
  if (spec.dist == "uniform-powers") {
    return std::make_shared<profile::UniformPowers>(
        params.b, static_cast<unsigned>(spec.uargs.at(0)),
        static_cast<unsigned>(spec.uargs.at(1)));
  }
  if (spec.dist == "bimodal") {
    return std::make_shared<profile::Bimodal>(spec.uargs.at(0),
                                              spec.uargs.at(1), spec.farg);
  }
  if (spec.dist == "point") {
    return std::make_shared<profile::PointMass>(spec.uargs.at(0));
  }
  if (spec.dist == "uniform-range") {
    return std::make_shared<profile::UniformRange>(spec.uargs.at(0),
                                                   spec.uargs.at(1));
  }
  throw util::CheckError("unreachable iid distribution '" + spec.dist + "'");
}

engine::RobustTrialRunner ratio_runner(const Cell& cell,
                                       const CellRunOptions& options) {
  const model::RegularParams& p = cell.algo.params;
  const std::uint64_t n = cell.n;
  engine::McOptions mc;  // only the workload-shaping fields matter here
  mc.semantics = options.semantics;
  mc.max_boxes = options.max_boxes;
  mc.per_box = options.per_box;
  mc.faults = options.faults;
  mc.cancel = options.cancel;
  switch (cell.profile.kind) {
    case ProfileKind::kWorst:
      return engine::make_regular_trial_runner(
          p, n, core::worst_profile_source(p, n), mc);
    case ProfileKind::kShuffled:
      return engine::make_regular_trial_runner(
          p, n, core::shuffled_census_source(p, n), mc);
    case ProfileKind::kShifted:
      return engine::make_regular_trial_runner(
          p, n, core::cyclic_shift_source(p, n), mc);
    case ProfileKind::kPerturb:
      return engine::make_regular_trial_runner(
          p, n,
          core::size_perturb_source(
              p, n, profile::uniform_real_perturb(cell.profile.farg)),
          mc);
    case ProfileKind::kOrder:
      return engine::as_robust_runner(
          core::order_perturb_runner(p, n, /*matched=*/false,
                                     options.semantics));
    case ProfileKind::kOrderMatched:
      return engine::as_robust_runner(
          core::order_perturb_runner(p, n, /*matched=*/true,
                                     options.semantics));
    case ProfileKind::kRandScan:
      return engine::as_robust_runner(
          core::randomized_scan_runner(p, n, options.semantics));
    case ProfileKind::kIid:
      return engine::make_regular_trial_runner(
          p, n, core::iid_source(make_distribution(cell.profile, p)), mc);
    default:
      throw util::CheckError("profile '" + cell.profile.token +
                             "' is not a ratio workload");
  }
}

/// A fresh box stream for one sort trial. The profile RNG is derived from
/// the trial seed so random profiles decorrelate across trials while the
/// whole trial stays a pure function of its seed.
profile::SourceFactory sort_profile_factory(const ProfileSpec& spec,
                                            std::uint64_t trial_seed) {
  switch (spec.kind) {
    case ProfileKind::kConst: {
      const std::uint64_t size = spec.uargs.at(0);
      return [size] {
        return std::make_unique<profile::VectorSource>(
            std::vector<profile::BoxSize>(64, size));
      };
    }
    case ProfileKind::kUniform: {
      auto dist = std::make_shared<profile::UniformRange>(spec.uargs.at(0),
                                                          spec.uargs.at(1));
      util::Rng rng(util::hash_combine(trial_seed, 0x50f17eull));
      return [dist, rng]() mutable {
        return std::make_unique<profile::DistributionSource>(*dist,
                                                             rng.split());
      };
    }
    case ProfileKind::kSawtooth: {
      const auto m = profile::sawtooth_profile(spec.uargs.at(0),
                                               spec.uargs.at(1));
      const auto boxes = profile::inner_square_profile(m);
      return [boxes] {
        return std::make_unique<profile::VectorSource>(boxes);
      };
    }
    case ProfileKind::kMWorst: {
      const std::uint64_t a = spec.uargs.at(0), b = spec.uargs.at(1);
      const std::uint64_t n = spec.uargs.at(2), scale = spec.uargs.at(3);
      return [a, b, n, scale] {
        return std::make_unique<profile::WorstCaseSource>(a, b, n, scale);
      };
    }
    default:
      throw util::CheckError("profile '" + spec.token +
                             "' is not a sort workload");
  }
}

/// A parsed `sorts` token: which program a cell runs, and the matrix side
/// for mm:N / fw:N (tokens are validated at manifest/CLI parse time).
struct ProgramSpec {
  enum class Kind { kAdaptive, kFunnel, kMerge2, kMm, kFw };
  Kind kind = Kind::kFunnel;
  std::size_t n = 0;  ///< matrix side (mm/fw only)
};

ProgramSpec parse_program(const std::string& token) {
  ProgramSpec prog;
  if (token == "adaptive") {
    prog.kind = ProgramSpec::Kind::kAdaptive;
  } else if (token == "funnel") {
    prog.kind = ProgramSpec::Kind::kFunnel;
  } else if (token == "merge2") {
    prog.kind = ProgramSpec::Kind::kMerge2;
  } else if (token.rfind("mm:", 0) == 0 || token.rfind("fw:", 0) == 0) {
    validate_program_token(token, 0);
    prog.kind = token[0] == 'm' ? ProgramSpec::Kind::kMm
                                : ProgramSpec::Kind::kFw;
    prog.n = static_cast<std::size_t>(std::stoull(token.substr(3)));
  } else {
    throw util::CheckError("unknown program '" + token + "'");
  }
  return prog;
}

/// Work units for the per-unit I/O metric: keys for the sorts, elements
/// for the matrix kernels.
std::uint64_t program_units(const ProgramSpec& prog, std::uint64_t keys) {
  if (prog.kind == ProgramSpec::Kind::kMm ||
      prog.kind == ProgramSpec::Kind::kFw) {
    return static_cast<std::uint64_t>(prog.n) * prog.n;
  }
  return keys;
}

/// Run one program against `machine` and verify its output against an
/// untracked reference; returns the verification verdict. `box_hint` is
/// consulted only by the adaptive sort (must be non-null for it). Matrix
/// inputs are small integers, so the recursive kernels match the
/// reference in exact floating-point equality regardless of summation
/// order.
bool run_program(const ProgramSpec& prog, paging::Machine& machine,
                 std::uint64_t keys, std::uint64_t input_seed,
                 const std::function<std::uint64_t()>& box_hint) {
  paging::AddressSpace space(machine.block_size());
  util::Rng rng(input_seed);
  switch (prog.kind) {
    case ProgramSpec::Kind::kAdaptive:
    case ProgramSpec::Kind::kFunnel:
    case ProgramSpec::Kind::kMerge2: {
      algos::SimVector<std::int64_t> data(machine, space,
                                          static_cast<std::size_t>(keys));
      for (std::size_t i = 0; i < keys; ++i) {
        data.raw(i) = static_cast<std::int64_t>(rng.below(1u << 24));
      }
      if (prog.kind == ProgramSpec::Kind::kAdaptive) {
        CADAPT_CHECK_MSG(box_hint != nullptr,
                         "adaptive sort needs a box-size hint");
        algos::adaptive_merge_sort(machine, space, data, box_hint);
      } else if (prog.kind == ProgramSpec::Kind::kFunnel) {
        algos::funnelsort(machine, space, data);
      } else {
        algos::merge_sort(machine, space, data);
      }
      for (std::size_t i = 1; i < keys; ++i) {
        if (data.raw(i - 1) > data.raw(i)) return false;
      }
      return true;
    }
    case ProgramSpec::Kind::kMm: {
      const std::size_t n = prog.n;
      algos::SimMatrix<double> a(machine, space, n, n);
      algos::SimMatrix<double> b(machine, space, n, n);
      algos::SimMatrix<double> c(machine, space, n, n);
      std::vector<double> a_raw(n * n), b_raw(n * n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t col = 0; col < n; ++col) {
          a.raw(r, col) = a_raw[r * n + col] =
              static_cast<double>(rng.below(64));
          b.raw(r, col) = b_raw[r * n + col] =
              static_cast<double>(rng.below(64));
        }
      }
      algos::MmScratch scratch(machine, space);
      algos::MatView<double> cv(c), av(a), bv(b);
      algos::mm_scan(cv, av, bv, scratch);
      const std::vector<double> want = algos::mm_reference(a_raw, b_raw, n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t col = 0; col < n; ++col) {
          if (c.raw(r, col) != want[r * n + col]) return false;
        }
      }
      return true;
    }
    case ProgramSpec::Kind::kFw: {
      const std::size_t n = prog.n;
      algos::SimMatrix<double> d(machine, space, n, n);
      std::vector<double> d_raw(n * n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t col = 0; col < n; ++col) {
          const double w =
              r == col ? 0.0 : static_cast<double>(1 + rng.below(64));
          d.raw(r, col) = d_raw[r * n + col] = w;
        }
      }
      algos::MatView<double> dv(d);
      algos::fw_recursive(dv);
      const std::vector<double> want =
          algos::fw_reference(std::move(d_raw), n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t col = 0; col < n; ++col) {
          if (d.raw(r, col) != want[r * n + col]) return false;
        }
      }
      return true;
    }
  }
  throw util::CheckError("unreachable program kind");
}

}  // namespace

/// One program trial, shoehorned into the engine's RunResult so the
/// shared containment path (run_single_trial) and record format serve
/// both workloads: ratio <- total I/Os (the metric), unit_ratio <- I/Os
/// per work unit, boxes <- boxes started, completed <- output verified.
///
/// With capture_trace set, the first trial to arrive records the cell's
/// block-run trace through a BlockRunRecorder (inputs fixed by the cell
/// seed, so the access stream is trial-invariant) and every trial —
/// including the first — replays that trace into its own machine, keeping
/// all trials on one code path. The adaptive sort's stream depends on the
/// live box profile, so it falls back to direct runs with the same fixed
/// input.
engine::RobustTrialRunner make_program_runner(const Cell& cell,
                                              const CellRunOptions& options) {
  const ProfileSpec spec = cell.profile;
  const ProgramSpec prog = parse_program(cell.sort);
  const std::uint64_t keys = options.keys;
  const std::uint64_t block = options.block;
  const std::uint64_t units = program_units(prog, keys);
  const bool per_access = options.per_access;
  const bool capture = options.capture_trace;
  const std::uint64_t cell_seed = cell.seed;
  const robust::CancelToken* cancel =
      options.cancel_per_box ? options.cancel : nullptr;
  const paging::CaConfig config = ca_config_for(cell, options);
  const bool replayable =
      capture && prog.kind != ProgramSpec::Kind::kAdaptive;

  // Shared across the trials of this cell (and across threads when the
  // CLI's mc mode fans trials out on a pool): the once-recorded trace.
  struct CaptureState {
    std::once_flag once;
    paging::BlockRunTrace trace;
    bool verified = false;
  };
  auto state = replayable ? std::make_shared<CaptureState>() : nullptr;

  return [spec, prog, keys, block, units, per_access, capture, cell_seed,
          cancel, config, replayable, state](std::uint64_t trial_seed,
                                             robust::FaultInjector&) {
    const std::uint64_t input_seed = capture ? cell_seed : trial_seed;
    paging::CaMachine machine(
        std::make_unique<profile::CyclingSource>(
            sort_profile_factory(spec, trial_seed)),
        block, /*record_boxes=*/false, /*recorder=*/nullptr, config);
    if (per_access) machine.set_per_access(true);
    if (cancel != nullptr) {
      // Poll at every box boundary: the programs make no other calls the
      // driver can intercept, so without this a stuck sort cell would
      // outlive its deadline by an unbounded margin. The hook forces the
      // generic replay path — paid only when a deadline is armed.
      machine.set_box_hook(
          [cancel](std::uint64_t, std::uint64_t) { cancel->poll(); });
    }

    engine::RunResult r;
    if (replayable) {
      std::call_once(state->once, [&] {
        paging::BlockRunRecorder recorder(block);
        if (per_access) recorder.set_per_access(true);
        state->verified =
            run_program(prog, recorder, keys, input_seed, nullptr);
        state->trace = recorder.take();
      });
      machine.replay_trace(state->trace);
      r.completed = state->verified;
    } else {
      r.completed = run_program(prog, machine, keys, input_seed, [&machine] {
        return machine.current_box_size();
      });
    }
    r.boxes = machine.boxes_started();
    r.ratio = static_cast<double>(machine.misses());
    r.unit_ratio =
        static_cast<double>(machine.misses()) / static_cast<double>(units);
    return r;
  };
}

engine::RunResult run_program_traced(const Cell& cell,
                                     const CellRunOptions& options,
                                     std::uint64_t trial_seed,
                                     obs::PagingRecorder& recorder) {
  const ProgramSpec prog = parse_program(cell.sort);
  paging::CaMachine machine(
      std::make_unique<profile::CyclingSource>(
          sort_profile_factory(cell.profile, trial_seed)),
      options.block, /*record_boxes=*/false, &recorder,
      ca_config_for(cell, options));
  engine::RunResult r;
  r.completed = run_program(prog, machine, options.keys, trial_seed,
                            [&machine] { return machine.current_box_size(); });
  r.boxes = machine.boxes_started();
  r.ratio = static_cast<double>(machine.misses());
  r.unit_ratio = static_cast<double>(machine.misses()) /
                 static_cast<double>(program_units(prog, options.keys));
  return r;
}

CellRunOptions cell_options_from(const Manifest& manifest) {
  CellRunOptions options;
  options.semantics = manifest.semantics;
  options.max_boxes = manifest.max_boxes;
  options.keys = manifest.keys;
  options.block = manifest.block;
  options.capture_trace = manifest.trace_replay;
  options.tiers = manifest.tiers;
  options.workers = manifest.workers;
  return options;
}

paging::CaConfig ca_config_for(const Cell& cell,
                               const CellRunOptions& options) {
  paging::CaConfig config;
  if (!cell.policy.empty()) {
    config.policy = paging::parse_policy_token(cell.policy);
  }
  if (options.tiers.set) {
    config.tier1_num = options.tiers.tier1_num;
    config.tier1_den = options.tiers.tier1_den;
    config.tier2_blocks = options.tiers.tier2_blocks;
    config.tier2_hit_cost = options.tiers.tier2_hit_cost;
    config.tier2_miss_cost = options.tiers.tier2_miss_cost;
  }
  return config;
}

std::vector<robust::TrialRecord> run_cell(const Cell& cell,
                                          const CellRunOptions& options) {
  const engine::RobustTrialRunner runner =
      cell.sort.empty() ? ratio_runner(cell, options)
                        : make_program_runner(cell, options);
  engine::McOptions trial_options;
  trial_options.seed = cell.seed;
  trial_options.max_attempts = options.max_attempts;
  trial_options.faults = options.faults;
  trial_options.cancel = options.cancel;
  trial_options.backoff = options.backoff;
  // Sort cells fan their trials out on a seeded work-stealing pool when
  // workers >= 2: every trial is a pure function of (cell.seed, trial,
  // attempt) and lands at its own index, so the records are byte-
  // identical to the sequential loop (only wall-clock changes). Ratio
  // cells stay sequential — their runners share stateful profile
  // sources. This is how adaptive-sort cells, which trace replay cannot
  // cover, still scale with workers.
  if (options.workers >= 2 && cell.trials >= 2 && !cell.sort.empty()) {
    std::vector<robust::TrialRecord> records(cell.trials);
    sched::parallel_trials(
        cell.trials, options.workers, cell.seed, [&](std::uint64_t trial) {
          records[trial] = engine::run_single_trial(trial_options, runner,
                                                    trial, options.timing);
        });
    return records;
  }
  std::vector<robust::TrialRecord> records;
  records.reserve(cell.trials);
  for (std::uint64_t trial = 0; trial < cell.trials; ++trial) {
    records.push_back(
        engine::run_single_trial(trial_options, runner, trial,
                                 options.timing));
  }
  return records;
}

}  // namespace cadapt::campaign
