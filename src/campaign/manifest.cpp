#include "campaign/manifest.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "paging/policy.hpp"
#include "util/check.hpp"

namespace cadapt::campaign {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw util::ParseError(
      "manifest line " + std::to_string(line_no) + ": " + message, line_no);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= s.size()) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> tokens_of(const std::string& value) {
  std::istringstream is(value);
  std::vector<std::string> out;
  std::string token;
  while (is >> token) out.push_back(token);
  return out;
}

std::uint64_t parse_u64(const std::string& s, std::size_t line_no,
                        const std::string& what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    fail(line_no, what + ": '" + s + "' is not an unsigned integer");
  }
  return v;
}

double parse_f64(const std::string& s, std::size_t line_no,
                 const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    fail(line_no, what + ": '" + s + "' is not a number");
  }
}

std::string format_double_token(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

AlgoSpec parse_algo(const std::string& token, std::size_t line_no) {
  const auto parts = split(token, ':');
  if (parts.size() != 3) {
    fail(line_no, "algo '" + token + "' must be a:b:c");
  }
  AlgoSpec spec;
  spec.params.a = parse_u64(parts[0], line_no, "algo a");
  spec.params.b = parse_u64(parts[1], line_no, "algo b");
  spec.params.c = parse_f64(parts[2], line_no, "algo c");
  try {
    spec.params.validate();
  } catch (const util::CheckError& e) {
    fail(line_no, "algo '" + token + "': " + e.what());
  }
  spec.token = parts[0] + ":" + parts[1] + ":" +
               format_double_token(spec.params.c);
  return spec;
}

void expect_args(const std::vector<std::string>& parts, std::size_t n,
                 std::size_t line_no, const std::string& what) {
  if (parts.size() != n + 1) {
    fail(line_no, what + " takes " + std::to_string(n) + " argument(s), got " +
                      std::to_string(parts.size() - 1));
  }
}

ProfileSpec parse_ratio_profile(const std::string& token, std::size_t line_no) {
  // An optional trailing @K caps the profile at k <= K; the raw token
  // (suffix included) stays the canonical spelling so the cap is part of
  // the fingerprint.
  std::string body = token;
  unsigned kmax = 0;
  if (const auto at = token.rfind('@'); at != std::string::npos) {
    const std::string cap = token.substr(at + 1);
    const std::uint64_t k = parse_u64(cap, line_no, "profile k cap");
    if (k == 0) fail(line_no, "profile k cap must be >= 1");
    kmax = static_cast<unsigned>(k);
    body = token.substr(0, at);
  }
  const auto parts = split(body, ':');
  ProfileSpec spec;
  spec.token = token;
  spec.kmax = kmax;
  const std::string& kind = parts[0];
  if (kind == "worst") {
    expect_args(parts, 0, line_no, "worst");
    spec.kind = ProfileKind::kWorst;
  } else if (kind == "shuffled") {
    expect_args(parts, 0, line_no, "shuffled");
    spec.kind = ProfileKind::kShuffled;
  } else if (kind == "shifted") {
    expect_args(parts, 0, line_no, "shifted");
    spec.kind = ProfileKind::kShifted;
  } else if (kind == "perturb") {
    expect_args(parts, 1, line_no, "perturb");
    spec.kind = ProfileKind::kPerturb;
    spec.farg = parse_f64(parts[1], line_no, "perturb t");
    if (spec.farg <= 0.0) fail(line_no, "perturb t must be > 0");
  } else if (kind == "order") {
    expect_args(parts, 0, line_no, "order");
    spec.kind = ProfileKind::kOrder;
  } else if (kind == "order-matched") {
    expect_args(parts, 0, line_no, "order-matched");
    spec.kind = ProfileKind::kOrderMatched;
  } else if (kind == "randscan") {
    expect_args(parts, 0, line_no, "randscan");
    spec.kind = ProfileKind::kRandScan;
  } else if (kind == "iid") {
    if (parts.size() < 2) fail(line_no, "iid profile needs a distribution");
    spec.kind = ProfileKind::kIid;
    spec.dist = parts[1];
    if (spec.dist == "geometric") {
      expect_args(parts, 2, line_no, "iid:geometric");
      spec.uargs = {parse_u64(parts[2], line_no, "geometric K")};
    } else if (spec.dist == "uniform-powers") {
      expect_args(parts, 3, line_no, "iid:uniform-powers");
      spec.uargs = {parse_u64(parts[2], line_no, "uniform-powers K0"),
                    parse_u64(parts[3], line_no, "uniform-powers K1")};
    } else if (spec.dist == "bimodal") {
      expect_args(parts, 4, line_no, "iid:bimodal");
      spec.uargs = {parse_u64(parts[2], line_no, "bimodal small"),
                    parse_u64(parts[3], line_no, "bimodal big")};
      spec.farg = parse_f64(parts[4], line_no, "bimodal p_big");
    } else if (spec.dist == "point") {
      expect_args(parts, 2, line_no, "iid:point");
      spec.uargs = {parse_u64(parts[2], line_no, "point size")};
    } else if (spec.dist == "uniform-range") {
      expect_args(parts, 3, line_no, "iid:uniform-range");
      spec.uargs = {parse_u64(parts[2], line_no, "uniform-range lo"),
                    parse_u64(parts[3], line_no, "uniform-range hi")};
    } else {
      fail(line_no, "unknown iid distribution '" + spec.dist + "'");
    }
  } else {
    fail(line_no, "unknown profile '" + token + "'");
  }
  return spec;
}

ProfileSpec parse_sort_profile(const std::string& token, std::size_t line_no) {
  const auto parts = split(token, ':');
  ProfileSpec spec;
  spec.token = token;
  const std::string& kind = parts[0];
  if (kind == "const") {
    expect_args(parts, 1, line_no, "const");
    spec.kind = ProfileKind::kConst;
    spec.uargs = {parse_u64(parts[1], line_no, "const size")};
  } else if (kind == "uniform") {
    expect_args(parts, 2, line_no, "uniform");
    spec.kind = ProfileKind::kUniform;
    spec.uargs = {parse_u64(parts[1], line_no, "uniform lo"),
                  parse_u64(parts[2], line_no, "uniform hi")};
  } else if (kind == "sawtooth") {
    expect_args(parts, 2, line_no, "sawtooth");
    spec.kind = ProfileKind::kSawtooth;
    spec.uargs = {parse_u64(parts[1], line_no, "sawtooth peak"),
                  parse_u64(parts[2], line_no, "sawtooth cycles")};
  } else if (kind == "mworst") {
    expect_args(parts, 4, line_no, "mworst");
    spec.kind = ProfileKind::kMWorst;
    spec.uargs = {parse_u64(parts[1], line_no, "mworst a"),
                  parse_u64(parts[2], line_no, "mworst b"),
                  parse_u64(parts[3], line_no, "mworst n"),
                  parse_u64(parts[4], line_no, "mworst scale")};
  } else {
    fail(line_no, "unknown sort profile '" + token + "'");
  }
  return spec;
}

std::vector<unsigned> parse_k_list(const std::string& value,
                                   std::size_t line_no) {
  std::vector<unsigned> ks;
  for (const std::string& token : tokens_of(value)) {
    const auto dots = token.find("..");
    if (dots != std::string::npos) {
      const std::uint64_t lo =
          parse_u64(token.substr(0, dots), line_no, "k range low");
      const std::uint64_t hi =
          parse_u64(token.substr(dots + 2), line_no, "k range high");
      if (lo > hi) fail(line_no, "k range '" + token + "' is reversed");
      for (std::uint64_t k = lo; k <= hi; ++k)
        ks.push_back(static_cast<unsigned>(k));
    } else {
      ks.push_back(static_cast<unsigned>(parse_u64(token, line_no, "k")));
    }
  }
  return ks;
}

TiersSpec parse_tiers(const std::string& token, std::size_t line_no) {
  const auto parts = split(token, ':');
  if (parts.size() != 3 && parts.size() != 5) {
    fail(line_no, "tiers '" + token +
                      "' must be T2CAP:HITCOST:MISSCOST[:NUM:DEN]");
  }
  TiersSpec spec;
  spec.set = true;
  spec.tier2_blocks = parse_u64(parts[0], line_no, "tiers t2 capacity");
  spec.tier2_hit_cost = parse_u64(parts[1], line_no, "tiers hit cost");
  spec.tier2_miss_cost = parse_u64(parts[2], line_no, "tiers miss cost");
  if (spec.tier2_hit_cost == 0) fail(line_no, "tiers hit cost must be >= 1");
  if (spec.tier2_miss_cost < spec.tier2_hit_cost) {
    fail(line_no, "tiers miss cost must be >= the hit cost");
  }
  if (parts.size() == 5) {
    spec.tier1_num = parse_u64(parts[3], line_no, "tiers share num");
    spec.tier1_den = parse_u64(parts[4], line_no, "tiers share den");
    if (spec.tier1_num == 0) fail(line_no, "tiers share num must be >= 1");
    if (spec.tier1_num > spec.tier1_den) {
      fail(line_no, "tiers share must be <= 1 (num <= den)");
    }
  }
  if (spec.tier2_blocks == 0 && spec.tier1_num == spec.tier1_den) {
    fail(line_no, "tiers '" + token +
                      "' is a no-op: give tier 2 capacity or a share < 1");
  }
  return spec;
}

std::string parse_policy(const std::string& token, std::size_t line_no) {
  try {
    return paging::parse_policy_token(token).token();
  } catch (const util::ParseError& e) {
    fail(line_no, e.what());
  }
}

}  // namespace

ProfileSpec parse_sort_profile_token(const std::string& token) {
  return parse_sort_profile(token, 0);
}

std::string TiersSpec::token() const {
  std::ostringstream os;
  os << tier2_blocks << ":" << tier2_hit_cost << ":" << tier2_miss_cost;
  if (tier1_num != tier1_den) os << ":" << tier1_num << ":" << tier1_den;
  return os.str();
}

TiersSpec parse_tiers_token(const std::string& token) {
  return parse_tiers(token, 0);
}

void validate_program_token(const std::string& token, std::size_t line_no) {
  if (token == "adaptive" || token == "funnel" || token == "merge2") return;
  const auto parts = split(token, ':');
  if (parts.size() == 2 && (parts[0] == "mm" || parts[0] == "fw")) {
    const std::uint64_t n = parse_u64(parts[1], line_no, parts[0] + " size");
    if (n < 4 || (n & (n - 1)) != 0) {
      fail(line_no,
           parts[0] + " size must be a power of two >= 4, got '" + parts[1] +
               "'");
    }
    return;
  }
  fail(line_no, "unknown program '" + token +
                    "' (expected adaptive, funnel, merge2, mm:N, or fw:N)");
}

Manifest parse_manifest(std::istream& is) {
  Manifest m;
  bool saw_name = false;
  bool saw_workload = false;
  // Raw values are collected first: `workload` may appear after `profiles`
  // and profile grammar depends on it.
  std::vector<std::string> profile_tokens;
  std::size_t profiles_line = 0;
  // key -> the line that first set it. A repeated key is refused, not
  // last-one-wins: two manifests differing only in a shadowed line would
  // parse (and hash) identically while READING differently — ambiguity a
  // submitted campaign must never carry (docs/SWEEPS.md).
  std::map<std::string, std::size_t> seen_keys;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      if (!tokens_of(line).empty()) fail(line_no, "expected 'key = value'");
      continue;
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    const auto key_tokens = tokens_of(key);
    if (key_tokens.size() != 1) fail(line_no, "expected a single key");
    key = key_tokens.front();
    if (const auto [it, fresh] = seen_keys.emplace(key, line_no); !fresh) {
      fail(line_no, "duplicate key '" + key + "' (first set at line " +
                        std::to_string(it->second) +
                        ") — list every value on one line");
    }

    if (key == "name") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "name must be a single token");
      m.name = toks.front();
      saw_name = true;
    } else if (key == "workload") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1 || (toks[0] != "ratio" && toks[0] != "sort")) {
        fail(line_no, "workload must be ratio or sort");
      }
      m.workload = toks[0] == "sort" ? Workload::kSort : Workload::kRatio;
      saw_workload = true;
    } else if (key == "algos") {
      for (const std::string& token : tokens_of(value))
        m.algos.push_back(parse_algo(token, line_no));
    } else if (key == "profiles") {
      profile_tokens = tokens_of(value);
      profiles_line = line_no;
    } else if (key == "k") {
      m.ks = parse_k_list(value, line_no);
    } else if (key == "trials") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "trials must be a single integer");
      m.trials = parse_u64(toks[0], line_no, "trials");
      if (m.trials == 0) fail(line_no, "trials must be >= 1");
    } else if (key == "seed") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "seed must be a single integer");
      m.seed = parse_u64(toks[0], line_no, "seed");
    } else if (key == "semantics") {
      const auto toks = tokens_of(value);
      if (toks.size() == 1 && toks[0] == "budgeted") {
        m.semantics = engine::BoxSemantics::kBudgeted;
      } else if (toks.size() == 1 && toks[0] == "optimistic") {
        m.semantics = engine::BoxSemantics::kOptimistic;
      } else {
        fail(line_no, "semantics must be optimistic or budgeted");
      }
    } else if (key == "unit_progress") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1 || (toks[0] != "0" && toks[0] != "1")) {
        fail(line_no, "unit_progress must be 0 or 1");
      }
      m.unit_progress = toks[0] == "1";
    } else if (key == "max_boxes") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "max_boxes must be a single integer");
      m.max_boxes = parse_u64(toks[0], line_no, "max_boxes");
      if (m.max_boxes == 0) fail(line_no, "max_boxes must be >= 1");
    } else if (key == "sorts") {
      for (const std::string& token : tokens_of(value)) {
        validate_program_token(token, line_no);
        m.sorts.push_back(token);
      }
    } else if (key == "policies") {
      for (const std::string& token : tokens_of(value)) {
        m.policies.push_back(parse_policy(token, line_no));
      }
    } else if (key == "tiers") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "tiers must be a single token");
      m.tiers = parse_tiers(toks[0], line_no);
    } else if (key == "trace_replay") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1 || (toks[0] != "0" && toks[0] != "1")) {
        fail(line_no, "trace_replay must be 0 or 1");
      }
      m.trace_replay = toks[0] == "1";
    } else if (key == "keys") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "keys must be a single integer");
      m.keys = parse_u64(toks[0], line_no, "keys");
      if (m.keys < 2) fail(line_no, "keys must be >= 2");
    } else if (key == "workers") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "workers must be a single integer");
      m.workers = parse_u64(toks[0], line_no, "workers");
      if (m.workers == 0) fail(line_no, "workers must be >= 1");
    } else if (key == "block") {
      const auto toks = tokens_of(value);
      if (toks.size() != 1) fail(line_no, "block must be a single integer");
      m.block = parse_u64(toks[0], line_no, "block");
      if (m.block == 0) fail(line_no, "block must be >= 1");
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  (void)saw_workload;

  if (!saw_name) throw util::ParseError("manifest has no 'name' line");
  for (const std::string& token : profile_tokens) {
    m.profiles.push_back(m.workload == Workload::kSort
                             ? parse_sort_profile(token, profiles_line)
                             : parse_ratio_profile(token, profiles_line));
  }
  if (m.profiles.empty()) throw util::ParseError("manifest has no profiles");
  if (m.workload == Workload::kRatio) {
    if (m.algos.empty()) throw util::ParseError("manifest has no algos");
    if (m.ks.empty()) throw util::ParseError("manifest has no k values");
    if (!m.sorts.empty()) {
      throw util::ParseError("'sorts' requires workload = sort");
    }
    if (m.trace_replay) {
      throw util::ParseError("'trace_replay' requires workload = sort");
    }
    if (!m.policies.empty()) {
      throw util::ParseError("'policies' requires workload = sort");
    }
    if (m.tiers.set) {
      throw util::ParseError("'tiers' requires workload = sort");
    }
  } else {
    if (m.sorts.empty()) throw util::ParseError("manifest has no sorts");
    if (!m.algos.empty() || !m.ks.empty()) {
      throw util::ParseError("'algos'/'k' require workload = ratio");
    }
  }
  return m;
}

Manifest parse_manifest_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    throw util::IoError("cannot open manifest '" + path + "' for reading");
  }
  return parse_manifest(is);
}

std::string manifest_fingerprint(const Manifest& m) {
  std::ostringstream os;
  os << "v1 name=" << m.name
     << " workload=" << (m.workload == Workload::kSort ? "sort" : "ratio");
  os << " algos=";
  for (const AlgoSpec& a : m.algos) os << a.token << ",";
  os << " profiles=";
  for (const ProfileSpec& p : m.profiles) os << p.token << ",";
  os << " k=";
  for (const unsigned k : m.ks) os << k << ",";
  os << " trials=" << m.trials << " seed=" << m.seed << " sem="
     << (m.semantics == engine::BoxSemantics::kBudgeted ? "budgeted"
                                                        : "optimistic")
     << " unit=" << (m.unit_progress ? 1 : 0) << " max_boxes=" << m.max_boxes;
  if (m.workload == Workload::kSort) {
    os << " sorts=";
    for (const std::string& s : m.sorts) os << s << ",";
    os << " keys=" << m.keys << " block=" << m.block;
    // Only-when-set: campaigns without trace replay, a policy axis, or
    // tiers keep their historical fingerprint (and thus config_hash)
    // byte-for-byte.
    if (m.trace_replay) os << " replay=1";
    if (!m.policies.empty()) {
      os << " policies=";
      for (const std::string& p : m.policies) os << p << ",";
    }
    if (m.tiers.set) os << " tiers=" << m.tiers.token();
  }
  // Only-when-set (>= 2): workers never changes any measured value, but
  // a parallel campaign still declares itself; workers = 1 is the
  // historical sequential loop and keeps the fingerprint byte-for-byte.
  if (m.workers >= 2) os << " workers=" << m.workers;
  return os.str();
}

std::uint64_t manifest_hash(const Manifest& m) {
  // FNV-1a over the canonical fingerprint.
  const std::string fp = manifest_fingerprint(m);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : fp) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace cadapt::campaign
