#include "campaign/plan.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::campaign {

Plan expand_plan(const Manifest& manifest) {
  Plan plan;
  plan.manifest = manifest;
  plan.config_hash = manifest_hash(manifest);
  if (manifest.workload == Workload::kRatio) {
    for (const AlgoSpec& algo : manifest.algos) {
      for (const ProfileSpec& profile : manifest.profiles) {
        for (const unsigned k : manifest.ks) {
          // An @K-capped profile simply has no cells past its cap; the
          // remaining grid keeps its indices dense and stable.
          if (profile.kmax != 0 && k > profile.kmax) continue;
          Cell cell;
          cell.index = plan.cells.size();
          cell.algo = algo;
          cell.profile = profile;
          cell.k = k;
          cell.n = util::ipow(algo.params.b, k);
          cell.trials =
              profile.kind == ProfileKind::kWorst ? 1 : manifest.trials;
          cell.seed = manifest.seed + k;
          plan.cells.push_back(std::move(cell));
        }
      }
    }
  } else {
    // The policy axis is innermost; a manifest without one expands a
    // single unnamed policy so historical grids keep their exact cells
    // (indices, seeds, labels).
    const std::vector<std::string> policies =
        manifest.policies.empty() ? std::vector<std::string>{""}
                                  : manifest.policies;
    for (const std::string& sort : manifest.sorts) {
      for (const ProfileSpec& profile : manifest.profiles) {
        for (const std::string& policy : policies) {
          Cell cell;
          cell.index = plan.cells.size();
          cell.sort = sort;
          cell.profile = profile;
          cell.policy = policy;
          cell.n = manifest.keys;
          cell.trials = manifest.trials;
          cell.seed = manifest.seed + cell.index;
          plan.cells.push_back(std::move(cell));
        }
      }
    }
  }
  CADAPT_CHECK(!plan.cells.empty());
  return plan;
}

std::vector<std::size_t> shard_cells(const Plan& plan, std::uint64_t shards,
                                     std::uint64_t shard_index) {
  if (shards == 0) throw util::UsageError("--shards must be >= 1");
  if (shard_index >= shards) {
    throw util::UsageError("--shard-index must be < --shards");
  }
  std::vector<std::size_t> mine;
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    if (i % shards == shard_index) mine.push_back(i);
  }
  return mine;
}

}  // namespace cadapt::campaign
