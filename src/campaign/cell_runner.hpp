// Execute one planned cell: `trials` contained trials, inline on the
// calling thread. The sweep orchestrator parallelizes across CELLS on its
// own thread pool; trials within a cell run sequentially right here via
// engine::run_single_trial, so the campaign reuses the Monte-Carlo
// layer's containment/retry/fault machinery without nesting thread pools.
//
// Determinism: every trial's outcome is a pure function of
// (cell.seed, trial index, attempt) — identical across --jobs, --shards,
// and resume boundaries. Only duration_ns varies; run with timing = false
// to zero it (the bit-identity tests do).
#pragma once

#include <vector>

#include "campaign/plan.hpp"
#include "engine/montecarlo.hpp"
#include "paging/policy.hpp"
#include "robust/backoff.hpp"
#include "robust/cancel.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault.hpp"

namespace cadapt::campaign {

struct CellRunOptions {
  engine::BoxSemantics semantics = engine::BoxSemantics::kOptimistic;
  std::uint64_t max_boxes = UINT64_C(1) << 40;
  /// Force the per-box reference driver in every trial (docs/PERF.md);
  /// the default bulk path is bit-identical, so this exists for
  /// differential tests (`cadapt sweep --per-box`) and debugging.
  bool per_box = false;
  std::uint32_t max_attempts = 1;
  /// Seeded fault plan shared by every cell; null = no injection. Must
  /// outlive the call.
  const robust::FaultPlan* faults = nullptr;
  /// Cooperative cancellation token (docs/ROBUSTNESS.md); null =
  /// disabled. Polled at every attempt start, and — for sort cells, when
  /// cancel_per_box is set — at every box boundary via the machine's box
  /// hook, so a stuck cell terminates within one box of the request.
  /// Must outlive the call.
  const robust::CancelToken* cancel = nullptr;
  /// Install the box-boundary poll hook for sort cells. Installing the
  /// hook forces the generic replay path (docs/PAGING.md), so drivers
  /// arm it only when mid-cell latency matters (a deadline watchdog);
  /// a token armed merely for Ctrl-C (docs/SERVE.md, CLI signal wiring)
  /// passes false and polls at attempt boundaries instead — the fast
  /// paths stay live.
  bool cancel_per_box = true;
  /// Seeded retry backoff shared by every cell; disabled by default
  /// (attempt 0 never sleeps — bit-compatible with pre-backoff runs).
  robust::BackoffPolicy backoff;
  bool timing = true;  ///< false zeroes duration_ns (bit-identical runs)
  // Sort workload:
  std::uint64_t keys = 16384;
  std::uint64_t block = 8;
  /// Force per-word Machine dispatch (disable the hot-block shortcut and
  /// access_run batching). The fast path is bit-identical, so this exists
  /// for differential tests (`cadapt sweep --per-access`) and debugging.
  bool per_access = false;
  /// Record-once/replay-many (docs/PERF.md): capture the cell's block-run
  /// trace once and replay it for every trial. Inputs are then fixed per
  /// cell (seeded by the cell seed), and profile-dependent programs
  /// (adaptive) fall back to direct runs with that same fixed input.
  /// Non-default machine configs (policy/tiers) replay through the
  /// generic per-run path — same counters, no fast walk (docs/PAGING.md).
  bool capture_trace = false;
  /// Two-tier machine shape shared by every cell (docs/PAGING.md);
  /// default = the historical single-tier machine.
  TiersSpec tiers;
  /// Intra-cell trial parallelism (docs/PARALLEL.md): >= 2 runs a sort
  /// cell's trials on a seeded work-stealing pool instead of the
  /// sequential loop. Records land at their trial index, so reports are
  /// byte-identical to workers = 1 (the tests hold the two together).
  /// Ratio cells ignore this — their trial runners share stateful
  /// profile sources — as do single-trial cells. This is the lever for
  /// adaptive-sort cells, which trace replay cannot cover.
  std::uint64_t workers = 1;
};

/// Options derived from the manifest the plan came from.
CellRunOptions cell_options_from(const Manifest& manifest);

/// The paging::CaConfig a cell's machine runs under: cell.policy (or
/// plain LRU when the cell has no policy axis) + options.tiers. Throws
/// util::ParseError on a malformed policy token.
paging::CaConfig ca_config_for(const Cell& cell,
                               const CellRunOptions& options);

/// The trial runner for a sort/program cell (cell.sort non-empty):
/// adaptive|funnel|merge2 on options.keys keys, or mm:N|fw:N on an N x N
/// matrix. Exposed so the CLI's `mc --sort` mode can drive the exact same
/// runner through the Monte-Carlo layer.
engine::RobustTrialRunner make_program_runner(const Cell& cell,
                                              const CellRunOptions& options);

/// One direct program trial with an obs::PagingRecorder attached (which
/// forces the per-access reference path, so the recorder's tallies are
/// byte-identical to the pre-fast-path behavior) — backs the
/// `cadapt trace --sort` paging summary.
engine::RunResult run_program_traced(const Cell& cell,
                                     const CellRunOptions& options,
                                     std::uint64_t trial_seed,
                                     obs::PagingRecorder& recorder);

/// Run the cell's trials in trial order. Never throws for per-trial
/// faults (contained in the records); throws only for malformed cells
/// and for robust::CancelledError when options.cancel fires (the sweep
/// discards the interrupted cell wholesale — see run_sweep).
std::vector<robust::TrialRecord> run_cell(const Cell& cell,
                                          const CellRunOptions& options);

}  // namespace cadapt::campaign
