// Declarative sweep manifests (docs/SWEEPS.md): a small key=value file
// describing a full experiment campaign — algorithms × profiles × problem
// sizes × trials — that the planner (campaign/plan.hpp) expands into a
// deterministic cell grid. The manifest is the single source of truth for
// a sweep: its canonical fingerprint is hashed into every report and
// checkpoint, so mixing artifacts across campaigns is refused, not
// silently blended.
//
// Grammar (one `key = value` per line, `#` starts a comment, lists are
// whitespace-separated):
//
//   name      = e2_log_gap              # required, report label
//   workload  = ratio | sort            # default ratio
//   algos     = 8:4:1 7:4:1             # (a,b,c)-regular shapes (ratio)
//   profiles  = worst shuffled shifted perturb:4 order order-matched
//               randscan iid:geometric:6 iid:uniform-powers:0:6
//               iid:bimodal:4:4096:0.02 iid:point:64 iid:uniform-range:1:256
//               # a ratio profile token may end in @K to cap that profile
//               # at k <= K (e.g. shuffled@7 drops the profile from larger
//               # cells while the rest of the grid keeps the full k range)
//   k         = 2..7                    # n = b^k; range or explicit list
//   trials    = 32                      # per cell (worst cells force 1)
//   seed      = 42
//   semantics = optimistic | budgeted
//   unit_progress = 0 | 1               # footnote-4 ratio (use for a <= b)
//   max_boxes = 1099511627776           # per-trial box cap
//   workers   = 4                       # intra-cell trial parallelism
//               # (docs/PARALLEL.md): run each cell's trials on a seeded
//               # work-stealing pool. Reports are byte-identical to the
//               # sequential run; omitted or 1 = the historical
//               # sequential cell loop (fingerprint unchanged)
//
// Sort-workload manifests (the E16 head-to-head and the real-algorithm
// E-cells) replace algos/k with:
//
//   sorts     = adaptive funnel merge2 mm:128 fw:128
//               # mm:N / fw:N run MM-Scan / recursive Floyd-Warshall on
//               # an N x N matrix (N a power of two >= 4); the sorts run
//               # on `keys` keys
//   profiles  = const:64 uniform:4:128 sawtooth:128:8 mworst:2:2:512:2
//   keys      = 16384
//   block     = 8
//   policies  = lru clock arc car assoc:4
//               # replacement-policy dimension (docs/PAGING.md): the grid
//               # gains a policy axis; omitted = the historical LRU-only
//               # grid (no axis, fingerprint unchanged)
//   tiers     = 256:1:4 | 256:1:4:1:2
//               # two-tier machine: T2CAP:HITCOST:MISSCOST[:NUM:DEN] —
//               # tier-2 capacity in blocks (0 = share-only single tier),
//               # tier-2 hit/miss costs in box-budget units, optional
//               # tier-1 capacity share num/den (<= 1); omitted = the
//               # historical single-tier machine
//   trace_replay = 0 | 1    # 1: capture each cell's block-run trace on
//               # the first trial and replay it against the remaining
//               # trials' profiles (docs/PERF.md). Inputs are then fixed
//               # per cell (seeded by the cell seed, not the trial seed)
//               # so the access stream is trial-invariant; profile-
//               # dependent programs (adaptive) fall back to direct runs
//               # with the same fixed input.
//
// Unknown keys are rejected (a typo must not silently change a campaign);
// all parse failures throw util::ParseError with the line number.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/exec.hpp"
#include "model/regular.hpp"

namespace cadapt::campaign {

enum class Workload { kRatio, kSort };

enum class ProfileKind {
  // ratio workload (see core/workloads.hpp for the measured object)
  kWorst,         ///< deterministic M_{a,b}(n) (trials forced to 1)
  kShuffled,      ///< i.i.d. from the census of M_{a,b}(n) (Theorem 1)
  kShifted,       ///< cyclic shift by a random box offset (negative)
  kPerturb,       ///< box sizes scaled by i.i.d. X ~ U[0,t] (negative)
  kOrder,         ///< order-perturbed M_{a,b}, canonical scans
  kOrderMatched,  ///< order-perturbed M_{a,b}, matched scans (witness)
  kRandScan,      ///< fixed M_{a,b}, randomized scan placement (E18)
  kIid,           ///< i.i.d. from an explicit distribution
  // sort workload (boxes drive a paging::CaMachine)
  kConst,     ///< constant boxes: const:SIZE
  kUniform,   ///< i.i.d. uniform boxes: uniform:LO:HI
  kSawtooth,  ///< ramp-and-crash memory profile: sawtooth:PEAK:CYCLES
  kMWorst,    ///< scaled adversarial profile: mworst:A:B:N:SCALE
};

/// One parsed profile token. `token` is the canonical manifest spelling
/// and doubles as the cell label in reports. Numeric arguments live in
/// uargs/farg with per-kind meaning (see the grammar above); they are
/// validated at parse time.
struct ProfileSpec {
  std::string token;
  ProfileKind kind = ProfileKind::kWorst;
  std::string dist;  ///< kIid: geometric|uniform-powers|bimodal|point|uniform-range
  std::vector<std::uint64_t> uargs;
  double farg = 0.0;  ///< kPerturb: t; kIid bimodal: p_big
  /// Ratio profiles only: `@K` suffix capping this profile at k <= K
  /// (0 = uncapped). The planner skips larger k for this profile; the
  /// raw token (with the suffix) enters the fingerprint, so capping a
  /// profile is a campaign change, never a silent subset.
  unsigned kmax = 0;
};

/// One parsed algorithm shape with its canonical "a:b:c" token.
struct AlgoSpec {
  std::string token;
  model::RegularParams params;
};

/// Parsed `tiers =` value: the two-tier machine shape shared by every
/// cell of a sort campaign (docs/PAGING.md). `set` distinguishes "key
/// absent" (historical single-tier machine, fingerprint untouched) from
/// an explicit configuration.
struct TiersSpec {
  bool set = false;
  std::uint64_t tier2_blocks = 0;  ///< 0 = share-only single tier
  std::uint64_t tier2_hit_cost = 1;
  std::uint64_t tier2_miss_cost = 4;
  std::uint64_t tier1_num = 1;  ///< tier-1 capacity share num/den
  std::uint64_t tier1_den = 1;

  /// Canonical spelling: BLOCKS:HIT:MISS, with :NUM:DEN appended only
  /// when the share is not 1.
  std::string token() const;

  friend bool operator==(const TiersSpec&, const TiersSpec&) = default;
};

/// Parse T2CAP:HITCOST:MISSCOST[:NUM:DEN] (the `cadapt mc/sweep --tiers`
/// flag and the manifest `tiers` key). Throws util::ParseError.
TiersSpec parse_tiers_token(const std::string& token);

struct Manifest {
  std::string name;
  Workload workload = Workload::kRatio;
  std::vector<AlgoSpec> algos;
  std::vector<ProfileSpec> profiles;
  std::vector<unsigned> ks;
  std::uint64_t trials = 32;
  std::uint64_t seed = 42;
  engine::BoxSemantics semantics = engine::BoxSemantics::kOptimistic;
  bool unit_progress = false;
  std::uint64_t max_boxes = UINT64_C(1) << 40;
  // sort workload
  std::vector<std::string> sorts;  ///< adaptive|funnel|merge2|mm:N|fw:N
  std::uint64_t keys = 16384;
  std::uint64_t block = 8;
  /// Replacement-policy grid axis (canonical tokens: lru|clock|arc|car|
  /// assoc:W). Empty = no axis (the historical LRU-only grid); entered
  /// into the fingerprint only when non-empty.
  std::vector<std::string> policies;
  /// Two-tier machine shape for every cell; fingerprinted only when set.
  TiersSpec tiers;
  /// Record-once/replay-many traces (docs/PERF.md): entered into the
  /// fingerprint only when set, so pre-existing campaigns keep their
  /// config_hash byte-for-byte.
  bool trace_replay = false;
  /// Intra-cell trial parallelism (docs/PARALLEL.md). Results never
  /// depend on it, so it enters the fingerprint only at >= 2; 1 is
  /// byte-identical to the historical sequential cell loop.
  std::uint64_t workers = 1;
};

/// Parse a manifest. Throws util::ParseError (line-numbered) on any
/// malformed line, unknown key, or missing required field.
Manifest parse_manifest(std::istream& is);
/// File variant; throws util::IoError if the file cannot be opened.
Manifest parse_manifest_file(const std::string& path);

/// Parse one sort-workload profile token (const:S | uniform:LO:HI |
/// sawtooth:PEAK:CYCLES | mworst:A:B:N:SCALE) outside a manifest — the
/// CLI's `mc --sort-profile` uses this. Throws util::ParseError.
ProfileSpec parse_sort_profile_token(const std::string& token);

/// Validate a sort/program token (adaptive|funnel|merge2|mm:N|fw:N).
/// Throws util::ParseError with `line_no` context on anything else.
void validate_program_token(const std::string& token, std::size_t line_no);

/// Canonical one-line rendering of everything that shapes a cell. Two
/// manifests measure the same campaign iff their fingerprints are equal.
std::string manifest_fingerprint(const Manifest& manifest);

/// FNV-1a hash of the fingerprint — the config_hash stamped into reports
/// and checkpoints.
std::uint64_t manifest_hash(const Manifest& manifest);

}  // namespace cadapt::campaign
