// Build/environment provenance: the identifying facts of the binary that
// produced a measurement. `cadapt version` prints these and every sweep
// report embeds the same fields verbatim in its `sweep_env` line, so a
// report always answers "which build measured this?" (docs/SWEEPS.md).
#pragma once

#include <string>

#include "obs/event.hpp"

namespace cadapt::campaign {

struct Provenance {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git_hash;    ///< short commit hash at configure time, or "unknown"
  std::string build_type;  ///< CMAKE_BUILD_TYPE ("" if unset)
  std::string compiler;    ///< compiler identification (__VERSION__)
  std::string cxx_flags;   ///< effective CMAKE_CXX_FLAGS for the build type
};

/// The provenance baked into this binary at configure/compile time.
const Provenance& build_provenance();

/// Human-readable multi-line form — the exact output of `cadapt version`.
std::string provenance_text(const Provenance& p = build_provenance());

/// The report header form: a "sweep_env" event carrying every field.
obs::Event provenance_event(const Provenance& p = build_provenance());

/// Inverse of provenance_event — loads the environment recorded in a
/// report (which may differ from this binary's build_provenance()).
Provenance provenance_from_event(const obs::Event& event);

}  // namespace cadapt::campaign
