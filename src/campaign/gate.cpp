#include "campaign/gate.hpp"

#include <ostream>
#include <string>

#include "util/check.hpp"

namespace cadapt::campaign {

namespace {

std::string cell_label(const CellGate& gate) {
  std::string label =
      gate.sort.empty() ? gate.algo + " " + gate.profile
                        : gate.sort + " " + gate.profile;
  label += " n=" + std::to_string(gate.n);
  return label;
}

}  // namespace

GateResult gate_against_baseline(const Report& baseline,
                                 const Report& current,
                                 const GateOptions& options) {
  if (baseline.name != current.name ||
      baseline.config_hash != current.config_hash ||
      baseline.cells_total != current.cells_total) {
    throw util::ParseError(
        "gate: baseline and current reports describe different campaigns "
        "(name/config_hash/cells_total mismatch)");
  }
  if (baseline.cells.size() != baseline.cells_total ||
      current.cells.size() != current.cells_total) {
    throw util::ParseError(
        "gate: both reports must cover the full grid (merge shards "
        "first)");
  }

  GateResult result;
  for (std::size_t i = 0; i < current.cells.size(); ++i) {
    const CellResult& base = baseline.cells[i];
    const CellResult& cur = current.cells[i];
    if (base.index != cur.index || base.algo != cur.algo ||
        base.profile != cur.profile || base.sort != cur.sort ||
        base.n != cur.n) {
      throw util::ParseError("gate: cell " + std::to_string(cur.index) +
                             " differs structurally between reports");
    }
    CellGate gate;
    gate.index = cur.index;
    gate.algo = cur.algo;
    gate.profile = cur.profile;
    gate.sort = cur.sort;
    gate.n = cur.n;
    if (base.samples.empty() || cur.samples.empty()) {
      ++result.skipped;
      result.cells.push_back(std::move(gate));
      continue;
    }
    gate.comparable = true;
    ++result.compared;

    std::vector<double> samples = cur.samples;
    if (options.inject_factor != 1.0) {
      for (double& s : samples) s *= options.inject_factor;
    }
    const std::uint64_t seed = cell_ci_seed(current.config_hash, cur.index);
    gate.baseline = stats::bootstrap_mean_ci(base.samples, {}, seed);
    gate.current = stats::bootstrap_mean_ci(samples, {}, seed);
    gate.rel_change =
        gate.baseline.point == 0
            ? 0
            : (gate.current.point - gate.baseline.point) /
                  gate.baseline.point;
    gate.regression = gate.current.above(gate.baseline) &&
                      gate.rel_change > options.rel_threshold;
    if (gate.regression) ++result.regressions;
    result.cells.push_back(std::move(gate));
  }
  return result;
}

void print_gate(std::ostream& os, const GateResult& result,
                const GateOptions& options) {
  for (const CellGate& gate : result.cells) {
    if (!gate.comparable) {
      os << "  skip  " << cell_label(gate) << " (no samples)\n";
      continue;
    }
    os << (gate.regression ? "  FAIL  " : "  ok    ") << cell_label(gate)
       << "  base " << gate.baseline.point << " [" << gate.baseline.lo
       << ", " << gate.baseline.hi << "]  now " << gate.current.point
       << " [" << gate.current.lo << ", " << gate.current.hi << "]  ("
       << (gate.rel_change >= 0 ? "+" : "") << gate.rel_change * 100.0
       << "%)\n";
  }
  os << "gate: " << result.compared << " compared, " << result.skipped
     << " skipped, " << result.regressions << " regression"
     << (result.regressions == 1 ? "" : "s") << " (threshold "
     << options.rel_threshold * 100.0 << "%, CI separation required)"
     << (result.passed() ? " — PASS" : " — FAIL") << "\n";
}

}  // namespace cadapt::campaign
