// The sweep report (docs/SWEEPS.md): a versioned JSONL artifact holding
// one aggregated record per cell, environment provenance, and power-law
// fits over the n-grid. The encoding reuses obs::Event, so reports are
// greppable and parseable by the same tooling as traces and checkpoints:
//
//   {"type":"sweep_report","version":1,"name":...,"config_hash":...,
//    "cells_total":...,"shards":...,"shard_index":...,"truncated":...,
//    "wall_ms":...}
//   {"type":"sweep_env","version":...,"git":...,"build_type":...,
//    "compiler":...,"cxx_flags":...}
//   {"type":"sweep_cell","index":0,"algo":"8:4:1","profile":"worst",...}
//   {"type":"sweep_fit","algo":"8:4:1","profile":"worst",
//    "exponent":...,"scale":...,"r2":...,"expected":...}
//
// Determinism: everything except wall_ms / wall_ns is a pure function of
// the manifest — per-trial samples are kept in trial order, quantiles are
// exact, and bootstrap CIs are seeded from (config_hash, cell index) — so
// reports are bit-identical across --jobs values and across a sharded run
// merged back together (run with --no-timing to zero the wall clocks too).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/provenance.hpp"
#include "obs/event.hpp"
#include "robust/cancel.hpp"
#include "robust/checkpoint.hpp"
#include "robust/io.hpp"

namespace cadapt::campaign {

/// One cell's aggregate: counts over its trials plus statistics over the
/// metric samples of COMPLETED trials (the adaptivity ratio for ratio
/// workloads — unit_ratio under unit_progress — and total I/Os for sort
/// workloads). Samples are persisted verbatim (shortest-round-trip
/// doubles) so baselines can re-bootstrap without rerunning.
struct CellResult {
  std::uint64_t index = 0;
  std::string algo;  ///< "a:b:c" token; empty for sort cells
  std::string profile;
  std::string sort;  ///< adaptive|funnel|merge2; empty for ratio cells
  /// Replacement-policy token of a sort cell; empty when the campaign
  /// has no policy axis (emitted to the report only when non-empty, so
  /// historical artifacts stay byte-identical).
  std::string policy;
  unsigned k = 0;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t completed = 0;
  std::uint64_t incomplete = 0;  ///< did not finish (cap or exhaustion)
  /// Of the incomplete trials, how many stopped on the max_boxes cap
  /// (engine::StopReason::kBoxCapHit); the rest exhausted their source.
  std::uint64_t capped = 0;
  std::uint64_t failed = 0;      ///< contained trial errors
  double mean = 0;
  double ci_lo = 0;  ///< bootstrap 95% CI over the mean
  double ci_hi = 0;
  double q50 = 0;  ///< exact sample quantiles
  double q90 = 0;
  double q95 = 0;
  double boxes_mean = 0;     ///< mean boxes over non-failed trials
  std::uint64_t wall_ns = 0; ///< summed trial durations (0 with --no-timing)
  std::vector<double> samples;  ///< completed-trial metrics, trial order

  bool operator==(const CellResult&) const = default;
};

/// Fitted mean ~ scale * n^exponent over one (algo, profile) series —
/// the measured counterpart of the paper's log_b a.
struct FitResult {
  std::string algo;
  std::string profile;
  double exponent = 0;
  double scale = 0;
  double r2 = 0;
  double expected = 0;  ///< log_b a from the algo token

  bool operator==(const FitResult&) const = default;
};

struct Report {
  std::uint64_t version = 1;
  std::string name;
  std::uint64_t config_hash = 0;
  std::uint64_t cells_total = 0;  ///< full grid size (>= cells.size())
  std::uint64_t shards = 1;       ///< >1 marks a partial shard report
  std::uint64_t shard_index = 0;
  bool truncated = false;  ///< a budget or cancellation stopped the sweep
  /// Why the sweep truncated (kNone when truncated == false). Emitted to
  /// the header only when truncated with a known reason, so historical
  /// reports stay byte-identical.
  robust::CancelReason truncate_reason = robust::CancelReason::kNone;
  std::uint64_t wall_ms = 0;
  Provenance env;
  std::vector<CellResult> cells;  ///< ascending index
  std::vector<FitResult> fits;   ///< present only at full grid coverage
};

/// Seed of a cell's bootstrap CI — a pure function of the campaign
/// identity and the cell's grid position, shared by report aggregation
/// and baseline gating so both resample identically.
std::uint64_t cell_ci_seed(std::uint64_t config_hash,
                           std::uint64_t cell_index);

/// Aggregate one executed cell. `records` must be in trial order.
CellResult aggregate_cell(const Cell& cell,
                          const std::vector<robust::TrialRecord>& records,
                          std::uint64_t config_hash, bool unit_progress);

/// Power-law fits over every ratio (algo, profile) series with at least
/// two distinct n and no empty cells. Call only at full grid coverage —
/// a shard's partial series would fit a different (misleading) line.
std::vector<FitResult> compute_fits(const Report& report);

/// Event encodings (the checkpoint shares sweep_cell lines with the
/// report, so a finished shard's checkpoint is loadable by the same
/// parser).
obs::Event cell_event(const CellResult& cell);
CellResult cell_from_event(const obs::Event& event, std::size_t line_no);

/// Header/fit line encodings, public so the columnar engine's JSONL
/// export (src/report) renders its bytes through the SAME builders as
/// write_report — equivalence by construction.
obs::Event report_header_event(const Report& report);
obs::Event report_fit_event(const FitResult& fit);

/// log_b a from an "a:b:c" algo token (0 when malformed) — the
/// "expected" column of a fit line.
double algo_expected_exponent(const std::string& algo_token);

void write_report(std::ostream& os, const Report& report);

/// Durable commit: the report is rendered in memory and lands via
/// robust::atomic_write_file (write temp, fsync, rename, fsync parent),
/// so a crash or I/O failure mid-write never leaves a partial artifact
/// at `path` — the previous report, if any, survives intact.
void write_report_file(const std::string& path, const Report& report,
                       robust::IoBackend& io = robust::system_io());

/// Parse a report stream (torn-final-line tolerant, like every JSONL
/// loader in the repo). Throws util::ParseError on malformed content.
Report load_report(std::istream& is);
Report load_report_file(const std::string& path);

/// Merge shard reports into the full-grid report: all parts must carry
/// the same version/name/config_hash/cells_total, cell indices must be
/// disjoint, and their union must cover the grid. wall_ms is summed
/// (total compute, not makespan); fits are recomputed over the merged
/// grid. Mixing reports from different campaigns throws util::ParseError.
/// Takes the parts by value and moves every cell (samples included)
/// into the result — pass std::move(parts) to skip the deep copy.
Report merge_reports(std::vector<Report> parts);

}  // namespace cadapt::campaign
