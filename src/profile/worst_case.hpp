// The adversarial worst-case profile M_{a,b}(n) of Section 3 / Figure 1.
//
// Construction (paper, "Robustness of Worst-Case Profiles"): M_{a,b}(n) is
// a copies of M_{a,b}(n/b) followed by one box of size n; the base case
// M_{a,b}(1) is a single box of size 1. Run against the canonical
// (a,b,1)-regular algorithm A_n, every box makes its minimum possible
// progress, and the total potential of the profile is
// n^{log_b a} * (log_b n + 1) — a Θ(log n) factor above the optimum
// n^{log_b a}, which is the logarithmic gap of Theorem 2.
//
// The profile has Θ(n^{log_b a}) boxes, so it is generated lazily with an
// explicit recursion stack (O(log n) memory).
#pragma once

#include <cstdint>
#include <vector>

#include "profile/box_source.hpp"
#include "util/random.hpp"

namespace cadapt::profile {

/// Lazy generator of M_{a,b}(n), scaled by `scale` (the paper's T·M_{a,b}
/// when scale = T). Requires n to be a power of b.
class WorstCaseSource final : public BoxSource {
 public:
  WorstCaseSource(std::uint64_t a, std::uint64_t b, BoxSize n,
                  BoxSize scale = 1);

  std::optional<BoxSize> next() override;

  /// Native runs: the base-case children of a size-b node are a
  /// consecutive boxes of size scale — one run instead of a next() calls.
  std::optional<BoxRun> next_run() override;

  /// Structural blocks (docs/PERF.md): at a node of size m > 1 with
  /// pending children, the upcoming stream is (a - child) identical
  /// copies of M_{a,b}(m/b) — repeats of exactly |M(m/b)| boxes each.
  /// skip_repeats(m) is O(1): it bumps the node's child counter.
  bool provides_blocks() const override { return true; }
  std::optional<SubtreeBlock> peek_block() override;
  void skip_repeats(std::uint64_t m) override;

 private:
  struct Frame {
    BoxSize size;
    std::uint64_t child;  // number of children already recursed into
  };
  std::uint64_t a_, b_;
  BoxSize scale_;
  std::vector<Frame> stack_;
  /// boxes_by_level_[k] = |M_{a,b}(b^k)| (total boxes of the subtree).
  std::vector<std::uint64_t> boxes_by_level_;
};

/// The box-order perturbation of the paper's third negative result: when
/// constructing M_{a,b}(n) recursively, the size-n box is placed after the
/// j-th recursive instance (j uniform in {1..a}, independently per node)
/// instead of always after the last.
///
/// Per-node randomness is derived by hashing the node's path from the
/// root (util::hash_combine), so an engine::RegularExecution created with
/// ScanPlacement::kAdversaryMatched and the same seed places each scan
/// exactly where this profile places the corresponding box — the
/// "matched" (a,b,1)-regular algorithm for which the perturbed profile
/// remains worst-case with probability one.
class OrderPerturbedWorstCaseSource final : public BoxSource {
 public:
  OrderPerturbedWorstCaseSource(std::uint64_t a, std::uint64_t b, BoxSize n,
                                std::uint64_t seed);

  std::optional<BoxSize> next() override;

  /// Native runs: consecutive base-case children between own-box
  /// placements coalesce. No blocks — per-node hashes make sibling
  /// subtrees non-identical box sequences.
  std::optional<BoxRun> next_run() override;

  /// The box of the problem at the node with this path hash goes after
  /// child number own_after (1-based). Shared with the engine.
  static std::uint64_t own_after(std::uint64_t node_hash, std::uint64_t a) {
    return 1 + node_hash % a;
  }
  /// Path hash of the root for a given seed. Shared with the engine.
  static std::uint64_t root_hash(std::uint64_t seed) {
    std::uint64_t s = seed;
    return util::splitmix64(s);
  }

 private:
  struct Frame {
    BoxSize size;
    std::uint64_t child;      // children already recursed into
    std::uint64_t hash;       // path hash of this node
    bool own_emitted;
  };
  std::uint64_t a_, b_;
  std::vector<Frame> stack_;
};

/// Census entry: the worst-case profile contains `count` boxes of `size`.
struct CensusEntry {
  BoxSize size;
  std::uint64_t count;
};

/// Exact box census of M_{a,b}(n): size b^k appears a^{K-k} times for
/// k = 0..K, K = log_b n. Independent of box order, so it also describes
/// the order-perturbed profile.
std::vector<CensusEntry> worst_case_census(std::uint64_t a, std::uint64_t b,
                                           BoxSize n);

/// Total number of boxes in M_{a,b}(n).
std::uint64_t worst_case_box_count(std::uint64_t a, std::uint64_t b, BoxSize n);

/// Total time Σ |□_i| of M_{a,b}(n) (in I/Os), as a double to avoid overflow.
double worst_case_total_time(std::uint64_t a, std::uint64_t b, BoxSize n);

/// Total potential Σ |□_i|^{log_b a} of M_{a,b}(n); equals
/// n^{log_b a} (log_b n + 1) exactly.
double worst_case_total_potential(std::uint64_t a, std::uint64_t b, BoxSize n);

}  // namespace cadapt::profile
