#include "profile/generators.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cadapt::profile {

std::vector<std::uint64_t> constant_profile(std::uint64_t size,
                                            std::size_t length) {
  CADAPT_CHECK(size >= 1);
  return std::vector<std::uint64_t>(length, size);
}

std::vector<std::uint64_t> sawtooth_profile(std::uint64_t peak,
                                            std::size_t cycles) {
  CADAPT_CHECK(peak >= 1);
  std::vector<std::uint64_t> m;
  m.reserve(cycles * peak);
  for (std::size_t c = 0; c < cycles; ++c)
    for (std::uint64_t t = 1; t <= peak; ++t) m.push_back(t);
  return m;
}

std::vector<std::uint64_t> random_walk_profile(const RandomWalkOptions& options,
                                               std::uint64_t seed) {
  CADAPT_CHECK(options.min_size >= 1);
  CADAPT_CHECK(options.start >= options.min_size);
  CADAPT_CHECK(options.crash_factor >= 1);
  util::Rng rng(seed);
  std::vector<std::uint64_t> m;
  m.reserve(options.length);
  std::uint64_t cur = options.start;
  for (std::size_t t = 0; t < options.length; ++t) {
    if (rng.bernoulli(options.crash_prob)) {
      cur = std::max(options.min_size, cur / options.crash_factor);
    } else if (rng.bernoulli(options.up_prob)) {
      cur += 1;  // CA model: at most one block of growth per I/O
    } else if (cur > options.min_size) {
      cur -= 1;
    }
    m.push_back(cur);
  }
  return m;
}

std::vector<std::uint64_t> multiprogram_profile(
    const MultiprogramOptions& options, std::uint64_t seed) {
  CADAPT_CHECK(options.total_cache >= 1);
  CADAPT_CHECK(options.arrival_prob >= 0.0 && options.arrival_prob <= 1.0);
  CADAPT_CHECK(options.departure_prob >= 0.0 &&
               options.departure_prob <= 1.0);
  util::Rng rng(seed);
  std::vector<std::uint64_t> m;
  m.reserve(options.length);
  std::uint64_t corunners = 0;
  for (std::size_t t = 0; t < options.length; ++t) {
    if (corunners < options.max_corunners &&
        rng.bernoulli(options.arrival_prob)) {
      ++corunners;
    } else if (corunners > 0 && rng.bernoulli(options.departure_prob)) {
      --corunners;
    }
    m.push_back(std::max<std::uint64_t>(
        1, options.total_cache / (1 + corunners)));
  }
  return m;
}

std::vector<std::uint64_t> phased_profile(std::uint64_t high,
                                          std::size_t high_len,
                                          std::uint64_t low,
                                          std::size_t low_len,
                                          std::size_t length) {
  CADAPT_CHECK(high >= 1 && low >= 1);
  CADAPT_CHECK(high_len >= 1 && low_len >= 1);
  std::vector<std::uint64_t> m;
  m.reserve(length);
  while (m.size() < length) {
    for (std::size_t t = 0; t < high_len && m.size() < length; ++t)
      m.push_back(high);
    for (std::size_t t = 0; t < low_len && m.size() < length; ++t)
      m.push_back(low);
  }
  return m;
}

}  // namespace cadapt::profile
