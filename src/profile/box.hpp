// Basic vocabulary types for square memory profiles.
//
// A *square profile* (Definition 1 of the paper) is a memory profile that
// decomposes into boxes: a box of size x means the cache holds x blocks for
// x time steps (I/Os). Following the paper we represent a square profile
// simply as its sequence of box sizes, measured in blocks.
#pragma once

#include <cstdint>

namespace cadapt::profile {

/// Size of one box (side length of the square), in blocks.
using BoxSize = std::uint64_t;

}  // namespace cadapt::profile
