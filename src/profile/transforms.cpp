#include "profile/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cadapt::profile {

PerturbSampler uniform_real_perturb(double t) {
  CADAPT_CHECK(t > 0.0);
  return [t](util::Rng& rng) { return rng.uniform01() * t; };
}

PerturbSampler uniform_int_perturb(std::uint64_t t) {
  CADAPT_CHECK(t >= 1);
  return [t](util::Rng& rng) {
    return static_cast<double>(rng.between(1, t));
  };
}

PerturbSampler point_perturb(double t) {
  CADAPT_CHECK(t > 0.0);
  return [t](util::Rng&) { return t; };
}

SizePerturbSource::SizePerturbSource(std::unique_ptr<BoxSource> inner,
                                     PerturbSampler sampler, util::Rng rng)
    : inner_(std::move(inner)), sampler_(std::move(sampler)), rng_(rng) {
  CADAPT_CHECK(inner_ != nullptr);
  CADAPT_CHECK(sampler_ != nullptr);
}

std::optional<BoxSize> SizePerturbSource::perturb_next() {
  const auto box = inner_->next();
  if (!box) return std::nullopt;
  const double factor = sampler_(rng_);
  CADAPT_CHECK_MSG(factor >= 0.0, "perturbation factor must be >= 0");
  const double scaled = std::floor(static_cast<double>(*box) * factor);
  return static_cast<BoxSize>(std::max(1.0, scaled));
}

std::optional<BoxSize> SizePerturbSource::next() {
  if (pending_) {
    const BoxSize box = *pending_;
    pending_.reset();
    return box;
  }
  return perturb_next();
}

std::optional<BoxRun> SizePerturbSource::next_run() {
  std::optional<BoxSize> head = pending_;
  pending_.reset();
  if (!head) head = perturb_next();
  if (!head) return std::nullopt;
  // Cap the lookahead so one call stays bounded even when the perturbed
  // stream happens to be constant (e.g. point_perturb of a point source).
  constexpr std::uint64_t kMaxCoalesce = UINT64_C(1) << 12;
  std::uint64_t count = 1;
  while (count < kMaxCoalesce) {
    const auto box = perturb_next();
    if (!box) break;  // inner exhausted; the run ends cleanly
    if (*box != *head) {
      pending_ = box;  // first box of the NEXT run
      break;
    }
    ++count;
  }
  return BoxRun{*head, count};
}

CyclicShiftSource::CyclicShiftSource(SourceFactory factory,
                                     std::uint64_t offset)
    : factory_(std::move(factory)), offset_(offset), inner_(factory_()),
      tail_remaining_(offset) {
  for (std::uint64_t i = 0; i < offset_; ++i) {
    const auto box = inner_->next();
    CADAPT_CHECK_MSG(box.has_value(),
                     "cyclic shift offset " << offset_
                                            << " exceeds profile length " << i);
  }
}

std::optional<BoxSize> CyclicShiftSource::next() {
  if (!wrapped_) {
    if (auto box = inner_->next()) return box;
    // Reached the end of the profile: wrap to its beginning.
    wrapped_ = true;
    inner_ = factory_();
  }
  if (tail_remaining_ == 0) return std::nullopt;
  --tail_remaining_;
  auto box = inner_->next();
  CADAPT_CHECK_MSG(box.has_value(),
                   "profile shrank between factory invocations");
  return box;
}

std::optional<BoxRun> CyclicShiftSource::next_run() {
  if (!wrapped_) {
    if (auto run = inner_->next_run()) return run;
    wrapped_ = true;
    inner_ = factory_();
  }
  if (tail_remaining_ == 0) return std::nullopt;
  auto run = inner_->next_run();
  CADAPT_CHECK_MSG(run.has_value(),
                   "profile shrank between factory invocations");
  run->count = std::min(run->count, tail_remaining_);
  tail_remaining_ -= run->count;
  return run;
}

void shuffle_boxes(std::vector<BoxSize>& boxes, util::Rng& rng) {
  if (boxes.size() < 2) return;
  for (std::size_t i = boxes.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
    std::swap(boxes[i], boxes[j]);
  }
}

}  // namespace cadapt::profile
