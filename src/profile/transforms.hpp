// Smoothing transforms on profiles — the perturbations whose (in)effective-
// ness the paper analyzes.
//
//  * SizePerturbSource  — multiply each box size by an i.i.d. factor X_i
//    drawn from a distribution P over [0, t] with E[X] = Θ(t)
//    ("box-size perturbations"; negative result).
//  * CyclicShiftSource  — start the profile at a random box offset and wrap
//    ("start-time perturbations"; negative result).
//  * shuffle_boxes      — uniformly permute a materialized profile; sampling
//    i.i.d. from the empirical distribution (profile::Empirical) is the
//    infinite-stream analogue used by Theorem 1 (positive result).
#pragma once

#include <functional>
#include <memory>

#include "profile/box.hpp"
#include "profile/box_source.hpp"
#include "util/random.hpp"

namespace cadapt::profile {

/// Samples a perturbation factor X (see the paper's distribution P over
/// [0,t] with E[X] = Θ(t)).
using PerturbSampler = std::function<double(util::Rng&)>;

/// X uniform on the real interval [0, t]; E[X] = t/2.
PerturbSampler uniform_real_perturb(double t);

/// X uniform on the integers {1, ..., t}; E[X] = (t+1)/2.
PerturbSampler uniform_int_perturb(std::uint64_t t);

/// X = t deterministically (pure scaling; the paper's T · M_{a,b}).
PerturbSampler point_perturb(double t);

/// Applies an i.i.d. multiplicative perturbation to each box of the inner
/// source. Perturbed sizes are rounded down and clamped to >= 1 (a box of
/// size 0 has no meaning in the model).
class SizePerturbSource final : public BoxSource {
 public:
  SizePerturbSource(std::unique_ptr<BoxSource> inner, PerturbSampler sampler,
                    util::Rng rng);

  std::optional<BoxSize> next() override;

  /// Coalesced runs via one-box lookahead. Exactly one factor is drawn per
  /// inner box, in stream order, so the perturbed stream is bit-identical
  /// to per-box consumption.
  std::optional<BoxRun> next_run() override;

 private:
  std::optional<BoxSize> perturb_next();

  std::unique_ptr<BoxSource> inner_;
  PerturbSampler sampler_;
  util::Rng rng_;
  std::optional<BoxSize> pending_;  // looked-ahead box not yet delivered
};

/// Cyclic shift of a finite profile by `offset` boxes: emits boxes
/// offset, offset+1, ..., end, 0, ..., offset-1, then exhausts.
/// The factory must recreate the same profile on each call; offset must be
/// less than the profile's box count (checked at construction by skipping).
class CyclicShiftSource final : public BoxSource {
 public:
  CyclicShiftSource(SourceFactory factory, std::uint64_t offset);

  std::optional<BoxSize> next() override;

  /// Forwards the inner source's native runs; the tail after wrap-around
  /// clamps the final run to the boxes still owed (clamping only fires on
  /// the very last run, after which the source is exhausted).
  std::optional<BoxRun> next_run() override;

 private:
  SourceFactory factory_;
  std::uint64_t offset_;
  std::unique_ptr<BoxSource> inner_;
  std::uint64_t tail_remaining_;  // boxes still to emit after wrap-around
  bool wrapped_ = false;
};

/// In-place Fisher–Yates shuffle of a materialized profile.
void shuffle_boxes(std::vector<BoxSize>& boxes, util::Rng& rng);

}  // namespace cadapt::profile
