#include "profile/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::profile {

void BoxDistribution::set_pmf(std::vector<PmfEntry> entries) {
  CADAPT_CHECK_MSG(pmf_.empty(), "set_pmf called twice");
  CADAPT_CHECK(!entries.empty());
  std::sort(entries.begin(), entries.end(),
            [](const PmfEntry& x, const PmfEntry& y) { return x.size < y.size; });
  // Merge duplicates, drop zero mass, and validate.
  double total = 0.0;
  for (const auto& e : entries) {
    CADAPT_CHECK_MSG(e.prob >= 0.0, "negative probability for size " << e.size);
    CADAPT_CHECK_MSG(e.size >= 1, "box size must be >= 1");
    total += e.prob;
  }
  CADAPT_CHECK_MSG(total > 0.0, "distribution has no mass");
  for (const auto& e : entries) {
    if (e.prob == 0.0) continue;
    if (!pmf_.empty() && pmf_.back().size == e.size) {
      pmf_.back().prob += e.prob / total;
    } else {
      pmf_.push_back({e.size, e.prob / total});
    }
  }
  cdf_.reserve(pmf_.size());
  double acc = 0.0;
  for (const auto& e : pmf_) {
    acc += e.prob;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;  // guard against rounding drift
}

BoxSize BoxDistribution::sample(util::Rng& rng) const {
  CADAPT_CHECK(!pmf_.empty());
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return pmf_[std::min(idx, pmf_.size() - 1)].size;
}

BoxSize BoxDistribution::min_size() const {
  CADAPT_CHECK(!pmf_.empty());
  return pmf_.front().size;
}

BoxSize BoxDistribution::max_size() const {
  CADAPT_CHECK(!pmf_.empty());
  return pmf_.back().size;
}

double BoxDistribution::mean() const {
  double m = 0.0;
  for (const auto& e : pmf_) m += static_cast<double>(e.size) * e.prob;
  return m;
}

double BoxDistribution::prob_ge(BoxSize s) const {
  double p = 0.0;
  for (const auto& e : pmf_)
    if (e.size >= s) p += e.prob;
  return p;
}

double BoxDistribution::mean_min(BoxSize n) const {
  double m = 0.0;
  for (const auto& e : pmf_)
    m += static_cast<double>(std::min(e.size, n)) * e.prob;
  return m;
}

double BoxDistribution::mean_min_pow(BoxSize n, double e) const {
  double m = 0.0;
  for (const auto& entry : pmf_) {
    const double x = static_cast<double>(std::min(entry.size, n));
    m += std::pow(x, e) * entry.prob;
  }
  return m;
}

PointMass::PointMass(BoxSize size) : size_(size) {
  set_pmf({{size, 1.0}});
}

std::string PointMass::name() const {
  std::ostringstream os;
  os << "point(" << size_ << ")";
  return os.str();
}

UniformPowers::UniformPowers(std::uint64_t b, unsigned kmin, unsigned kmax)
    : b_(b), kmin_(kmin), kmax_(kmax) {
  CADAPT_CHECK(b >= 2 && kmin <= kmax);
  std::vector<PmfEntry> entries;
  for (unsigned k = kmin; k <= kmax; ++k)
    entries.push_back({util::ipow(b, k), 1.0});
  set_pmf(std::move(entries));
}

std::string UniformPowers::name() const {
  std::ostringstream os;
  os << "uniform-powers(b=" << b_ << ", k=" << kmin_ << ".." << kmax_ << ")";
  return os.str();
}

GeometricPowers::GeometricPowers(std::uint64_t b, double weight, unsigned kmin,
                                 unsigned kmax)
    : b_(b), weight_(weight), kmin_(kmin), kmax_(kmax) {
  CADAPT_CHECK(b >= 2 && kmin <= kmax);
  CADAPT_CHECK(weight > 0.0);
  std::vector<PmfEntry> entries;
  double w = 1.0;
  for (unsigned k = kmin; k <= kmax; ++k) {
    entries.push_back({util::ipow(b, k), w});
    w /= weight;
  }
  set_pmf(std::move(entries));
}

std::string GeometricPowers::name() const {
  std::ostringstream os;
  os << "geometric-powers(b=" << b_ << ", w=" << weight_ << ", k=" << kmin_
     << ".." << kmax_ << ")";
  return os.str();
}

Bimodal::Bimodal(BoxSize small, BoxSize big, double p_big) {
  CADAPT_CHECK(small < big);
  CADAPT_CHECK(p_big > 0.0 && p_big < 1.0);
  set_pmf({{small, 1.0 - p_big}, {big, p_big}});
}

std::string Bimodal::name() const {
  const auto& p = pmf();
  std::ostringstream os;
  os << "bimodal(" << p.front().size << "|" << p.back().size
     << ", p_big=" << p.back().prob << ")";
  return os.str();
}

UniformRange::UniformRange(BoxSize lo, BoxSize hi) : lo_(lo), hi_(hi) {
  CADAPT_CHECK(lo >= 1 && lo <= hi);
  CADAPT_CHECK_MSG(hi - lo < (1u << 22), "UniformRange support too large");
  std::vector<PmfEntry> entries;
  entries.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (BoxSize s = lo; s <= hi; ++s) entries.push_back({s, 1.0});
  set_pmf(std::move(entries));
}

std::string UniformRange::name() const {
  std::ostringstream os;
  os << "uniform-range[" << lo_ << "," << hi_ << "]";
  return os.str();
}

Empirical::Empirical(const std::vector<BoxSize>& boxes) {
  CADAPT_CHECK(!boxes.empty());
  std::map<BoxSize, std::uint64_t> counts;
  for (BoxSize s : boxes) ++counts[s];
  std::vector<PmfEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [size, count] : counts)
    entries.push_back({size, static_cast<double>(count)});
  set_pmf(std::move(entries));
}

std::string Empirical::name() const {
  std::ostringstream os;
  os << "empirical(" << pmf().size() << " sizes)";
  return os.str();
}

}  // namespace cadapt::profile
