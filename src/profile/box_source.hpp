// Lazy streams of boxes.
//
// Profiles can be enormous (the worst-case profile M_{a,b}(n) has
// Θ(n^{log_b a}) boxes) or infinite (i.i.d. distributions, Definition 3),
// so the execution engine consumes boxes through this single-pass stream
// interface instead of materialized vectors.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "profile/box.hpp"

namespace cadapt::profile {

/// Single-pass stream of box sizes. next() returns std::nullopt when a
/// finite profile is exhausted; infinite sources never return nullopt.
class BoxSource {
 public:
  virtual ~BoxSource() = default;
  virtual std::optional<BoxSize> next() = 0;
};

/// Factory producing a fresh, rewound instance of a profile stream.
/// Experiment drivers use factories so that every Monte-Carlo trial and
/// every restart (e.g. cyclic shifts) sees the profile from its start.
using SourceFactory = std::function<std::unique_ptr<BoxSource>()>;

/// Stream over a materialized vector of boxes; optionally cycles forever.
class VectorSource final : public BoxSource {
 public:
  explicit VectorSource(std::vector<BoxSize> boxes, bool cycle = false)
      : boxes_(std::move(boxes)), cycle_(cycle) {}

  std::optional<BoxSize> next() override {
    if (pos_ == boxes_.size()) {
      if (!cycle_ || boxes_.empty()) return std::nullopt;
      pos_ = 0;
    }
    return boxes_[pos_++];
  }

 private:
  std::vector<BoxSize> boxes_;
  bool cycle_;
  std::size_t pos_ = 0;
};

/// Adapts any source into one that cycles: when the inner source is
/// exhausted a fresh instance is created from the factory. Used to model
/// periodic repetition of finite adversarial profiles.
class CyclingSource final : public BoxSource {
 public:
  explicit CyclingSource(SourceFactory factory)
      : factory_(std::move(factory)), inner_(factory_()) {}

  std::optional<BoxSize> next() override {
    auto box = inner_->next();
    if (!box) {
      inner_ = factory_();
      box = inner_->next();
      if (!box) return std::nullopt;  // inner profile is empty
    }
    return box;
  }

 private:
  SourceFactory factory_;
  std::unique_ptr<BoxSource> inner_;
};

/// Emits at most `limit` boxes of the inner source, then reports exhaustion.
class TakeSource final : public BoxSource {
 public:
  TakeSource(std::unique_ptr<BoxSource> inner, std::uint64_t limit)
      : inner_(std::move(inner)), remaining_(limit) {}

  std::optional<BoxSize> next() override {
    if (remaining_ == 0) return std::nullopt;
    --remaining_;
    return inner_->next();
  }

 private:
  std::unique_ptr<BoxSource> inner_;
  std::uint64_t remaining_;
};

/// Concatenates two sources.
class ConcatSource final : public BoxSource {
 public:
  ConcatSource(std::unique_ptr<BoxSource> first,
               std::unique_ptr<BoxSource> second)
      : first_(std::move(first)), second_(std::move(second)) {}

  std::optional<BoxSize> next() override {
    if (first_) {
      if (auto box = first_->next()) return box;
      first_.reset();
    }
    return second_->next();
  }

 private:
  std::unique_ptr<BoxSource> first_;
  std::unique_ptr<BoxSource> second_;
};

/// Drains a source into a vector (up to max_boxes; CADAPT_CHECKs if the
/// source is longer). Intended for tests and small profiles.
std::vector<BoxSize> materialize(BoxSource& source,
                                 std::size_t max_boxes = 1u << 24);

}  // namespace cadapt::profile
