// Lazy streams of boxes.
//
// Profiles can be enormous (the worst-case profile M_{a,b}(n) has
// Θ(n^{log_b a}) boxes) or infinite (i.i.d. distributions, Definition 3),
// so the execution engine consumes boxes through this single-pass stream
// interface instead of materialized vectors.
//
// Beyond the one-box next(), the stream exposes two batched views the
// engine's O(runs) bulk path consumes (docs/PERF.md):
//
//  * next_run() — a maximal run of equal-size boxes. Expanding every run
//    back into `count` single boxes MUST reproduce the next() stream
//    exactly; the default implementation simply wraps next() in runs of
//    one. Sources whose streams are naturally run-length-compressed
//    (WorstCaseSource, small-support distributions) override it.
//  * peek_block()/skip_repeats() — the structural hook for self-similar
//    profiles: a block announces that the upcoming boxes are `repeats`
//    IDENTICAL copies of the same `boxes_per_repeat`-box sequence (the a
//    recursive copies of M(n/b) inside M(n)). The engine consumes one
//    copy, checks that the execution state advanced periodically, and
//    retires the remaining copies in closed form via skip_repeats.
//
// A caller that consumes runs/blocks may leave the source a few boxes
// ahead of where a per-box caller would have (a run drawn but only partly
// consumed); the VALUES delivered are identical, only the source's
// internal read-ahead differs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "profile/box.hpp"

namespace cadapt::profile {

/// A run of `count` consecutive boxes, all of size `size`.
struct BoxRun {
  BoxSize size = 0;
  std::uint64_t count = 0;
};

/// A repeated-subsequence announcement: starting at the current position,
/// the next `repeats * boxes_per_repeat` boxes are `repeats` identical
/// copies of one `boxes_per_repeat`-box sequence.
struct SubtreeBlock {
  std::uint64_t boxes_per_repeat = 0;
  std::uint64_t repeats = 0;
};

/// Single-pass stream of box sizes. next() returns std::nullopt when a
/// finite profile is exhausted; infinite sources never return nullopt.
class BoxSource {
 public:
  virtual ~BoxSource() = default;
  virtual std::optional<BoxSize> next() = 0;

  /// Next run of equal-size boxes. Contract: concatenating the expansions
  /// of successive runs yields exactly the next() stream. The default is
  /// the trivial run of one (no lookahead, no coalescing — wrap in
  /// RunCoalescingSource for that); overrides return maximal runs the
  /// source knows natively.
  virtual std::optional<BoxRun> next_run() {
    const auto box = next();
    if (!box) return std::nullopt;
    return BoxRun{*box, 1};
  }

  /// Cheap capability probe: true iff peek_block() can ever return a
  /// value. Lets drivers skip the per-position peek on sources without
  /// repeated structure.
  virtual bool provides_blocks() const { return false; }

  /// The repeated block starting at the current position, if the source
  /// is at a repeat boundary of one. Must not advance the stream.
  virtual std::optional<SubtreeBlock> peek_block() { return std::nullopt; }

  /// Skip `m` whole repeats of the block peek_block() described. Only
  /// valid when the stream has consumed an integral number (>= 1) of that
  /// block's repeats since the peek, and `m` plus the repeats already
  /// consumed does not exceed the announced count. Default: no block
  /// support — must not be called.
  virtual void skip_repeats(std::uint64_t m);
};

/// Factory producing a fresh, rewound instance of a profile stream.
/// Experiment drivers use factories so that every Monte-Carlo trial and
/// every restart (e.g. cyclic shifts) sees the profile from its start.
using SourceFactory = std::function<std::unique_ptr<BoxSource>()>;

/// Stream over a materialized vector of boxes; optionally cycles forever.
class VectorSource final : public BoxSource {
 public:
  explicit VectorSource(std::vector<BoxSize> boxes, bool cycle = false)
      : boxes_(std::move(boxes)), cycle_(cycle) {}

  std::optional<BoxSize> next() override {
    if (pos_ == boxes_.size()) {
      if (!cycle_ || boxes_.empty()) return std::nullopt;
      pos_ = 0;
    }
    return boxes_[pos_++];
  }

  /// Maximal run of equal adjacent boxes (never wraps across the cycle
  /// boundary, so runs stay aligned with the underlying vector).
  std::optional<BoxRun> next_run() override {
    if (pos_ == boxes_.size()) {
      if (!cycle_ || boxes_.empty()) return std::nullopt;
      pos_ = 0;
    }
    const BoxSize size = boxes_[pos_];
    std::uint64_t count = 0;
    while (pos_ < boxes_.size() && boxes_[pos_] == size) {
      ++pos_;
      ++count;
    }
    return BoxRun{size, count};
  }

 private:
  std::vector<BoxSize> boxes_;
  bool cycle_;
  std::size_t pos_ = 0;
};

/// Adapts any source into one that cycles: when the inner source is
/// exhausted a fresh instance is created from the factory. Used to model
/// periodic repetition of finite adversarial profiles.
class CyclingSource final : public BoxSource {
 public:
  explicit CyclingSource(SourceFactory factory)
      : factory_(std::move(factory)), inner_(factory_()) {}

  std::optional<BoxSize> next() override {
    auto box = inner_->next();
    if (!box) {
      inner_ = factory_();
      box = inner_->next();
      if (!box) return std::nullopt;  // inner profile is empty
    }
    return box;
  }

  // Runs and blocks forward to the current inner instance: the worst-case
  // E2 cells reach the engine through worst_profile_source's
  // CyclingSource-of-WorstCaseSource, so this forwarding is what puts
  // them on the bulk path. Blocks never span a cycle boundary (the inner
  // profile's own boxes end each repeat), so forwarding stays sound.
  std::optional<BoxRun> next_run() override {
    auto run = inner_->next_run();
    if (!run) {
      inner_ = factory_();
      run = inner_->next_run();
      if (!run) return std::nullopt;  // inner profile is empty
    }
    return run;
  }

  bool provides_blocks() const override { return inner_->provides_blocks(); }
  std::optional<SubtreeBlock> peek_block() override {
    return inner_->peek_block();
  }
  void skip_repeats(std::uint64_t m) override { inner_->skip_repeats(m); }

 private:
  SourceFactory factory_;
  std::unique_ptr<BoxSource> inner_;
};

/// Emits at most `limit` boxes of the inner source, then reports exhaustion.
class TakeSource final : public BoxSource {
 public:
  TakeSource(std::unique_ptr<BoxSource> inner, std::uint64_t limit)
      : inner_(std::move(inner)), remaining_(limit) {}

  std::optional<BoxSize> next() override {
    if (remaining_ == 0) return std::nullopt;
    --remaining_;
    return inner_->next();
  }

  /// Forwards the inner run clamped to the remaining budget. Blocks are
  /// deliberately NOT forwarded: a skipped repeat would bypass the limit
  /// accounting.
  std::optional<BoxRun> next_run() override {
    if (remaining_ == 0) return std::nullopt;
    auto run = inner_->next_run();
    if (!run) return std::nullopt;
    run->count = std::min(run->count, remaining_);
    remaining_ -= run->count;
    return run;
  }

 private:
  std::unique_ptr<BoxSource> inner_;
  std::uint64_t remaining_;
};

/// Concatenates two sources.
class ConcatSource final : public BoxSource {
 public:
  ConcatSource(std::unique_ptr<BoxSource> first,
               std::unique_ptr<BoxSource> second)
      : first_(std::move(first)), second_(std::move(second)) {}

  std::optional<BoxSize> next() override {
    if (first_) {
      if (auto box = first_->next()) return box;
      first_.reset();
    }
    return second_->next();
  }

  std::optional<BoxRun> next_run() override {
    if (first_) {
      if (auto run = first_->next_run()) return run;
      first_.reset();
    }
    return second_->next_run();
  }

  // Blocks forward to whichever part is active.
  bool provides_blocks() const override {
    return (first_ && first_->provides_blocks()) || second_->provides_blocks();
  }
  std::optional<SubtreeBlock> peek_block() override {
    if (first_) return first_->peek_block();
    return second_->peek_block();
  }
  void skip_repeats(std::uint64_t m) override {
    if (first_) {
      first_->skip_repeats(m);
      return;
    }
    second_->skip_repeats(m);
  }

 private:
  std::unique_ptr<BoxSource> first_;
  std::unique_ptr<BoxSource> second_;
};

/// The default run adapter of docs/PERF.md: coalesces any inner stream
/// into maximal (capped) runs of equal boxes via one-box lookahead. Each
/// delivered box still corresponds to exactly one inner next() call, so
/// the expanded stream is the inner stream verbatim.
class RunCoalescingSource final : public BoxSource {
 public:
  explicit RunCoalescingSource(std::unique_ptr<BoxSource> inner,
                               std::uint64_t max_run = UINT64_C(1) << 12);

  std::optional<BoxSize> next() override;
  std::optional<BoxRun> next_run() override;

 private:
  std::unique_ptr<BoxSource> inner_;
  std::uint64_t max_run_;
  std::optional<BoxSize> pending_;  // looked-ahead box not yet delivered
};

/// Drains a source into a vector (up to max_boxes; CADAPT_CHECKs if the
/// source is longer). Intended for tests and small profiles.
std::vector<BoxSize> materialize(BoxSource& source,
                                 std::size_t max_boxes = 1u << 24);

}  // namespace cadapt::profile
