// Synthetic raw memory profiles m(t) — the fluctuation patterns the
// paper's introduction describes. These are *word-level* profiles
// (capacity per I/O); reduce them with inner_square_profile() to obtain
// boxes, or drive a paging::FluidCaMachine directly.
#pragma once

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace cadapt::profile {

/// Constant cache of `size` blocks for `length` I/Os.
std::vector<std::uint64_t> constant_profile(std::uint64_t size,
                                            std::size_t length);

/// The winner-take-all + periodic-flush pattern ([25], [57] in the
/// paper): capacity ramps 1..peak, then crashes, `cycles` times.
std::vector<std::uint64_t> sawtooth_profile(std::uint64_t peak,
                                            std::size_t cycles);

/// Parameters of random_walk_profile.
struct RandomWalkOptions {
  std::uint64_t start = 64;
  std::size_t length = 4096;
  /// Probability of +1 at each step (CA model: growth is at most one
  /// block per I/O); otherwise -1 (floored at min_size).
  double up_prob = 0.6;
  /// Probability of a crash (capacity divided by crash_factor) per step.
  double crash_prob = 0.02;
  std::uint64_t crash_factor = 4;
  std::uint64_t min_size = 1;
};

/// Random walk with occasional crashes — a generic "noisy neighbour"
/// pattern.
std::vector<std::uint64_t> random_walk_profile(const RandomWalkOptions& options,
                                               std::uint64_t seed);

/// Alternating phases: `high` blocks for `high_len` steps, then `low`
/// blocks for `low_len` steps, repeated to cover `length` steps — the
/// coarse time-sharing pattern.
std::vector<std::uint64_t> phased_profile(std::uint64_t high,
                                          std::size_t high_len,
                                          std::uint64_t low,
                                          std::size_t low_len,
                                          std::size_t length);

/// Parameters of multiprogram_profile.
struct MultiprogramOptions {
  std::uint64_t total_cache = 256;  ///< shared cache size in blocks
  std::size_t length = 4096;
  /// Per-step probability that a co-runner arrives / that one departs
  /// (a discrete M/M/∞-style birth–death process on the co-runner count).
  double arrival_prob = 0.002;
  double departure_prob = 0.004;
  std::uint64_t max_corunners = 15;
};

/// Queueing-driven profile: our process's share of a cache divided
/// equally among itself and a fluctuating number of co-runners —
/// capacity(t) = total_cache / (1 + co_runners(t)). The closest synthetic
/// stand-in for the memory pressure a real shared machine exerts.
std::vector<std::uint64_t> multiprogram_profile(
    const MultiprogramOptions& options, std::uint64_t seed);

}  // namespace cadapt::profile
