#include "profile/render.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "profile/worst_case.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::profile {

std::string render_profile_ascii(std::span<const BoxSize> boxes,
                                 std::size_t width, std::size_t height,
                                 bool log_scale) {
  CADAPT_CHECK(width >= 2 && height >= 2);
  if (boxes.empty()) return "(empty profile)\n";

  // Total time and per-column sampling of the box heights.
  double total_time = 0.0;
  BoxSize max_box = 1;
  for (const BoxSize x : boxes) {
    CADAPT_CHECK(x >= 1);
    total_time += static_cast<double>(x);
    max_box = std::max(max_box, x);
  }

  auto scale = [&](BoxSize x) {
    const double raw = log_scale ? std::log2(static_cast<double>(x) + 1.0)
                                 : static_cast<double>(x);
    const double raw_max = log_scale
                               ? std::log2(static_cast<double>(max_box) + 1.0)
                               : static_cast<double>(max_box);
    const double frac = raw_max == 0.0 ? 0.0 : raw / raw_max;
    const auto level =
        static_cast<std::size_t>(std::ceil(frac * static_cast<double>(height)));
    return std::clamp<std::size_t>(level, 1, height);
  };

  std::vector<std::size_t> column_level(width, 0);
  {
    std::size_t box_idx = 0;
    double consumed = 0.0;  // time consumed by boxes before boxes[box_idx]
    for (std::size_t col = 0; col < width; ++col) {
      const double t = (static_cast<double>(col) + 0.5) * total_time /
                       static_cast<double>(width);
      while (box_idx + 1 < boxes.size() &&
             consumed + static_cast<double>(boxes[box_idx]) <= t) {
        consumed += static_cast<double>(boxes[box_idx]);
        ++box_idx;
      }
      column_level[col] = scale(boxes[box_idx]);
    }
  }

  std::ostringstream os;
  for (std::size_t row = height; row >= 1; --row) {
    os << (row == height ? "mem ^ " : "    | ");
    for (std::size_t col = 0; col < width; ++col)
      os << (column_level[col] >= row ? '#' : ' ');
    os << '\n';
  }
  os << "    +-" << std::string(width, '-') << "> time ("
     << (log_scale ? "log" : "linear") << " memory scale, "
     << boxes.size() << " boxes, " << static_cast<std::uint64_t>(total_time)
     << " I/Os)\n";
  return os.str();
}

std::string describe_worst_case(std::uint64_t a, std::uint64_t b, BoxSize n) {
  std::ostringstream os;
  os << "Worst-case profile M_{" << a << "," << b << "}(" << n << ")\n";
  os << "Recursive construction (Figure 1):\n";
  for (BoxSize m = n; m > 1; m /= b) {
    os << "  M(" << m << ") = " << a << " x M(" << (m / b) << ")  ++  [box "
       << m << "]\n";
  }
  os << "  M(1) = [box 1]\n\nBox census:\n";
  double total_potential = 0.0;
  double total_time = 0.0;
  for (const auto& e : worst_case_census(a, b, n)) {
    const double pot =
        util::pow_log_ratio(e.size, a, b) * static_cast<double>(e.count);
    total_potential += pot;
    total_time += static_cast<double>(e.size) * static_cast<double>(e.count);
    os << "  size " << e.size << "  x " << e.count << "  (potential " << pot
       << ")\n";
  }
  os << "Total: potential " << total_potential << " = n^{log_b a} * (log_b n + 1) = "
     << util::pow_log_ratio(n, a, b) << " * " << (util::ilog(n, b) + 1)
     << ", time " << total_time << " I/Os\n";
  return os.str();
}

}  // namespace cadapt::profile
