#include "profile/profile_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace cadapt::profile {

void save_profile(std::ostream& os, const std::vector<BoxSize>& boxes,
                  const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) os << "# " << line << '\n';
  }
  for (const BoxSize b : boxes) os << b << '\n';
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& detail) {
  throw util::ParseError(
      "profile line " + std::to_string(line_no) + ": " + detail, line_no);
}

}  // namespace

std::vector<BoxSize> load_profile(std::istream& is, const ParseLimits& limits) {
  std::vector<BoxSize> boxes;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Trim whitespace.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(first, last - first + 1);
    if (token[0] == '#') continue;
    if (token[0] == '-') {
      parse_fail(line_no, "box size must be positive, got '" + token + "'");
    }
    BoxSize value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range) {
      parse_fail(line_no, "box size overflows 64 bits: '" + token + "'");
    }
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      parse_fail(line_no, "not an integer: '" + token + "'");
    }
    if (value < 1) parse_fail(line_no, "box size must be >= 1");
    if (boxes.size() >= limits.max_boxes) {
      parse_fail(line_no, "profile exceeds the " +
                              std::to_string(limits.max_boxes) +
                              "-box cap (ParseLimits::max_boxes)");
    }
    boxes.push_back(value);
  }
  return boxes;
}

void save_profile_file(const std::string& path,
                       const std::vector<BoxSize>& boxes,
                       const std::string& comment) {
  std::ofstream os(path);
  if (!os.good()) {
    throw util::IoError("cannot open '" + path + "' for writing");
  }
  save_profile(os, boxes, comment);
  if (!os.good()) throw util::IoError("write to '" + path + "' failed");
}

std::vector<BoxSize> load_profile_file(const std::string& path,
                                       const ParseLimits& limits) {
  std::ifstream is(path);
  if (!is.good()) {
    throw util::IoError("cannot open '" + path + "' for reading");
  }
  return load_profile(is, limits);
}

}  // namespace cadapt::profile
