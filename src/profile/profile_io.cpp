#include "profile/profile_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace cadapt::profile {

void save_profile(std::ostream& os, const std::vector<BoxSize>& boxes,
                  const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) os << "# " << line << '\n';
  }
  for (const BoxSize b : boxes) os << b << '\n';
}

std::vector<BoxSize> load_profile(std::istream& is) {
  std::vector<BoxSize> boxes;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Trim whitespace.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(first, last - first + 1);
    if (token[0] == '#') continue;
    BoxSize value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    CADAPT_CHECK_MSG(ec == std::errc{} && ptr == token.data() + token.size(),
                     "profile line " << line_no << " is not an integer: '"
                                     << token << "'");
    CADAPT_CHECK_MSG(value >= 1, "profile line " << line_no
                                                 << ": box size must be >= 1");
    boxes.push_back(value);
  }
  return boxes;
}

void save_profile_file(const std::string& path,
                       const std::vector<BoxSize>& boxes,
                       const std::string& comment) {
  std::ofstream os(path);
  CADAPT_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  save_profile(os, boxes, comment);
  CADAPT_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

std::vector<BoxSize> load_profile_file(const std::string& path) {
  std::ifstream is(path);
  CADAPT_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return load_profile(is);
}

}  // namespace cadapt::profile
