// Save/load square profiles as plain text (one box size per line,
// '#' comments) — lets users capture emergent or synthetic profiles and
// replay them across runs or tools.
//
// Loading is hardened against hostile or corrupted input: malformed lines
// throw util::ParseError carrying the 1-based line number (garbage
// tokens, negative or zero sizes, and values overflowing uint64 are each
// rejected explicitly), and a configurable cap bounds how many boxes a
// file may supply before parsing aborts — a truncated error instead of an
// OOM on a multi-terabyte "profile". File-level failures (open/write)
// throw util::IoError. docs/ROBUSTNESS.md has the error taxonomy.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "profile/box.hpp"

namespace cadapt::profile {

/// Limits applied while parsing a profile.
struct ParseLimits {
  /// Maximum number of boxes a profile file may contain; exceeding it
  /// throws ParseError (default: 2^26 boxes == 512 MiB of BoxSize).
  std::size_t max_boxes = std::size_t{1} << 26;
};

/// Write one box size per line, preceded by an optional '#' comment.
void save_profile(std::ostream& os, const std::vector<BoxSize>& boxes,
                  const std::string& comment = "");

/// Parse a profile: blank lines and lines starting with '#' are skipped;
/// every other line must be a single integer in [1, 2^64). Malformed
/// content throws util::ParseError with the offending line number.
std::vector<BoxSize> load_profile(std::istream& is,
                                  const ParseLimits& limits = {});

/// Convenience file variants. Open/write failures throw util::IoError.
void save_profile_file(const std::string& path,
                       const std::vector<BoxSize>& boxes,
                       const std::string& comment = "");
std::vector<BoxSize> load_profile_file(const std::string& path,
                                       const ParseLimits& limits = {});

}  // namespace cadapt::profile
