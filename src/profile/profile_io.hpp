// Save/load square profiles as plain text (one box size per line,
// '#' comments) — lets users capture emergent or synthetic profiles and
// replay them across runs or tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "profile/box.hpp"

namespace cadapt::profile {

/// Write one box size per line, preceded by an optional '#' comment.
void save_profile(std::ostream& os, const std::vector<BoxSize>& boxes,
                  const std::string& comment = "");

/// Parse a profile: blank lines and lines starting with '#' are skipped;
/// every other line must be a single positive integer (checked).
std::vector<BoxSize> load_profile(std::istream& is);

/// Convenience file variants (checked I/O errors).
void save_profile_file(const std::string& path,
                       const std::vector<BoxSize>& boxes,
                       const std::string& comment = "");
std::vector<BoxSize> load_profile_file(const std::string& path);

}  // namespace cadapt::profile
