// Probability distributions over box sizes (the Σ of Theorem 1).
//
// Every distribution exposes its full probability mass function so the
// analytic Lemma-3 solver can evaluate exact expectations; Monte-Carlo
// sampling is implemented once in the base class via the stored CDF.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "profile/box.hpp"
#include "profile/box_source.hpp"
#include "util/random.hpp"

namespace cadapt::profile {

/// An entry of a pmf: (box size, probability).
struct PmfEntry {
  BoxSize size;
  double prob;
};

/// Finite-support distribution over box sizes.
///
/// Subclasses construct the pmf once (sorted by size, probabilities
/// normalized); sampling and all moments are provided here.
class BoxDistribution {
 public:
  virtual ~BoxDistribution() = default;

  virtual std::string name() const = 0;

  const std::vector<PmfEntry>& pmf() const { return pmf_; }

  /// Draw one box size.
  BoxSize sample(util::Rng& rng) const;

  BoxSize min_size() const;
  BoxSize max_size() const;

  /// E[|□|].
  double mean() const;
  /// Pr[|□| >= s].
  double prob_ge(BoxSize s) const;
  /// E[min(|□|, n)].
  double mean_min(BoxSize n) const;
  /// E[min(|□|, n)^e] — the "average n-bounded potential" m_n when
  /// e = log_b a (Equation 3 of the paper).
  double mean_min_pow(BoxSize n, double e) const;

 protected:
  /// Install the pmf. Entries need not be sorted or normalized; zero-mass
  /// entries are dropped. Must be called exactly once by the subclass
  /// constructor.
  void set_pmf(std::vector<PmfEntry> entries);

 private:
  std::vector<PmfEntry> pmf_;   // sorted by size, normalized
  std::vector<double> cdf_;     // inclusive prefix sums of pmf_
};

/// All boxes have one fixed size.
class PointMass final : public BoxDistribution {
 public:
  explicit PointMass(BoxSize size);
  std::string name() const override;

 private:
  BoxSize size_;
};

/// Uniform over the powers {b^kmin, ..., b^kmax}.
class UniformPowers final : public BoxDistribution {
 public:
  UniformPowers(std::uint64_t b, unsigned kmin, unsigned kmax);
  std::string name() const override;

 private:
  std::uint64_t b_;
  unsigned kmin_, kmax_;
};

/// Power-law over powers of b: Pr[b^k] proportional to weight^-(k - kmin)
/// for k in [kmin, kmax]. With weight = a this is exactly the box-size
/// census of the worst-case profile M_{a,b} — i.e. the "random reshuffle"
/// of the adversarial profile that Theorem 1 smooths.
class GeometricPowers final : public BoxDistribution {
 public:
  GeometricPowers(std::uint64_t b, double weight, unsigned kmin,
                  unsigned kmax);
  std::string name() const override;

 private:
  std::uint64_t b_;
  double weight_;
  unsigned kmin_, kmax_;
};

/// Two box sizes: `small` with probability 1-p_big, `big` with p_big.
class Bimodal final : public BoxDistribution {
 public:
  Bimodal(BoxSize small, BoxSize big, double p_big);
  std::string name() const override;
};

/// Uniform over all integers in [lo, hi]. The pmf is materialized, so the
/// range is capped (checked) at 2^22 entries.
class UniformRange final : public BoxDistribution {
 public:
  UniformRange(BoxSize lo, BoxSize hi);
  std::string name() const override;

 private:
  BoxSize lo_, hi_;
};

/// Empirical distribution of an observed multiset of boxes (e.g. the boxes
/// of a materialized adversarial profile). Sampling i.i.d. from this is the
/// paper's "random shuffle of when significant events occur".
class Empirical final : public BoxDistribution {
 public:
  explicit Empirical(const std::vector<BoxSize>& boxes);
  std::string name() const override;
};

/// Infinite i.i.d. stream of boxes from a distribution (Definition 3's
/// random profile). Keeps a reference: the distribution must outlive it.
///
/// Runs: every delivered box costs exactly one RNG draw (so the stream is
/// bit-identical to per-box sampling, run-consumed or not) — next_run()
/// coalesces by drawing ahead and stashing the first mismatch. The one
/// exception is a point mass: every delivered value is the same forever,
/// so runs of kPointMassChunk boxes are emitted from a single head draw;
/// the RNG is private to this source, so the skipped per-box draws are
/// unobservable in any result.
class DistributionSource final : public BoxSource {
 public:
  DistributionSource(const BoxDistribution& dist, util::Rng rng)
      : dist_(&dist), rng_(rng),
        point_mass_(dist.pmf().size() == 1) {}

  static constexpr std::uint64_t kPointMassChunk = UINT64_C(1) << 12;

  std::optional<BoxSize> next() override {
    if (pending_) {
      const BoxSize box = *pending_;
      pending_.reset();
      return box;
    }
    return dist_->sample(rng_);
  }

  std::optional<BoxRun> next_run() override {
    BoxSize head;
    if (pending_) {
      head = *pending_;
      pending_.reset();
    } else {
      head = dist_->sample(rng_);
    }
    if (point_mass_) return BoxRun{head, kPointMassChunk};
    std::uint64_t count = 1;
    while (count < kMaxCoalesce) {
      const BoxSize box = dist_->sample(rng_);
      if (box != head) {
        pending_ = box;  // first box of the NEXT run
        break;
      }
      ++count;
    }
    return BoxRun{head, count};
  }

 private:
  // Small-support distributions can produce long runs by chance; cap the
  // lookahead so a single next_run() call stays bounded.
  static constexpr std::uint64_t kMaxCoalesce = UINT64_C(1) << 12;

  const BoxDistribution* dist_;
  util::Rng rng_;
  bool point_mass_;
  std::optional<BoxSize> pending_;  // drawn but not yet delivered
};

}  // namespace cadapt::profile
