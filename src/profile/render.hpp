// ASCII rendering of square profiles — used by bench_e1_worst_profile to
// regenerate Figure 1 of the paper as text.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "profile/box.hpp"

namespace cadapt::profile {

/// Render a square profile as an ASCII step plot. Time runs left to right
/// (width columns), memory bottom to top (height rows). When log_scale is
/// set, the vertical axis is log2(box size), which makes the recursive
/// structure of worst-case profiles visible across orders of magnitude.
std::string render_profile_ascii(std::span<const BoxSize> boxes,
                                 std::size_t width = 100,
                                 std::size_t height = 16,
                                 bool log_scale = true);

/// Human-readable description of the recursive construction of M_{a,b}(n):
/// one line per level plus the box census.
std::string describe_worst_case(std::uint64_t a, std::uint64_t b, BoxSize n);

}  // namespace cadapt::profile
