#include "profile/box_source.hpp"

#include "util/check.hpp"

namespace cadapt::profile {

void BoxSource::skip_repeats(std::uint64_t) {
  CADAPT_CHECK_MSG(false, "skip_repeats on a source without block support");
}

RunCoalescingSource::RunCoalescingSource(std::unique_ptr<BoxSource> inner,
                                         std::uint64_t max_run)
    : inner_(std::move(inner)), max_run_(max_run) {
  CADAPT_CHECK(inner_ != nullptr);
  CADAPT_CHECK(max_run_ >= 1);
}

std::optional<BoxSize> RunCoalescingSource::next() {
  if (pending_) {
    const BoxSize box = *pending_;
    pending_.reset();
    return box;
  }
  return inner_->next();
}

std::optional<BoxRun> RunCoalescingSource::next_run() {
  std::optional<BoxSize> head = pending_;
  pending_.reset();
  if (!head) head = inner_->next();
  if (!head) return std::nullopt;
  std::uint64_t count = 1;
  while (count < max_run_) {
    const auto box = inner_->next();
    if (!box) break;  // inner exhausted; the run ends cleanly
    if (*box != *head) {
      pending_ = box;  // first box of the NEXT run
      break;
    }
    ++count;
  }
  return BoxRun{*head, count};
}

std::vector<BoxSize> materialize(BoxSource& source, std::size_t max_boxes) {
  std::vector<BoxSize> boxes;
  while (auto box = source.next()) {
    CADAPT_CHECK_MSG(boxes.size() < max_boxes,
                     "materialize: profile exceeds " << max_boxes << " boxes");
    boxes.push_back(*box);
  }
  return boxes;
}

}  // namespace cadapt::profile
