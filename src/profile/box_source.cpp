#include "profile/box_source.hpp"

#include "util/check.hpp"

namespace cadapt::profile {

std::vector<BoxSize> materialize(BoxSource& source, std::size_t max_boxes) {
  std::vector<BoxSize> boxes;
  while (auto box = source.next()) {
    CADAPT_CHECK_MSG(boxes.size() < max_boxes,
                     "materialize: profile exceeds " << max_boxes << " boxes");
    boxes.push_back(*box);
  }
  return boxes;
}

}  // namespace cadapt::profile
