#include "profile/square_approx.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cadapt::profile {

std::vector<BoxSize> inner_square_profile(std::span<const std::uint64_t> m) {
  for (const std::uint64_t v : m)
    CADAPT_CHECK_MSG(v >= 1, "memory profile entries must be >= 1");
  std::vector<BoxSize> boxes;
  std::size_t t = 0;
  while (t < m.size()) {
    // Grow the box while the next time step still accommodates side x+1.
    std::uint64_t running_min = m[t];
    std::uint64_t x = 1;  // side 1 always fits (m[t] >= 1)
    while (t + x < m.size()) {
      const std::uint64_t candidate_min = std::min(running_min, m[t + x]);
      if (candidate_min >= x + 1) {
        running_min = candidate_min;
        ++x;
      } else {
        break;
      }
    }
    boxes.push_back(x);
    t += x;
  }
  return boxes;
}

std::vector<std::uint64_t> expand_profile(std::span<const BoxSize> boxes) {
  std::vector<std::uint64_t> m;
  std::uint64_t total = 0;
  for (const BoxSize x : boxes) {
    CADAPT_CHECK(x >= 1);
    total += x;
  }
  m.reserve(total);
  for (const BoxSize x : boxes)
    for (BoxSize i = 0; i < x; ++i) m.push_back(x);
  return m;
}

bool is_square_profile(std::span<const std::uint64_t> m) {
  std::size_t t = 0;
  while (t < m.size()) {
    const std::uint64_t x = m[t];
    if (x == 0) return false;
    if (t + x > m.size()) return false;
    for (std::uint64_t i = 0; i < x; ++i)
      if (m[t + i] != x) return false;
    t += x;
  }
  return true;
}

}  // namespace cadapt::profile
