#include "profile/worst_case.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace cadapt::profile {

namespace {
void validate_params(std::uint64_t a, std::uint64_t b, BoxSize n) {
  CADAPT_CHECK_MSG(b >= 2, "worst-case profile requires b >= 2");
  CADAPT_CHECK_MSG(a >= 1, "worst-case profile requires a >= 1");
  CADAPT_CHECK_MSG(util::is_power_of(n, b),
                   "worst-case profile requires n to be a power of b; n=" << n);
}
}  // namespace

WorstCaseSource::WorstCaseSource(std::uint64_t a, std::uint64_t b, BoxSize n,
                                 BoxSize scale)
    : a_(a), b_(b), scale_(scale) {
  validate_params(a, b, n);
  CADAPT_CHECK(scale >= 1);
  stack_.push_back({n, 0});
  // |M(b^j)| = a*|M(b^{j-1})| + 1, |M(1)| = 1 — sized for peek_block.
  const unsigned K = util::ilog(n, b);
  boxes_by_level_.resize(K + 1);
  boxes_by_level_[0] = 1;
  for (unsigned j = 1; j <= K; ++j) {
    boxes_by_level_[j] = a_ * boxes_by_level_[j - 1] + 1;
  }
}

std::optional<BoxSize> WorstCaseSource::next() {
  while (!stack_.empty()) {
    const std::size_t top = stack_.size() - 1;
    if (stack_[top].size == 1) {  // base case: a single box of size 1
      const BoxSize s = stack_[top].size;
      stack_.pop_back();
      return s * scale_;
    }
    if (stack_[top].child < a_) {
      ++stack_[top].child;
      const BoxSize child_size = stack_[top].size / b_;
      stack_.push_back({child_size, 0});
      continue;
    }
    // All a recursive copies emitted; emit this node's own box and retire.
    const BoxSize s = stack_[top].size;
    stack_.pop_back();
    return s * scale_;
  }
  return std::nullopt;
}

std::optional<BoxRun> WorstCaseSource::next_run() {
  while (!stack_.empty()) {
    const std::size_t top = stack_.size() - 1;
    if (stack_[top].size == 1) {  // only reachable via mixed next() usage
      stack_.pop_back();
      return BoxRun{scale_, 1};
    }
    if (stack_[top].child < a_) {
      if (stack_[top].size == b_) {
        // All remaining children are base-case boxes: one native run.
        const std::uint64_t count = a_ - stack_[top].child;
        stack_[top].child = a_;
        return BoxRun{scale_, count};
      }
      ++stack_[top].child;
      stack_.push_back({stack_[top].size / b_, 0});
      continue;
    }
    const BoxSize s = stack_[top].size;
    stack_.pop_back();
    return BoxRun{s * scale_, 1};
  }
  return std::nullopt;
}

std::optional<SubtreeBlock> WorstCaseSource::peek_block() {
  // The stream position is always at a repeat boundary of the top node:
  // either about to start child #child (a copy of M(size/b)) or about to
  // emit the node's own box.
  if (stack_.empty()) return std::nullopt;
  const Frame& top = stack_.back();
  if (top.size <= 1 || top.child >= a_) return std::nullopt;
  const unsigned child_level = util::ilog(top.size, b_) - 1;
  return SubtreeBlock{boxes_by_level_[child_level], a_ - top.child};
}

void WorstCaseSource::skip_repeats(std::uint64_t m) {
  CADAPT_CHECK(!stack_.empty());
  Frame& top = stack_.back();
  CADAPT_CHECK_MSG(top.size > 1 && top.child + m <= a_,
                   "skip_repeats(" << m << ") past the " << a_
                                   << " children of a size-" << top.size
                                   << " node (child=" << top.child << ")");
  top.child += m;
}

OrderPerturbedWorstCaseSource::OrderPerturbedWorstCaseSource(std::uint64_t a,
                                                             std::uint64_t b,
                                                             BoxSize n,
                                                             std::uint64_t seed)
    : a_(a), b_(b) {
  validate_params(a, b, n);
  stack_.push_back({n, 0, root_hash(seed), false});
}

std::optional<BoxSize> OrderPerturbedWorstCaseSource::next() {
  while (!stack_.empty()) {
    const std::size_t top = stack_.size() - 1;
    if (stack_[top].size == 1) {
      const BoxSize s = stack_[top].size;
      stack_.pop_back();
      return s;
    }
    // Emit this node's own box as soon as `own_after` children are done.
    if (!stack_[top].own_emitted &&
        stack_[top].child >= own_after(stack_[top].hash, a_)) {
      stack_[top].own_emitted = true;
      return stack_[top].size;
    }
    if (stack_[top].child < a_) {
      const std::uint64_t child_index = stack_[top].child;
      ++stack_[top].child;
      const BoxSize child_size = stack_[top].size / b_;
      stack_.push_back({child_size, 0,
                        util::hash_combine(stack_[top].hash, child_index),
                        false});
      continue;
    }
    // All children done and own box already emitted (own_after <= a).
    CADAPT_CHECK(stack_[top].own_emitted);
    stack_.pop_back();
  }
  return std::nullopt;
}

std::optional<BoxRun> OrderPerturbedWorstCaseSource::next_run() {
  while (!stack_.empty()) {
    const std::size_t top = stack_.size() - 1;
    if (stack_[top].size == 1) {  // only reachable via mixed next() usage
      stack_.pop_back();
      return BoxRun{1, 1};
    }
    if (!stack_[top].own_emitted &&
        stack_[top].child >= own_after(stack_[top].hash, a_)) {
      stack_[top].own_emitted = true;
      return BoxRun{stack_[top].size, 1};
    }
    if (stack_[top].child < a_) {
      if (stack_[top].size == b_) {
        // Base-case children run until the own box (or the last child).
        const std::uint64_t limit =
            stack_[top].own_emitted ? a_
                                    : own_after(stack_[top].hash, a_);
        const std::uint64_t count = limit - stack_[top].child;
        stack_[top].child = limit;
        return BoxRun{1, count};
      }
      const std::uint64_t child_index = stack_[top].child;
      ++stack_[top].child;
      stack_.push_back({stack_[top].size / b_, 0,
                        util::hash_combine(stack_[top].hash, child_index),
                        false});
      continue;
    }
    CADAPT_CHECK(stack_[top].own_emitted);
    stack_.pop_back();
  }
  return std::nullopt;
}

std::vector<CensusEntry> worst_case_census(std::uint64_t a, std::uint64_t b,
                                           BoxSize n) {
  validate_params(a, b, n);
  const unsigned K = util::ilog(n, b);
  std::vector<CensusEntry> census;
  census.reserve(K + 1);
  for (unsigned k = 0; k <= K; ++k) {
    census.push_back({util::ipow(b, k), util::ipow(a, K - k)});
  }
  return census;
}

std::uint64_t worst_case_box_count(std::uint64_t a, std::uint64_t b,
                                   BoxSize n) {
  std::uint64_t total = 0;
  for (const auto& e : worst_case_census(a, b, n)) total += e.count;
  return total;
}

double worst_case_total_time(std::uint64_t a, std::uint64_t b, BoxSize n) {
  double total = 0.0;
  for (const auto& e : worst_case_census(a, b, n))
    total += static_cast<double>(e.size) * static_cast<double>(e.count);
  return total;
}

double worst_case_total_potential(std::uint64_t a, std::uint64_t b, BoxSize n) {
  double total = 0.0;
  for (const auto& e : worst_case_census(a, b, n))
    total += util::pow_log_ratio(e.size, a, b) * static_cast<double>(e.count);
  return total;
}

}  // namespace cadapt::profile
