// Square-profile approximation of arbitrary memory profiles.
//
// The paper (after [5, 6]) reduces cache-adaptive analysis to square
// profiles: any memory profile m(t) can be approximated, up to constant
// factors of resource augmentation, by a square profile that fits inside
// it. This module implements the greedy *inner* square decomposition: at
// each boundary, take the largest box that fits under the profile.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "profile/box.hpp"

namespace cadapt::profile {

/// Greedy inner square profile of the memory profile m (m[t] = cache size
/// in blocks after the t-th I/O, every entry >= 1). At each boundary t the
/// next box side is the largest x with t + x <= |m| and
/// min(m[t..t+x)) >= x. A trailing stretch too short for even its own
/// height still yields a final truncated box of side min(remaining length,
/// min height) >= 1.
std::vector<BoxSize> inner_square_profile(std::span<const std::uint64_t> m);

/// Expand a square profile back into a flat memory profile: each box of
/// size x contributes x time steps of cache size x.
std::vector<std::uint64_t> expand_profile(std::span<const BoxSize> boxes);

/// True iff m is already a square profile (expand(inner(m)) == m).
bool is_square_profile(std::span<const std::uint64_t> m);

}  // namespace cadapt::profile
