#include "algos/edit_distance.hpp"

#include <algorithm>
#include <vector>

#include "algos/grid_dp.hpp"

namespace cadapt::algos {

namespace {

/// Levenshtein grid: D[0][j] = j, D[i][0] = i,
/// D[i][j] = min(diag + (x!=y), up + 1, left + 1).
struct EditPolicy {
  using Value = int;
  static Value top_boundary(std::size_t j) { return static_cast<Value>(j); }
  static Value left_boundary(std::size_t i) { return static_cast<Value>(i); }
  static Value cell(Value diag, Value up, Value left, bool match) {
    return std::min({diag + (match ? 0 : 1), up + 1, left + 1});
  }
};

}  // namespace

std::size_t edit_distance_recursive(paging::Machine& machine,
                                    paging::AddressSpace& space,
                                    const SimVector<char>& x,
                                    const SimVector<char>& y,
                                    std::size_t base) {
  GridDp<EditPolicy> dp(machine, space, x, y, base);
  return static_cast<std::size_t>(dp.solve());
}

std::size_t edit_distance_reference(const std::string& x,
                                    const std::string& y) {
  const std::size_t m = x.size(), n = y.size();
  std::vector<std::size_t> prev(n + 1), cur(n + 1);
  for (std::size_t j = 0; j <= n; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t sub = prev[j - 1] + (x[i - 1] == y[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace cadapt::algos
