// Generic cache-oblivious boundary dynamic programming over an n x n
// grid (Chowdhury–Ramachandran [16, 17]).
//
// The DP value L[i][j] depends on L[i-1][j-1], L[i-1][j], L[i][j-1] and
// the input symbols x[i], y[j]. The grid is solved by quadrant recursion
// in dependency order Q11, Q12, Q21, Q22; only Θ(side) boundary values
// cross block edges, so with problem size measured by side length the
// recursion is (4,2,1)-regular — a > b with c = 1, squarely inside the
// paper's logarithmic gap. LCS and edit distance are instantiations
// (algos/lcs.hpp, algos/edit_distance.hpp).
//
// All DP state (boundary buffers, base-case rolling rows) lives in
// simulated memory so the paging machines see the true traffic.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"
#include "util/check.hpp"

namespace cadapt::algos {

/// Policy requirements:
///   using Value = <integral DP value>;
///   static Value top_boundary(std::size_t j);    // L[0][j], j = 0..n
///   static Value left_boundary(std::size_t i);   // L[i][0], i = 1..n
///   static Value cell(Value diag, Value up, Value left, bool match);
template <typename Policy>
class GridDp {
 public:
  using Value = typename Policy::Value;

  GridDp(paging::Machine& machine, paging::AddressSpace& space,
         const SimVector<char>& x, const SimVector<char>& y, std::size_t base)
      : machine_(&machine), space_(&space), x_(&x), y_(&y), base_(base) {
    CADAPT_CHECK(x.size() == y.size());
    CADAPT_CHECK(base >= 1);
    std::size_t side = x.size();
    while (side > base) {
      CADAPT_CHECK_MSG(side % 2 == 0, "grid side must be m * 2^k, m <= base");
      side /= 2;
    }
  }

  /// Solve the whole grid; returns L[n][n].
  Value solve() {
    const std::size_t n = x_->size();
    if (n == 0) return Policy::top_boundary(0);
    SimVector<Value> top(*machine_, *space_, n + 1);
    SimVector<Value> left(*machine_, *space_, n);
    SimVector<Value> bottom(*machine_, *space_, n + 1);
    SimVector<Value> right(*machine_, *space_, n);
    for (std::size_t j = 0; j <= n; ++j) top.set(j, Policy::top_boundary(j));
    for (std::size_t i = 1; i <= n; ++i)
      left.set(i - 1, Policy::left_boundary(i));
    block(1, n, 1, n, Buf{&top, 0, n + 1}, Buf{&left, 0, n},
          Buf{&bottom, 0, n + 1}, Buf{&right, 0, n}, 0);
    return bottom.get(n);
  }

 private:
  /// A span into a tracked value vector — boundary rows/columns are
  /// passed between recursion levels as views, never copied wholesale.
  struct Buf {
    SimVector<Value>* vec = nullptr;
    std::size_t off = 0;
    std::size_t len = 0;

    Value get(std::size_t i) const {
      CADAPT_CHECK(i < len);
      return vec->get(off + i);
    }
    void set(std::size_t i, Value v) const {
      CADAPT_CHECK(i < len);
      vec->set(off + i, v);
    }
    Buf slice(std::size_t from, std::size_t count) const {
      CADAPT_CHECK(from + count <= len);
      return {vec, off + from, count};
    }
  };

  Buf scratch(std::size_t depth, std::size_t slot, std::size_t len) {
    if (arena_.size() <= depth) arena_.resize(depth + 1);
    auto& entry = arena_[depth][slot];
    if (!entry)
      entry = std::make_unique<SimVector<Value>>(*machine_, *space_, len);
    CADAPT_CHECK(entry->size() == len);
    return {entry.get(), 0, len};
  }

  /// Solve DP cells rows [i0..i1], cols [j0..j1] (1-based, inclusive).
  /// top:    L[i0-1][j] for j = j0-1..j1   (length j1-j0+2)
  /// left:   L[i][j0-1] for i = i0..i1     (length i1-i0+1)
  /// bottom: L[i1][j]  for j = j0-1..j1    (written)
  /// right:  L[i][j1]  for i = i0..i1      (written)
  void block(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
             const Buf& top, const Buf& left, const Buf& bottom,
             const Buf& right, std::size_t depth) {
    const std::size_t height = i1 - i0 + 1;
    const std::size_t width = j1 - j0 + 1;
    CADAPT_CHECK(top.len == width + 1 && bottom.len == width + 1);
    CADAPT_CHECK(left.len == height && right.len == height);

    if (height <= base_) {
      // Direct DP with a tracked rolling row.
      Buf row = scratch(depth, 2, width + 1);
      for (std::size_t t = 0; t <= width; ++t) row.set(t, top.get(t));
      for (std::size_t i = i0; i <= i1; ++i) {
        Value prev_diag = row.get(0);  // L[i-1][j0-1]
        row.set(0, left.get(i - i0));
        for (std::size_t j = j0; j <= j1; ++j) {
          const std::size_t idx = j - j0 + 1;
          const Value above = row.get(idx);  // L[i-1][j]
          const bool match = x_->get(i - 1) == y_->get(j - 1);
          const Value val =
              Policy::cell(prev_diag, above, row.get(idx - 1), match);
          prev_diag = above;
          row.set(idx, val);
        }
        right.set(i - i0, row.get(width));
      }
      for (std::size_t t = 0; t <= width; ++t) bottom.set(t, row.get(t));
      return;
    }

    CADAPT_CHECK(height % 2 == 0 && width % 2 == 0 && height == width);
    const std::size_t h = height / 2;
    const std::size_t im = i0 + h - 1;  // last row of the upper half
    const std::size_t jm = j0 + h - 1;  // last column of the left half

    // Internal boundaries: mid-row = L[im][j0-1..j1], mid-col = L[i][jm]
    // for i = i0..i1. The slice plumbing is the Θ(side) per-level scan.
    Buf midrow = scratch(depth, 0, width + 1);
    Buf midcol = scratch(depth, 1, height);

    // Q11: rows i0..im, cols j0..jm.
    block(i0, im, j0, jm, top.slice(0, h + 1), left.slice(0, h),
          midrow.slice(0, h + 1), midcol.slice(0, h), depth + 1);
    // Q12: rows i0..im, cols jm+1..j1; left boundary = right of Q11.
    block(i0, im, jm + 1, j1, top.slice(h, h + 1), midcol.slice(0, h),
          midrow.slice(h, h + 1), right.slice(0, h), depth + 1);
    // Q21: rows im+1..i1, cols j0..jm; top boundary = bottom of Q11.
    block(im + 1, i1, j0, jm, midrow.slice(0, h + 1), left.slice(h, h),
          bottom.slice(0, h + 1), midcol.slice(h, h), depth + 1);
    // Q22: rows im+1..i1, cols jm+1..j1.
    block(im + 1, i1, jm + 1, j1, midrow.slice(h, h + 1), midcol.slice(h, h),
          bottom.slice(h, h + 1), right.slice(h, h), depth + 1);
  }

  paging::Machine* machine_;
  paging::AddressSpace* space_;
  const SimVector<char>* x_;
  const SimVector<char>* y_;
  std::size_t base_;
  // Per-depth scratch: [0] = mid-row, [1] = mid-column, [2] = rolling row.
  std::vector<std::array<std::unique_ptr<SimVector<Value>>, 3>> arena_;
};

}  // namespace cadapt::algos
