// Explicitly memory-adaptive external merge sort, in the spirit of
// Barve & Vitter [2, 3] and the memory-adaptive sorting literature the
// paper surveys ([47, 64, 65]).
//
// Unlike the cache-oblivious merge sort (algos/sort.hpp), this algorithm
// *queries* the current memory size and adapts: run formation sizes each
// run to the memory available at its start, and each merge step picks its
// fan-in from the memory available then. It is the "explicit adaptivity"
// baseline the paper contrasts with cache-obliviousness: more machinery,
// better constants when the hint is honest, no protection when memory
// shifts right after the query.
#pragma once

#include <cstdint>
#include <functional>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"

namespace cadapt::algos {

/// Returns the algorithm's current memory allotment in blocks. For a
/// paging::CaMachine pass [&m]{ return m.current_box_size(); }; for a
/// FluidCaMachine, current_capacity().
using MemoryHint = std::function<std::uint64_t()>;

/// Memory-adaptive external merge sort over tracked memory. Uses a
/// tracked scratch buffer of equal length (ping-pong merging).
void adaptive_merge_sort(paging::Machine& machine,
                         paging::AddressSpace& space,
                         SimVector<std::int64_t>& data,
                         const MemoryHint& memory_blocks);

}  // namespace cadapt::algos
