#include "algos/sort.hpp"

#include "util/check.hpp"

namespace cadapt::algos {

void merge_ranges(SimVector<std::int64_t>& data, std::size_t lo,
                  std::size_t mid, std::size_t hi,
                  SimVector<std::int64_t>& out) {
  CADAPT_CHECK(lo <= mid && mid <= hi && hi <= data.size());
  CADAPT_CHECK(out.size() >= hi);
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    const std::int64_t x = data.get(i);
    const std::int64_t y = data.get(j);
    if (x <= y) {
      out.set(k++, x);
      ++i;
    } else {
      out.set(k++, y);
      ++j;
    }
  }
  while (i < mid) out.set(k++, data.get(i++));
  while (j < hi) out.set(k++, data.get(j++));
}

namespace {

void sort_rec(SimVector<std::int64_t>& data, std::size_t lo, std::size_t hi,
              SimVector<std::int64_t>& scratch) {
  if (hi - lo <= 1) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  sort_rec(data, lo, mid, scratch);
  sort_rec(data, mid, hi, scratch);
  // Merge into the scratch buffer, then copy back: the two scans that
  // make merge sort (2,2,1)-regular.
  merge_ranges(data, lo, mid, hi, scratch);
  for (std::size_t t = lo; t < hi; ++t) data.set(t, scratch.get(t));
}

}  // namespace

void merge_sort(paging::Machine& machine, paging::AddressSpace& space,
                SimVector<std::int64_t>& data) {
  SimVector<std::int64_t> scratch(machine, space, data.size());
  sort_rec(data, 0, data.size(), scratch);
}

}  // namespace cadapt::algos
