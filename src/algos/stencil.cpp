#include "algos/stencil.hpp"

#include "util/check.hpp"

namespace cadapt::algos {

namespace {

/// Two time-rows of the space-time grid, ping-ponged by parity.
struct StencilGrid {
  SimMatrix<double>* rows;  // 2 x n
  std::size_t n;

  /// u(t+1, x) from u(t, x-1..x+1); boundary cells copy themselves.
  void update(std::int64_t t, std::int64_t x) {
    const std::size_t src = static_cast<std::size_t>(t) % 2;
    const std::size_t dst = 1 - src;
    const auto xi = static_cast<std::size_t>(x);
    double value;
    if (x == 0 || xi == n - 1) {
      value = rows->get(src, xi);  // Dirichlet: boundary stays fixed
    } else {
      value = (rows->get(src, xi - 1) + rows->get(src, xi) +
               rows->get(src, xi + 1)) /
              3.0;
    }
    rows->set(dst, xi, value);
  }
};

/// Frigo–Strumpen trapezoid walk. The region covers, for each time step
/// t in [t0, t1), the cells [x0 + xd0·(t-t0), x1 + xd1·(t-t0)); slopes
/// are in {-1, 0, 1}.
void walk(StencilGrid& grid, std::int64_t t0, std::int64_t t1, std::int64_t x0,
          std::int64_t xd0, std::int64_t x1, std::int64_t xd1) {
  const std::int64_t h = t1 - t0;
  if (h <= 0 || x1 <= x0) return;
  if (h == 1) {
    for (std::int64_t x = x0; x < x1; ++x) grid.update(t0, x);
    return;
  }
  if (2 * (x1 - x0) + (xd1 - xd0) * h >= 4 * h) {
    // Wide: space cut along a slope −1 diagonal through the center.
    const std::int64_t xm = (2 * (x0 + x1) + (2 + xd0 + xd1) * h) / 4;
    walk(grid, t0, t1, x0, xd0, xm, -1);
    walk(grid, t0, t1, xm, -1, x1, xd1);
  } else {
    // Tall: time cut.
    const std::int64_t s = h / 2;
    walk(grid, t0, t0 + s, x0, xd0, x1, xd1);
    walk(grid, t0 + s, t1, x0 + xd0 * s, xd0, x1 + xd1 * s, xd1);
  }
}

}  // namespace

void stencil_trapezoid(paging::Machine& machine, paging::AddressSpace& space,
                       SimVector<double>& u, std::size_t steps) {
  const std::size_t n = u.size();
  if (n == 0 || steps == 0) return;
  SimMatrix<double> rows(machine, space, 2, n);
  for (std::size_t x = 0; x < n; ++x) rows.set(0, x, u.get(x));
  StencilGrid grid{&rows, n};
  walk(grid, 0, static_cast<std::int64_t>(steps), 0, 0,
       static_cast<std::int64_t>(n), 0);
  const std::size_t final_row = steps % 2;
  for (std::size_t x = 0; x < n; ++x) u.set(x, rows.get(final_row, x));
}

void stencil_naive(paging::Machine& machine, paging::AddressSpace& space,
                   SimVector<double>& u, std::size_t steps) {
  const std::size_t n = u.size();
  if (n == 0 || steps == 0) return;
  SimMatrix<double> rows(machine, space, 2, n);
  for (std::size_t x = 0; x < n; ++x) rows.set(0, x, u.get(x));
  StencilGrid grid{&rows, n};
  for (std::size_t t = 0; t < steps; ++t)
    for (std::size_t x = 0; x < n; ++x)
      grid.update(static_cast<std::int64_t>(t), static_cast<std::int64_t>(x));
  const std::size_t final_row = steps % 2;
  for (std::size_t x = 0; x < n; ++x) u.set(x, rows.get(final_row, x));
}

std::vector<double> stencil_reference(std::vector<double> u,
                                      std::size_t steps) {
  const std::size_t n = u.size();
  if (n == 0) return u;
  std::vector<double> next(n);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t x = 0; x < n; ++x) {
      if (x == 0 || x == n - 1) {
        next[x] = u[x];
      } else {
        next[x] = (u[x - 1] + u[x] + u[x + 1]) / 3.0;
      }
    }
    std::swap(u, next);
  }
  return u;
}

}  // namespace cadapt::algos
