// Instrumented sorting kernels — the a = b corner of the (a,b,c) space.
//
// Two-way cache-oblivious merge sort is (2,2,1)-regular: T(n) =
// 2 T(n/2) + Θ(n/B). The paper's footnote 3: when a = b and c = 1, no
// algorithm can be optimally cache-adaptive because such algorithms are
// already Θ(log (M/B)) from optimal in the DAM model — merge sort is the
// canonical example, and the a = b case is explicitly left open by the
// paper. These kernels power the beyond-the-paper a = b ablation bench.
#pragma once

#include <cstddef>
#include <vector>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"

namespace cadapt::algos {

/// In-place (logically) two-way merge sort over tracked memory; uses a
/// tracked scratch buffer of equal length. (2,2,1)-regular.
void merge_sort(paging::Machine& machine, paging::AddressSpace& space,
                SimVector<std::int64_t>& data);

/// Binary merge of two sorted tracked ranges [lo, mid) and [mid, hi) of
/// `data` into `out[lo, hi)`. Exposed for tests.
void merge_ranges(SimVector<std::int64_t>& data, std::size_t lo,
                  std::size_t mid, std::size_t hi,
                  SimVector<std::int64_t>& out);

}  // namespace cadapt::algos
