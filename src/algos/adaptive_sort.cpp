#include "algos/adaptive_sort.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace cadapt::algos {

namespace {

/// Merge runs [boundaries[first], ...) .. [.., boundaries[last]) from
/// `in` into `out` at the same offsets, k-way with an (untracked)
/// tournament heap; every element is read and written once through the
/// machine.
void merge_group(SimVector<std::int64_t>& in, SimVector<std::int64_t>& out,
                 const std::vector<std::size_t>& boundaries,
                 std::size_t first, std::size_t last) {
  struct Head {
    std::int64_t value;
    std::size_t run;
  };
  struct Compare {
    bool operator()(const Head& a, const Head& b) const {
      return a.value > b.value;  // min-heap
    }
  };

  std::vector<std::size_t> cursor(last - first);
  std::priority_queue<Head, std::vector<Head>, Compare> heap;
  for (std::size_t r = first; r < last; ++r) {
    cursor[r - first] = boundaries[r];
    if (boundaries[r] < boundaries[r + 1])
      heap.push({in.get(boundaries[r]), r});
  }

  std::size_t opos = boundaries[first];
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    out.set(opos++, head.value);
    std::size_t& cur = cursor[head.run - first];
    ++cur;
    if (cur < boundaries[head.run + 1]) heap.push({in.get(cur), head.run});
  }
  CADAPT_CHECK(opos == boundaries[last]);
}

}  // namespace

void adaptive_merge_sort(paging::Machine& machine,
                         paging::AddressSpace& space,
                         SimVector<std::int64_t>& data,
                         const MemoryHint& memory_blocks) {
  CADAPT_CHECK(memory_blocks != nullptr);
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::uint64_t block_words = machine.block_size();

  // --- Phase 1: run formation. Each run is sized to the memory available
  // at its start (at least one block's worth of items).
  std::vector<std::size_t> boundaries{0};
  {
    std::size_t pos = 0;
    std::vector<std::int64_t> local;
    while (pos < n) {
      const std::uint64_t mem = std::max<std::uint64_t>(1, memory_blocks());
      const std::size_t run_len = static_cast<std::size_t>(
          std::min<std::uint64_t>(n - pos, mem * block_words));
      local.clear();
      local.reserve(run_len);
      for (std::size_t i = 0; i < run_len; ++i)
        local.push_back(data.get(pos + i));
      std::sort(local.begin(), local.end());
      for (std::size_t i = 0; i < run_len; ++i) data.set(pos + i, local[i]);
      pos += run_len;
      boundaries.push_back(pos);
    }
  }

  // --- Phase 2: adaptive multi-way merge passes, ping-ponging between
  // data and a scratch buffer. The fan-in of each merge group is chosen
  // from the memory available when the group starts (one block per input
  // run plus one for output).
  SimVector<std::int64_t> scratch(machine, space, n);
  SimVector<std::int64_t>* src = &data;
  SimVector<std::int64_t>* dst = &scratch;

  while (boundaries.size() > 2) {
    std::vector<std::size_t> next_boundaries{0};
    std::size_t r = 0;
    while (r + 1 < boundaries.size()) {
      const std::uint64_t mem = std::max<std::uint64_t>(3, memory_blocks());
      const std::size_t fan_in = static_cast<std::size_t>(
          std::min<std::uint64_t>(boundaries.size() - 1 - r, mem - 1));
      merge_group(*src, *dst, boundaries, r, r + fan_in);
      r += fan_in;
      next_boundaries.push_back(boundaries[r]);
    }
    boundaries = std::move(next_boundaries);
    std::swap(src, dst);
  }

  // Ensure the sorted result ends up in `data`.
  if (src != &data) {
    for (std::size_t i = 0; i < n; ++i) data.set(i, src->get(i));
  }
}

}  // namespace cadapt::algos
