#include "algos/lcs.hpp"

#include <algorithm>
#include <vector>

#include "algos/grid_dp.hpp"
#include "util/check.hpp"

namespace cadapt::algos {

namespace {

/// LCS grid: L[i][j] = L[i-1][j-1]+1 on a match, else
/// max(L[i-1][j], L[i][j-1]); zero boundaries.
struct LcsPolicy {
  using Value = int;
  static Value top_boundary(std::size_t) { return 0; }
  static Value left_boundary(std::size_t) { return 0; }
  static Value cell(Value diag, Value up, Value left, bool match) {
    return match ? diag + 1 : std::max(up, left);
  }
};

}  // namespace

std::size_t lcs_recursive(paging::Machine& machine,
                          paging::AddressSpace& space,
                          const SimVector<char>& x, const SimVector<char>& y,
                          std::size_t base) {
  GridDp<LcsPolicy> dp(machine, space, x, y, base);
  return static_cast<std::size_t>(dp.solve());
}

std::size_t lcs_full_table(paging::Machine& machine,
                           paging::AddressSpace& space,
                           const SimVector<char>& x, const SimVector<char>& y) {
  const std::size_t n = x.size();
  CADAPT_CHECK(y.size() == n);
  if (n == 0) return 0;
  SimMatrix<int> table(machine, space, n + 1, n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      int val;
      if (x.get(i - 1) == y.get(j - 1)) {
        val = table.get(i - 1, j - 1) + 1;
      } else {
        val = std::max(table.get(i - 1, j), table.get(i, j - 1));
      }
      table.set(i, j, val);
    }
  }
  return static_cast<std::size_t>(table.get(n, n));
}

std::size_t lcs_reference(const std::string& x, const std::string& y) {
  const std::size_t m = x.size(), n = y.size();
  std::vector<std::size_t> prev(n + 1, 0), cur(n + 1, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (x[i - 1] == y[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace cadapt::algos
