// All-pairs shortest paths via the cache-oblivious recursive
// Floyd–Warshall of the Gaussian Elimination Paradigm (Chowdhury &
// Ramachandran [17, 18]).
//
// The driver recursion is
//
//   FW(X):  FW(X11);  X12 ⊕= X11·X12;  X21 ⊕= X21·X11;  X22 ⊕= X21·X12;
//           FW(X22);  X21 ⊕= X22·X21;  X12 ⊕= X12·X22;  X11 ⊕= X12·X21;
//
// where ⊕= is the in-place min-plus matrix product update, itself an
// (8,4,0)-regular recursion. Together with the naive triple-loop baseline
// this gives a second real kernel in the paper's a > b family.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "algos/sim_data.hpp"

namespace cadapt::algos {

/// "Infinite" distance for min-plus arithmetic (safe to add twice without
/// overflow).
inline constexpr double kInf = std::numeric_limits<double>::max() / 4;

/// X = min(X, U ⊗ V) (min-plus product), recursive in-place.
void minplus_inplace(MatView<double> x, MatView<double> u, MatView<double> v,
                     std::size_t base = 4);

/// In-place recursive Floyd–Warshall on a distance matrix (kInf = no
/// edge; diagonal should be 0). Side must be base * 2^k.
void fw_recursive(MatView<double> x, std::size_t base = 4);

/// Classic triple-loop Floyd–Warshall on tracked memory (baseline).
void fw_naive(MatView<double> x);

/// All-pairs shortest paths by repeated min-plus squaring: D <- D ⊗ D,
/// ⌈log2 n⌉ times. This is the APSP-via-matrix-multiplication route the
/// paper cites ([53, 54, 66]); each squaring is the (8,4,*)-regular
/// min-plus kernel. Needs a scratch matrix of the same size.
void apsp_repeated_squaring(MatView<double> x, MatView<double> scratch,
                            std::size_t base = 4);

/// Untracked reference for verification.
std::vector<double> fw_reference(std::vector<double> dist, std::size_t n);

}  // namespace cadapt::algos
