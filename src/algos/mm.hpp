// Matrix-multiplication kernels from Section 3 of the paper.
//
//  * mm_naive    — triple-loop baseline (cache-aware analysis only).
//  * mm_inplace  — MM-Inplace: recursive 8-way multiply that accumulates
//    elementary products directly into C. No merge scan, i.e.
//    (8,4,0)-regular, and optimally cache-adaptive.
//  * mm_scan     — MM-Scan: recursive 8-way multiply that computes the
//    second half of each quadrant's products into a temporary and merges
//    with a trailing linear scan: T(N) = 8T(N/4) + Θ(N/B), i.e.
//    (8,4,1)-regular — the canonical non-adaptive algorithm.
//
// All variants compute bit-identical results for the same inputs
// (verified in tests) — they differ only in memory traffic.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"

namespace cadapt::algos {

/// Per-depth scratch arena for mm_scan/strassen: sibling recursive calls
/// at the same depth reuse the same temporaries, so total scratch is
/// O(n^2) instead of O(n^3).
class MmScratch {
 public:
  MmScratch(paging::Machine& machine, paging::AddressSpace& space)
      : machine_(&machine), space_(&space) {}

  /// The `slot`-th scratch matrix of size n at recursion depth `depth`.
  SimMatrix<double>& temp(std::size_t depth, std::size_t slot, std::size_t n);

 private:
  paging::Machine* machine_;
  paging::AddressSpace* space_;
  // by_depth_[depth][slot]
  std::vector<std::vector<std::unique_ptr<SimMatrix<double>>>> by_depth_;
};

/// C += A * B, naive triple loop. Views must have equal size.
void mm_naive(MatView<double> c, MatView<double> a, MatView<double> b);

/// C += A * B, recursive in-place (MM-Inplace, (8,4,0)-regular).
/// base: side length at which to switch to the direct loop (>= 1).
void mm_inplace(MatView<double> c, MatView<double> a, MatView<double> b,
                std::size_t base = 4);

/// C = A * B, recursive with trailing merge scans (MM-Scan,
/// (8,4,1)-regular). Overwrites C.
void mm_scan(MatView<double> c, MatView<double> a, MatView<double> b,
             MmScratch& scratch, std::size_t base = 4);

/// C = A * B via Strassen's algorithm ((7,4,1)-regular). Overwrites C.
/// Side length must be base * 2^k.
void strassen(MatView<double> c, MatView<double> a, MatView<double> b,
              MmScratch& scratch, std::size_t base = 4);

/// Untracked reference product for verification: returns row-major n*n
/// result of a * b (raw data).
std::vector<double> mm_reference(const std::vector<double>& a,
                                 const std::vector<double>& b, std::size_t n);

}  // namespace cadapt::algos
