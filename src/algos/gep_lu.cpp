#include "algos/gep_lu.hpp"

#include "util/check.hpp"

namespace cadapt::algos {

namespace {

/// C -= A * B, recursive in place (the Schur-complement kernel).
void mm_subtract(MatView<double> c, MatView<double> a, MatView<double> b,
                 std::size_t base) {
  if (c.n() <= base) {
    const std::size_t n = c.n();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double acc = c.get(i, j);
        for (std::size_t k = 0; k < n; ++k) acc -= a.get(i, k) * b.get(k, j);
        c.set(i, j, acc);
      }
    return;
  }
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 2; ++k)
        mm_subtract(c.quad(i, j), a.quad(i, k), b.quad(k, j), base);
}

/// B <- L^{-1} B for unit-lower-triangular L (packed, diagonal implicit).
void trsm_lower(MatView<double> l, MatView<double> b, std::size_t base) {
  if (l.n() <= base) {
    const std::size_t n = l.n();
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t i = k + 1; i < n; ++i) {
        const double lik = l.get(i, k);
        for (std::size_t j = 0; j < b.n(); ++j)
          b.set(i, j, b.get(i, j) - lik * b.get(k, j));
      }
    return;
  }
  // L = [L11 0; L21 L22], B = [B1; B2]:
  // B1 <- L11^{-1} B1; B2 -= L21 B1; B2 <- L22^{-1} B2.
  trsm_lower(l.quad(0, 0), b.quad(0, 0), base);
  trsm_lower(l.quad(0, 0), b.quad(0, 1), base);
  mm_subtract(b.quad(1, 0), l.quad(1, 0), b.quad(0, 0), base);
  mm_subtract(b.quad(1, 1), l.quad(1, 0), b.quad(0, 1), base);
  trsm_lower(l.quad(1, 1), b.quad(1, 0), base);
  trsm_lower(l.quad(1, 1), b.quad(1, 1), base);
}

/// B <- B U^{-1} for upper-triangular U (with diagonal).
void trsm_upper(MatView<double> u, MatView<double> b, std::size_t base) {
  if (u.n() <= base) {
    const std::size_t n = u.n();
    for (std::size_t k = 0; k < n; ++k) {
      const double ukk = u.get(k, k);
      CADAPT_CHECK_MSG(ukk != 0.0, "LU without pivoting hit a zero pivot");
      for (std::size_t i = 0; i < b.n(); ++i) {
        const double bik = b.get(i, k) / ukk;
        b.set(i, k, bik);
        for (std::size_t j = k + 1; j < n; ++j)
          b.set(i, j, b.get(i, j) - bik * u.get(k, j));
      }
    }
    return;
  }
  // U = [U11 U12; 0 U22], B = [B1 B2]:
  // B1 <- B1 U11^{-1}; B2 -= B1 U12; B2 <- B2 U22^{-1}.
  trsm_upper(u.quad(0, 0), b.quad(0, 0), base);
  trsm_upper(u.quad(0, 0), b.quad(1, 0), base);
  mm_subtract(b.quad(0, 1), b.quad(0, 0), u.quad(0, 1), base);
  mm_subtract(b.quad(1, 1), b.quad(1, 0), u.quad(0, 1), base);
  trsm_upper(u.quad(1, 1), b.quad(0, 1), base);
  trsm_upper(u.quad(1, 1), b.quad(1, 1), base);
}

}  // namespace

void lu_recursive(MatView<double> x, std::size_t base) {
  CADAPT_CHECK(base >= 1);
  if (x.n() <= base) {
    lu_naive(x);
    return;
  }
  CADAPT_CHECK_MSG(x.n() % 2 == 0, "side must be base * 2^k");
  auto X11 = x.quad(0, 0), X12 = x.quad(0, 1), X21 = x.quad(1, 0),
       X22 = x.quad(1, 1);
  lu_recursive(X11, base);
  trsm_lower(X11, X12, base);   // X12 = L11^{-1} X12
  trsm_upper(X11, X21, base);   // X21 = X21 U11^{-1}
  mm_subtract(X22, X21, X12, base);  // Schur complement
  lu_recursive(X22, base);
}

void lu_naive(MatView<double> x) {
  const std::size_t n = x.n();
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = x.get(k, k);
    CADAPT_CHECK_MSG(pivot != 0.0, "LU without pivoting hit a zero pivot");
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = x.get(i, k) / pivot;
      x.set(i, k, lik);
      for (std::size_t j = k + 1; j < n; ++j)
        x.set(i, j, x.get(i, j) - lik * x.get(k, j));
    }
  }
}

std::vector<double> lu_reference(std::vector<double> a, std::size_t n) {
  CADAPT_CHECK(a.size() == n * n);
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = a[k * n + k];
    CADAPT_CHECK_MSG(pivot != 0.0, "LU without pivoting hit a zero pivot");
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = a[i * n + k] / pivot;
      a[i * n + k] = lik;
      for (std::size_t j = k + 1; j < n; ++j)
        a[i * n + j] -= lik * a[k * n + j];
    }
  }
  return a;
}

std::vector<double> lu_multiply_back(const std::vector<double>& packed,
                                     std::size_t n) {
  CADAPT_CHECK(packed.size() == n * n);
  std::vector<double> result(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      // (L U)[i][j] = Σ_k L[i][k] U[k][j], L unit-lower, U upper.
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        const double lik = k == i ? 1.0 : packed[i * n + k];
        const double ukj = packed[k * n + j];
        acc += lik * ukj;
      }
      result[i * n + j] = acc;
    }
  }
  return result;
}

}  // namespace cadapt::algos
