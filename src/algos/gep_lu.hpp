// Cache-oblivious LU decomposition (no pivoting) via the Gaussian
// Elimination Paradigm (Chowdhury & Ramachandran [18]) — the paper's
// "Gaussian elimination" entry in the (a,b,1)-regular family.
//
// The recursion
//
//   LU(X):  LU(X11);  X12 <- L11^{-1} X12;  X21 <- X21 U11^{-1};
//           X22 -= X21 X12;  LU(X22)
//
// has the Schur-complement update as its dominant (8,4,*)-style kernel;
// measured in words the whole computation is T(N) = Θ-equivalent to the
// GEP recurrence T(N) = 8T(N/4) + Θ(N/B), i.e. inside the paper's gap
// regime.
//
// No pivoting: intended for diagonally dominant (or otherwise LU-stable)
// inputs, which the tests and benches generate.
#pragma once

#include <cstddef>
#include <vector>

#include "algos/sim_data.hpp"

namespace cadapt::algos {

/// In-place recursive LU: on return X holds U in its upper triangle
/// (including diagonal) and the strict lower triangle of L (unit
/// diagonal implicit). Side must be base * 2^k.
void lu_recursive(MatView<double> x, std::size_t base = 4);

/// Classic in-place right-looking LU on tracked memory (baseline).
void lu_naive(MatView<double> x);

/// Untracked reference (same algorithm, plain memory).
std::vector<double> lu_reference(std::vector<double> a, std::size_t n);

/// Reconstruct L * U from a packed in-place LU factor (for verification).
std::vector<double> lu_multiply_back(const std::vector<double>& packed,
                                     std::size_t n);

}  // namespace cadapt::algos
