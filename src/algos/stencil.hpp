// Cache-oblivious 1-D stencil computation (Frigo & Strumpen [30], the
// Pochoir family [56]) — another member of the recursive divide-and-
// conquer family the paper analyzes.
//
// The space-time region is cut recursively into trapezoids: wide regions
// get a space cut along a diagonal (the two halves are independent given
// the cut's slope), short-wide ones a time cut. Working set per leaf is
// O(width), so the computation is cache-oblivious with I/O
// O(T·n / (B·M)) versus the naive row sweep's O(T·n / B).
#pragma once

#include <cstddef>
#include <vector>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"

namespace cadapt::algos {

/// Advance a 3-point averaging stencil (Dirichlet boundaries: the first
/// and last cells stay fixed) for `steps` time steps over tracked memory,
/// using the cache-oblivious trapezoid decomposition.
/// `u` holds the initial row; on return it holds the final row.
void stencil_trapezoid(paging::Machine& machine, paging::AddressSpace& space,
                       SimVector<double>& u, std::size_t steps);

/// Naive row-by-row sweep on tracked memory (baseline).
void stencil_naive(paging::Machine& machine, paging::AddressSpace& space,
                   SimVector<double>& u, std::size_t steps);

/// Untracked reference for verification.
std::vector<double> stencil_reference(std::vector<double> u,
                                      std::size_t steps);

}  // namespace cadapt::algos
