// Instrumented containers: real data whose every element access is
// reported to a paging::Machine, so concrete algorithms can be run
// through the DAM and cache-adaptive machines while still computing real
// (verifiable) results.
#pragma once

#include <cstddef>
#include <vector>

#include "paging/address_space.hpp"
#include "paging/machine.hpp"
#include "util/check.hpp"

namespace cadapt::algos {

/// A vector in simulated memory. get/set are tracked; raw() bypasses the
/// machine (for verification and initialization).
template <typename T>
class SimVector {
 public:
  SimVector(paging::Machine& machine, paging::AddressSpace& space,
            std::size_t n, const T& init = T{})
      : machine_(&machine), base_(space.allocate(n)), data_(n, init) {}

  std::size_t size() const { return data_.size(); }

  T get(std::size_t i) const {
    CADAPT_CHECK(i < data_.size());
    machine_->access(base_ + i);
    return data_[i];
  }

  void set(std::size_t i, const T& v) {
    CADAPT_CHECK(i < data_.size());
    machine_->access(base_ + i);
    data_[i] = v;
  }

  T& raw(std::size_t i) { return data_[i]; }
  const T& raw(std::size_t i) const { return data_[i]; }

 private:
  paging::Machine* machine_;
  std::uint64_t base_;
  std::vector<T> data_;
};

/// A row-major matrix in simulated memory.
template <typename T>
class SimMatrix {
 public:
  SimMatrix(paging::Machine& machine, paging::AddressSpace& space,
            std::size_t rows, std::size_t cols, const T& init = T{})
      : machine_(&machine), base_(space.allocate(rows * cols)), rows_(rows),
        cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T get(std::size_t r, std::size_t c) const {
    machine_->access(addr(r, c));
    return data_[index(r, c)];
  }

  void set(std::size_t r, std::size_t c, const T& v) {
    machine_->access(addr(r, c));
    data_[index(r, c)] = v;
  }

  T& raw(std::size_t r, std::size_t c) { return data_[index(r, c)]; }
  const T& raw(std::size_t r, std::size_t c) const {
    return data_[index(r, c)];
  }

 private:
  std::size_t index(std::size_t r, std::size_t c) const {
    CADAPT_CHECK(r < rows_ && c < cols_);
    return r * cols_ + c;
  }
  std::uint64_t addr(std::size_t r, std::size_t c) const {
    return base_ + index(r, c);
  }

  paging::Machine* machine_;
  std::uint64_t base_;
  std::size_t rows_, cols_;
  std::vector<T> data_;
};

/// A square view into a SimMatrix — the unit the divide-and-conquer
/// algorithms recurse on.
template <typename T>
class MatView {
 public:
  MatView(SimMatrix<T>& m, std::size_t r0, std::size_t c0, std::size_t n)
      : m_(&m), r0_(r0), c0_(c0), n_(n) {
    CADAPT_CHECK(r0 + n <= m.rows() && c0 + n <= m.cols());
  }

  /// Whole-matrix view (matrix must be square).
  explicit MatView(SimMatrix<T>& m) : MatView(m, 0, 0, m.rows()) {
    CADAPT_CHECK(m.rows() == m.cols());
  }

  std::size_t n() const { return n_; }

  T get(std::size_t i, std::size_t j) const { return m_->get(r0_ + i, c0_ + j); }
  void set(std::size_t i, std::size_t j, const T& v) {
    m_->set(r0_ + i, c0_ + j, v);
  }
  T& raw(std::size_t i, std::size_t j) { return m_->raw(r0_ + i, c0_ + j); }

  /// Quadrant (qi, qj) in {0,1}^2 of an even-sized view.
  MatView quad(std::size_t qi, std::size_t qj) const {
    CADAPT_CHECK(n_ % 2 == 0 && qi < 2 && qj < 2);
    const std::size_t h = n_ / 2;
    return MatView(*m_, r0_ + qi * h, c0_ + qj * h, h);
  }

 private:
  SimMatrix<T>* m_;
  std::size_t r0_, c0_, n_;
};

}  // namespace cadapt::algos
