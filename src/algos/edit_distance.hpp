// Cache-oblivious Levenshtein edit distance via recursive boundary DP —
// a second instantiation of algos::GridDp, covering the paper's "Edit
// Distance" entry in the (a,b,1)-regular family ((4,2,1) measured by
// grid side).
#pragma once

#include <cstddef>
#include <string>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"

namespace cadapt::algos {

/// Levenshtein distance (unit insert/delete/substitute costs) of two
/// tracked strings of equal length n (n = base * 2^k).
std::size_t edit_distance_recursive(paging::Machine& machine,
                                    paging::AddressSpace& space,
                                    const SimVector<char>& x,
                                    const SimVector<char>& y,
                                    std::size_t base = 16);

/// Untracked reference for verification (handles unequal lengths too).
std::size_t edit_distance_reference(const std::string& x,
                                    const std::string& y);

}  // namespace cadapt::algos
