#include "algos/mm.hpp"

#include "util/check.hpp"

namespace cadapt::algos {

SimMatrix<double>& MmScratch::temp(std::size_t depth, std::size_t slot,
                                   std::size_t n) {
  if (by_depth_.size() <= depth) by_depth_.resize(depth + 1);
  auto& slots = by_depth_[depth];
  if (slots.size() <= slot) slots.resize(slot + 1);
  if (!slots[slot]) {
    slots[slot] = std::make_unique<SimMatrix<double>>(*machine_, *space_, n, n);
  }
  CADAPT_CHECK_MSG(slots[slot]->rows() == n,
                   "scratch shape mismatch at depth " << depth << ": have "
                                                      << slots[slot]->rows()
                                                      << ", want " << n);
  return *slots[slot];
}

namespace {

void check_same_size(const MatView<double>& c, const MatView<double>& a,
                     const MatView<double>& b) {
  CADAPT_CHECK(c.n() == a.n() && a.n() == b.n());
  CADAPT_CHECK(c.n() >= 1);
}

/// C += A*B with the inner product accumulated in a register.
void mm_accumulate_direct(MatView<double> c, MatView<double> a,
                          MatView<double> b) {
  const std::size_t n = c.n();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c.get(i, j);
      for (std::size_t k = 0; k < n; ++k) acc += a.get(i, k) * b.get(k, j);
      c.set(i, j, acc);
    }
  }
}

}  // namespace

void mm_naive(MatView<double> c, MatView<double> a, MatView<double> b) {
  check_same_size(c, a, b);
  mm_accumulate_direct(c, a, b);
}

void mm_inplace(MatView<double> c, MatView<double> a, MatView<double> b,
                std::size_t base) {
  check_same_size(c, a, b);
  CADAPT_CHECK(base >= 1);
  if (c.n() <= base) {
    mm_accumulate_direct(c, a, b);
    return;
  }
  CADAPT_CHECK_MSG(c.n() % 2 == 0, "side must be base * 2^k");
  // C_ij += A_i0 * B_0j, then C_ij += A_i1 * B_1j — eight recursive calls,
  // no temporaries, no merge scan.
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 2; ++k)
        mm_inplace(c.quad(i, j), a.quad(i, k), b.quad(k, j), base);
}

namespace {

void mm_scan_rec(MatView<double> c, MatView<double> a, MatView<double> b,
                 MmScratch& scratch, std::size_t base, std::size_t depth) {
  if (c.n() <= base) {
    // Base case overwrites C.
    const std::size_t n = c.n();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += a.get(i, k) * b.get(k, j);
        c.set(i, j, acc);
      }
    }
    return;
  }
  CADAPT_CHECK_MSG(c.n() % 2 == 0, "side must be base * 2^k");
  SimMatrix<double>& t = scratch.temp(depth, 0, c.n());
  MatView<double> tv(t);
  // First four products straight into C's quadrants, second four into the
  // temporary's quadrants...
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      mm_scan_rec(c.quad(i, j), a.quad(i, 0), b.quad(0, j), scratch, base,
                  depth + 1);
      mm_scan_rec(tv.quad(i, j), a.quad(i, 1), b.quad(1, j), scratch, base,
                  depth + 1);
    }
  // ...then merge with one trailing linear scan: C += T. This scan is the
  // Θ(N/B) term that makes MM-Scan (8,4,1)-regular.
  const std::size_t n = c.n();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      c.set(i, j, c.get(i, j) + tv.get(i, j));
}

}  // namespace

void mm_scan(MatView<double> c, MatView<double> a, MatView<double> b,
             MmScratch& scratch, std::size_t base) {
  check_same_size(c, a, b);
  CADAPT_CHECK(base >= 1);
  mm_scan_rec(c, a, b, scratch, base, 0);
}

namespace {

void add_into(MatView<double> dst, MatView<double> x, MatView<double> y) {
  const std::size_t n = dst.n();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      dst.set(i, j, x.get(i, j) + y.get(i, j));
}

void sub_into(MatView<double> dst, MatView<double> x, MatView<double> y) {
  const std::size_t n = dst.n();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      dst.set(i, j, x.get(i, j) - y.get(i, j));
}

void strassen_rec(MatView<double> c, MatView<double> a, MatView<double> b,
                  MmScratch& scratch, std::size_t base, std::size_t depth) {
  if (c.n() <= base) {
    const std::size_t n = c.n();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += a.get(i, k) * b.get(k, j);
        c.set(i, j, acc);
      }
    }
    return;
  }
  CADAPT_CHECK_MSG(c.n() % 2 == 0, "side must be base * 2^k");
  const std::size_t h = c.n() / 2;
  auto A11 = a.quad(0, 0), A12 = a.quad(0, 1), A21 = a.quad(1, 0),
       A22 = a.quad(1, 1);
  auto B11 = b.quad(0, 0), B12 = b.quad(0, 1), B21 = b.quad(1, 0),
       B22 = b.quad(1, 1);
  // Scratch: two operand temporaries + seven products, all h x h.
  MatView<double> ta(scratch.temp(depth, 0, h));
  MatView<double> tb(scratch.temp(depth, 1, h));
  MatView<double> m[7] = {
      MatView<double>(scratch.temp(depth, 2, h)),
      MatView<double>(scratch.temp(depth, 3, h)),
      MatView<double>(scratch.temp(depth, 4, h)),
      MatView<double>(scratch.temp(depth, 5, h)),
      MatView<double>(scratch.temp(depth, 6, h)),
      MatView<double>(scratch.temp(depth, 7, h)),
      MatView<double>(scratch.temp(depth, 8, h)),
  };

  auto rec = [&](MatView<double> dst, MatView<double> x, MatView<double> y) {
    strassen_rec(dst, x, y, scratch, base, depth + 1);
  };

  add_into(ta, A11, A22);
  add_into(tb, B11, B22);
  rec(m[0], ta, tb);  // M1 = (A11+A22)(B11+B22)
  add_into(ta, A21, A22);
  rec(m[1], ta, B11);  // M2 = (A21+A22)B11
  sub_into(tb, B12, B22);
  rec(m[2], A11, tb);  // M3 = A11(B12-B22)
  sub_into(tb, B21, B11);
  rec(m[3], A22, tb);  // M4 = A22(B21-B11)
  add_into(ta, A11, A12);
  rec(m[4], ta, B22);  // M5 = (A11+A12)B22
  sub_into(ta, A21, A11);
  add_into(tb, B11, B12);
  rec(m[5], ta, tb);  // M6 = (A21-A11)(B11+B12)
  sub_into(ta, A12, A22);
  add_into(tb, B21, B22);
  rec(m[6], ta, tb);  // M7 = (A12-A22)(B21+B22)

  // Combination scans.
  auto C11 = c.quad(0, 0), C12 = c.quad(0, 1), C21 = c.quad(1, 0),
       C22 = c.quad(1, 1);
  for (std::size_t i = 0; i < h; ++i)
    for (std::size_t j = 0; j < h; ++j) {
      C11.set(i, j, m[0].get(i, j) + m[3].get(i, j) - m[4].get(i, j) +
                        m[6].get(i, j));
      C12.set(i, j, m[2].get(i, j) + m[4].get(i, j));
      C21.set(i, j, m[1].get(i, j) + m[3].get(i, j));
      C22.set(i, j, m[0].get(i, j) - m[1].get(i, j) + m[2].get(i, j) +
                        m[5].get(i, j));
    }
}

}  // namespace

void strassen(MatView<double> c, MatView<double> a, MatView<double> b,
              MmScratch& scratch, std::size_t base) {
  check_same_size(c, a, b);
  CADAPT_CHECK(base >= 1);
  strassen_rec(c, a, b, scratch, base, 0);
}

std::vector<double> mm_reference(const std::vector<double>& a,
                                 const std::vector<double>& b, std::size_t n) {
  CADAPT_CHECK(a.size() == n * n && b.size() == n * n);
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] += aik * b[k * n + j];
    }
  return c;
}

}  // namespace cadapt::algos
