#include "algos/funnelsort.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace cadapt::algos {

namespace {

constexpr std::size_t kBaseSize = 16;

/// A lazy k-funnel over sorted runs of `src`. Leaves stream their run;
/// each internal node owns a tracked ring buffer of capacity ≈ L^{3/2}
/// (L = leaves beneath) that fill() replenishes wholesale.
class Funnel {
 public:
  Funnel(paging::Machine& machine, paging::AddressSpace& space,
         SimVector<std::int64_t>& src,
         const std::vector<std::pair<std::size_t, std::size_t>>& runs)
      : machine_(&machine), space_(&space), src_(&src) {
    CADAPT_CHECK(!runs.empty());
    root_ = build(runs, 0, runs.size());
  }

  /// True while elements remain.
  bool has_next() { return peek(root_).has_value(); }

  /// Pop the global minimum.
  std::int64_t next() {
    const auto value = peek(root_);
    CADAPT_CHECK(value.has_value());
    pop(root_);
    return *value;
  }

 private:
  struct Node {
    // Leaf: cursor over src[run_begin, run_end).
    std::size_t run_begin = 0, run_end = 0;
    // Internal: children + ring buffer.
    std::size_t left = kNone, right = kNone;
    std::unique_ptr<SimVector<std::int64_t>> buffer;
    std::size_t head = 0;   // index of the front element
    std::size_t count = 0;  // elements currently buffered

    bool is_leaf() const { return left == kNone; }
  };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t build(
      const std::vector<std::pair<std::size_t, std::size_t>>& runs,
      std::size_t first, std::size_t last) {
    const std::size_t index = nodes_.size();
    nodes_.emplace_back();
    if (last - first == 1) {
      nodes_[index].run_begin = runs[first].first;
      nodes_[index].run_end = runs[first].second;
      return index;
    }
    const std::size_t mid = first + (last - first) / 2;
    const std::size_t left = build(runs, first, mid);
    const std::size_t right = build(runs, mid, last);
    // nodes_ may have reallocated during the recursive builds; write
    // through the index only now.
    Node& node = nodes_[index];
    node.left = left;
    node.right = right;
    const double leaves = static_cast<double>(last - first);
    const std::size_t capacity = std::max<std::size_t>(
        4, static_cast<std::size_t>(std::ceil(std::pow(leaves, 1.5))));
    node.buffer =
        std::make_unique<SimVector<std::int64_t>>(*machine_, *space_, capacity);
    return index;
  }

  /// Front element of node v, or nullopt when v is exhausted.
  std::optional<std::int64_t> peek(std::size_t v) {
    Node& node = nodes_[v];
    if (node.is_leaf()) {
      if (node.run_begin == node.run_end) return std::nullopt;
      return src_->get(node.run_begin);
    }
    if (node.count == 0) fill(v);
    if (node.count == 0) return std::nullopt;
    return node.buffer->get(node.head);
  }

  void pop(std::size_t v) {
    Node& node = nodes_[v];
    if (node.is_leaf()) {
      CADAPT_CHECK(node.run_begin < node.run_end);
      ++node.run_begin;
      return;
    }
    CADAPT_CHECK(node.count > 0);
    node.head = (node.head + 1) % node.buffer->size();
    --node.count;
  }

  /// Wholesale refill: merge from the children until the buffer is full
  /// or both children are exhausted. This is the step that touches a
  /// whole subtree at once and gives the funnel its locality.
  void fill(std::size_t v) {
    Node& node = nodes_[v];
    const std::size_t capacity = node.buffer->size();
    while (node.count < capacity) {
      const auto l = peek(node.left);
      const auto r = peek(node.right);
      std::size_t take;
      if (l && (!r || *l <= *r)) {
        take = node.left;
      } else if (r) {
        take = node.right;
      } else {
        break;  // both exhausted
      }
      const auto value = peek(take);
      pop(take);
      const std::size_t slot = (node.head + node.count) % capacity;
      node.buffer->set(slot, *value);
      ++node.count;
    }
  }

  paging::Machine* machine_;
  paging::AddressSpace* space_;
  SimVector<std::int64_t>* src_;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
};

void sort_range(paging::Machine& machine, paging::AddressSpace& space,
                SimVector<std::int64_t>& data, std::size_t lo, std::size_t hi,
                SimVector<std::int64_t>& scratch) {
  const std::size_t n = hi - lo;
  if (n <= 1) return;
  if (n <= kBaseSize) {
    // Base case: load, sort locally, store (tracked reads and writes).
    std::vector<std::int64_t> local;
    local.reserve(n);
    for (std::size_t i = lo; i < hi; ++i) local.push_back(data.get(i));
    std::sort(local.begin(), local.end());
    for (std::size_t i = lo; i < hi; ++i) data.set(i, local[i - lo]);
    return;
  }

  // k = ceil(n^{1/3}) segments of roughly equal size n^{2/3}.
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(std::cbrt(static_cast<double>(n)))));
  const std::size_t seg = (n + k - 1) / k;
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  for (std::size_t start = lo; start < hi; start += seg) {
    const std::size_t end = std::min(hi, start + seg);
    sort_range(machine, space, data, start, end, scratch);
    runs.emplace_back(start, end);
  }

  // Merge through the lazy funnel into scratch, then copy back.
  Funnel funnel(machine, space, data, runs);
  std::size_t out = lo;
  while (funnel.has_next()) scratch.set(out++, funnel.next());
  CADAPT_CHECK(out == hi);
  for (std::size_t i = lo; i < hi; ++i) data.set(i, scratch.get(i));
}

}  // namespace

void funnelsort(paging::Machine& machine, paging::AddressSpace& space,
                SimVector<std::int64_t>& data) {
  if (data.size() <= 1) return;
  SimVector<std::int64_t> scratch(machine, space, data.size());
  sort_range(machine, space, data, 0, data.size(), scratch);
}

}  // namespace cadapt::algos
