#include "algos/fw.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cadapt::algos {

namespace {

void minplus_direct(MatView<double> x, MatView<double> u, MatView<double> v) {
  const std::size_t n = x.n();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double best = x.get(i, j);
      for (std::size_t k = 0; k < n; ++k)
        best = std::min(best, u.get(i, k) + v.get(k, j));
      x.set(i, j, best);
    }
  }
}

}  // namespace

void minplus_inplace(MatView<double> x, MatView<double> u, MatView<double> v,
                     std::size_t base) {
  CADAPT_CHECK(x.n() == u.n() && u.n() == v.n());
  CADAPT_CHECK(base >= 1);
  if (x.n() <= base) {
    minplus_direct(x, u, v);
    return;
  }
  CADAPT_CHECK_MSG(x.n() % 2 == 0, "side must be base * 2^k");
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 2; ++k)
        minplus_inplace(x.quad(i, j), u.quad(i, k), v.quad(k, j), base);
}

void fw_recursive(MatView<double> x, std::size_t base) {
  CADAPT_CHECK(base >= 1);
  if (x.n() <= base) {
    fw_naive(x);
    return;
  }
  CADAPT_CHECK_MSG(x.n() % 2 == 0, "side must be base * 2^k");
  auto X11 = x.quad(0, 0), X12 = x.quad(0, 1), X21 = x.quad(1, 0),
       X22 = x.quad(1, 1);
  fw_recursive(X11, base);
  minplus_inplace(X12, X11, X12, base);
  minplus_inplace(X21, X21, X11, base);
  minplus_inplace(X22, X21, X12, base);
  fw_recursive(X22, base);
  minplus_inplace(X21, X22, X21, base);
  minplus_inplace(X12, X12, X22, base);
  minplus_inplace(X11, X12, X21, base);
}

void fw_naive(MatView<double> x) {
  const std::size_t n = x.n();
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = x.get(i, k);
      if (dik >= kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double cand = dik + x.get(k, j);
        if (cand < x.get(i, j)) x.set(i, j, cand);
      }
    }
}

void apsp_repeated_squaring(MatView<double> x, MatView<double> scratch,
                            std::size_t base) {
  CADAPT_CHECK(x.n() == scratch.n());
  const std::size_t n = x.n();
  // After k squarings, x holds shortest paths using up to 2^k hops;
  // n - 1 hops suffice.
  for (std::size_t hops = 1; hops < n; hops *= 2) {
    // scratch <- x (the operand snapshot), then x <- min(x, scratch⊗scratch).
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) scratch.set(i, j, x.get(i, j));
    minplus_inplace(x, scratch, scratch, base);
  }
}

std::vector<double> fw_reference(std::vector<double> dist, std::size_t n) {
  CADAPT_CHECK(dist.size() == n * n);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist[i * n + k];
      if (dik >= kInf) continue;
      for (std::size_t j = 0; j < n; ++j)
        dist[i * n + j] = std::min(dist[i * n + j], dik + dist[k * n + j]);
    }
  return dist;
}

}  // namespace cadapt::algos
