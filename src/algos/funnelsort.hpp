// Lazy funnelsort (Frigo–Leiserson–Prokop–Ramachandran [28], engineered
// in Brodal–Fagerberg–Vinther [12]) — the cache-oblivious I/O-optimal
// sorting algorithm, achieving Θ((n/B) log_{M/B}(n/B)) without knowing M.
//
// Structure: split into k = ⌈n^{1/3}⌉ segments of ≈ n^{2/3}, sort them
// recursively, and merge with a lazy k-funnel: a balanced binary merge
// tree whose node v, spanning L_v input runs, owns a buffer of ≈ L_v^{3/2}
// elements that is refilled wholesale. The wholesale refills give each
// subtree cache-sized working sets at every scale — the same
// "right-sized recursive working sets" mechanism the paper's
// (a,b,c)-regular framework isolates.
//
// Completes the sorting triptych next to algos::merge_sort (the
// a = b = 2 case with its Θ(log M/B) penalty) and
// algos::adaptive_merge_sort (explicitly memory-adaptive): funnelsort is
// the oblivious algorithm that matches the adaptive one's bound.
#pragma once

#include <cstdint>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"

namespace cadapt::algos {

/// Sort tracked data in place (uses tracked scratch internally).
void funnelsort(paging::Machine& machine, paging::AddressSpace& space,
                SimVector<std::int64_t>& data);

}  // namespace cadapt::algos
