// Cache-oblivious longest-common-subsequence length via recursive
// boundary dynamic programming (Chowdhury–Ramachandran style [16, 17]).
//
// The n x n DP grid is split into quadrants solved in dependency order
// Q11, Q12, Q21, Q22; only the Θ(side) boundary rows/columns cross block
// edges. Measuring problem size by side length, the recurrence is
// T(n) = 4 T(n/2) + Θ(n/B): a = 4 > b = 2 with c = 1 — one of the
// dynamic-programming algorithms the paper places inside the logarithmic
// gap.
#pragma once

#include <cstddef>
#include <string>

#include "algos/sim_data.hpp"
#include "paging/address_space.hpp"
#include "paging/machine.hpp"

namespace cadapt::algos {

/// LCS length of two tracked strings of equal length n (n = base * 2^k).
/// All DP state (boundary buffers, rolling rows) lives in simulated
/// memory, so the machine sees the algorithm's true traffic.
std::size_t lcs_recursive(paging::Machine& machine,
                          paging::AddressSpace& space,
                          const SimVector<char>& x, const SimVector<char>& y,
                          std::size_t base = 16);

/// Classic full-table DP on tracked memory (baseline; Θ(n^2) space).
std::size_t lcs_full_table(paging::Machine& machine,
                           paging::AddressSpace& space,
                           const SimVector<char>& x, const SimVector<char>& y);

/// Untracked reference for verification.
std::size_t lcs_reference(const std::string& x, const std::string& y);

}  // namespace cadapt::algos
