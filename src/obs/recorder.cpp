#include "obs/recorder.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace cadapt::obs {

const char* exec_branch_name(ExecBranch branch) {
  switch (branch) {
    case ExecBranch::kCompleteJump: return "jump";
    case ExecBranch::kScanAdvance: return "scan";
    case ExecBranch::kBudgeted: return "budgeted";
  }
  return "?";
}

void ExecRecorder::on_box(const BoxObservation& box) {
  ++boxes_;
  sum_box_ += box.size;
  progress_ += box.progress;
  scan_advance_ += box.scan_advance;
  if (box.completed_problem > 0) ++completions_;
  ++branch_counts_[static_cast<std::size_t>(box.branch)];

  SizeClassTally& tally = classes_[size_class(box.size)];
  ++tally.boxes;
  tally.sum_box += box.size;
  tally.progress += box.progress;
  tally.scan_advance += box.scan_advance;
  if (box.completed_problem > 0) ++tally.completions;

  if (sink_ != nullptr) {
    Event event("box");
    event.u64("i", box.index)
        .u64("s", box.size)
        .u64("progress", box.progress)
        .u64("scan", box.scan_advance)
        .u64("completed", box.completed_problem)
        .str("branch", exec_branch_name(box.branch));
    sink_->write(event);
  }
}

void ExecRecorder::on_run(const RunObservation& run) {
  boxes_ += run.count;
  sum_box_ += run.count * run.size;
  progress_ += run.progress;
  scan_advance_ += run.scan_advance;
  completions_ += run.completions;
  branch_counts_[static_cast<std::size_t>(run.branch)] += run.count;

  SizeClassTally& tally = classes_[size_class(run.size)];
  tally.boxes += run.count;
  tally.sum_box += run.count * run.size;
  tally.progress += run.progress;
  tally.scan_advance += run.scan_advance;
  tally.completions += run.completions;

  if (sink_ != nullptr) {
    Event event("runs");
    event.u64("i", run.first_index)
        .u64("s", run.size)
        .u64("count", run.count)
        .u64("progress", run.progress)
        .u64("scan", run.scan_advance)
        .u64("completions", run.completions)
        .str("branch", exec_branch_name(run.branch));
    sink_->write(event);
  }
}

ExecRecorder::Mark ExecRecorder::mark() const {
  return Mark{boxes_,       sum_box_,       progress_, scan_advance_,
              completions_, branch_counts_, classes_};
}

void ExecRecorder::replay(const Mark& mark, std::uint64_t m) {
  const std::uint64_t d_boxes = boxes_ - mark.boxes;
  const std::uint64_t d_progress = progress_ - mark.progress;
  const std::uint64_t d_scan = scan_advance_ - mark.scan_advance;
  boxes_ += m * d_boxes;
  sum_box_ += m * (sum_box_ - mark.sum_box);
  progress_ += m * d_progress;
  scan_advance_ += m * d_scan;
  completions_ += m * (completions_ - mark.completions);
  for (std::size_t i = 0; i < branch_counts_.size(); ++i) {
    branch_counts_[i] += m * (branch_counts_[i] - mark.branch_counts[i]);
  }
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    SizeClassTally& cur = classes_[i];
    const SizeClassTally& snap = mark.classes[i];
    cur.boxes += m * (cur.boxes - snap.boxes);
    cur.sum_box += m * (cur.sum_box - snap.sum_box);
    cur.progress += m * (cur.progress - snap.progress);
    cur.scan_advance += m * (cur.scan_advance - snap.scan_advance);
    cur.completions += m * (cur.completions - snap.completions);
  }
  if (sink_ != nullptr) {
    Event event("bulk");
    event.u64("repeats", m)
        .u64("boxes", m * d_boxes)
        .u64("progress", m * d_progress)
        .u64("scan", m * d_scan);
    sink_->write(event);
  }
}

CounterSet ExecRecorder::counters() const {
  CounterSet set;
  set.add("boxes", boxes_);
  set.add("sum_box", sum_box_);
  set.add("progress", progress_);
  set.add("scan_advance", scan_advance_);
  set.add("completions", completions_);
  set.add("branch_jump", branch_count(ExecBranch::kCompleteJump));
  set.add("branch_scan", branch_count(ExecBranch::kScanAdvance));
  set.add("branch_budgeted", branch_count(ExecBranch::kBudgeted));
  return set;
}

void ExecRecorder::emit_run_summary(TraceSink& sink, bool completed) const {
  Event event = counters().to_event("run");
  event.flag("completed", completed);
  sink.write(event);
}

void McRecorder::on_trial(const TrialObservation& trial) {
  CADAPT_CHECK_MSG(trials_.empty() || trials_.back().trial < trial.trial,
                   "trials must arrive in increasing order");
  TrialObservation record = trial;
  if (!record_timing_) record.duration_ns = 0;
  trials_.push_back(record);
  if (sink_ != nullptr) {
    Event event("trial");
    event.u64("trial", record.trial)
        .u64("seed", record.seed)
        .flag("completed", record.completed)
        .u64("boxes", record.boxes)
        .f64("ratio", record.ratio)
        .f64("unit_ratio", record.unit_ratio);
    // Emitted only when set, so traces of completed / source-exhausted
    // trials keep their pre-StopReason bytes.
    if (record.capped) event.flag("capped", true);
    if (record_timing_) event.u64("duration_ns", record.duration_ns);
    sink_->write(event);
  }
}

void McRecorder::on_trial_error(const TrialErrorObservation& error) {
  errors_.push_back(error);
  if (sink_ != nullptr) {
    Event event("trial_error");
    event.u64("trial", error.trial)
        .u64("seed", error.seed)
        .u64("attempts", error.attempts)
        .str("category", error.category)
        .str("what", error.what);
    sink_->write(event);
  }
}

void McRecorder::finish(const McFinish& info) {
  if (sink_ == nullptr) return;
  util::RunningStat ratio;
  std::uint64_t incomplete = 0;
  std::uint64_t capped = 0;
  for (const TrialObservation& t : trials_) {
    if (t.completed) ratio.add(t.ratio); else ++incomplete;
    if (t.capped) ++capped;
  }
  const std::uint64_t observed = trials_.size() + errors_.size();
  Event event("mc");
  event.u64("trials", observed)
      .u64("incomplete", incomplete)
      .f64("mean_ratio", ratio.count() > 0 ? ratio.mean() : 0.0)
      .u64("failed", errors_.size())
      .u64("trials_requested",
           info.trials_requested != 0 ? info.trials_requested : observed)
      .flag("truncated", info.truncated);
  // Only when present, so pre-StopReason traces keep their bytes.
  if (capped > 0) event.u64("capped", capped);
  sink_->write(event);
}

void SchedRecorder::on_steal(std::uint64_t epoch, std::uint64_t thief,
                             std::uint64_t victim, std::uint64_t units,
                             bool split) {
  ++steals_;
  if (split) ++splits_;
  if (sink_ != nullptr) {
    Event event("sched_steal");
    event.u64("epoch", epoch)
        .u64("thief", thief)
        .u64("victim", victim)
        .u64("units", units)
        .flag("split", split);
    sink_->write(event);
  }
}

void SchedRecorder::on_failed_steal(std::uint64_t epoch, std::uint64_t thief,
                                    std::uint64_t victim) {
  (void)epoch;
  (void)thief;
  (void)victim;
  ++failed_steals_;
}

void SchedRecorder::on_epoch(std::uint64_t epoch,
                             std::uint64_t active_workers,
                             std::uint64_t queued_tasks,
                             std::uint64_t remaining_units) {
  epochs_ = epoch;
  max_queued_ = std::max(max_queued_, queued_tasks);
  if (sink_ != nullptr) {
    Event event("sched_epoch");
    event.u64("epoch", epoch)
        .u64("active", active_workers)
        .u64("queued", queued_tasks)
        .u64("remaining_units", remaining_units);
    sink_->write(event);
  }
}

void SchedRecorder::finish(std::uint64_t workers, std::uint64_t rounds,
                           std::uint64_t epochs, std::uint64_t splits,
                           bool completed) {
  if (sink_ == nullptr) return;
  Event event("sched");
  event.u64("workers", workers)
      .u64("rounds", rounds)
      .u64("epochs", epochs)
      .u64("steals", steals_)
      .u64("failed_steals", failed_steals_)
      .u64("splits", splits)
      .flag("completed", completed);
  sink_->write(event);
}

std::uint64_t PagingRecorder::total_hits() const {
  std::uint64_t total = 0;
  for (const LevelTally& tally : levels_) total += tally.hits;
  return total;
}

std::uint64_t PagingRecorder::total_misses() const {
  std::uint64_t total = 0;
  for (const LevelTally& tally : levels_) total += tally.misses;
  return total;
}

void PagingRecorder::emit(TraceSink& sink) const {
  for (std::size_t cls = 0; cls < levels_.size(); ++cls) {
    const LevelTally& tally = levels_[cls];
    if (tally.boxes == 0 && tally.accesses == 0) continue;
    Event event("paging");
    event.u64("size_class", cls)
        .u64("boxes", tally.boxes)
        .u64("accesses", tally.accesses)
        .u64("hits", tally.hits)
        .u64("misses", tally.misses)
        .u64("evictions", tally.evictions);
    sink.write(event);
  }
  if (tier2_.accesses != 0) {
    Event event("paging_tier2");
    event.u64("accesses", tier2_.accesses)
        .u64("hits", tier2_.hits)
        .u64("misses", tier2_.misses);
    sink.write(event);
  }
}

}  // namespace cadapt::obs
