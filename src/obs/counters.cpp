#include "obs/counters.hpp"

namespace cadapt::obs {

void CounterSet::add(const std::string& name, std::uint64_t delta) {
  const auto [it, inserted] = index_.try_emplace(name, entries_.size());
  if (inserted) {
    entries_.emplace_back(name, delta);
  } else {
    entries_[it->second].second += delta;
  }
}

std::uint64_t CounterSet::value(std::string_view name) const {
  // Linear scan: counter sets are tiny (a dozen names) and value() is a
  // reporting-path call; the map is only there to make add() O(1).
  for (const auto& [key, val] : entries_)
    if (key == name) return val;
  return 0;
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [name, val] : other.entries_) add(name, val);
}

Event CounterSet::to_event(std::string type) const {
  Event event(std::move(type));
  for (const auto& [name, val] : entries_) event.u64(name, val);
  return event;
}

}  // namespace cadapt::obs
