// Structured trace events and their JSONL (one JSON object per line)
// encoding — the interchange format of the observability layer
// (docs/OBSERVABILITY.md).
//
// Events are flat: a mandatory "type" tag plus an ordered list of
// (key, scalar) fields. Flatness keeps the writer allocation-light on the
// per-box hot path and lets the parser stay small enough to be obviously
// correct — it exists so that traces can be *validated* (every emitted
// line must re-parse and re-sum; see the `cadapt trace` subcommand).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cadapt::obs {

/// Scalar payload of one event field. Doubles must be finite (JSON has no
/// NaN/Inf); the builder CADAPT_CHECKs this.
using Value =
    std::variant<std::uint64_t, std::int64_t, double, bool, std::string>;

struct Field {
  std::string key;
  Value value;

  bool operator==(const Field&) const = default;
};

/// One trace event: a type tag plus ordered fields. Field order is part of
/// the encoding (traces are diffed line-by-line), so builders append in a
/// fixed order.
struct Event {
  std::string type;
  std::vector<Field> fields;

  Event() = default;
  explicit Event(std::string type_tag) : type(std::move(type_tag)) {}

  /// Builder-style appenders; return *this for chaining.
  Event& u64(std::string key, std::uint64_t v);
  Event& i64(std::string key, std::int64_t v);
  Event& f64(std::string key, double v);
  Event& flag(std::string key, bool v);
  Event& str(std::string key, std::string v);

  /// First field with the given key, or nullptr.
  const Value* find(std::string_view key) const;
  /// Typed lookups with fallback. f64_or widens either integer
  /// alternative; u64_or accepts a non-negative int64_t but never
  /// narrows a double (it may be non-integral).
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  double f64_or(std::string_view key, double fallback) const;
  bool flag_or(std::string_view key, bool fallback) const;
  std::string str_or(std::string_view key, std::string fallback) const;

  /// Remove every field with the given key (used by trace diff tools to
  /// drop nondeterministic fields such as durations). Returns *this.
  Event& without(std::string_view key);

  bool operator==(const Event&) const = default;
};

/// Escape a string for inclusion in a JSON string literal (adds no
/// surrounding quotes). UTF-8 payload bytes pass through untouched.
std::string json_escape(std::string_view s);

/// Encode as one JSON object line, "type" first, without the trailing
/// newline: {"type":"box","s":4,...}
std::string to_jsonl(const Event& event);

/// Buffer-reuse encoder for streaming writers: clears `out` and fills
/// it with the same bytes to_jsonl returns, reusing its capacity so the
/// per-line hot path (report export, checkpoints, serve streams) stops
/// allocating a fresh string per event.
void to_jsonl(const Event& event, std::string& out);

/// Parse one JSONL line produced by to_jsonl (flat object, "type"
/// required). Returns false and fills *error (if given) on malformed
/// input; nested objects/arrays and null are rejected by design.
/// Integers without sign/fraction/exponent parse as uint64_t (int64_t if
/// negative); other numbers parse as double. to_jsonl ∘ parse_jsonl is
/// the identity on events built from u64/i64(negative)/f64/flag/str.
bool parse_jsonl(std::string_view line, Event* out,
                 std::string* error = nullptr);

}  // namespace cadapt::obs
