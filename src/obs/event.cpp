#include "obs/event.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace cadapt::obs {

Event& Event::u64(std::string key, std::uint64_t v) {
  fields.push_back({std::move(key), Value{v}});
  return *this;
}

Event& Event::i64(std::string key, std::int64_t v) {
  fields.push_back({std::move(key), Value{v}});
  return *this;
}

Event& Event::f64(std::string key, double v) {
  CADAPT_CHECK_MSG(std::isfinite(v),
                   "JSON cannot represent non-finite field '" << key << "'");
  fields.push_back({std::move(key), Value{v}});
  return *this;
}

Event& Event::flag(std::string key, bool v) {
  fields.push_back({std::move(key), Value{v}});
  return *this;
}

Event& Event::str(std::string key, std::string v) {
  fields.push_back({std::move(key), Value{std::move(v)}});
  return *this;
}

const Value* Event::find(std::string_view key) const {
  for (const Field& f : fields)
    if (f.key == key) return &f.value;
  return nullptr;
}

std::uint64_t Event::u64_or(std::string_view key,
                            std::uint64_t fallback) const {
  const Value* v = find(key);
  if (v == nullptr) return fallback;
  if (const auto* u = std::get_if<std::uint64_t>(v)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(v))
    return *i >= 0 ? static_cast<std::uint64_t>(*i) : fallback;
  return fallback;
}

double Event::f64_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  if (v == nullptr) return fallback;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(v))
    return static_cast<double>(*u);
  if (const auto* i = std::get_if<std::int64_t>(v))
    return static_cast<double>(*i);
  return fallback;
}

bool Event::flag_or(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  if (v == nullptr) return fallback;
  if (const auto* b = std::get_if<bool>(v)) return *b;
  return fallback;
}

std::string Event::str_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  if (v == nullptr) return fallback;
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return fallback;
}

Event& Event::without(std::string_view key) {
  std::erase_if(fields, [key](const Field& f) { return f.key == key; });
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", byte);
          out += buf.data();
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void append_value(std::string& out, const Value& value) {
  std::array<char, 32> buf{};
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          out += '"';
          out += json_escape(v);
          out += '"';
        } else if constexpr (std::is_same_v<T, bool>) {
          out += v ? "true" : "false";
        } else {
          // Integers, and doubles via shortest-round-trip to_chars: the
          // parsed value is bit-identical to the written one.
          const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
          CADAPT_CHECK(res.ec == std::errc());
          out.append(buf.data(), res.ptr);
        }
      },
      value);
}

}  // namespace

std::string to_jsonl(const Event& event) {
  std::string out;
  to_jsonl(event, out);
  return out;
}

void to_jsonl(const Event& event, std::string& out) {
  out.clear();
  if (out.capacity() < 32 + event.fields.size() * 16) {
    out.reserve(32 + event.fields.size() * 16);
  }
  out += "{\"type\":\"";
  out += json_escape(event.type);
  out += '"';
  for (const Field& f : event.fields) {
    out += ",\"";
    out += json_escape(f.key);
    out += "\":";
    append_value(out, f.value);
  }
  out += '}';
}

namespace {

/// Minimal recursive-descent parser for the flat JSONL subset emitted by
/// to_jsonl. Kept deliberately tiny: the observability layer must be able
/// to prove its own output well-formed without a JSON dependency.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(Event* out, std::string* error) {
    skip_ws();
    if (!expect('{')) return fail(error, "expected '{'");
    bool first = true;
    bool saw_type = false;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        if (!first && !expect(',')) return fail(error, "expected ',' or '}'");
        first = false;
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return fail(error, "expected field name");
        skip_ws();
        if (!expect(':')) return fail(error, "expected ':'");
        skip_ws();
        Value value;
        if (!parse_value(&value)) return fail(error, error_ptr_);
        if (key == "type") {
          const auto* s = std::get_if<std::string>(&value);
          if (s == nullptr) return fail(error, "\"type\" must be a string");
          out->type = *s;
          saw_type = true;
        } else {
          out->fields.push_back({std::move(key), std::move(value)});
        }
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          break;
        }
      }
    }
    skip_ws();
    if (pos_ != text_.size()) return fail(error, "trailing content after '}'");
    if (!saw_type) return fail(error, "missing \"type\" field");
    return true;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool expect(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  static bool fail(std::string* error, const char* message) {
    if (error != nullptr) *error = message;
    return false;
  }

  bool set_error(const char* message) {
    error_ptr_ = message;
    return false;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // Encode the code point as UTF-8 (surrogate pairs are not
          // emitted by our writer; a lone surrogate is rejected).
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated string
  }

  bool parse_value(Value* out) {
    const char c = peek();
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return set_error("malformed string");
      *out = std::move(s);
      return true;
    }
    if (c == 't') {
      if (text_.substr(pos_, 4) != "true") return set_error("bad literal");
      pos_ += 4;
      *out = true;
      return true;
    }
    if (c == 'f') {
      if (text_.substr(pos_, 5) != "false") return set_error("bad literal");
      pos_ += 5;
      *out = false;
      return true;
    }
    if (c == '{' || c == '[')
      return set_error("nested objects/arrays are not part of the schema");
    if (c == 'n') return set_error("null is not part of the schema");
    return parse_number(out);
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    bool is_double = false;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return set_error("expected a value");
    const char* begin = token.data();
    const char* end = token.data() + token.size();
    if (is_double) {
      double d = 0;
      const auto res = std::from_chars(begin, end, d);
      if (res.ec != std::errc() || res.ptr != end)
        return set_error("malformed number");
      *out = d;
      return true;
    }
    if (token.front() == '-') {
      std::int64_t i = 0;
      const auto res = std::from_chars(begin, end, i);
      if (res.ec != std::errc() || res.ptr != end)
        return set_error("integer out of range");
      *out = i;
      return true;
    }
    std::uint64_t u = 0;
    const auto res = std::from_chars(begin, end, u);
    if (res.ec != std::errc() || res.ptr != end)
      return set_error("integer out of range");
    *out = u;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* error_ptr_ = "parse error";
};

}  // namespace

bool parse_jsonl(std::string_view line, Event* out, std::string* error) {
  CADAPT_CHECK(out != nullptr);
  out->type.clear();
  out->fields.clear();
  return Parser(line).parse(out, error);
}

}  // namespace cadapt::obs
